//! # gpu-fast-proclus — umbrella crate
//!
//! Re-exports the whole GPU-FAST-PROCLUS reproduction (EDBT 2022) behind
//! one dependency: the CPU algorithm family ([`proclus`]), the GPU variants
//! on the SIMT device simulator ([`proclus_gpu`] + [`gpu_sim`]), and the
//! dataset generators ([`datagen`]).
//!
//! ```
//! use gpu_fast_proclus::prelude::*;
//!
//! let gen = datagen::synthetic::generate(
//!     &datagen::SyntheticConfig::new(500, 8).with_clusters(3).with_seed(7),
//! );
//! let params = Params::new(3, 3).with_a(30).with_b(5);
//! let cpu = fast_proclus(&gen.data, &params).unwrap();
//!
//! let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
//! dev.set_deterministic(true);
//! let gpu = gpu_fast_proclus(&mut dev, &gen.data, &params).unwrap();
//! assert_eq!(cpu.labels, gpu.labels);
//! ```

#![warn(missing_docs)]

pub use datagen;
pub use gpu_sim;
pub use proclus;
pub use proclus_gpu;

/// The most common imports in one place.
pub mod prelude {
    pub use datagen::{self, SyntheticConfig};
    pub use gpu_sim::{Device, DeviceConfig};
    pub use proclus::{
        fast_proclus, fast_proclus_multi, fast_star_proclus, proclus, Clustering, DataMatrix,
        Params, ReuseLevel, Setting, OUTLIER,
    };
    pub use proclus_gpu::{
        gpu_fast_proclus, gpu_fast_proclus_multi, gpu_fast_star_proclus, gpu_proclus,
    };
}
