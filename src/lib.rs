//! # gpu-fast-proclus — umbrella crate
//!
//! Re-exports the whole GPU-FAST-PROCLUS reproduction (EDBT 2022) behind
//! one dependency: the CPU algorithm family ([`proclus`]), the GPU variants
//! on the SIMT device simulator ([`proclus_gpu`] + [`gpu_sim`]), and the
//! dataset generators ([`datagen`]).
//!
//! Every variant/backend combination is reached through the unified
//! [`proclus::run`] / [`proclus_gpu::run_on`] entry points, driven by a
//! single [`proclus::Config`]:
//!
//! ```
//! use gpu_fast_proclus::prelude::*;
//!
//! let gen = datagen::synthetic::generate(
//!     &datagen::SyntheticConfig::new(500, 8).with_clusters(3).with_seed(7),
//! );
//! let params = Params::new(3, 3).with_a(30).with_b(5);
//!
//! let cpu = run(&gen.data, &Config::new(params.clone())).unwrap();
//!
//! let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
//! dev.set_deterministic(true);
//! let config = Config::new(params)
//!     .with_backend(Backend::Gpu)
//!     .with_telemetry(true);
//! let gpu = run_on(&mut dev, &gen.data, &config).unwrap();
//!
//! assert_eq!(cpu.clustering().labels, gpu.clustering().labels);
//! let report = gpu.telemetry.unwrap();
//! assert!(report.find_span("assign_points").is_some());
//! ```

#![warn(missing_docs)]

pub use datagen;
pub use gpu_sim;
pub use proclus;
pub use proclus_gpu;
pub use proclus_serve;
pub use proclus_telemetry;

/// The most common imports in one place.
pub mod prelude {
    pub use datagen::{self, SyntheticConfig};
    pub use gpu_sim::{Device, DeviceConfig};
    pub use proclus::{
        fast_proclus_multi, run, Algo, Backend, Clustering, Config, DataMatrix, Grid, Params,
        ReuseLevel, RunOutput, Setting, OUTLIER,
    };
    #[allow(deprecated)]
    pub use proclus_gpu::{gpu_fast_proclus, gpu_fast_star_proclus, gpu_proclus};
    pub use proclus_gpu::{gpu_fast_proclus_multi, run_on};
}
