//! A tour of the simulated device: run GPU-FAST-PROCLUS once and inspect
//! what the SIMT simulator recorded — per-kernel time, occupancy, memory
//! throughput, device memory usage, and what happens when the data no
//! longer fits (the paper's 8 M-point wall, §5.3).
//!
//! ```text
//! cargo run --release --example gpu_simulation_tour
//! ```

#![allow(deprecated)] // exercises the legacy entry points deliberately

use gpu_fast_proclus::prelude::*;

fn main() {
    let gen = datagen::synthetic::generate(
        &SyntheticConfig::new(64_000, 15).with_seed(9), // the paper's default workload
    );
    let mut data = gen.data;
    data.minmax_normalize();
    let params = Params::new(10, 5).with_seed(41);

    // Run on both of the paper's cards.
    for cfg in [DeviceConfig::gtx_1660_ti(), DeviceConfig::rtx_3090()] {
        let mut dev = Device::new(cfg);
        let result = gpu_fast_proclus(&mut dev, &data, &params).expect("fits");
        let report = dev.report();
        println!("=== {} ===", dev.config().name);
        println!(
            "clustering: {} iterations, cost {:.5}, {} outliers",
            result.iterations,
            result.cost,
            result.num_outliers()
        );
        println!(
            "simulated time {:.3} ms ({} kernel launches, {:.3} ms in transfers)",
            report.elapsed_us / 1e3,
            report.launches,
            report.transfer_us / 1e3
        );
        println!(
            "peak device memory: {:.1} MB of {:.1} GB",
            report.mem_peak as f64 / 1e6,
            dev.config().global_mem_bytes as f64 / 1e9
        );
        println!("{}", report.kernel_table());
    }

    // A traced mini-run: what one iteration's kernel schedule looks like.
    let gen_small = datagen::synthetic::generate(&SyntheticConfig::new(8_000, 15).with_seed(9));
    let mut small = gen_small.data;
    small.minmax_normalize();
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
    dev.set_tracing(true);
    gpu_fast_proclus(&mut dev, &small, &params).expect("fits");
    println!("=== last 14 traced device operations (n = 8,000) ===");
    print!("{}", dev.trace().render_gantt(14, 48));
    println!(
        "(full run: {} events; export with Trace::to_chrome_trace for Perfetto)\n",
        dev.trace().events().len()
    );

    // The memory wall: shrink the device until the same workload dies with
    // a diagnosable out-of-memory error instead of a crash.
    let tiny = DeviceConfig::gtx_1660_ti().with_memory_limit(8_000_000);
    let mut dev = Device::new(tiny);
    match gpu_fast_proclus(&mut dev, &data, &params) {
        Ok(_) => println!("unexpectedly fit!"),
        Err(e) => {
            println!("on an 8 MB device the same run fails cleanly:\n  {e}");
            println!("largest live allocations at failure:");
            for a in dev.live_allocations().into_iter().take(4) {
                println!("  {:<12} {:>12} B", a.label, a.bytes);
            }
        }
    }
}
