//! Demo client for `proclus-serve`: ~50 concurrent mixed `(k, l)` requests
//! against one server, printing the batching win over serving the same
//! requests one at a time.
//!
//! The point of the serving layer is §3.1 of the paper: queued jobs on the
//! same dataset that differ only in `(k, l)` are coalesced into one grid
//! run sharing the sample, the greedy medoid candidates and the `Dist`/`H`
//! caches — so a burst of exploratory requests computes strictly fewer
//! distances than the same requests served sequentially. This demo
//! measures exactly that, exercises a cancelled job and a deadline job,
//! and writes every job's telemetry as one schema-valid runs document.
//!
//! ```text
//! cargo run --release --example serve_demo [telemetry-out.json]
//! ```
//!
//! Exits nonzero if the batched run does not strictly win.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gpu_fast_proclus::prelude::*;
use proclus::telemetry::{counters, TelemetryReport};
use proclus_serve::{DatasetRef, JobRequest, ServeConfig, Server};

fn dataset(seed: u64) -> DataMatrix {
    let gen = datagen::synthetic::generate(
        &SyntheticConfig::new(3_000, 10)
            .with_clusters(4)
            .with_subspace_dims(4)
            .with_std_dev(4.0)
            .with_seed(seed),
    );
    let mut data = gen.data;
    data.minmax_normalize();
    data
}

fn params(k: usize, l: usize) -> Params {
    Params::new(k, l).with_a(20).with_b(5).with_seed(13)
}

fn main() {
    let out_path = std::env::args().nth(1);

    // Two datasets x a (k, l) grid = 48 clustering requests, all mixed
    // together the way a burst of exploratory clients would submit them.
    let datasets = [
        DatasetRef::inline("blobs-a", dataset(101)),
        DatasetRef::inline("blobs-b", dataset(202)),
    ];
    let grid: Vec<(usize, usize)> = (2..=9)
        .flat_map(|k| [3usize, 4, 5].map(|l| (k, l)))
        .collect();
    let jobs: Vec<(DatasetRef, usize, usize)> = datasets
        .iter()
        .flat_map(|d| grid.iter().map(move |&(k, l)| (d.clone(), k, l)))
        .collect();

    // Sequential reference: every request as an independent solo run.
    println!(
        "sequential reference: {} solo runs over {} datasets ...",
        jobs.len(),
        datasets.len()
    );
    let t0 = Instant::now();
    let mut sequential_distances = 0u64;
    for (d, k, l) in &jobs {
        let data = match d {
            DatasetRef::Inline { data, .. } => Arc::clone(data),
            DatasetRef::Path(_) => unreachable!("demo datasets are inline"),
        };
        let out = run(&data, &Config::new(params(*k, *l)).with_telemetry(true)).expect("solo run");
        sequential_distances += out
            .telemetry
            .expect("telemetry on")
            .total(counters::DISTANCES_COMPUTED);
    }
    let sequential_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Service: the same requests, submitted while the scheduler is paused
    // so they pile up and coalesce (a live burst behaves the same way).
    let server = Server::start(
        ServeConfig::default()
            .with_workers(2)
            .with_max_batch(16)
            .with_start_paused(true),
    )
    .expect("server starts");
    let handles: Vec<_> = jobs
        .iter()
        .map(|(d, k, l)| {
            server
                .submit(JobRequest::new(d.clone(), params(*k, *l)))
                .expect("admitted")
        })
        .collect();

    // Two more requests round the demo to ~50: one cancelled while queued,
    // one with a deadline that has already passed when a worker gets to it.
    let cancelled = server
        .submit(JobRequest::new(datasets[0].clone(), params(6, 4)))
        .expect("admitted");
    cancelled.cancel();
    let deadlined = server
        .submit(
            JobRequest::new(datasets[1].clone(), params(6, 4))
                .with_deadline(Duration::from_nanos(1)),
        )
        .expect("admitted");

    println!("service: {} requests queued, resuming ...", jobs.len() + 2);
    let t1 = Instant::now();
    server.resume();

    let mut batched_distances = 0u64;
    let mut widths = Vec::new();
    let mut reports: Vec<TelemetryReport> = Vec::new();
    for h in &handles {
        let out = h.wait().expect("job succeeds");
        widths.push(out.batch_width);
        let tel = out.telemetry.expect("per-job telemetry");
        batched_distances += tel.total(counters::DISTANCES_COMPUTED);
        reports.push(tel);
    }
    let batched_ms = t1.elapsed().as_secs_f64() * 1e3;

    let err = cancelled.wait().expect_err("cancelled job must fail");
    assert!(err.is_cancelled(), "cancelled job: {err}");
    let err = deadlined.wait().expect_err("deadline job must fail");
    assert!(err.is_cancelled(), "deadline job: {err}");
    println!("cancelled + deadline jobs terminated cleanly: ok");

    let snap = server.metrics();
    let batches = snap.total(counters::BATCHES_EXECUTED);
    let mean_width = widths.iter().sum::<usize>() as f64 / widths.len() as f64;
    println!("\n{:>34} {:>14} {:>10}", "", "distances", "wall ms");
    println!(
        "{:>34} {:>14} {:>10.1}",
        "sequential (one job at a time)", sequential_distances, sequential_ms
    );
    println!(
        "{:>34} {:>14} {:>10.1}",
        "batched (coalesced grid runs)", batched_distances, batched_ms
    );
    println!(
        "\n{} jobs ran in {} batches (mean width {:.1}); distances saved: {:.1}%",
        handles.len(),
        batches,
        mean_width,
        100.0 * (1.0 - batched_distances as f64 / sequential_distances as f64),
    );
    println!(
        "queue-wait p50/p99: {}/{} us, service p50/p99: {}/{} us",
        snap.total("queue_wait_us_p50"),
        snap.total("queue_wait_us_p99"),
        snap.total("service_time_us_p50"),
        snap.total("service_time_us_p99"),
    );
    server.shutdown();

    // Per-job telemetry as one runs document, schema-validated (CI relies
    // on this).
    let doc = proclus::telemetry::runs_json(&reports);
    proclus_telemetry::schema::validate_any_str(&doc).expect("schema-valid runs document");
    if let Some(path) = out_path {
        std::fs::write(&path, &doc).expect("write telemetry");
        println!(
            "per-job telemetry ({} reports) written to {path}",
            reports.len()
        );
    }

    // The acceptance criterion, self-checked: strictly fewer distances.
    if batched_distances >= sequential_distances {
        eprintln!(
            "FAIL: batched runs computed {batched_distances} distances, \
             sequential computed {sequential_distances}"
        );
        std::process::exit(1);
    }
    println!("self-check passed: batched < sequential distances");
}
