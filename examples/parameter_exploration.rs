//! Parameter exploration on the CPU: how the reuse levels of §3.1 and the
//! result quality interact when sweeping `(k, l)`.
//!
//! PROCLUS needs `k` and `l` up front, which users rarely know. This
//! example sweeps a grid, reports cost per setting, and shows the elbow an
//! analyst would use to pick `k` — while demonstrating that all reuse
//! levels return equally valid clusterings.
//!
//! ```text
//! cargo run --release --example parameter_exploration
//! ```

use gpu_fast_proclus::prelude::*;
use proclus::par::Executor;

fn main() {
    // Data with a known answer: 5 clusters in 4-d subspaces of 12-d space.
    let gen = datagen::synthetic::generate(
        &SyntheticConfig::new(8_000, 12)
            .with_clusters(5)
            .with_subspace_dims(4)
            .with_std_dev(4.0)
            .with_seed(77),
    );
    let mut data = gen.data;
    data.minmax_normalize();

    let base = Params::new(5, 4).with_seed(3);
    let grid: Vec<Setting> = (2..=8).map(|k| Setting::new(k, 4)).collect();
    let exec = Executor::Sequential;

    println!("sweeping k = 2..=8 at l = 4 over {} points\n", data.n());
    println!(
        "{:>3} {:>12} {:>12} {:>10}",
        "k", "cost", "refined", "outliers"
    );

    let t0 = std::time::Instant::now();
    let results =
        fast_proclus_multi(&data, &base, &grid, ReuseLevel::WarmStart, &exec).expect("valid grid");
    let elapsed = t0.elapsed().as_secs_f64() * 1e3;

    let mut best = (0usize, f64::INFINITY);
    for (s, r) in grid.iter().zip(&results) {
        println!(
            "{:>3} {:>12.5} {:>12.5} {:>10}",
            s.k,
            r.cost,
            r.refined_cost,
            r.num_outliers()
        );
        if r.refined_cost < best.1 {
            best = (s.k, r.refined_cost);
        }
    }
    println!(
        "\nwhole sweep (7 settings, warm-started): {elapsed:.1} ms, \
         {:.1} ms/setting",
        elapsed / grid.len() as f64
    );
    println!("lowest refined cost at k = {} (planted: 5)", best.0);

    // Quality check against the planted labels for the planted k.
    let at_5 = &results[grid.iter().position(|s| s.k == 5).unwrap()];
    let ari = proclus::metrics::adjusted_rand_index(&gen.labels, &at_5.labels);
    println!("ARI at k = 5: {ari:.3}");

    // All levels agree on validity, not necessarily on the exact result
    // (they draw different random numbers).
    for level in [
        ReuseLevel::Independent,
        ReuseLevel::SharedCache,
        ReuseLevel::SharedGreedy,
    ] {
        let r = fast_proclus_multi(&data, &base, &grid, level, &exec).expect("valid grid");
        assert_eq!(r.len(), grid.len());
        for (s, c) in grid.iter().zip(&r) {
            c.validate_structure(data.n(), data.d(), 4)
                .unwrap_or_else(|e| panic!("level {level:?}, k = {}: {e}", s.k));
        }
    }
    println!("all reuse levels produce structurally valid clusterings");
}
