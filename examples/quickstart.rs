//! Quickstart: cluster a small synthetic dataset with every variant and
//! compare them.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_fast_proclus::prelude::*;

fn main() {
    // 2,000 points in 10 dimensions: 4 Gaussian clusters, each living in
    // its own 4-dimensional subspace, plus 2% uniform noise.
    let gen = datagen::synthetic::generate(
        &SyntheticConfig::new(2_000, 10)
            .with_clusters(4)
            .with_subspace_dims(4)
            .with_std_dev(3.0)
            .with_noise(0.02)
            .with_seed(11),
    );
    let mut data = gen.data;
    data.minmax_normalize();

    let params = Params::new(4, 4).with_seed(7);

    // --- CPU: baseline PROCLUS and FAST-PROCLUS -------------------------
    let t0 = std::time::Instant::now();
    let base = proclus(&data, &params).expect("valid configuration");
    let t_base = t0.elapsed();
    let t0 = std::time::Instant::now();
    let fast = fast_proclus(&data, &params).expect("valid configuration");
    let t_fast = t0.elapsed();

    // Same seed → same search path → same clustering.
    assert_eq!(base.labels, fast.labels);

    // --- GPU (simulated device) -----------------------------------------
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
    let gpu = gpu_fast_proclus(&mut dev, &data, &params).expect("fits on device");

    println!("points                : {}", data.n());
    println!("clusters (k)          : {}", gpu.k());
    println!("iterations            : {}", gpu.iterations);
    println!("best cost             : {:.5}", gpu.cost);
    println!("outliers              : {}", gpu.num_outliers());
    println!("cluster sizes         : {:?}", gpu.cluster_sizes());
    for (i, s) in gpu.subspaces.iter().enumerate() {
        println!("subspace of cluster {i} : {s:?}");
    }
    println!();
    println!(
        "PROCLUS      (CPU wall) : {:.1} ms",
        t_base.as_secs_f64() * 1e3
    );
    println!(
        "FAST-PROCLUS (CPU wall) : {:.1} ms",
        t_fast.as_secs_f64() * 1e3
    );
    println!(
        "GPU-FAST     (simulated): {:.3} ms on {}",
        dev.elapsed_ms(),
        dev.config().name
    );

    // How well did we recover the planted clusters?
    let ari = proclus::metrics::adjusted_rand_index(&gen.labels, &gpu.labels);
    println!("adjusted Rand index vs. ground truth: {ari:.3}");
}
