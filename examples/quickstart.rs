//! Quickstart: cluster a small synthetic dataset through the unified
//! `run`/`run_on` entry points and read the telemetry counters that
//! explain the FAST speedup.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_fast_proclus::prelude::*;
use proclus::telemetry::counters;

fn main() {
    // 2,000 points in 10 dimensions: 4 Gaussian clusters, each living in
    // its own 4-dimensional subspace, plus 2% uniform noise.
    let gen = datagen::synthetic::generate(
        &SyntheticConfig::new(2_000, 10)
            .with_clusters(4)
            .with_subspace_dims(4)
            .with_std_dev(3.0)
            .with_noise(0.02)
            .with_seed(11),
    );
    let mut data = gen.data;
    data.minmax_normalize();

    let params = Params::new(4, 4).with_seed(7);

    // --- CPU: baseline PROCLUS and FAST-PROCLUS -------------------------
    let base_cfg = Config::new(params.clone())
        .with_algo(Algo::Baseline)
        .with_telemetry(true);
    let base = run(&data, &base_cfg).expect("valid configuration");
    let fast_cfg = Config::new(params.clone()).with_telemetry(true);
    let fast = run(&data, &fast_cfg).expect("valid configuration");

    // Same seed → same search path → same clustering.
    assert_eq!(base.clustering().labels, fast.clustering().labels);

    // --- GPU (simulated device): same Config, different backend ---------
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
    let gpu_cfg = Config::new(params).with_backend(Backend::Gpu);
    let gpu_out = run_on(&mut dev, &data, &gpu_cfg).expect("fits on device");
    let gpu = gpu_out.clustering();

    println!("points                : {}", data.n());
    println!("clusters (k)          : {}", gpu.k());
    println!("iterations            : {}", gpu.iterations);
    println!("best cost             : {:.5}", gpu.cost);
    println!("outliers              : {}", gpu.num_outliers());
    println!("cluster sizes         : {:?}", gpu.cluster_sizes());
    for (i, s) in gpu.subspaces.iter().enumerate() {
        println!("subspace of cluster {i} : {s:?}");
    }
    println!();
    println!("PROCLUS      (CPU wall) : {:.1} ms", base.wall_ms);
    println!("FAST-PROCLUS (CPU wall) : {:.1} ms", fast.wall_ms);
    println!(
        "GPU-FAST     (simulated): {:.3} ms on {}",
        dev.elapsed_ms(),
        dev.config().name
    );

    // The telemetry counters show *why* FAST is faster: the Dist cache
    // (Theorem 3.1) avoids most of the baseline's distance computations.
    let d_base = base.telemetry.unwrap().total(counters::DISTANCES_COMPUTED);
    let d_fast = fast.telemetry.unwrap().total(counters::DISTANCES_COMPUTED);
    println!();
    println!("distances computed (baseline) : {d_base}");
    println!("distances computed (FAST)     : {d_fast}");
    assert!(d_fast < d_base);

    // How well did we recover the planted clusters?
    let ari = proclus::metrics::adjusted_rand_index(&gen.labels, &gpu.labels);
    println!("adjusted Rand index vs. ground truth: {ari:.3}");
}
