//! Customer segmentation — the scenario from the paper's introduction:
//! "finding groups of customers that exhibit similar traits ... for a group
//! of customers, a trait like height might not be important for the
//! grouping."
//!
//! We synthesize a customer table where each segment is defined by a
//! *subset* of the attributes (e.g. bargain hunters correlate on discount
//! usage + visit frequency but are random in everything else), run
//! projected clustering, and read off which attributes define each
//! discovered segment — the payload projected clustering gives you that
//! full-space clustering cannot.
//!
//! ```text
//! cargo run --release --example customer_segmentation
//! ```

use gpu_fast_proclus::prelude::*;
use proclus::ProclusRng;

const ATTRS: [&str; 8] = [
    "age",
    "income",
    "visits_per_month",
    "avg_basket_value",
    "discount_usage",
    "returns_rate",
    "app_sessions",
    "support_tickets",
];

/// Hand-built segments: (name, defining attributes, segment means on a
/// 0–100 scale). Non-defining attributes are uniform noise.
const SEGMENTS: [(&str, &[usize], &[f32]); 4] = [
    ("bargain hunters", &[2, 4], &[80.0, 90.0]),
    ("premium loyalists", &[1, 3, 5], &[85.0, 75.0, 5.0]),
    ("digital natives", &[0, 6], &[20.0, 85.0]),
    ("at-risk churners", &[2, 6, 7], &[10.0, 10.0, 70.0]),
];

fn synthesize(n: usize, seed: u64) -> (DataMatrix, Vec<i32>) {
    let mut rng = ProclusRng::new(seed);
    let mut uniform = |lo: f32, hi: f32| lo + rng.below(10_000) as f32 / 10_000.0 * (hi - lo);
    let mut rows = Vec::with_capacity(n);
    let mut truth = Vec::with_capacity(n);
    for i in 0..n {
        let seg = i % SEGMENTS.len();
        let (_, dims, means) = SEGMENTS[seg];
        let mut row = vec![0.0f32; ATTRS.len()];
        for (j, v) in row.iter_mut().enumerate() {
            *v = match dims.iter().position(|&dj| dj == j) {
                // ±7.5 spread around the segment mean on defining attributes.
                Some(pos) => (means[pos] + uniform(-7.5, 7.5)).clamp(0.0, 100.0),
                None => uniform(0.0, 100.0),
            };
        }
        rows.push(row);
        truth.push(seg as i32);
    }
    (DataMatrix::from_rows(&rows).expect("valid rows"), truth)
}

fn main() {
    let (mut data, truth) = synthesize(4_000, 2024);
    data.minmax_normalize();

    // k = 4 segments, l = 2.5 average defining attributes rounded up.
    let params = Params::new(4, 3).with_seed(5);
    let output = run(&data, &Config::new(params)).expect("valid configuration");
    let result = output.clustering();

    println!(
        "discovered {} segments over {} customers\n",
        result.k(),
        data.n()
    );

    // Match each discovered cluster to its majority ground-truth segment.
    let clusters = result.clusters();
    for (i, members) in clusters.iter().enumerate() {
        let mut votes = [0usize; SEGMENTS.len()];
        for &p in members {
            votes[truth[p] as usize] += 1;
        }
        let best = votes.iter().enumerate().max_by_key(|(_, &v)| v).unwrap().0;
        let defining: Vec<&str> = result.subspaces[i].iter().map(|&j| ATTRS[j]).collect();
        let expected: Vec<&str> = SEGMENTS[best].1.iter().map(|&j| ATTRS[j]).collect();
        println!("cluster {i}: {} customers", members.len());
        println!("  majority segment   : {}", SEGMENTS[best].0);
        println!("  defining attributes: {defining:?}");
        println!("  planted attributes : {expected:?}");
        let hit = SEGMENTS[best]
            .1
            .iter()
            .filter(|&&j| result.subspaces[i].contains(&j))
            .count();
        println!(
            "  recovered {hit}/{} planted attributes\n",
            SEGMENTS[best].1.len()
        );
    }

    let ari = proclus::metrics::adjusted_rand_index(&truth, &result.labels);
    let nmi = proclus::metrics::normalized_mutual_information(&truth, &result.labels);
    println!("segment recovery: ARI = {ari:.3}, NMI = {nmi:.3}");
    println!("outliers flagged : {}", result.num_outliers());
}
