//! Sky-survey exploration — the paper's SkyServer workload (§5.5) as an
//! *interactive* session: an analyst sweeps a grid of `(k, l)` settings
//! over a SkyServer-shaped catalog cut, comparing how long the exploration
//! takes per setting with and without the multi-parameter reuse of §3.1.
//!
//! ```text
//! cargo run --release --example sky_survey            # sky 1x1 cut
//! cargo run --release --example sky_survey -- 2       # sky 2x2 cut
//! ```

#![allow(deprecated)] // exercises the legacy entry points deliberately

use gpu_fast_proclus::prelude::*;

fn main() {
    let area: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let gen = datagen::realworld::sky_like(area, 31);
    let data = gen.data; // already min–max normalized
    println!(
        "sky {area}x{area} cut: {} objects x {} features",
        data.n(),
        data.d()
    );

    // The paper's 9-setting exploration grid around k = 10, l = 5.
    let grid: Vec<Setting> = proclus::default_grid(10, 5);
    let base = Params::new(10, 5).with_seed(17);

    let run = |label: &str, level: ReuseLevel| {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let results =
            gpu_fast_proclus_multi(&mut dev, &data, &base, &grid, level).expect("fits on device");
        let per_setting = dev.elapsed_ms() / grid.len() as f64;
        // Pick the best setting by refined cost (what an analyst would do).
        let best = results
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.refined_cost.total_cmp(&b.1.refined_cost))
            .expect("non-empty grid");
        println!(
            "{label:<26}: {per_setting:>9.3} ms/setting (simulated) | best grid point \
             (k={}, l={}) cost {:.5}",
            grid[best.0].k, grid[best.0].l, best.1.refined_cost
        );
        per_setting
    };

    let independent = run("independent runs", ReuseLevel::Independent);
    let shared_cache = run("multi-param 1 (cache)", ReuseLevel::SharedCache);
    let shared_greedy = run("multi-param 2 (+greedy)", ReuseLevel::SharedGreedy);
    let warm = run("multi-param 3 (+warm start)", ReuseLevel::WarmStart);

    println!("\nreuse speedups vs. independent runs:");
    println!("  level 1: {:.2}x", independent / shared_cache);
    println!("  level 2: {:.2}x", independent / shared_greedy);
    println!("  level 3: {:.2}x", independent / warm);
    println!(
        "\ninteractive budget check: {} (paper target: < 100 ms per query)",
        if warm < 100.0 {
            "PASS"
        } else {
            "needs a bigger GPU"
        }
    );
}
