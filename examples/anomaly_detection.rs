//! Anomaly detection with projected clustering: PROCLUS's refinement phase
//! flags every point outside all medoids' subspace spheres as an outlier
//! (§2.1) — which makes it a coarse but free anomaly detector.
//!
//! The scenario: server telemetry where *normal* behavior forms regimes
//! that are only tight in a few metrics each, plus occasional sensor
//! glitches — stuck counters and overflow readings far beyond the normal
//! operating envelope. The Δ-sphere test is deliberately conservative (a
//! point must lie outside *every* medoid's subspace sphere), so it flags
//! exactly these gross violations while leaving borderline points in
//! their clusters — the behavior this example demonstrates and asserts.
//!
//! ```text
//! cargo run --release --example anomaly_detection
//! ```

use gpu_fast_proclus::prelude::*;
use proclus::ProclusRng;

const METRICS: [&str; 8] = [
    "cpu",
    "memory",
    "io_wait",
    "net_tx",
    "net_rx",
    "disk_q",
    "latency_p99",
    "error_rate",
];

fn main() {
    // Three normal regimes, each defined on 3 of 8 metrics.
    let regimes: [(&str, [usize; 3], [f32; 3]); 3] = [
        ("batch-job", [0, 2, 5], [90.0, 70.0, 60.0]),
        ("serving", [3, 4, 6], [60.0, 55.0, 20.0]),
        ("idle", [0, 1, 6], [5.0, 20.0, 5.0]),
    ];
    let n_normal = 3000usize;
    let n_anomalies = 30usize;

    let mut rng = ProclusRng::new(99);
    let mut uniform = |lo: f32, hi: f32| lo + rng.below(10_000) as f32 / 10_000.0 * (hi - lo);
    let mut rows = Vec::new();
    let mut is_anomaly = Vec::new();
    for i in 0..n_normal {
        let (_, dims, means) = regimes[i % 3];
        let mut row = vec![0.0f32; 8];
        for (j, v) in row.iter_mut().enumerate() {
            *v = match dims.iter().position(|&dj| dj == j) {
                Some(pos) => (means[pos] + uniform(-6.0, 6.0)).clamp(0.0, 100.0),
                None => uniform(0.0, 100.0),
            };
        }
        rows.push(row);
        is_anomaly.push(false);
    }
    // Anomalies: sensor glitches — several metrics pegged far beyond the
    // 0..100 operating envelope (stuck counters, overflow readings).
    for i in 0..n_anomalies {
        let mut row: Vec<f32> = (0..8).map(|_| uniform(0.0, 100.0)).collect();
        for g in 0..4 {
            let j = (i + g * 2) % 8;
            row[j] = 400.0 + uniform(0.0, 100.0);
        }
        rows.push(row);
        is_anomaly.push(true);
    }

    let mut data = DataMatrix::from_rows(&rows).expect("valid rows");
    data.minmax_normalize();

    let params = Params::new(3, 3).with_seed(17);
    let output = run(&data, &Config::new(params)).expect("valid configuration");
    let result = output.clustering();

    let mut true_pos = 0usize;
    let mut false_pos = 0usize;
    for (p, &anom) in is_anomaly.iter().enumerate() {
        let flagged = result.labels[p] == OUTLIER;
        match (anom, flagged) {
            (true, true) => true_pos += 1,
            (false, true) => false_pos += 1,
            _ => {}
        }
    }
    let recall = true_pos as f64 / n_anomalies as f64;
    let flagged_total = result.num_outliers();
    let precision = if flagged_total > 0 {
        true_pos as f64 / flagged_total as f64
    } else {
        0.0
    };

    println!(
        "telemetry: {} normal points in 3 regimes + {n_anomalies} planted anomalies",
        n_normal
    );
    println!("discovered regimes and their defining metrics:");
    for (i, s) in result.subspaces.iter().enumerate() {
        let names: Vec<&str> = s.iter().map(|&j| METRICS[j]).collect();
        println!(
            "  regime {i}: {:>5} points, defined by {names:?}",
            result.cluster_sizes()[i]
        );
    }
    println!();
    println!("outliers flagged: {flagged_total} ({false_pos} false positives)");
    println!("anomaly recall   : {recall:.2}");
    println!("anomaly precision: {precision:.2}");
    assert!(
        recall >= 0.5,
        "detector should catch most planted anomalies"
    );
}
