//! End-to-end equivalence: for equal seeds, every GPU variant must return
//! the same clustering as its CPU counterpart (the paper's correctness
//! claim, §5.1: "GPU-PROCLUS and all the algorithmic strategies produce the
//! same clustering as PROCLUS").

#![allow(deprecated)] // exercises the legacy GPU entry points deliberately

use datagen::synthetic::{generate, SyntheticConfig};
use gpu_sim::{Device, DeviceConfig};
use proclus::{run, Algo, Clustering, Config, DataMatrix, Params};
use proclus_gpu::{gpu_fast_proclus, gpu_fast_star_proclus, gpu_proclus};

fn cpu(data: &DataMatrix, params: &Params, algo: Algo) -> proclus::Result<Clustering> {
    let config = Config::new(params.clone()).with_algo(algo);
    run(data, &config).map(|o| o.clusterings.into_iter().next().expect("one clustering"))
}

fn proclus(data: &DataMatrix, params: &Params) -> proclus::Result<Clustering> {
    cpu(data, params, Algo::Baseline)
}

fn fast_proclus(data: &DataMatrix, params: &Params) -> proclus::Result<Clustering> {
    cpu(data, params, Algo::Fast)
}

fn fast_star_proclus(data: &DataMatrix, params: &Params) -> proclus::Result<Clustering> {
    cpu(data, params, Algo::FastStar)
}

fn dataset() -> DataMatrix {
    let cfg = SyntheticConfig {
        n: 1200,
        d: 8,
        num_clusters: 4,
        subspace_dims: 3,
        std_dev: 3.0,
        value_range: (0.0, 100.0),
        noise_fraction: 0.0,
        seed: 99,
    };
    let mut g = generate(&cfg);
    g.data.minmax_normalize();
    g.data
}

fn params(seed: u64) -> Params {
    Params::new(4, 3).with_a(30).with_b(5).with_seed(seed)
}

fn device() -> Device {
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
    dev.set_deterministic(true);
    dev
}

fn assert_same(cpu: &Clustering, gpu: &Clustering, what: &str) {
    assert_eq!(cpu.medoids, gpu.medoids, "{what}: medoids differ");
    assert_eq!(cpu.subspaces, gpu.subspaces, "{what}: subspaces differ");
    assert_eq!(cpu.labels, gpu.labels, "{what}: labels differ");
    assert_eq!(
        cpu.iterations, gpu.iterations,
        "{what}: iteration counts differ"
    );
    assert!(
        (cpu.cost - gpu.cost).abs() < 1e-9,
        "{what}: cost {} vs {}",
        cpu.cost,
        gpu.cost
    );
}

#[test]
fn gpu_proclus_equals_cpu_proclus() {
    let data = dataset();
    for seed in [1u64, 7] {
        let cpu = proclus(&data, &params(seed)).unwrap();
        let gpu = gpu_proclus(&mut device(), &data, &params(seed)).unwrap();
        assert_same(&cpu, &gpu, &format!("plain seed {seed}"));
    }
}

#[test]
fn gpu_fast_equals_cpu_fast() {
    let data = dataset();
    let cpu = fast_proclus(&data, &params(3)).unwrap();
    let gpu = gpu_fast_proclus(&mut device(), &data, &params(3)).unwrap();
    assert_same(&cpu, &gpu, "fast");
}

#[test]
fn gpu_fast_star_equals_cpu_fast_star() {
    let data = dataset();
    let cpu = fast_star_proclus(&data, &params(5)).unwrap();
    let gpu = gpu_fast_star_proclus(&mut device(), &data, &params(5)).unwrap();
    assert_same(&cpu, &gpu, "fast_star");
}

#[test]
fn all_six_variants_agree_for_one_seed() {
    let data = dataset();
    let p = params(11);
    let reference = proclus(&data, &p).unwrap();
    let all = [
        fast_proclus(&data, &p).unwrap(),
        fast_star_proclus(&data, &p).unwrap(),
        gpu_proclus(&mut device(), &data, &p).unwrap(),
        gpu_fast_proclus(&mut device(), &data, &p).unwrap(),
        gpu_fast_star_proclus(&mut device(), &data, &p).unwrap(),
    ];
    for (i, c) in all.iter().enumerate() {
        assert_same(&reference, c, &format!("variant {i}"));
    }
}

#[test]
fn gpu_run_reports_device_activity() {
    let data = dataset();
    let mut dev = device();
    let _ = gpu_fast_proclus(&mut dev, &data, &params(2)).unwrap();
    let rep = dev.report();
    assert!(rep.launches > 10, "expected many kernel launches");
    assert!(rep.elapsed_us > 0.0);
    assert_eq!(rep.mem_used, 0, "run must free all device memory");
    assert!(rep.kernels.contains_key("assign.points"));
    assert!(rep.kernels.contains_key("evaluate.cost"));
}
