//! Three-way backend equivalence: for equal seeds the CPU, single-GPU and
//! sharded multi-device backends must return the same clustering — the
//! paper's §5.1 correctness claim extended to the data-parallel ensemble.
//!
//! Medoids, subspaces, labels and iteration counts are asserted exactly;
//! the cost is compared within `1e-9` because sharding changes the f64
//! summation order of the `X`/`µ`/cost reductions (partial sums per shard,
//! reduced on the host) without changing any decision the driver takes.

use std::num::NonZeroUsize;

use datagen::synthetic::{generate, SyntheticConfig};
use gpu_sim::{Device, DeviceConfig};
use proclus::multi_param::{ReuseLevel, Setting};
use proclus::par::Executor;
use proclus::{Algo, Backend, Clustering, Config, DataMatrix, Params};
use proclus_telemetry::NullRecorder;
use proptest::prelude::*;

fn dataset() -> DataMatrix {
    let cfg = SyntheticConfig {
        n: 900,
        d: 8,
        num_clusters: 4,
        subspace_dims: 3,
        std_dev: 3.0,
        value_range: (0.0, 100.0),
        noise_fraction: 0.0,
        seed: 42,
    };
    let mut g = generate(&cfg);
    g.data.minmax_normalize();
    g.data
}

fn params(seed: u64) -> Params {
    Params::new(4, 3).with_a(30).with_b(5).with_seed(seed)
}

fn device() -> Device {
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
    dev.set_deterministic(true);
    dev
}

fn with_devices(p: &Params, d: usize) -> Params {
    p.clone()
        .with_devices(NonZeroUsize::new(d).expect("nonzero device count"))
}

fn run_backend(
    data: &DataMatrix,
    params: &Params,
    algo: Algo,
    backend: Backend,
) -> proclus::Result<Clustering> {
    let config = Config::new(params.clone())
        .with_algo(algo)
        .with_backend(backend);
    let out = match backend {
        Backend::Cpu => proclus::run(data, &config)?,
        Backend::Gpu | Backend::Sharded => proclus_gpu::run_on(&mut device(), data, &config)?,
    };
    Ok(out
        .clusterings
        .into_iter()
        .next()
        .expect("one clustering per solo run"))
}

fn assert_same(reference: &Clustering, got: &Clustering, what: &str) {
    assert_eq!(reference.medoids, got.medoids, "{what}: medoids differ");
    assert_eq!(
        reference.subspaces, got.subspaces,
        "{what}: subspaces differ"
    );
    assert_eq!(reference.labels, got.labels, "{what}: labels differ");
    assert_eq!(
        reference.iterations, got.iterations,
        "{what}: iteration counts differ"
    );
    assert!(
        (reference.cost - got.cost).abs() < 1e-9,
        "{what}: cost {} vs {}",
        reference.cost,
        got.cost
    );
}

#[test]
fn sharded_solo_runs_match_cpu_and_gpu_for_every_algo() {
    let data = dataset();
    for algo in [Algo::Baseline, Algo::Fast, Algo::FastStar] {
        let p = params(7);
        let cpu = run_backend(&data, &p, algo, Backend::Cpu).unwrap();
        let gpu = run_backend(&data, &p, algo, Backend::Gpu).unwrap();
        assert_same(&cpu, &gpu, &format!("{algo:?} gpu"));
        for d in [1usize, 2, 4] {
            let sharded = run_backend(&data, &with_devices(&p, d), algo, Backend::Sharded).unwrap();
            assert_same(&cpu, &sharded, &format!("{algo:?} sharded D={d}"));
        }
    }
}

#[test]
fn sharded_grids_match_cpu_and_gpu_at_every_reuse_level() {
    let data = dataset();
    let base = params(3);
    let settings = vec![Setting::new(4, 3), Setting::new(3, 4), Setting::new(2, 3)];
    for level in [
        ReuseLevel::Independent,
        ReuseLevel::SharedCache,
        ReuseLevel::SharedGreedy,
        ReuseLevel::WarmStart,
    ] {
        let cpu: Vec<Clustering> = proclus::fast_proclus_multi_outcomes(
            &data,
            &base,
            &settings,
            level,
            &Executor::Sequential,
            &NullRecorder,
            &[],
        )
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
        let gpu: Vec<Clustering> = proclus_gpu::gpu_fast_proclus_multi_outcomes(
            &mut device(),
            &data,
            &base,
            &settings,
            level,
            &NullRecorder,
            &[],
        )
        .unwrap()
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
        for (i, (c, g)) in cpu.iter().zip(&gpu).enumerate() {
            assert_same(c, g, &format!("{level:?} setting {i} gpu"));
        }
        for d in [1usize, 2, 4] {
            let sharded_base = with_devices(&base, d);
            let sharded: Vec<Clustering> = proclus_gpu::sharded_fast_proclus_multi_outcomes(
                &mut device(),
                &data,
                &sharded_base,
                &settings,
                level,
                &NullRecorder,
                &[],
            )
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
            for (i, (c, s)) in cpu.iter().zip(&sharded).enumerate() {
                assert_same(c, s, &format!("{level:?} setting {i} sharded D={d}"));
            }
        }
    }
}

#[test]
fn sharded_baseline_grid_matches_the_gpu_baseline_grid() {
    let data = dataset();
    let base = params(5);
    let settings = vec![Setting::new(3, 3), Setting::new(2, 4)];
    let gpu: Vec<Clustering> = proclus_gpu::gpu_proclus_multi_outcomes(
        &mut device(),
        &data,
        &base,
        &settings,
        &NullRecorder,
        &[],
    )
    .unwrap()
    .into_iter()
    .map(|r| r.unwrap())
    .collect();
    for d in [1usize, 2, 4] {
        let sharded: Vec<Clustering> = proclus_gpu::sharded_proclus_multi_outcomes(
            &mut device(),
            &data,
            &with_devices(&base, d),
            &settings,
            &NullRecorder,
            &[],
        )
        .unwrap()
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
        for (i, (g, s)) in gpu.iter().zip(&sharded).enumerate() {
            assert_same(g, s, &format!("baseline setting {i} sharded D={d}"));
        }
    }
}

/// Degenerate device counts: more devices than points must degrade to the
/// populated shards only (empty shards are dropped) and still match.
#[test]
fn more_devices_than_points_still_matches_the_cpu() {
    let cfg = SyntheticConfig {
        n: 40,
        d: 5,
        num_clusters: 2,
        subspace_dims: 3,
        std_dev: 2.0,
        value_range: (0.0, 50.0),
        noise_fraction: 0.0,
        seed: 9,
    };
    let mut g = generate(&cfg);
    g.data.minmax_normalize();
    let data = g.data;
    let p = Params::new(2, 3).with_a(10).with_b(4).with_seed(13);
    let cpu = run_backend(&data, &p, Algo::Fast, Backend::Cpu).unwrap();
    let sharded = run_backend(
        &data,
        &with_devices(&p, 64), // 64 devices, 40 points
        Algo::Fast,
        Backend::Sharded,
    )
    .unwrap();
    assert_same(&cpu, &sharded, "sharded D=64 > n=40");
}

fn small_matrix() -> impl Strategy<Value = DataMatrix> {
    (30usize..80, 3usize..6).prop_flat_map(|(n, d)| {
        proptest::collection::vec(-50.0f32..50.0, n * d)
            .prop_map(move |v| DataMatrix::from_flat(v, n, d).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pinned three-way equality on arbitrary data: whatever the input,
    /// CPU, single-GPU and the sharded ensemble walk the same medoid path
    /// and emit the same clustering.
    #[test]
    fn cpu_gpu_and_sharded_agree_on_arbitrary_data(
        data in small_matrix(),
        seed in 0u64..1000,
        devices in 1usize..5,
    ) {
        let p = Params::new(2, 2).with_a(8).with_b(3).with_seed(seed);
        let cpu = run_backend(&data, &p, Algo::Fast, Backend::Cpu).unwrap();
        let gpu = run_backend(&data, &p, Algo::Fast, Backend::Gpu).unwrap();
        let sharded = run_backend(
            &data,
            &with_devices(&p, devices),
            Algo::Fast,
            Backend::Sharded,
        )
        .unwrap();
        assert_same(&cpu, &gpu, "property gpu");
        assert_same(&cpu, &sharded, &format!("property sharded D={devices}"));
    }
}
