//! Cross-executor bitwise equivalence above the sequential crossover.
//!
//! The work-stealing pool must be a pure scheduling change: for any dataset
//! and any thread count, `run(&data, &Config)` returns the same bits as the
//! single-threaded run, and the persistent pool returns the same bits as the
//! legacy static splitter it replaced. The existing `equivalence.rs` suite
//! pins this below the crossover (where every executor degenerates to one
//! grain); this suite uses n > 2048 so the grain decomposition, the deque
//! scheduling, and the chunk-ordered reduction all actually engage.
//!
//! Equality is checked on every field of [`Clustering`], with the f64
//! objective compared via `to_bits` — "close" is not accepted, only
//! identical.

use datagen::synthetic::{generate, SyntheticConfig};
use proclus::par::Executor;
use proclus::{run, run_single_on, Algo, Clustering, Config, DataMatrix, Params};
use proptest::prelude::*;

fn dataset(n: usize, d: usize, clusters: usize, seed: u64) -> DataMatrix {
    let cfg = SyntheticConfig {
        n,
        d,
        num_clusters: clusters,
        subspace_dims: (d / 2).max(2),
        std_dev: 4.0,
        value_range: (0.0, 100.0),
        noise_fraction: 0.01,
        seed,
    };
    let mut g = generate(&cfg);
    g.data.minmax_normalize();
    g.data
}

fn cpu(data: &DataMatrix, params: &Params, algo: Algo, threads: usize) -> Clustering {
    let config = Config::new(params.clone())
        .with_algo(algo)
        .with_threads(threads);
    run(data, &config)
        .expect("run succeeds")
        .clusterings
        .into_iter()
        .next()
        .expect("one clustering")
}

fn on_executor(data: &DataMatrix, params: &Params, algo: Algo, exec: &Executor) -> Clustering {
    let config = Config::new(params.clone()).with_algo(algo);
    run_single_on(data, &config, exec).expect("run succeeds")
}

fn assert_bitwise_same(a: &Clustering, b: &Clustering, what: &str) {
    assert_eq!(a.medoids, b.medoids, "{what}: medoids");
    assert_eq!(a.subspaces, b.subspaces, "{what}: subspaces");
    assert_eq!(a.labels, b.labels, "{what}: labels");
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(
        a.cost.to_bits(),
        b.cost.to_bits(),
        "{what}: cost bits ({} vs {})",
        a.cost,
        b.cost
    );
    assert_eq!(
        a.refined_cost.to_bits(),
        b.refined_cost.to_bits(),
        "{what}: refined cost bits ({} vs {})",
        a.refined_cost,
        b.refined_cost
    );
}

const ALGOS: [Algo; 3] = [Algo::Baseline, Algo::Fast, Algo::FastStar];

/// `Config::threads` sweep: 1 (Sequential), 2, 7 (deliberately not a power of
/// two and likely above the physical core count), and 0 (all cores) must all
/// produce the identical clustering on a multi-grain dataset.
#[test]
fn thread_counts_are_bitwise_equivalent_above_crossover() {
    let data = dataset(2304, 8, 4, 11);
    let params = Params::new(4, 3).with_a(20).with_b(4).with_seed(13);
    for algo in ALGOS {
        let base = cpu(&data, &params, algo, 1);
        for threads in [2usize, 7, 0] {
            assert_bitwise_same(
                &base,
                &cpu(&data, &params, algo, threads),
                &format!("{algo:?} threads={threads}"),
            );
        }
    }
}

/// The persistent work-stealing pool against the legacy static splitter it
/// replaced, and against the sequential path, at full-run granularity.
#[test]
fn work_stealing_matches_static_split_above_crossover() {
    let data = dataset(2304, 8, 4, 29);
    let params = Params::new(4, 3).with_a(20).with_b(4).with_seed(5);
    for algo in ALGOS {
        let base = on_executor(&data, &params, algo, &Executor::Sequential);
        for threads in [2usize, 3, 7] {
            assert_bitwise_same(
                &base,
                &on_executor(&data, &params, algo, &Executor::StaticSplit { threads }),
                &format!("{algo:?} static split({threads})"),
            );
            assert_bitwise_same(
                &base,
                &on_executor(&data, &params, algo, &Executor::Parallel { threads }),
                &format!("{algo:?} work stealing({threads})"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized pinning: for generated datasets above the crossover and a
    /// random algorithm/seed, every executor family member agrees bit for
    /// bit with the sequential run.
    #[test]
    fn any_executor_matches_sequential(
        n in 2100usize..2560,
        data_seed in 0u64..1000,
        algo_seed in 0u64..1000,
        algo_idx in 0usize..3,
    ) {
        let data = dataset(n, 6, 3, data_seed);
        let params = Params::new(3, 3).with_a(15).with_b(3).with_seed(algo_seed);
        let algo = ALGOS[algo_idx];
        let base = on_executor(&data, &params, algo, &Executor::Sequential);
        for exec in [
            Executor::Parallel { threads: 2 },
            Executor::Parallel { threads: 7 },
            Executor::all_cores(),
            Executor::StaticSplit { threads: 3 },
        ] {
            let got = on_executor(&data, &params, algo, &exec);
            prop_assert_eq!(&base.medoids, &got.medoids, "{:?} {:?}: medoids", algo, exec);
            prop_assert_eq!(&base.subspaces, &got.subspaces, "{:?} {:?}: subspaces", algo, exec);
            prop_assert_eq!(&base.labels, &got.labels, "{:?} {:?}: labels", algo, exec);
            prop_assert_eq!(
                base.cost.to_bits(),
                got.cost.to_bits(),
                "{:?} {:?}: cost bits",
                algo,
                exec
            );
        }
    }
}
