//! The streaming exactness contract: re-clustering after a batch of
//! deltas produces the **same clustering a from-scratch run would** —
//! identical labels, medoid pids, subspaces, and (to float noise) costs —
//! on every backend. The caches only change how many distances are
//! recomputed, never any decision.

use gpu_sim::DeviceConfig;
use proclus::par::Executor;
use proclus::{CancelToken, Params};
use proclus_stream::{ReclusterMode, StreamBackendSpec, StreamState, StreamingClusterer};
use proclus_telemetry::NullRecorder;
use proptest::prelude::*;

/// Deterministic synthetic rows: a few axis-aligned blobs plus noise, all
/// from a splitmix-style hash so the test needs no RNG plumbing.
fn rows(n: usize, d: usize, clusters: usize) -> Vec<Vec<f32>> {
    fn h(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    (0..n)
        .map(|i| {
            let c = i % clusters;
            (0..d)
                .map(|j| {
                    let noise = (h((i as u64) << 20 | j as u64) % 1000) as f32 / 1000.0;
                    if j % clusters == c {
                        (c * 10) as f32 + noise
                    } else {
                        50.0 + noise * 8.0
                    }
                })
                .collect()
        })
        .collect()
}

fn params(k: usize, seed: u64) -> Params {
    Params::builder(k, 3)
        .a(10)
        .b(3)
        .seed(seed)
        .max_total_iterations(12)
        .build()
        .expect("valid test params")
}

fn spec(name: &str, devices: usize) -> StreamBackendSpec {
    match name {
        "cpu" => StreamBackendSpec::Cpu {
            exec: Executor::Parallel { threads: 2 },
        },
        "gpu" => StreamBackendSpec::gpu(DeviceConfig::gtx_1660_ti()),
        "sharded" => StreamBackendSpec::Sharded {
            config: DeviceConfig::gtx_1660_ti(),
            devices,
        },
        other => panic!("unknown backend {other}"),
    }
}

/// From-scratch reference: one clusterer fed the final point set directly.
/// Pids match the incremental run because both start from an empty dataset
/// and append in the same order (retired pids stay consumed).
fn state_of(clusterer: &StreamingClusterer) -> StreamState {
    clusterer.state().expect("converged state").clone()
}

fn assert_same(incremental: &StreamState, fresh: &StreamState, what: &str) {
    assert_eq!(
        incremental.medoid_pids, fresh.medoid_pids,
        "{what}: medoid pids diverged"
    );
    assert_eq!(
        incremental.subspaces, fresh.subspaces,
        "{what}: subspaces diverged"
    );
    assert_eq!(incremental.labels, fresh.labels, "{what}: labels diverged");
    assert!(
        (incremental.cost - fresh.cost).abs() <= 1e-9 * fresh.cost.abs().max(1.0),
        "{what}: cost diverged ({} vs {})",
        incremental.cost,
        fresh.cost
    );
    assert!(
        (incremental.refined_cost - fresh.refined_cost).abs()
            <= 1e-9 * fresh.refined_cost.abs().max(1.0),
        "{what}: refined cost diverged ({} vs {})",
        incremental.refined_cost,
        fresh.refined_cost
    );
}

/// Replays `script` (append batches / retires / window) on one clusterer
/// with a recluster after every step, then checks the final state against
/// a from-scratch clusterer that saw only the surviving points' history.
fn check_script(backend: &str, devices: usize, base: &[Vec<f32>], script: &[Step]) {
    let rec = NullRecorder;
    let cancel = CancelToken::default();
    let k = 4;

    let mut live =
        StreamingClusterer::from_rows(base, params(k, 7), spec(backend, devices)).expect("seed");
    live.recluster(&rec, &cancel).expect("initial recluster");

    for step in script {
        match step {
            Step::Append(batch) => {
                for row in batch {
                    live.append(row).expect("append");
                }
            }
            Step::Retire(pids) => {
                for &pid in pids {
                    live.retire(pid).expect("retire");
                }
            }
            Step::Window(cap) => {
                live.set_window(Some(*cap)).expect("window");
            }
        }
        let report = live.recluster(&rec, &cancel).expect("recluster");
        assert!(report.n > 0);
    }

    // Reference: rebuild the identical pid→point mapping from scratch by
    // replaying the same mutations on a cache-less, state-less clusterer.
    let mut fresh =
        StreamingClusterer::from_rows(base, params(k, 7), spec(backend, devices)).expect("seed");
    for step in script {
        match step {
            Step::Append(batch) => {
                for row in batch {
                    fresh.append(row).expect("append");
                }
            }
            Step::Retire(pids) => {
                for &pid in pids {
                    fresh.retire(pid).expect("retire");
                }
            }
            Step::Window(cap) => {
                fresh.set_window(Some(*cap)).expect("window");
            }
        }
    }
    let report = fresh.recluster(&rec, &cancel).expect("fresh recluster");
    assert_eq!(
        report.mode,
        ReclusterMode::Full,
        "first epoch of the reference run must be cold"
    );

    assert_same(
        &state_of(&live),
        &state_of(&fresh),
        &format!("{backend}/D{devices} {script:?}"),
    );
}

#[derive(Debug)]
enum Step {
    Append(Vec<Vec<f32>>),
    Retire(Vec<u64>),
    Window(usize),
}

fn append_script(n: usize, d: usize) -> (Vec<Vec<f32>>, Vec<Step>) {
    let all = rows(n + 8, d, 4);
    let base = all[..n].to_vec();
    let batch = all[n..].to_vec();
    (base, vec![Step::Append(batch)])
}

fn mixed_script(n: usize, d: usize) -> (Vec<Vec<f32>>, Vec<Step>) {
    let all = rows(n + 12, d, 4);
    let base = all[..n].to_vec();
    (
        base,
        vec![
            Step::Append(all[n..n + 6].to_vec()),
            Step::Retire(vec![3, 17, (n + 2) as u64]),
            Step::Append(all[n + 6..].to_vec()),
            Step::Window(n + 6),
        ],
    )
}

#[test]
fn append_then_recluster_equals_from_scratch_cpu() {
    let (base, script) = append_script(300, 8);
    check_script("cpu", 1, &base, &script);
}

#[test]
fn append_then_recluster_equals_from_scratch_gpu() {
    let (base, script) = append_script(300, 8);
    check_script("gpu", 1, &base, &script);
}

#[test]
fn append_then_recluster_equals_from_scratch_sharded() {
    for devices in [1, 2, 4] {
        let (base, script) = append_script(300, 8);
        check_script("sharded", devices, &base, &script);
    }
}

#[test]
fn mixed_deltas_equal_from_scratch_cpu() {
    let (base, script) = mixed_script(280, 6);
    check_script("cpu", 1, &base, &script);
}

#[test]
fn mixed_deltas_equal_from_scratch_gpu() {
    let (base, script) = mixed_script(280, 6);
    check_script("gpu", 1, &base, &script);
}

#[test]
fn mixed_deltas_equal_from_scratch_sharded() {
    for devices in [1, 2, 4] {
        let (base, script) = mixed_script(280, 6);
        check_script("sharded", devices, &base, &script);
    }
}

#[test]
fn incremental_epoch_touches_fewer_distances() {
    let rec = NullRecorder;
    let cancel = CancelToken::default();
    let base = rows(1200, 8, 4);
    let mut c = StreamingClusterer::from_rows(&base, params(4, 7), spec("cpu", 1)).expect("seed");
    let cold = c.recluster(&rec, &cancel).expect("cold");
    assert_eq!(cold.mode, ReclusterMode::Full);
    for row in rows(12, 8, 4) {
        c.append(&row).expect("append");
    }
    let warm = c.recluster(&rec, &cancel).expect("warm");
    assert_eq!(warm.mode, ReclusterMode::Incremental);
    assert!(
        warm.dist_cache_hits > 0,
        "no row cache hits on a warm epoch"
    );
    assert!(
        warm.distances * 4 < cold.distances,
        "1% append cost {} of {} cold distances",
        warm.distances,
        cold.distances
    );
}

#[test]
fn staleness_escalates_to_a_cold_epoch() {
    let rec = NullRecorder;
    let cancel = CancelToken::default();
    let base = rows(200, 6, 4);
    let mut c = StreamingClusterer::from_rows(&base, params(4, 7), spec("cpu", 1)).expect("seed");
    c.recluster(&rec, &cancel).expect("cold");
    for row in rows(250, 6, 4) {
        c.append(&row).expect("append");
    }
    let report = c.recluster(&rec, &cancel).expect("escalated");
    assert_eq!(
        report.mode,
        ReclusterMode::Full,
        "churn over the threshold must escalate"
    );
}

#[test]
fn warm_recluster_freezes_medoids_and_flags_retired_ones() {
    let rec = NullRecorder;
    let cancel = CancelToken::default();
    let base = rows(240, 6, 4);
    let mut c = StreamingClusterer::from_rows(&base, params(4, 7), spec("cpu", 1)).expect("seed");
    c.recluster(&rec, &cancel).expect("cold");
    let medoids = c.state().expect("state").medoid_pids.clone();
    for row in rows(4, 6, 4) {
        c.append(&row).expect("append");
    }
    let report = c.recluster_warm(&rec, &cancel).expect("warm");
    assert_eq!(report.mode, ReclusterMode::Warm);
    assert_eq!(c.state().expect("state").medoid_pids, medoids);
    c.retire(medoids[0]).expect("retire a medoid");
    assert!(
        c.recluster_warm(&rec, &cancel).is_err(),
        "warm recluster over a retired medoid must escalate"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random small append batches on random backends stay exact.
    #[test]
    fn random_appends_stay_exact(
        n in 120usize..220,
        batch in 1usize..10,
        backend in 0usize..3,
        seed in 0u64..1000,
    ) {
        let d = 6;
        let all = rows(n + batch, d, 4);
        let base = all[..n].to_vec();
        let name = ["cpu", "gpu", "sharded"][backend];
        let rec = NullRecorder;
        let cancel = CancelToken::default();

        let mut live = StreamingClusterer::from_rows(&base, params(4, seed), spec(name, 2))
            .expect("seed");
        live.recluster(&rec, &cancel).expect("cold");
        for row in &all[n..] {
            live.append(row).expect("append");
        }
        live.recluster(&rec, &cancel).expect("incremental");

        let mut fresh = StreamingClusterer::from_rows(&all, params(4, seed), spec(name, 2))
            .expect("seed");
        fresh.recluster(&rec, &cancel).expect("fresh");

        assert_same(&state_of(&live), &state_of(&fresh), &format!("{name} n={n}+{batch}"));
    }
}
