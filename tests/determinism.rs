//! Golden regression tests: exact expected outputs for fixed seeds.
//!
//! Any behavioral change to the search path — RNG draw order, tie
//! breaking, the σ formula, dimension selection, bad-medoid handling —
//! shows up here as a diff against recorded values, before it can silently
//! change every benchmark. If a change is *intentional*, re-record the
//! constants (instructions below).

use datagen::synthetic::{generate, SyntheticConfig};
use proclus::{run, Algo, Clustering, Config, DataMatrix, Params};

fn proclus(data: &DataMatrix, params: &Params) -> proclus::Result<Clustering> {
    let config = Config::new(params.clone()).with_algo(Algo::Baseline);
    run(data, &config).map(|o| o.clusterings.into_iter().next().expect("one clustering"))
}

fn fast_proclus(data: &DataMatrix, params: &Params) -> proclus::Result<Clustering> {
    let config = Config::new(params.clone()).with_algo(Algo::Fast);
    run(data, &config).map(|o| o.clusterings.into_iter().next().expect("one clustering"))
}

fn golden_data() -> DataMatrix {
    let mut g = generate(&SyntheticConfig {
        n: 500,
        d: 8,
        num_clusters: 4,
        subspace_dims: 3,
        std_dev: 3.0,
        value_range: (0.0, 100.0),
        noise_fraction: 0.02,
        seed: 0xBEEF,
    });
    g.data.minmax_normalize();
    g.data
}

fn golden_params() -> Params {
    Params::new(4, 3).with_a(25).with_b(5).with_seed(12345)
}

/// To re-record after an intentional behavior change:
/// `cargo test -p gpu-fast-proclus --test determinism -- --nocapture print_golden --ignored`
#[test]
#[ignore]
fn print_golden() {
    let c = proclus(&golden_data(), &golden_params()).unwrap();
    println!("medoids     : {:?}", c.medoids);
    println!("subspaces   : {:?}", c.subspaces);
    println!("iterations  : {}", c.iterations);
    println!("cost        : {:.15}", c.cost);
    println!("refined     : {:.15}", c.refined_cost);
    println!("outliers    : {}", c.num_outliers());
    println!("sizes       : {:?}", c.cluster_sizes());
}

#[test]
fn golden_run_matches_recorded_output() {
    let c = proclus(&golden_data(), &golden_params()).unwrap();
    assert_eq!(c.medoids, vec![292, 0, 237, 496]);
    assert_eq!(
        c.subspaces,
        vec![vec![4, 5, 6], vec![3, 6, 7], vec![2, 3, 5], vec![1, 2, 3]]
    );
    assert_eq!(c.iterations, 10);
    assert_eq!(c.num_outliers(), 2);
    assert_eq!(c.cluster_sizes(), vec![128, 120, 125, 125]);
    assert!(
        (c.cost - 0.039_286_633_979_767).abs() < 1e-12,
        "cost drifted: {:.15}",
        c.cost
    );
    assert!(
        (c.refined_cost - 0.027_539_284_469_215).abs() < 1e-12,
        "refined cost drifted: {:.15}",
        c.refined_cost
    );
}

#[test]
fn golden_fast_is_bit_identical_to_baseline() {
    let a = proclus(&golden_data(), &golden_params()).unwrap();
    let b = fast_proclus(&golden_data(), &golden_params()).unwrap();
    assert_eq!(a.medoids, b.medoids);
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.subspaces, b.subspaces);
}

#[test]
fn generator_golden_checksum() {
    // Guards the RNG/generator pipeline itself: a change to ProclusRng's
    // draw order would silently invalidate every recorded number.
    let data = golden_data();
    let checksum: f64 = data.flat().iter().map(|&v| v as f64).sum();
    assert!(
        (checksum - 2_129.636_689_961).abs() < 1e-6,
        "generator output drifted: {checksum:.9}"
    );
}
