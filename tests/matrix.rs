//! The equivalence matrix: a randomized sweep of datasets × parameters,
//! running all six algorithm variants on each configuration and asserting
//! they agree. This is the broad-net companion to the targeted tests in
//! `equivalence.rs` / `gpu_vs_cpu.rs` — its job is to catch divergence in
//! corners nobody thought to write a targeted test for.

#![allow(deprecated)] // exercises the legacy GPU entry points deliberately

use datagen::synthetic::{generate, SyntheticConfig};
use gpu_sim::{Device, DeviceConfig};
use proclus::{run, Algo, Clustering, DataMatrix, Params};
use proclus_gpu::{gpu_fast_proclus, gpu_fast_star_proclus, gpu_proclus};

fn cpu(data: &DataMatrix, params: &Params, algo: Algo) -> proclus::Result<Clustering> {
    let config = proclus::Config::new(params.clone()).with_algo(algo);
    run(data, &config).map(|o| o.clusterings.into_iter().next().expect("one clustering"))
}

fn proclus(data: &DataMatrix, params: &Params) -> proclus::Result<Clustering> {
    cpu(data, params, Algo::Baseline)
}

fn fast_proclus(data: &DataMatrix, params: &Params) -> proclus::Result<Clustering> {
    cpu(data, params, Algo::Fast)
}

fn fast_star_proclus(data: &DataMatrix, params: &Params) -> proclus::Result<Clustering> {
    cpu(data, params, Algo::FastStar)
}

struct Config {
    data: DataMatrix,
    params: Params,
    tag: String,
}

/// Deterministic pseudo-random configuration grid.
fn configurations() -> Vec<Config> {
    let mut out = Vec::new();
    for (i, &(n, d, clusters, sub, noise)) in [
        (300usize, 4usize, 2usize, 2usize, 0.0f64),
        (450, 6, 3, 2, 0.05),
        (600, 8, 4, 4, 0.0),
        (800, 5, 3, 3, 0.10),
        (1000, 12, 5, 5, 0.02),
        (350, 7, 2, 6, 0.0),
    ]
    .iter()
    .enumerate()
    {
        let mut g = generate(&SyntheticConfig {
            n,
            d,
            num_clusters: clusters,
            subspace_dims: sub,
            std_dev: 2.0 + i as f32,
            value_range: (0.0, 100.0),
            noise_fraction: noise,
            seed: 1000 + i as u64,
        });
        g.data.minmax_normalize();

        let k = clusters.max(2);
        let l = 2 + (i % 3).min(d - 2);
        let params = Params::new(k, l)
            .with_a((10 + 5 * i).min(n / k))
            .with_b(3 + i % 3)
            .with_min_dev(0.4 + 0.1 * (i % 4) as f64)
            .with_itr_pat(2 + i % 5)
            .with_seed(777 + i as u64);
        out.push(Config {
            data: g.data,
            params,
            tag: format!("cfg{i} (n={n}, d={d}, k={k}, l={l})"),
        });
    }
    out
}

fn assert_same(a: &Clustering, b: &Clustering, what: &str) {
    assert_eq!(a.medoids, b.medoids, "{what}: medoids");
    assert_eq!(a.labels, b.labels, "{what}: labels");
    assert_eq!(a.subspaces, b.subspaces, "{what}: subspaces");
    assert!((a.cost - b.cost).abs() < 1e-9, "{what}: cost");
}

#[test]
fn all_variants_agree_across_the_configuration_matrix() {
    for cfg in configurations() {
        if cfg.params.validate(&cfg.data).is_err() {
            panic!("{}: configuration should be valid", cfg.tag);
        }
        let reference = proclus(&cfg.data, &cfg.params).unwrap();
        reference
            .validate_structure(cfg.data.n(), cfg.data.d(), cfg.params.l)
            .unwrap_or_else(|e| panic!("{}: {e}", cfg.tag));

        assert_same(
            &reference,
            &fast_proclus(&cfg.data, &cfg.params).unwrap(),
            &format!("{} fast", cfg.tag),
        );
        assert_same(
            &reference,
            &fast_star_proclus(&cfg.data, &cfg.params).unwrap(),
            &format!("{} fast*", cfg.tag),
        );

        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.set_deterministic(true);
        assert_same(
            &reference,
            &gpu_proclus(&mut dev, &cfg.data, &cfg.params).unwrap(),
            &format!("{} gpu", cfg.tag),
        );
        assert_same(
            &reference,
            &gpu_fast_proclus(&mut dev, &cfg.data, &cfg.params).unwrap(),
            &format!("{} gpu-fast", cfg.tag),
        );
        assert_same(
            &reference,
            &gpu_fast_star_proclus(&mut dev, &cfg.data, &cfg.params).unwrap(),
            &format!("{} gpu-fast*", cfg.tag),
        );
        assert_eq!(dev.mem_used(), 0, "{}: device memory leaked", cfg.tag);
    }
}

#[test]
fn matrix_holds_on_both_device_presets() {
    let cfg = &configurations()[2];
    let reference = proclus(&cfg.data, &cfg.params).unwrap();
    for device_cfg in [DeviceConfig::gtx_1660_ti(), DeviceConfig::rtx_3090()] {
        let mut dev = Device::new(device_cfg);
        dev.set_deterministic(true);
        let got = gpu_fast_proclus(&mut dev, &cfg.data, &cfg.params).unwrap();
        assert_same(&reference, &got, &dev.config().name.clone());
    }
}
