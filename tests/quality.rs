//! Cluster-recovery quality on planted subspace data. The paper argues all
//! variants return the same clustering and evaluates runtime only; these
//! tests make sure that clustering is actually *good* when the data has
//! clear projected structure — i.e. the implementation earns the "still
//! competitive" claim PROCLUS carries (§1).

#![allow(deprecated)] // exercises the legacy GPU entry points deliberately

use datagen::synthetic::{generate, SyntheticConfig};
use gpu_sim::{Device, DeviceConfig};
use proclus::metrics::{adjusted_rand_index, normalized_mutual_information, purity};
use proclus::metrics_subspace::{ce, clusters_from_labels, rnia, SubspaceCluster};
use proclus::{run, Clustering, Config, DataMatrix, Params, OUTLIER};
use proclus_gpu::gpu_fast_proclus;

fn fast_proclus(data: &DataMatrix, params: &Params) -> proclus::Result<Clustering> {
    run(data, &Config::new(params.clone()))
        .map(|o| o.clusterings.into_iter().next().expect("one clustering"))
}

fn well_separated(seed: u64) -> datagen::GeneratedData {
    let mut g = generate(&SyntheticConfig {
        n: 3000,
        d: 12,
        num_clusters: 5,
        subspace_dims: 4,
        std_dev: 2.0,
        value_range: (0.0, 100.0),
        noise_fraction: 0.0,
        seed,
    });
    g.data.minmax_normalize();
    g
}

#[test]
fn recovers_planted_clusters_with_high_ari() {
    let g = well_separated(1);
    let params = Params::new(5, 4).with_seed(3);
    let c = fast_proclus(&g.data, &params).unwrap();
    let ari = adjusted_rand_index(&g.labels, &c.labels);
    let nmi = normalized_mutual_information(&g.labels, &c.labels);
    assert!(ari > 0.8, "ARI {ari} too low");
    assert!(nmi > 0.8, "NMI {nmi} too low");
    assert!(purity(&g.labels, &c.labels) > 0.9);
}

#[test]
fn recovers_the_planted_subspaces() {
    let g = well_separated(2);
    let params = Params::new(5, 4).with_seed(5);
    let c = fast_proclus(&g.data, &params).unwrap();

    // Match each found cluster to the planted cluster with most overlap,
    // then check subspace agreement.
    let mut total_hits = 0usize;
    let mut total_dims = 0usize;
    for (i, members) in c.clusters().iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let mut votes = [0usize; 5];
        for &p in members {
            if g.labels[p] >= 0 {
                votes[g.labels[p] as usize] += 1;
            }
        }
        let planted = votes.iter().enumerate().max_by_key(|(_, &v)| v).unwrap().0;
        let truth = &g.subspaces[planted];
        total_hits += c.subspaces[i].iter().filter(|j| truth.contains(j)).count();
        total_dims += c.subspaces[i].len();
    }
    let precision = total_hits as f64 / total_dims as f64;
    assert!(
        precision > 0.7,
        "only {precision:.2} of selected dims are planted dims"
    );
}

#[test]
fn gpu_variant_has_identical_quality() {
    let g = well_separated(3);
    let params = Params::new(5, 4).with_seed(9);
    let cpu = fast_proclus(&g.data, &params).unwrap();
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
    dev.set_deterministic(true);
    let gpu = gpu_fast_proclus(&mut dev, &g.data, &params).unwrap();
    assert_eq!(
        adjusted_rand_index(&g.labels, &cpu.labels),
        adjusted_rand_index(&g.labels, &gpu.labels)
    );
}

#[test]
fn noise_points_end_up_as_outliers_more_often_than_members() {
    let mut g = generate(&SyntheticConfig {
        n: 2000,
        d: 10,
        num_clusters: 4,
        subspace_dims: 4,
        std_dev: 1.5,
        value_range: (0.0, 100.0),
        noise_fraction: 0.1,
        seed: 8,
    });
    g.data.minmax_normalize();
    let c = fast_proclus(&g.data, &Params::new(4, 4).with_seed(2)).unwrap();
    let mut noise_outlier = 0usize;
    let mut noise_total = 0usize;
    let mut member_outlier = 0usize;
    let mut member_total = 0usize;
    for (p, &truth) in g.labels.iter().enumerate() {
        if truth == -1 {
            noise_total += 1;
            if c.labels[p] == OUTLIER {
                noise_outlier += 1;
            }
        } else {
            member_total += 1;
            if c.labels[p] == OUTLIER {
                member_outlier += 1;
            }
        }
    }
    let noise_rate = noise_outlier as f64 / noise_total as f64;
    let member_rate = member_outlier as f64 / member_total as f64;
    assert!(
        noise_rate > member_rate,
        "outlier flagging should prefer noise: noise {noise_rate:.3} vs members {member_rate:.3}"
    );
}

#[test]
fn quality_degrades_gracefully_with_overlap() {
    // Increasing σ should not crash anything and ARI should fall, not
    // oscillate wildly. (Smoke check over the generator's σ knob, Fig. 2f.)
    let mut last_ari = 1.1f64;
    let mut decreases = 0;
    for (i, std_dev) in [1.0f32, 6.0, 20.0].into_iter().enumerate() {
        let mut g = generate(&SyntheticConfig {
            n: 1500,
            d: 10,
            num_clusters: 4,
            subspace_dims: 4,
            std_dev,
            value_range: (0.0, 100.0),
            noise_fraction: 0.0,
            seed: 10 + i as u64,
        });
        g.data.minmax_normalize();
        let c = fast_proclus(&g.data, &Params::new(4, 4).with_seed(4)).unwrap();
        let ari = adjusted_rand_index(&g.labels, &c.labels);
        if ari < last_ari {
            decreases += 1;
        }
        last_ari = ari;
    }
    assert!(decreases >= 1, "ARI should drop as clusters overlap");
}

#[test]
fn subspace_aware_metrics_score_high_on_planted_data() {
    // RNIA/CE compare (point, dimension) cells, so they also verify that
    // FindDimensions recovered the right projections — which ARI cannot.
    let g = well_separated(4);
    let c = fast_proclus(&g.data, &Params::new(5, 4).with_seed(6)).unwrap();
    let truth: Vec<SubspaceCluster> = (0..5)
        .map(|i| {
            SubspaceCluster::new(
                g.labels
                    .iter()
                    .enumerate()
                    .filter(|(_, &l)| l == i as i32)
                    .map(|(p, _)| p)
                    .collect(),
                g.subspaces[i].clone(),
            )
        })
        .collect();
    let found = clusters_from_labels(&c.labels, &c.subspaces);
    let rnia_score = rnia(&truth, &found);
    let ce_score = ce(&truth, &found);
    assert!(rnia_score > 0.6, "RNIA {rnia_score}");
    assert!(ce_score > 0.55, "CE {ce_score}");
    assert!(ce_score <= rnia_score + 1e-12, "CE cannot exceed RNIA");
}

#[test]
fn subspace_metrics_punish_a_fullspace_answer() {
    // The same point partition declared in the FULL space must score far
    // lower than the projected answer — the reason projected clustering
    // exists.
    let g = well_separated(5);
    let c = fast_proclus(&g.data, &Params::new(5, 4).with_seed(8)).unwrap();
    let truth: Vec<SubspaceCluster> = (0..5)
        .map(|i| {
            SubspaceCluster::new(
                g.labels
                    .iter()
                    .enumerate()
                    .filter(|(_, &l)| l == i as i32)
                    .map(|(p, _)| p)
                    .collect(),
                g.subspaces[i].clone(),
            )
        })
        .collect();
    let projected = clusters_from_labels(&c.labels, &c.subspaces);
    let fullspace: Vec<SubspaceCluster> =
        clusters_from_labels(&c.labels, &vec![(0..g.data.d()).collect::<Vec<_>>(); 5]);
    assert!(
        rnia(&truth, &projected) > rnia(&truth, &fullspace) + 0.15,
        "projected {} vs fullspace {}",
        rnia(&truth, &projected),
        rnia(&truth, &fullspace)
    );
}
