//! Whole-pipeline integration: datagen → normalize → cluster → metrics →
//! CSV roundtrip, plus the device-facing failure modes a user will hit
//! (OOM, unsupported configurations) and simulator reporting guarantees.

#![allow(deprecated)] // exercises the legacy GPU entry points deliberately

use std::path::PathBuf;

use datagen::io::{load_csv, write_csv};
use datagen::synthetic::{generate, SyntheticConfig};
use gpu_sim::{Device, DeviceConfig};
use proclus::{run, Clustering, Config, DataMatrix, Params};
use proclus_gpu::{gpu_fast_proclus, GpuProclusError};

fn fast_proclus(data: &DataMatrix, params: &Params) -> proclus::Result<Clustering> {
    run(data, &Config::new(params.clone()))
        .map(|o| o.clusterings.into_iter().next().expect("one clustering"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "proclus-pipeline-{name}-{}.csv",
        std::process::id()
    ))
}

#[test]
fn csv_roundtrip_preserves_clustering() {
    let mut g = generate(&SyntheticConfig {
        n: 400,
        d: 6,
        num_clusters: 3,
        subspace_dims: 3,
        std_dev: 3.0,
        value_range: (0.0, 100.0),
        noise_fraction: 0.0,
        seed: 77,
    });
    g.data.minmax_normalize();
    let params = Params::new(3, 3).with_a(20).with_b(4).with_seed(2);
    let before = fast_proclus(&g.data, &params).unwrap();

    let path = tmp("roundtrip");
    write_csv(&path, &g.data, Some(&g.labels)).unwrap();
    let loaded = load_csv(&path, false, Some(g.data.d())).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.data, g.data);
    assert_eq!(loaded.labels.as_deref(), Some(&g.labels[..]));
    let after = fast_proclus(&loaded.data, &params).unwrap();
    assert_eq!(before, after, "clustering must survive the CSV roundtrip");
}

#[test]
fn realworld_standins_cluster_end_to_end() {
    for name in ["glass", "vowel"] {
        let g = datagen::realworld::by_name(name, 3).unwrap();
        // Tiny datasets: shrink the sample so the defaults fit.
        let params = Params::new(4, 3).with_a(10).with_b(4).with_seed(5);
        let c = fast_proclus(&g.data, &params).unwrap();
        c.validate_structure(g.data.n(), g.data.d(), 3)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn gpu_oom_is_a_clean_error_not_a_panic() {
    let g = generate(&SyntheticConfig::new(20_000, 10).with_seed(1));
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti().with_memory_limit(1_000_000));
    let err = gpu_fast_proclus(&mut dev, &g.data, &Params::new(5, 3)).unwrap_err();
    match err {
        GpuProclusError::Device(gpu_sim::GpuError::OutOfMemory { .. }) => {}
        other => panic!("expected OOM, got {other}"),
    }
}

#[test]
fn unsupported_gpu_configs_are_rejected_up_front() {
    let g = generate(
        &SyntheticConfig::new(5_000, 10)
            .with_clusters(10)
            .with_seed(1),
    );
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
    // k > 128 exceeds the AssignPoints block.
    let err = gpu_fast_proclus(&mut dev, &g.data, &Params::new(200, 3).with_a(5).with_b(2));
    assert!(matches!(err, Err(GpuProclusError::Unsupported { .. })));
}

#[test]
fn device_time_is_reset_per_fresh_device_and_accumulates_within() {
    let mut g = generate(&SyntheticConfig::new(2_000, 8).with_seed(9));
    g.data.minmax_normalize();
    let params = Params::new(3, 3).with_a(20).with_b(4).with_seed(1);
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
    gpu_fast_proclus(&mut dev, &g.data, &params).unwrap();
    let t1 = dev.elapsed_us();
    gpu_fast_proclus(&mut dev, &g.data, &params).unwrap();
    let t2 = dev.elapsed_us();
    assert!(t2 > t1, "clock accumulates across runs on one device");
    assert!(
        t2 < 2.5 * t1 && t2 > 1.5 * t1,
        "second identical run should cost about the same: {t1} then {t2}"
    );
}

#[test]
fn bigger_device_is_never_slower_in_the_model() {
    let mut g = generate(&SyntheticConfig::new(32_000, 15).with_seed(4));
    g.data.minmax_normalize();
    let params = Params::new(10, 5).with_seed(6);
    let time_on = |cfg: DeviceConfig| {
        let mut dev = Device::new(cfg);
        gpu_fast_proclus(&mut dev, &g.data, &params).unwrap();
        dev.elapsed_us()
    };
    let small = time_on(DeviceConfig::gtx_1660_ti());
    let big = time_on(DeviceConfig::rtx_3090());
    assert!(
        big <= small,
        "RTX 3090 model must not be slower than GTX 1660 Ti: {big} vs {small}"
    );
}

#[test]
fn quickstart_documented_flow_works() {
    // The README's five-line flow, as a test.
    let gen = generate(
        &SyntheticConfig::new(1_000, 8)
            .with_clusters(3)
            .with_seed(12),
    );
    let mut data = gen.data;
    data.minmax_normalize();
    let clustering = fast_proclus(&data, &Params::new(3, 3).with_seed(1)).unwrap();
    assert_eq!(clustering.k(), 3);
    assert_eq!(clustering.labels.len(), 1_000);
    assert!(clustering.cost.is_finite());
}
