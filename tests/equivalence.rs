//! Seed-for-seed equivalence across the CPU algorithm family — the core of
//! the paper's correctness argument (§5.1: "besides this random behavior,
//! GPU-PROCLUS and all the algorithmic strategies produce the same
//! clustering as PROCLUS"). FAST and FAST* change only *how* `X` is
//! computed, so with the same seed every variant must visit the same
//! medoid sequence and return the same result.

use datagen::synthetic::{generate, SyntheticConfig};
use proclus::{run, Algo, Clustering, Config, DataMatrix, Params};

fn cpu(
    data: &DataMatrix,
    params: &Params,
    algo: Algo,
    threads: usize,
) -> proclus::Result<Clustering> {
    let config = Config::new(params.clone())
        .with_algo(algo)
        .with_threads(threads);
    run(data, &config).map(|o| o.clusterings.into_iter().next().expect("one clustering"))
}

fn proclus(data: &DataMatrix, params: &Params) -> proclus::Result<Clustering> {
    cpu(data, params, Algo::Baseline, 0)
}

fn fast_proclus(data: &DataMatrix, params: &Params) -> proclus::Result<Clustering> {
    cpu(data, params, Algo::Fast, 0)
}

fn fast_star_proclus(data: &DataMatrix, params: &Params) -> proclus::Result<Clustering> {
    cpu(data, params, Algo::FastStar, 0)
}

fn proclus_par(data: &DataMatrix, params: &Params, threads: usize) -> proclus::Result<Clustering> {
    cpu(data, params, Algo::Baseline, threads)
}

fn fast_proclus_par(
    data: &DataMatrix,
    params: &Params,
    threads: usize,
) -> proclus::Result<Clustering> {
    cpu(data, params, Algo::Fast, threads)
}

fn fast_star_proclus_par(
    data: &DataMatrix,
    params: &Params,
    threads: usize,
) -> proclus::Result<Clustering> {
    cpu(data, params, Algo::FastStar, threads)
}

fn dataset(n: usize, d: usize, clusters: usize, seed: u64) -> DataMatrix {
    let cfg = SyntheticConfig {
        n,
        d,
        num_clusters: clusters,
        subspace_dims: (d / 2).max(2),
        std_dev: 4.0,
        value_range: (0.0, 100.0),
        noise_fraction: 0.01,
        seed,
    };
    let mut g = generate(&cfg);
    g.data.minmax_normalize();
    g.data
}

fn assert_same(a: &Clustering, b: &Clustering, what: &str) {
    assert_eq!(a.medoids, b.medoids, "{what}: medoids");
    assert_eq!(a.subspaces, b.subspaces, "{what}: subspaces");
    assert_eq!(a.labels, b.labels, "{what}: labels");
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert!(
        (a.cost - b.cost).abs() < 1e-9,
        "{what}: cost {} vs {}",
        a.cost,
        b.cost
    );
    assert!(
        (a.refined_cost - b.refined_cost).abs() < 1e-9,
        "{what}: refined cost"
    );
}

#[test]
fn fast_and_fast_star_match_baseline_across_seeds() {
    let data = dataset(1500, 10, 5, 42);
    for seed in [0u64, 1, 2, 3, 4] {
        let params = Params::new(5, 3).with_a(25).with_b(5).with_seed(seed);
        let base = proclus(&data, &params).unwrap();
        assert_same(
            &base,
            &fast_proclus(&data, &params).unwrap(),
            &format!("fast s{seed}"),
        );
        assert_same(
            &base,
            &fast_star_proclus(&data, &params).unwrap(),
            &format!("fast* s{seed}"),
        );
    }
}

#[test]
fn parallel_variants_match_sequential() {
    let data = dataset(1200, 8, 4, 7);
    let params = Params::new(4, 3).with_a(25).with_b(5).with_seed(13);
    let base = proclus(&data, &params).unwrap();
    for threads in [2usize, 4, 8] {
        assert_same(
            &base,
            &proclus_par(&data, &params, threads).unwrap(),
            &format!("par({threads})"),
        );
        assert_same(
            &base,
            &fast_proclus_par(&data, &params, threads).unwrap(),
            &format!("fast par({threads})"),
        );
        assert_same(
            &base,
            &fast_star_proclus_par(&data, &params, threads).unwrap(),
            &format!("fast* par({threads})"),
        );
    }
}

#[test]
fn equivalence_holds_across_parameter_corners() {
    let data = dataset(900, 12, 3, 21);
    let corners = [
        Params::new(2, 2).with_a(10).with_b(2),
        Params::new(3, 12).with_a(20).with_b(4), // l = d
        Params::new(8, 3).with_a(15).with_b(3).with_min_dev(0.3),
        Params::new(4, 4).with_itr_pat(1),
        Params::new(4, 4)
            .with_itr_pat(20)
            .with_max_total_iterations(40),
    ];
    for (i, p) in corners.iter().enumerate() {
        let p = p.clone().with_seed(100 + i as u64);
        let base = proclus(&data, &p).unwrap();
        assert_same(
            &base,
            &fast_proclus(&data, &p).unwrap(),
            &format!("corner {i}"),
        );
        assert_same(
            &base,
            &fast_star_proclus(&data, &p).unwrap(),
            &format!("corner {i} (fast*)"),
        );
    }
}

#[test]
fn both_bad_medoid_rules_stay_equivalent_across_variants() {
    use proclus::BadMedoidRule;
    let data = dataset(800, 8, 4, 3);
    for rule in [BadMedoidRule::PaperEdbt22, BadMedoidRule::Original99] {
        let p = Params::new(4, 3)
            .with_a(20)
            .with_b(4)
            .with_seed(9)
            .with_bad_medoid_rule(rule);
        let base = proclus(&data, &p).unwrap();
        assert_same(
            &base,
            &fast_proclus(&data, &p).unwrap(),
            &format!("{rule:?}"),
        );
    }
}

#[test]
fn unclustered_uniform_data_still_works() {
    // No planted structure at all: the algorithm must still terminate with
    // a valid (if meaningless) clustering and all variants must agree.
    let cfg = SyntheticConfig {
        n: 600,
        d: 6,
        num_clusters: 1,
        subspace_dims: 2,
        std_dev: 1000.0, // effectively uniform after clamping
        value_range: (0.0, 100.0),
        noise_fraction: 1.0,
        seed: 5,
    };
    let mut g = generate(&cfg);
    g.data.minmax_normalize();
    let p = Params::new(3, 2).with_a(20).with_b(4).with_seed(77);
    let base = proclus(&g.data, &p).unwrap();
    base.validate_structure(600, 6, 2).unwrap();
    assert_same(&base, &fast_proclus(&g.data, &p).unwrap(), "uniform");
}
