//! Multi-parameter runs (§3.1): all reuse levels produce valid clusterings
//! for every setting, on CPU and GPU, and the GPU multi runner agrees with
//! the CPU one seed-for-seed at each level.

#![allow(deprecated)] // exercises the legacy entry points deliberately

use datagen::synthetic::{generate, SyntheticConfig};
use gpu_sim::{Device, DeviceConfig};
use proclus::multi_param::{ReuseLevel, Setting};
use proclus::{default_grid, fast_proclus_multi, proclus_multi, DataMatrix, Params};
use proclus_gpu::{gpu_fast_proclus_multi, gpu_proclus_multi};

fn dataset() -> DataMatrix {
    let mut g = generate(&SyntheticConfig {
        n: 1000,
        d: 8,
        num_clusters: 5,
        subspace_dims: 3,
        std_dev: 3.0,
        value_range: (0.0, 100.0),
        noise_fraction: 0.0,
        seed: 404,
    });
    g.data.minmax_normalize();
    g.data
}

fn grid() -> Vec<Setting> {
    vec![
        Setting::new(3, 2),
        Setting::new(5, 3),
        Setting::new(4, 4),
        Setting::new(5, 2),
    ]
}

fn base() -> Params {
    Params::new(5, 3).with_a(20).with_b(4).with_seed(55)
}

const LEVELS: [ReuseLevel; 4] = [
    ReuseLevel::Independent,
    ReuseLevel::SharedCache,
    ReuseLevel::SharedGreedy,
    ReuseLevel::WarmStart,
];

#[test]
fn cpu_levels_all_valid() {
    let data = dataset();
    let exec = proclus::par::Executor::Sequential;
    for level in LEVELS {
        let results = fast_proclus_multi(&data, &base(), &grid(), level, &exec).unwrap();
        assert_eq!(results.len(), 4);
        for (s, r) in grid().iter().zip(&results) {
            assert_eq!(r.k(), s.k, "{level:?}");
            r.validate_structure(data.n(), data.d(), s.l)
                .unwrap_or_else(|e| panic!("{level:?} k={}: {e}", s.k));
        }
    }
}

#[test]
fn gpu_levels_match_cpu_levels() {
    let data = dataset();
    let exec = proclus::par::Executor::Sequential;
    for level in LEVELS {
        let cpu = fast_proclus_multi(&data, &base(), &grid(), level, &exec).unwrap();
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.set_deterministic(true);
        let gpu = gpu_fast_proclus_multi(&mut dev, &data, &base(), &grid(), level).unwrap();
        for (i, (c, g)) in cpu.iter().zip(&gpu).enumerate() {
            assert_eq!(c.medoids, g.medoids, "{level:?} setting {i}: medoids");
            assert_eq!(c.labels, g.labels, "{level:?} setting {i}: labels");
            assert!(
                (c.cost - g.cost).abs() < 1e-9,
                "{level:?} setting {i}: cost"
            );
        }
    }
}

#[test]
fn gpu_plain_multi_matches_cpu_plain_multi() {
    let data = dataset();
    let exec = proclus::par::Executor::Sequential;
    let cpu = proclus_multi(&data, &base(), &grid(), &exec).unwrap();
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
    dev.set_deterministic(true);
    let gpu = gpu_proclus_multi(&mut dev, &data, &base(), &grid()).unwrap();
    for (i, (c, g)) in cpu.iter().zip(&gpu).enumerate() {
        assert_eq!(c.medoids, g.medoids, "setting {i}");
        assert_eq!(c.labels, g.labels, "setting {i}");
    }
}

#[test]
fn reuse_reduces_device_distance_work() {
    // Level 2 shares one M across settings, so distance rows computed for
    // one setting are hits for the next: total compute_l.dist work must be
    // strictly smaller than with independent runs.
    let data = dataset();
    let work = |level: ReuseLevel| {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        gpu_fast_proclus_multi(&mut dev, &data, &base(), &grid(), level).unwrap();
        dev.report()
            .kernels
            .get("compute_l.dist")
            .map(|k| k.work.global_loads)
            .unwrap_or(0)
    };
    let independent = work(ReuseLevel::Independent);
    let shared = work(ReuseLevel::SharedGreedy);
    assert!(
        shared < independent,
        "shared-greedy should compute fewer distances: {shared} vs {independent}"
    );
}

#[test]
fn warm_start_converges_no_slower_on_average() {
    // Heuristic claim (§3.1): initializing from the previous best medoids
    // "may lead to faster convergence". Check total iterations across the
    // grid do not blow up versus independent runs.
    let data = dataset();
    let exec = proclus::par::Executor::Sequential;
    let iters = |level: ReuseLevel| -> usize {
        fast_proclus_multi(&data, &base(), &grid(), level, &exec)
            .unwrap()
            .iter()
            .map(|c| c.iterations)
            .sum()
    };
    let independent = iters(ReuseLevel::Independent);
    let warm = iters(ReuseLevel::WarmStart);
    assert!(
        warm <= independent * 2,
        "warm start should not drastically slow convergence: {warm} vs {independent}"
    );
}

#[test]
fn default_grid_runs_end_to_end() {
    let data = dataset();
    let exec = proclus::par::Executor::Sequential;
    let grid = default_grid(5, 3);
    assert_eq!(grid.len(), 9);
    let results = fast_proclus_multi(
        &data,
        &Params::new(5, 3).with_a(15).with_b(3).with_seed(1),
        &grid,
        ReuseLevel::WarmStart,
        &exec,
    )
    .unwrap();
    assert_eq!(results.len(), 9);
}

/// The reuse guarantee the property tests rely on: a width-1 grid is a
/// solo run, and the first setting of a largest-k-first grid is
/// bit-identical to its solo run, at every reuse level (nothing the shared
/// levels hoist out of the loop runs before the first setting differs).
#[test]
fn first_setting_of_largest_k_first_grid_matches_solo_run() {
    let data = dataset();
    let exec = proclus::par::Executor::Sequential;
    let settings = vec![Setting::new(5, 3), Setting::new(4, 4), Setting::new(3, 2)];
    let solo = proclus::run(&data, &proclus::Config::new(base())).unwrap();
    for level in LEVELS {
        let single = fast_proclus_multi(&data, &base(), &settings[..1], level, &exec).unwrap();
        assert_eq!(&single[0], solo.clustering(), "{level:?}: width-1 grid");
        let multi = fast_proclus_multi(&data, &base(), &settings, level, &exec).unwrap();
        assert_eq!(&multi[0], solo.clustering(), "{level:?}: first setting");
    }
}
