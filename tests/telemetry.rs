//! Telemetry integration tests: the span tree is deterministic for a fixed
//! seed (golden file), the counters tell the paper's story (FAST computes
//! strictly fewer distances than the baseline), and both export formats
//! validate.
//!
//! Regenerate the golden file after an intentional instrumentation change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test telemetry
//! ```

use gpu_fast_proclus::prelude::*;
use proclus::telemetry::{counters, schema};

fn dataset() -> DataMatrix {
    let gen = datagen::synthetic::generate(
        &SyntheticConfig::new(400, 6)
            .with_clusters(3)
            .with_subspace_dims(3)
            .with_std_dev(3.0)
            .with_seed(11),
    );
    let mut data = gen.data;
    data.minmax_normalize();
    data
}

fn params() -> Params {
    Params::new(3, 3).with_a(20).with_b(4).with_seed(7)
}

fn telemetry_for(algo: Algo, backend: Backend) -> proclus::telemetry::TelemetryReport {
    let data = dataset();
    let config = Config::new(params())
        .with_algo(algo)
        .with_backend(backend)
        .with_telemetry(true);
    let output = match backend {
        Backend::Cpu => run(&data, &config).unwrap(),
        Backend::Gpu | Backend::Sharded => {
            let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
            run_on(&mut dev, &data, &config).unwrap()
        }
    };
    output.telemetry.unwrap()
}

#[test]
fn span_tree_matches_the_golden_file() {
    let tree = telemetry_for(Algo::Fast, Backend::Cpu).render_tree();
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/telemetry_tree.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &tree).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing; run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        tree, golden,
        "span tree drifted from tests/golden/telemetry_tree.txt; if the \
         instrumentation change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn the_golden_tree_is_reproducible_within_a_process() {
    let a = telemetry_for(Algo::Fast, Backend::Cpu).render_tree();
    let b = telemetry_for(Algo::Fast, Backend::Cpu).render_tree();
    assert_eq!(a, b);
}

#[test]
fn fast_computes_strictly_fewer_distances_than_the_baseline() {
    let base = telemetry_for(Algo::Baseline, Backend::Cpu);
    let fast = telemetry_for(Algo::Fast, Backend::Cpu);
    let d_base = base.total(counters::DISTANCES_COMPUTED);
    let d_fast = fast.total(counters::DISTANCES_COMPUTED);
    assert!(d_base > 0 && d_fast > 0);
    assert!(
        d_fast < d_base,
        "FAST should reuse Dist rows: fast = {d_fast}, baseline = {d_base}"
    );
    // The cache is what saves the work (Theorem 3.1).
    assert!(fast.total(counters::DIST_CACHE_HITS) > 0);
    assert_eq!(base.total(counters::DIST_CACHE_HITS), 0);
}

#[test]
fn gpu_counters_match_the_cpu_counters_for_equal_seeds() {
    // The baseline's distance count differs by design (the CPU baseline
    // recomputes medoid↔medoid distances per iteration, the GPU kernel
    // does not), so it is excluded for `Algo::Baseline`.
    for algo in [Algo::Baseline, Algo::Fast, Algo::FastStar] {
        let cpu = telemetry_for(algo, Backend::Cpu);
        let gpu = telemetry_for(algo, Backend::Gpu);
        let mut shared = vec![
            counters::DIST_CACHE_HITS,
            counters::DIST_CACHE_MISSES,
            counters::ITERATIONS,
            counters::MEDOIDS_REPLACED,
        ];
        if algo != Algo::Baseline {
            shared.push(counters::DISTANCES_COMPUTED);
        }
        for c in shared {
            assert_eq!(
                cpu.total(c),
                gpu.total(c),
                "{c} diverges on {} (cpu vs gpu)",
                algo.name()
            );
        }
    }
}

#[test]
fn both_export_formats_validate() {
    let report = telemetry_for(Algo::Fast, Backend::Cpu);
    schema::validate_report_str(&report.to_json()).unwrap();
    schema::validate_chrome_trace_str(&report.to_chrome_trace()).unwrap();
    // Every executed phase appears as a span.
    for phase in [
        "run",
        "initialization",
        "iteration",
        "compute_l",
        "find_dimensions",
        "assign_points",
        "evaluate_clusters",
        "bad_medoids",
        "refinement",
    ] {
        assert!(report.find_span(phase).is_some(), "missing span {phase}");
    }
}
