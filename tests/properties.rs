//! Property-based tests on the paper's theorems and structural invariants.
//!
//! * Theorem 3.1 — the band `δ' < dist ≤ δ` (in either direction) is the
//!   symmetric difference of consecutive spheres.
//! * Theorem 3.2 — incrementally maintained `H` equals recomputed `H`.
//! * FindDimensions invariants — subspace totals, per-medoid minimum, tie
//!   determinism.
//! * Cost function invariants — non-negativity, label-permutation
//!   equivariance, scaling.
//! * Full-algorithm invariant — any valid parameters produce a structurally
//!   valid clustering on arbitrary data.

use proptest::prelude::*;

use proclus::distance::{euclidean, manhattan_segmental};
use proclus::par::Executor;
use proclus::phases::evaluate::evaluate_clusters;
use proclus::phases::find_dimensions::{pick_dimensions, spread_stats};
use proclus::{Algo, Clustering, DataMatrix, Params};

fn cpu(data: &DataMatrix, params: &Params, algo: Algo) -> proclus::Result<Clustering> {
    let config = proclus::Config::new(params.clone()).with_algo(algo);
    proclus::run(data, &config).map(|o| o.clusterings.into_iter().next().expect("one clustering"))
}

fn proclus(data: &DataMatrix, params: &Params) -> proclus::Result<Clustering> {
    cpu(data, params, Algo::Baseline)
}

fn fast_proclus(data: &DataMatrix, params: &Params) -> proclus::Result<Clustering> {
    cpu(data, params, Algo::Fast)
}

fn small_matrix() -> impl Strategy<Value = DataMatrix> {
    // n in 20..60, d in 2..6, values in a bounded range.
    (20usize..60, 2usize..6).prop_flat_map(|(n, d)| {
        proptest::collection::vec(-100.0f32..100.0, n * d)
            .prop_map(move |v| DataMatrix::from_flat(v, n, d).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 3.1: the band between two radii is exactly the symmetric
    /// difference of the two spheres.
    #[test]
    fn theorem_3_1_band_is_symmetric_difference(
        data in small_matrix(),
        medoid_frac in 0.0f64..1.0,
        r1 in 0.0f32..300.0,
        r2 in 0.0f32..300.0,
    ) {
        let m = ((data.n() - 1) as f64 * medoid_frac) as usize;
        let sphere = |r: f32| -> std::collections::HashSet<usize> {
            (0..data.n())
                .filter(|&p| euclidean(data.row(p), data.row(m)) <= r)
                .collect()
        };
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let band: std::collections::HashSet<usize> = (0..data.n())
            .filter(|&p| {
                let dist = euclidean(data.row(p), data.row(m));
                dist > lo && dist <= hi
            })
            .collect();
        let s1 = sphere(r1);
        let s2 = sphere(r2);
        let sym: std::collections::HashSet<usize> =
            s1.symmetric_difference(&s2).copied().collect();
        prop_assert_eq!(band, sym);
    }

    /// Theorem 3.2 as used by the engines: growing and shrinking a sphere
    /// through arbitrary radii keeps the incremental H equal to the direct
    /// recomputation (up to float error).
    #[test]
    fn theorem_3_2_incremental_h_matches_recompute(
        data in small_matrix(),
        radii in proptest::collection::vec(0.0f32..200.0, 1..8),
    ) {
        let m = 0usize;
        let m_row: Vec<f32> = data.row(m).to_vec();
        let d = data.d();
        // Incremental: walk the radius sequence.
        let mut h = vec![0.0f64; d];
        let mut prev = -1.0f32;
        for &r in &radii {
            let (lo, hi, lambda) = if r >= prev { (prev, r, 1.0) } else { (r, prev, -1.0) };
            for p in 0..data.n() {
                let dist = euclidean(data.row(p), &m_row);
                if dist > lo && dist <= hi {
                    for j in 0..d {
                        h[j] += lambda * ((data.get(p, j) - m_row[j]) as f64).abs();
                    }
                }
            }
            prev = r;
        }
        // Direct at the final radius.
        let r_final = *radii.last().unwrap();
        for j in 0..d {
            let direct: f64 = (0..data.n())
                .filter(|&p| euclidean(data.row(p), &m_row) <= r_final)
                .map(|p| ((data.get(p, j) - m_row[j]) as f64).abs())
                .sum();
            prop_assert!((h[j] - direct).abs() < 1e-6 * (1.0 + direct.abs()),
                "dim {}: incremental {} vs direct {}", j, h[j], direct);
        }
    }

    /// FindDimensions: totals k·l, at least two dims per medoid, all sorted
    /// and in range, deterministic.
    #[test]
    fn pick_dimensions_invariants(
        k in 1usize..6,
        d in 2usize..12,
        l_off in 0usize..10,
        seed_vals in proptest::collection::vec(-10.0f64..10.0, 72),
    ) {
        let l = 2 + l_off.min(d.saturating_sub(2));
        let x: Vec<f64> = (0..k * d).map(|e| seed_vals[e % seed_vals.len()]).collect();
        let stats = spread_stats(&x, k, d);
        let dims_a = pick_dimensions(&stats.z, k, d, l);
        let dims_b = pick_dimensions(&stats.z, k, d, l);
        prop_assert_eq!(&dims_a, &dims_b, "selection must be deterministic");
        let total: usize = dims_a.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, k * l);
        for s in &dims_a {
            prop_assert!(s.len() >= 2);
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(s.iter().all(|&j| j < d));
        }
    }

    /// Cost: non-negative, and invariant under a consistent relabeling of
    /// clusters (with subspaces permuted the same way).
    #[test]
    fn cost_is_nonnegative_and_permutation_equivariant(
        data in small_matrix(),
        labels_seed in proptest::collection::vec(0usize..3, 60),
    ) {
        let k = 3;
        let d = data.d();
        let labels: Vec<i32> = (0..data.n()).map(|p| (labels_seed[p % labels_seed.len()] % k) as i32).collect();
        let subspaces: Vec<Vec<usize>> = (0..k).map(|i| {
            let mut s: Vec<usize> = (0..d).filter(|j| (i + j) % 2 == 0).collect();
            if s.is_empty() { s.push(0); }
            s
        }).collect();
        let cost = evaluate_clusters(&data, &labels, &subspaces, &Executor::Sequential);
        prop_assert!(cost >= 0.0 && cost.is_finite());

        // Swap cluster ids 0 <-> 1 together with their subspaces.
        let swapped: Vec<i32> = labels.iter().map(|&c| match c { 0 => 1, 1 => 0, c => c }).collect();
        let mut sub2 = subspaces.clone();
        sub2.swap(0, 1);
        let cost2 = evaluate_clusters(&data, &swapped, &sub2, &Executor::Sequential);
        prop_assert!((cost - cost2).abs() < 1e-9, "{} vs {}", cost, cost2);
    }

    /// Manhattan segmental distance is a pseudometric on the subspace.
    #[test]
    fn segmental_distance_pseudometric(
        a in proptest::collection::vec(-50.0f32..50.0, 6),
        b in proptest::collection::vec(-50.0f32..50.0, 6),
        c in proptest::collection::vec(-50.0f32..50.0, 6),
    ) {
        let dims = [0usize, 2, 4];
        let dab = manhattan_segmental(&a, &b, &dims);
        let dba = manhattan_segmental(&b, &a, &dims);
        let dac = manhattan_segmental(&a, &c, &dims);
        let dcb = manhattan_segmental(&c, &b, &dims);
        prop_assert!((dab - dba).abs() < 1e-12);
        prop_assert!(dab >= 0.0);
        // f32 subtraction rounds each per-dimension term independently, so
        // the triangle inequality holds only up to f32 relative error.
        let tol = 1e-5 * (1.0 + dab.abs() + dac.abs() + dcb.abs());
        prop_assert!(dab <= dac + dcb + tol, "triangle: {} > {} + {}", dab, dac, dcb);
        prop_assert_eq!(manhattan_segmental(&a, &a, &dims), 0.0);
    }

    /// Min–max normalization maps every dimension into [0, 1].
    #[test]
    fn minmax_bounds(data in small_matrix()) {
        let mut m = data;
        m.minmax_normalize();
        prop_assert!(m.flat().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}

proptest! {
    // Fewer cases: each runs the whole algorithm.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end: arbitrary data + valid parameters always yield a
    /// structurally valid clustering, and FAST matches the baseline.
    #[test]
    fn full_run_is_always_structurally_valid(
        data in small_matrix(),
        k in 2usize..4,
        seed in 0u64..1000,
    ) {
        let l = 2;
        let params = Params::new(k, l).with_a(8).with_b(3).with_seed(seed);
        if params.validate(&data).is_err() {
            return Ok(()); // undersized corner: covered by params tests
        }
        let base = proclus(&data, &params).unwrap();
        base.validate_structure(data.n(), data.d(), l).map_err(|e| {
            TestCaseError::fail(format!("invalid structure: {e}"))
        })?;
        let fast = fast_proclus(&data, &params).unwrap();
        prop_assert_eq!(&base.medoids, &fast.medoids);
        prop_assert_eq!(&base.labels, &fast.labels);
    }
}

// ---------------------------------------------------------------------------
// §3.1 multi-parameter reuse vs independent runs.
//
// The naive claim "every reuse level reproduces the independent per-(k, l)
// runs bit-for-bit" is deliberately NOT what the design promises: the
// shared levels draw the sample (and, at level >= 2, the greedy candidate
// set) once, so later settings consume a different RNG stream than a fresh
// run would. What IS guaranteed, and what these properties pin down:
//
// 1. a width-1 grid is a solo run at every reuse level;
// 2. the first setting of a largest-k-first grid is bit-identical to the
//    solo run of its parameters at every level (nothing before it differs);
// 3. the GPU multi runner agrees with the CPU one seed-for-seed at every
//    level and setting.

use gpu_sim::{Device, DeviceConfig};
use proclus::{fast_proclus_multi, Config, ReuseLevel, Setting};
use proclus_gpu::gpu_fast_proclus_multi;

/// Arbitrary data plus a largest-k-first grid with matching base params.
fn reuse_case() -> impl Strategy<Value = (DataMatrix, Params, Vec<Setting>)> {
    (40usize..90, 4usize..6, 0u64..1000).prop_flat_map(|(n, d, seed)| {
        let values = proptest::collection::vec(-50.0f32..50.0, n * d);
        let settings = proptest::collection::vec((2usize..6, 2usize..4), 1..4);
        (values, settings).prop_map(move |(v, ks)| {
            let data = DataMatrix::from_flat(v, n, d).unwrap();
            let mut settings: Vec<Setting> = ks.iter().map(|&(k, l)| Setting::new(k, l)).collect();
            settings.sort_by_key(|s| std::cmp::Reverse(s.k));
            let base = Params::new(settings[0].k, settings[0].l)
                .with_a(10)
                .with_b(3)
                .with_seed(seed);
            (data, base, settings)
        })
    })
}

proptest! {
    // Each case runs 4 reuse levels x (grid + solo + GPU grid).
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn reuse_levels_agree_with_independent_runs_where_defined(
        (data, base, settings) in reuse_case(),
    ) {
        let exec = Executor::Sequential;
        let mut p0 = base.clone();
        p0.k = settings[0].k;
        p0.l = settings[0].l;
        if p0.validate(&data).is_err() {
            return Ok(()); // undersized corner: covered by params tests
        }
        let solo_out = proclus::run(&data, &Config::new(p0)).unwrap();
        let solo = solo_out.clustering();

        for level in [
            ReuseLevel::Independent,
            ReuseLevel::SharedCache,
            ReuseLevel::SharedGreedy,
            ReuseLevel::WarmStart,
        ] {
            // (1) width-1 grid == solo run, bit for bit.
            let single =
                fast_proclus_multi(&data, &base, &settings[..1], level, &exec).unwrap();
            prop_assert_eq!(&single[0], solo);

            // (2) first setting of the full grid == solo run.
            let multi = match fast_proclus_multi(&data, &base, &settings, level, &exec) {
                Ok(m) => m,
                // A later setting may be invalid against this data
                // (e.g. k*a exceeds n); the strict API then aborts, which
                // is out of scope for this property.
                Err(_) => continue,
            };
            prop_assert_eq!(&multi[0], solo);

            // (3) the GPU runner agrees seed-for-seed, every setting.
            let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
            dev.set_deterministic(true);
            let gpu =
                gpu_fast_proclus_multi(&mut dev, &data, &base, &settings, level).unwrap();
            prop_assert_eq!(multi.len(), gpu.len());
            for (c, g) in multi.iter().zip(&gpu) {
                prop_assert_eq!(&c.medoids, &g.medoids);
                prop_assert_eq!(&c.labels, &g.labels);
            }
        }
    }
}
