//! Property-based tests on the paper's theorems and structural invariants.
//!
//! * Theorem 3.1 — the band `δ' < dist ≤ δ` (in either direction) is the
//!   symmetric difference of consecutive spheres.
//! * Theorem 3.2 — incrementally maintained `H` equals recomputed `H`.
//! * FindDimensions invariants — subspace totals, per-medoid minimum, tie
//!   determinism.
//! * Cost function invariants — non-negativity, label-permutation
//!   equivariance, scaling.
//! * Full-algorithm invariant — any valid parameters produce a structurally
//!   valid clustering on arbitrary data.

#![allow(deprecated)] // exercises the legacy entry points deliberately

use proptest::prelude::*;

use proclus::distance::{euclidean, manhattan_segmental};
use proclus::par::Executor;
use proclus::phases::evaluate::evaluate_clusters;
use proclus::phases::find_dimensions::{pick_dimensions, spread_stats};
use proclus::{fast_proclus, proclus, DataMatrix, Params};

fn small_matrix() -> impl Strategy<Value = DataMatrix> {
    // n in 20..60, d in 2..6, values in a bounded range.
    (20usize..60, 2usize..6).prop_flat_map(|(n, d)| {
        proptest::collection::vec(-100.0f32..100.0, n * d)
            .prop_map(move |v| DataMatrix::from_flat(v, n, d).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 3.1: the band between two radii is exactly the symmetric
    /// difference of the two spheres.
    #[test]
    fn theorem_3_1_band_is_symmetric_difference(
        data in small_matrix(),
        medoid_frac in 0.0f64..1.0,
        r1 in 0.0f32..300.0,
        r2 in 0.0f32..300.0,
    ) {
        let m = ((data.n() - 1) as f64 * medoid_frac) as usize;
        let sphere = |r: f32| -> std::collections::HashSet<usize> {
            (0..data.n())
                .filter(|&p| euclidean(data.row(p), data.row(m)) <= r)
                .collect()
        };
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let band: std::collections::HashSet<usize> = (0..data.n())
            .filter(|&p| {
                let dist = euclidean(data.row(p), data.row(m));
                dist > lo && dist <= hi
            })
            .collect();
        let s1 = sphere(r1);
        let s2 = sphere(r2);
        let sym: std::collections::HashSet<usize> =
            s1.symmetric_difference(&s2).copied().collect();
        prop_assert_eq!(band, sym);
    }

    /// Theorem 3.2 as used by the engines: growing and shrinking a sphere
    /// through arbitrary radii keeps the incremental H equal to the direct
    /// recomputation (up to float error).
    #[test]
    fn theorem_3_2_incremental_h_matches_recompute(
        data in small_matrix(),
        radii in proptest::collection::vec(0.0f32..200.0, 1..8),
    ) {
        let m = 0usize;
        let m_row: Vec<f32> = data.row(m).to_vec();
        let d = data.d();
        // Incremental: walk the radius sequence.
        let mut h = vec![0.0f64; d];
        let mut prev = -1.0f32;
        for &r in &radii {
            let (lo, hi, lambda) = if r >= prev { (prev, r, 1.0) } else { (r, prev, -1.0) };
            for p in 0..data.n() {
                let dist = euclidean(data.row(p), &m_row);
                if dist > lo && dist <= hi {
                    for j in 0..d {
                        h[j] += lambda * ((data.get(p, j) - m_row[j]) as f64).abs();
                    }
                }
            }
            prev = r;
        }
        // Direct at the final radius.
        let r_final = *radii.last().unwrap();
        for j in 0..d {
            let direct: f64 = (0..data.n())
                .filter(|&p| euclidean(data.row(p), &m_row) <= r_final)
                .map(|p| ((data.get(p, j) - m_row[j]) as f64).abs())
                .sum();
            prop_assert!((h[j] - direct).abs() < 1e-6 * (1.0 + direct.abs()),
                "dim {}: incremental {} vs direct {}", j, h[j], direct);
        }
    }

    /// FindDimensions: totals k·l, at least two dims per medoid, all sorted
    /// and in range, deterministic.
    #[test]
    fn pick_dimensions_invariants(
        k in 1usize..6,
        d in 2usize..12,
        l_off in 0usize..10,
        seed_vals in proptest::collection::vec(-10.0f64..10.0, 72),
    ) {
        let l = 2 + l_off.min(d.saturating_sub(2));
        let x: Vec<f64> = (0..k * d).map(|e| seed_vals[e % seed_vals.len()]).collect();
        let stats = spread_stats(&x, k, d);
        let dims_a = pick_dimensions(&stats.z, k, d, l);
        let dims_b = pick_dimensions(&stats.z, k, d, l);
        prop_assert_eq!(&dims_a, &dims_b, "selection must be deterministic");
        let total: usize = dims_a.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, k * l);
        for s in &dims_a {
            prop_assert!(s.len() >= 2);
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(s.iter().all(|&j| j < d));
        }
    }

    /// Cost: non-negative, and invariant under a consistent relabeling of
    /// clusters (with subspaces permuted the same way).
    #[test]
    fn cost_is_nonnegative_and_permutation_equivariant(
        data in small_matrix(),
        labels_seed in proptest::collection::vec(0usize..3, 60),
    ) {
        let k = 3;
        let d = data.d();
        let labels: Vec<i32> = (0..data.n()).map(|p| (labels_seed[p % labels_seed.len()] % k) as i32).collect();
        let subspaces: Vec<Vec<usize>> = (0..k).map(|i| {
            let mut s: Vec<usize> = (0..d).filter(|j| (i + j) % 2 == 0).collect();
            if s.is_empty() { s.push(0); }
            s
        }).collect();
        let cost = evaluate_clusters(&data, &labels, &subspaces, &Executor::Sequential);
        prop_assert!(cost >= 0.0 && cost.is_finite());

        // Swap cluster ids 0 <-> 1 together with their subspaces.
        let swapped: Vec<i32> = labels.iter().map(|&c| match c { 0 => 1, 1 => 0, c => c }).collect();
        let mut sub2 = subspaces.clone();
        sub2.swap(0, 1);
        let cost2 = evaluate_clusters(&data, &swapped, &sub2, &Executor::Sequential);
        prop_assert!((cost - cost2).abs() < 1e-9, "{} vs {}", cost, cost2);
    }

    /// Manhattan segmental distance is a pseudometric on the subspace.
    #[test]
    fn segmental_distance_pseudometric(
        a in proptest::collection::vec(-50.0f32..50.0, 6),
        b in proptest::collection::vec(-50.0f32..50.0, 6),
        c in proptest::collection::vec(-50.0f32..50.0, 6),
    ) {
        let dims = [0usize, 2, 4];
        let dab = manhattan_segmental(&a, &b, &dims);
        let dba = manhattan_segmental(&b, &a, &dims);
        let dac = manhattan_segmental(&a, &c, &dims);
        let dcb = manhattan_segmental(&c, &b, &dims);
        prop_assert!((dab - dba).abs() < 1e-12);
        prop_assert!(dab >= 0.0);
        // f32 subtraction rounds each per-dimension term independently, so
        // the triangle inequality holds only up to f32 relative error.
        let tol = 1e-5 * (1.0 + dab.abs() + dac.abs() + dcb.abs());
        prop_assert!(dab <= dac + dcb + tol, "triangle: {} > {} + {}", dab, dac, dcb);
        prop_assert_eq!(manhattan_segmental(&a, &a, &dims), 0.0);
    }

    /// Min–max normalization maps every dimension into [0, 1].
    #[test]
    fn minmax_bounds(data in small_matrix()) {
        let mut m = data;
        m.minmax_normalize();
        prop_assert!(m.flat().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}

proptest! {
    // Fewer cases: each runs the whole algorithm.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end: arbitrary data + valid parameters always yield a
    /// structurally valid clustering, and FAST matches the baseline.
    #[test]
    fn full_run_is_always_structurally_valid(
        data in small_matrix(),
        k in 2usize..4,
        seed in 0u64..1000,
    ) {
        let l = 2;
        let params = Params::new(k, l).with_a(8).with_b(3).with_seed(seed);
        if params.validate(&data).is_err() {
            return Ok(()); // undersized corner: covered by params tests
        }
        let base = proclus(&data, &params).unwrap();
        base.validate_structure(data.n(), data.d(), l).map_err(|e| {
            TestCaseError::fail(format!("invalid structure: {e}"))
        })?;
        let fast = fast_proclus(&data, &params).unwrap();
        prop_assert_eq!(&base.medoids, &fast.medoids);
        prop_assert_eq!(&base.labels, &fast.labels);
    }
}
