//! Cancellation routing: every entry point goes through the one
//! cancellation-aware driver per backend.
//!
//! * A pre-cancelled token makes `run_with_cancel` / `run_on_with_cancel`
//!   return [`ProclusError::Cancelled`] for every algorithm × backend, so
//!   there is no uncancellable path left.
//! * `run` produces bit-identical output to `run_with_cancel` with a fresh
//!   token (same `Backend`-trait driver underneath), and the remaining GPU
//!   shims stay aliases of the unified entry points — no forked drivers.
//! * In a grid run, cancelling one setting fails that setting only.

#![allow(deprecated)] // exercises the legacy GPU entry points deliberately

use gpu_sim::{Device, DeviceConfig};
use proclus::{Algo, CancelToken, Config, DataMatrix, Params, ProclusError, ReuseLevel, Setting};
use proclus_gpu::{gpu_fast_proclus, gpu_fast_star_proclus, gpu_proclus};

fn blob_data(n: usize) -> DataMatrix {
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            let c = if i % 2 == 0 { 0.0f32 } else { 40.0 };
            vec![
                c + ((i * 3) % 13) as f32 * 0.05,
                c + ((i * 5) % 13) as f32 * 0.05,
                ((i * 7) % 100) as f32,
            ]
        })
        .collect();
    DataMatrix::from_rows(&rows).unwrap()
}

fn params() -> Params {
    Params::new(3, 2).with_a(15).with_b(4).with_seed(9)
}

fn dev() -> Device {
    let mut d = Device::new(DeviceConfig::gtx_1660_ti());
    d.set_deterministic(true);
    d
}

#[test]
fn every_algo_and_backend_honours_a_precancelled_token() {
    let data = blob_data(300);
    let cancelled = CancelToken::new();
    cancelled.cancel();
    for algo in [Algo::Baseline, Algo::Fast, Algo::FastStar] {
        let cpu = Config::new(params()).with_algo(algo);
        let err = proclus::run_with_cancel(&data, &cpu, &cancelled).unwrap_err();
        assert!(
            matches!(err, ProclusError::Cancelled { .. }),
            "{algo:?} cpu: {err}"
        );

        let gpu = cpu.clone().with_backend(proclus::Backend::Gpu);
        let err = proclus_gpu::run_on_with_cancel(&mut dev(), &data, &gpu, &cancelled).unwrap_err();
        assert!(
            matches!(err, ProclusError::Cancelled { .. }),
            "{algo:?} gpu: {err}"
        );
    }
}

#[test]
fn expired_deadline_token_cancels_with_a_deadline_reason() {
    let data = blob_data(300);
    let token = CancelToken::with_deadline(std::time::Instant::now());
    let err = proclus::run_with_cancel(&data, &Config::new(params()), &token).unwrap_err();
    assert!(err.to_string().contains("deadline"), "{err}");
}

#[test]
fn run_and_run_with_cancel_share_one_driver() {
    // The six legacy CPU free functions are gone; `run` and
    // `run_with_cancel` are the only CPU entry points left, and both must
    // route through the same `Backend`-trait driver for every variant.
    let data = blob_data(400);
    let p = params();
    for algo in [Algo::Baseline, Algo::Fast, Algo::FastStar] {
        let config = Config::new(p.clone()).with_algo(algo);
        let plain = proclus::run(&data, &config).unwrap();
        let with_token = proclus::run_with_cancel(&data, &config, &CancelToken::new()).unwrap();
        assert_eq!(plain.clustering(), with_token.clustering(), "{algo:?}");
    }
}

#[test]
fn gpu_shims_are_aliases_of_the_unified_driver() {
    let data = blob_data(400);
    let p = params();
    type GpuShim =
        fn(&mut Device, &DataMatrix, &Params) -> proclus_gpu::Result<proclus::Clustering>;
    let cases: [(Algo, GpuShim); 3] = [
        (Algo::Baseline, gpu_proclus),
        (Algo::Fast, gpu_fast_proclus),
        (Algo::FastStar, gpu_fast_star_proclus),
    ];
    for (algo, shim) in cases {
        let config = Config::new(p.clone())
            .with_algo(algo)
            .with_backend(proclus::Backend::Gpu);
        let unified =
            proclus_gpu::run_on_with_cancel(&mut dev(), &data, &config, &CancelToken::new())
                .unwrap();
        assert_eq!(
            unified.clustering(),
            &shim(&mut dev(), &data, &p).unwrap(),
            "{algo:?}"
        );
    }
}

#[test]
fn cancelling_one_grid_setting_spares_the_others() {
    let data = blob_data(400);
    let settings = vec![Setting::new(4, 2), Setting::new(3, 2), Setting::new(2, 2)];
    let cancels = vec![CancelToken::new(), CancelToken::new(), CancelToken::new()];
    cancels[1].cancel();
    let outcomes = proclus::fast_proclus_multi_outcomes(
        &data,
        &params(),
        &settings,
        ReuseLevel::SharedGreedy,
        &proclus::par::Executor::Sequential,
        &proclus_telemetry::NullRecorder,
        &cancels,
    );
    assert!(outcomes[0].is_ok());
    assert!(matches!(
        outcomes[1].as_ref().unwrap_err(),
        ProclusError::Cancelled { .. }
    ));
    assert!(outcomes[2].is_ok());
}
