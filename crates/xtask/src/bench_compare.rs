//! Benchmark baseline comparison (`cargo xtask bench-compare`).
//!
//! Compares a fresh bench run against the committed baseline in
//! `results/`. Machines differ wildly, so **absolute times are never
//! compared** — only machine-independent structure and *internal ratios*:
//!
//! * `serve` (`BENCH_serve.json`): the mode set matches; batching still
//!   coalesces (fewer batches than jobs, while unbatched executes one
//!   batch per job); and the batched/unbatched **distance-savings
//!   fraction** is within an absolute tolerance of the baseline's
//!   (default ±0.25 — the savings come from deterministic counter
//!   arithmetic, not timing, but the scheduler's batch boundaries shift
//!   a little between runs).
//! * `telemetry` (`BENCH_telemetry.json`): every baseline run (keyed by
//!   `algo`/`backend`) exists; baseline counter keys are present; the
//!   paper's ordering holds (FAST and FAST* never compute more distances
//!   than the baseline algorithm on the same backend).
//! * `shard` (`BENCH_shard.json`): device counts 1, 2 and 4 are present
//!   with positive simulated times; the multi-device speedups clear the
//!   absolute floors (≥1.6× at D=2, ≥2.5× at D=4 — simulated clocks are
//!   deterministic, so the floors are machine-independent); and each
//!   speedup is within an absolute tolerance of the baseline's.
//! * `stream` (`BENCH_stream.json`): every fraction row carries positive
//!   counters and `exact_match: true` (the harness self-checks that the
//!   incremental epoch reproduces the from-scratch clustering bit for
//!   bit); every append of ≤1% of `n` re-clusters with an incremental/full
//!   distance ratio under the 0.25 floor; and each fraction's ratio stays
//!   within an absolute tolerance of the baseline's (distance counters
//!   are deterministic, so drift means the caching model regressed).
//! * `distance` (`BENCH_distance.json`): every (n, d) combo carries
//!   positive timings and `bitwise_equal: true` (the harness cross-checks
//!   the vectorized strips against the scalar kernel bit for bit — a
//!   `false` here means the lane decomposition changed a reduction
//!   order); no combo runs materially slower than scalar (ratio ≥ 0.8,
//!   tolerating cache-size edge combos); and the best row-kernel ratio
//!   clears the 2.0× vectorization floor. Wall-clock ratios are noisy
//!   across machines, so baseline drift is only flagged when the fresh
//!   best ratio collapses below half the baseline's.
//! * `par` (`BENCH_par.json`): both workload shapes are present at every
//!   thread count with positive simulated times and `bitwise_equal: true`
//!   (the harness runs the *real* executors and diffs the grain-ordered
//!   f64 reduction bit for bit — scheduling must never move an ulp); at
//!   4 threads the work-stealing pool clears the ≥1.2× skewed-workload
//!   floor over the static splitter and stays within the no-regression
//!   floor (≥0.9×) on the balanced shape. Times are simulated over the
//!   real grain decomposition (like `shard`), so the floors are
//!   machine-independent; drift is flagged if the fresh skewed ratio
//!   falls below half the baseline's.

use std::path::Path;

use proclus_telemetry::json::{parse, Value};

use crate::lint::Finding;

fn fail(rule: &'static str, file: &str, message: String) -> Finding {
    Finding {
        rule,
        file: file.to_string(),
        line: 0,
        message,
    }
}

fn load(path: &Path) -> Result<Value, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

/// Dispatches on `kind` (`serve` / `telemetry` / `shard` / `stream` /
/// `distance` / `par`).
pub fn run(
    kind: &str,
    baseline: &Path,
    fresh: &Path,
    tolerance: f64,
) -> Result<Vec<Finding>, String> {
    let base = load(baseline)?;
    let new = load(fresh)?;
    let file = fresh.to_string_lossy().replace('\\', "/");
    match kind {
        "serve" => Ok(compare_serve(&base, &new, &file, tolerance)),
        "telemetry" => Ok(compare_telemetry(&base, &new, &file)),
        "shard" => Ok(compare_shard(&base, &new, &file, tolerance)),
        "stream" => Ok(compare_stream(&base, &new, &file, tolerance)),
        "distance" => Ok(compare_distance(&base, &new, &file)),
        "par" => Ok(compare_par(&base, &new, &file)),
        other => Err(format!(
            "unknown bench kind `{other}` (serve, telemetry, shard, stream, distance, par)"
        )),
    }
}

fn mode_entry<'a>(doc: &'a Value, mode: &str) -> Option<&'a Value> {
    doc.get("modes")?
        .as_array()?
        .iter()
        .find(|m| m.get("mode").and_then(Value::as_str) == Some(mode))
}

fn num(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN)
}

/// The batching win as a fraction of distances avoided.
fn savings(doc: &Value) -> Option<f64> {
    let batched = num(mode_entry(doc, "batched")?, "distances_computed");
    let unbatched = num(mode_entry(doc, "unbatched")?, "distances_computed");
    if !(batched.is_finite() && unbatched > 0.0) {
        return None;
    }
    Some(1.0 - batched / unbatched)
}

/// Compares serve-bench documents; see the module docs for the contract.
pub fn compare_serve(base: &Value, new: &Value, file: &str, tolerance: f64) -> Vec<Finding> {
    let mut findings = Vec::new();
    for mode in ["batched", "unbatched"] {
        if mode_entry(new, mode).is_none() {
            findings.push(fail(
                "bench_structure",
                file,
                format!("mode `{mode}` missing from fresh run"),
            ));
        }
    }
    if !findings.is_empty() {
        return findings;
    }
    let fresh_b = mode_entry(new, "batched").expect("checked above");
    let fresh_u = mode_entry(new, "unbatched").expect("checked above");
    for (name, m) in [("batched", fresh_b), ("unbatched", fresh_u)] {
        for key in ["jobs", "distances_computed", "wall_ms", "batches_executed"] {
            let v = num(m, key);
            // NaN (absent/non-numeric key) must fail too, so the test is
            // "not strictly positive" rather than `v <= 0.0`.
            if v.is_nan() || v <= 0.0 {
                findings.push(fail(
                    "bench_structure",
                    file,
                    format!("{name}.{key} = {v} — expected positive"),
                ));
            }
        }
    }
    // Coalescing evidence: the batched scheduler executes fewer batches
    // than jobs; the unbatched one executes one batch per job.
    let (b_jobs, b_batches) = (num(fresh_b, "jobs"), num(fresh_b, "batches_executed"));
    let (u_jobs, u_batches) = (num(fresh_u, "jobs"), num(fresh_u, "batches_executed"));
    if b_batches >= b_jobs {
        findings.push(fail(
            "bench_regression",
            file,
            format!("batched mode ran {b_batches} batches for {b_jobs} jobs — no coalescing"),
        ));
    }
    if u_batches != u_jobs {
        findings.push(fail(
            "bench_structure",
            file,
            format!("unbatched mode ran {u_batches} batches for {u_jobs} jobs — expected 1:1"),
        ));
    }
    match (savings(base), savings(new)) {
        (Some(b), Some(n)) => {
            if (n - b).abs() > tolerance {
                findings.push(fail(
                    "bench_regression",
                    file,
                    format!(
                        "distance-savings fraction {n:.3} drifted from baseline {b:.3} \
                         (tolerance ±{tolerance})"
                    ),
                ));
            }
        }
        _ => findings.push(fail(
            "bench_structure",
            file,
            "could not compute the distance-savings fraction".to_string(),
        )),
    }
    findings
}

/// The speedup floors the sharded backend must clear over its own D=1 run.
const SHARD_FLOORS: [(f64, f64); 2] = [(2.0, 1.6), (4.0, 2.5)];

fn device_entry(doc: &Value, devices: f64) -> Option<&Value> {
    doc.get("devices")?
        .as_array()?
        .iter()
        .find(|e| e.get("devices").and_then(Value::as_f64) == Some(devices))
}

/// Compares shard-bench documents; see the module docs for the contract.
pub fn compare_shard(base: &Value, new: &Value, file: &str, tolerance: f64) -> Vec<Finding> {
    let mut findings = Vec::new();
    for devices in [1.0, 2.0, 4.0] {
        let Some(entry) = device_entry(new, devices) else {
            findings.push(fail(
                "bench_structure",
                file,
                format!("device count {devices} missing from fresh run"),
            ));
            continue;
        };
        let sim_ms = num(entry, "sim_ms");
        if sim_ms.is_nan() || sim_ms <= 0.0 {
            findings.push(fail(
                "bench_structure",
                file,
                format!("devices={devices}: sim_ms = {sim_ms} — expected positive"),
            ));
        }
    }
    if !findings.is_empty() {
        return findings;
    }
    for (devices, floor) in SHARD_FLOORS {
        let entry = device_entry(new, devices).expect("checked above");
        let speedup = num(entry, "speedup");
        if speedup.is_nan() || speedup < floor {
            findings.push(fail(
                "bench_regression",
                file,
                format!("devices={devices}: speedup {speedup:.2}x below the {floor}x floor"),
            ));
        }
        // Simulated clocks are deterministic, so a drop versus the committed
        // baseline means the sharding cost model regressed, not the machine.
        if let Some(base_speedup) = device_entry(base, devices).map(|e| num(e, "speedup")) {
            if base_speedup.is_finite() && speedup < base_speedup - tolerance {
                findings.push(fail(
                    "bench_regression",
                    file,
                    format!(
                        "devices={devices}: speedup {speedup:.2}x drifted below baseline \
                         {base_speedup:.2}x (tolerance -{tolerance})"
                    ),
                ));
            }
        }
    }
    findings
}

/// The incremental/full distance ratio ceiling for appends of ≤1% of `n`
/// (the acceptance criterion: a small append must cost under a quarter of
/// a from-scratch run).
const STREAM_RATIO_FLOOR_AT: f64 = 0.01;
const STREAM_RATIO_CEILING: f64 = 0.25;

/// Compares stream-bench documents; see the module docs for the contract.
pub fn compare_stream(base: &Value, new: &Value, file: &str, tolerance: f64) -> Vec<Finding> {
    let mut findings = Vec::new();
    let empty: Vec<Value> = Vec::new();
    let rows = new
        .get("fractions")
        .and_then(Value::as_array)
        .unwrap_or(&empty);
    if rows.is_empty() {
        findings.push(fail(
            "bench_structure",
            file,
            "fresh run has no fractions".to_string(),
        ));
        return findings;
    }
    let base_rows = base
        .get("fractions")
        .and_then(Value::as_array)
        .unwrap_or(&empty);
    let mut gated = false;
    for row in rows {
        let fraction = num(row, "fraction");
        for key in ["fraction", "batch", "distances_full", "distances_inc"] {
            let v = num(row, key);
            if v.is_nan() || v <= 0.0 {
                findings.push(fail(
                    "bench_structure",
                    file,
                    format!("fraction {fraction}: {key} = {v} — expected positive"),
                ));
            }
        }
        // The harness re-runs from scratch and diffs medoids, subspaces and
        // labels; anything but `true` means incrementality broke exactness.
        if row.get("exact_match") != Some(&Value::Bool(true)) {
            findings.push(fail(
                "bench_regression",
                file,
                format!("fraction {fraction}: incremental result is not exact"),
            ));
        }
        let ratio = num(row, "ratio");
        if fraction <= STREAM_RATIO_FLOOR_AT {
            gated = true;
            if ratio.is_nan() || ratio >= STREAM_RATIO_CEILING {
                findings.push(fail(
                    "bench_regression",
                    file,
                    format!(
                        "fraction {fraction}: incremental/full distance ratio {ratio:.3} \
                         breaches the {STREAM_RATIO_CEILING} ceiling"
                    ),
                ));
            }
        }
        let base_ratio = base_rows
            .iter()
            .find(|b| num(b, "fraction") == fraction)
            .map(|b| num(b, "ratio"));
        if let Some(b) = base_ratio {
            if b.is_finite() && ratio > b + tolerance {
                findings.push(fail(
                    "bench_regression",
                    file,
                    format!(
                        "fraction {fraction}: ratio {ratio:.3} drifted above baseline \
                         {b:.3} (tolerance +{tolerance})"
                    ),
                ));
            }
        }
    }
    if !gated {
        findings.push(fail(
            "bench_structure",
            file,
            format!(
                "no fraction ≤ {STREAM_RATIO_FLOOR_AT} in fresh run — the floor was not exercised"
            ),
        ));
    }
    findings
}

/// The vectorization floor: the *best* (n, d) combo's row-kernel ratio
/// must reach 2.0× over scalar. Per-combo, no ratio may fall under 0.8
/// (the strip must never be materially slower than the loop it replaced).
const DISTANCE_MAX_RATIO_FLOOR: f64 = 2.0;
const DISTANCE_COMBO_RATIO_FLOOR: f64 = 0.8;

/// The best row-kernel speedup in a distance document — the larger of the
/// single-row and batched ratios, maximized over all combos.
fn distance_best_ratio(doc: &Value) -> Option<f64> {
    let best = doc
        .get("combos")?
        .as_array()?
        .iter()
        .map(|c| num(c, "ratio").max(num(c, "batch_ratio")))
        .fold(f64::NAN, f64::max);
    best.is_finite().then_some(best)
}

/// Compares distance-bench documents; see the module docs for the contract.
pub fn compare_distance(base: &Value, new: &Value, file: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let empty: Vec<Value> = Vec::new();
    let combos = new
        .get("combos")
        .and_then(Value::as_array)
        .unwrap_or(&empty);
    if combos.is_empty() {
        findings.push(fail(
            "bench_structure",
            file,
            "fresh run has no combos".to_string(),
        ));
        return findings;
    }
    for combo in combos {
        let (n, d) = (num(combo, "n"), num(combo, "d"));
        for key in ["scalar_ms", "simd_ms", "batch_scalar_ms", "batch_simd_ms"] {
            let v = num(combo, key);
            if v.is_nan() || v <= 0.0 {
                findings.push(fail(
                    "bench_structure",
                    file,
                    format!("n={n} d={d}: {key} = {v} — expected positive"),
                ));
            }
        }
        // The harness diffs every output bit against the scalar kernel;
        // anything but `true` means vectorization moved a reduction.
        if combo.get("bitwise_equal") != Some(&Value::Bool(true)) {
            findings.push(fail(
                "bench_regression",
                file,
                format!("n={n} d={d}: vectorized output is not bitwise-equal to scalar"),
            ));
        }
        for key in ["ratio", "batch_ratio"] {
            let ratio = num(combo, key);
            if ratio.is_nan() || ratio < DISTANCE_COMBO_RATIO_FLOOR {
                findings.push(fail(
                    "bench_regression",
                    file,
                    format!(
                        "n={n} d={d}: {key} {ratio:.2}x below the per-combo \
                         {DISTANCE_COMBO_RATIO_FLOOR}x floor"
                    ),
                ));
            }
        }
    }
    match distance_best_ratio(new) {
        Some(best) if best >= DISTANCE_MAX_RATIO_FLOOR => {
            // Wall-clock ratios are machine-dependent; only a collapse to
            // under half the committed baseline's best counts as drift.
            if let Some(base_best) = distance_best_ratio(base) {
                if best < base_best * 0.5 {
                    findings.push(fail(
                        "bench_regression",
                        file,
                        format!(
                            "best row-kernel ratio {best:.2}x collapsed below half the \
                             baseline's {base_best:.2}x"
                        ),
                    ));
                }
            }
        }
        Some(best) => findings.push(fail(
            "bench_regression",
            file,
            format!(
                "best row-kernel ratio {best:.2}x below the {DISTANCE_MAX_RATIO_FLOOR}x \
                 vectorization floor"
            ),
        )),
        None => findings.push(fail(
            "bench_structure",
            file,
            "could not compute a row-kernel ratio from the fresh run".to_string(),
        )),
    }
    findings
}

/// Work-stealing floor at 4 threads on the zipf-skewed shape: a static
/// split strands the head cluster's grains on one worker, so stealing
/// must be at least this much faster (the simulated schedules put the
/// true gap near 2.7×; 1.2× leaves slack for grain-size retuning).
const PAR_SKEWED_FLOOR: f64 = 1.2;
/// Stealing must not cost anything on the balanced shape the static
/// splitter was tuned for.
const PAR_BALANCED_FLOOR: f64 = 0.9;

fn par_combo<'a>(doc: &'a Value, workload: &str, requested: f64) -> Option<&'a Value> {
    doc.get("combos")?.as_array()?.iter().find(|c| {
        c.get("workload").and_then(Value::as_str) == Some(workload)
            && num(c, "requested_threads") == requested
    })
}

/// Compares par-bench documents; see the module docs for the contract.
pub fn compare_par(base: &Value, new: &Value, file: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let empty: Vec<Value> = Vec::new();
    let combos = new
        .get("combos")
        .and_then(Value::as_array)
        .unwrap_or(&empty);
    if combos.is_empty() {
        findings.push(fail(
            "bench_structure",
            file,
            "fresh run has no combos".to_string(),
        ));
        return findings;
    }
    for combo in combos {
        let workload = combo.get("workload").and_then(Value::as_str).unwrap_or("?");
        let threads = num(combo, "threads");
        for key in ["seq_ms", "static_ms", "steal_ms"] {
            let v = num(combo, key);
            if v.is_nan() || v <= 0.0 {
                findings.push(fail(
                    "bench_structure",
                    file,
                    format!("{workload} t={threads}: {key} = {v} — expected positive"),
                ));
            }
        }
        // The harness runs the real executors and diffs the grain-ordered
        // reduction; anything but `true` means scheduling moved a bit.
        if combo.get("bitwise_equal") != Some(&Value::Bool(true)) {
            findings.push(fail(
                "bench_regression",
                file,
                format!("{workload} t={threads}: executor output is not bitwise-equal"),
            ));
        }
    }
    for (workload, floor) in [
        ("skewed", PAR_SKEWED_FLOOR),
        ("balanced", PAR_BALANCED_FLOOR),
    ] {
        match par_combo(new, workload, 4.0) {
            Some(combo) => {
                let ratio = num(combo, "steal_vs_static");
                if ratio.is_nan() || ratio < floor {
                    findings.push(fail(
                        "bench_regression",
                        file,
                        format!(
                            "{workload} at 4 threads: work-stealing is {ratio:.2}x the \
                             static split, below the {floor}x floor"
                        ),
                    ));
                }
            }
            None => findings.push(fail(
                "bench_structure",
                file,
                format!("no {workload} combo at 4 threads in the fresh run"),
            )),
        }
    }
    // Simulated clocks are deterministic; a skewed-ratio collapse below
    // half the committed baseline means the scheduling model regressed.
    if let (Some(b), Some(n)) = (
        par_combo(base, "skewed", 4.0),
        par_combo(new, "skewed", 4.0),
    ) {
        let (base_ratio, new_ratio) = (num(b, "steal_vs_static"), num(n, "steal_vs_static"));
        if base_ratio.is_finite() && new_ratio < base_ratio * 0.5 {
            findings.push(fail(
                "bench_regression",
                file,
                format!(
                    "skewed 4-thread stealing ratio {new_ratio:.2}x collapsed below half \
                     the baseline's {base_ratio:.2}x"
                ),
            ));
        }
    }
    findings
}

fn run_key(run: &Value) -> Option<(String, String)> {
    let meta = run.get("meta")?;
    Some((
        meta.get("algo")?.as_str()?.to_string(),
        meta.get("backend")?.as_str()?.to_string(),
    ))
}

/// Compares telemetry multi-run documents.
pub fn compare_telemetry(base: &Value, new: &Value, file: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let empty: Vec<Value> = Vec::new();
    let base_runs = base.get("runs").and_then(Value::as_array).unwrap_or(&empty);
    let new_runs = new.get("runs").and_then(Value::as_array).unwrap_or(&empty);
    if base_runs.is_empty() || new_runs.is_empty() {
        findings.push(fail(
            "bench_structure",
            file,
            "baseline or fresh document has no runs".to_string(),
        ));
        return findings;
    }
    for b in base_runs {
        let Some(key) = run_key(b) else {
            findings.push(fail(
                "bench_structure",
                file,
                "baseline run without algo/backend meta".to_string(),
            ));
            continue;
        };
        let Some(n) = new_runs.iter().find(|r| run_key(r).as_ref() == Some(&key)) else {
            findings.push(fail(
                "bench_structure",
                file,
                format!("run {}/{} missing from fresh document", key.0, key.1),
            ));
            continue;
        };
        // Baseline counter keys must all exist in the fresh run.
        if let Some(totals) = b.get("totals").and_then(Value::as_object) {
            let fresh_totals = n.get("totals").and_then(Value::as_object);
            for counter in totals.keys() {
                let present = fresh_totals.is_some_and(|t| t.contains_key(counter));
                if !present {
                    findings.push(fail(
                        "bench_structure",
                        file,
                        format!("run {}/{}: counter `{counter}` disappeared", key.0, key.1),
                    ));
                }
            }
        }
    }
    // Paper ordering: FAST / FAST* never compute more distances than the
    // baseline algorithm on the same backend.
    for backend in ["cpu", "gpu"] {
        let dist = |algo: &str| -> Option<f64> {
            let run = new_runs
                .iter()
                .find(|r| run_key(r) == Some((algo.to_string(), backend.to_string())))?;
            let v = num(run.get("totals")?, "distances_computed");
            v.is_finite().then_some(v)
        };
        let (Some(base_d), fast_d, star_d) = (dist("baseline"), dist("fast"), dist("fast_star"))
        else {
            continue;
        };
        for (name, d) in [("fast", fast_d), ("fast_star", star_d)] {
            if let Some(d) = d {
                if d > base_d {
                    findings.push(fail(
                        "bench_regression",
                        file,
                        format!(
                            "{name}/{backend} computed {d} distances, more than the \
                             baseline algorithm's {base_d}"
                        ),
                    ));
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve_doc(batched_dist: u64, unbatched_dist: u64, batched_batches: u64) -> Value {
        let json = format!(
            "{{\"version\":1,\"workload\":{{\"n\":2000,\"d\":16,\"jobs_per_rep\":24,\"reps\":1}},\
             \"modes\":[\
             {{\"mode\":\"batched\",\"max_batch\":16,\"jobs\":24,\"wall_ms\":100.0,\
               \"throughput_jobs_per_s\":240.0,\"distances_computed\":{batched_dist},\
               \"batches_executed\":{batched_batches},\"latency_p50_us\":10,\"latency_p99_us\":20}},\
             {{\"mode\":\"unbatched\",\"max_batch\":1,\"jobs\":24,\"wall_ms\":300.0,\
               \"throughput_jobs_per_s\":80.0,\"distances_computed\":{unbatched_dist},\
               \"batches_executed\":24,\"latency_p50_us\":30,\"latency_p99_us\":60}}]}}"
        );
        parse(&json).expect("valid fixture")
    }

    #[test]
    fn matching_savings_pass() {
        let base = serve_doc(18_000, 100_000, 6);
        let new = serve_doc(20_000, 100_000, 7);
        assert!(compare_serve(&base, &new, "f", 0.25).is_empty());
    }

    #[test]
    fn savings_drift_beyond_tolerance_fails() {
        let base = serve_doc(18_000, 100_000, 6); // 82% savings
        let new = serve_doc(80_000, 100_000, 6); // 20% savings
        let f = compare_serve(&base, &new, "f", 0.25);
        assert!(f.iter().any(|f| f.rule == "bench_regression"), "{f:?}");
    }

    #[test]
    fn lost_coalescing_fails() {
        let base = serve_doc(18_000, 100_000, 6);
        let new = serve_doc(99_000, 100_000, 24); // 24 batches for 24 jobs
        let f = compare_serve(&base, &new, "f", 1.0);
        assert!(
            f.iter().any(|f| f.message.contains("no coalescing")),
            "{f:?}"
        );
    }

    fn telemetry_doc(fast_dist: u64) -> Value {
        let json = format!(
            "{{\"version\":1,\"runs\":[\
             {{\"version\":1,\"meta\":{{\"algo\":\"baseline\",\"backend\":\"cpu\"}},\
               \"totals\":{{\"distances_computed\":1000000}},\"spans\":[]}},\
             {{\"version\":1,\"meta\":{{\"algo\":\"fast\",\"backend\":\"cpu\"}},\
               \"totals\":{{\"distances_computed\":{fast_dist}}},\"spans\":[]}}]}}"
        );
        parse(&json).expect("valid fixture")
    }

    #[test]
    fn telemetry_ordering_holds_and_fails_when_inverted() {
        let base = telemetry_doc(200_000);
        assert!(compare_telemetry(&base, &telemetry_doc(250_000), "f").is_empty());
        let f = compare_telemetry(&base, &telemetry_doc(2_000_000), "f");
        assert!(f.iter().any(|f| f.rule == "bench_regression"), "{f:?}");
    }

    fn shard_doc(speedup2: f64, speedup4: f64) -> Value {
        let json = format!(
            "{{\"version\":1,\"workload\":{{\"n\":512000,\"d\":16,\"k\":8,\"l\":6,\
             \"seed\":1,\"reps\":1,\"quick\":false}},\"devices\":[\
             {{\"devices\":1,\"sim_ms\":24.0,\"speedup\":1}},\
             {{\"devices\":2,\"sim_ms\":{},\"speedup\":{speedup2}}},\
             {{\"devices\":4,\"sim_ms\":{},\"speedup\":{speedup4}}}]}}",
            24.0 / speedup2,
            24.0 / speedup4
        );
        parse(&json).expect("valid fixture")
    }

    #[test]
    fn shard_floors_pass_and_fail() {
        let base = shard_doc(1.8, 2.9);
        assert!(compare_shard(&base, &shard_doc(1.7, 2.8), "f", 0.25).is_empty());
        let f = compare_shard(&base, &shard_doc(1.7, 2.3), "f", 1.0);
        assert!(
            f.iter().any(|f| f.message.contains("below the 2.5x floor")),
            "{f:?}"
        );
    }

    #[test]
    fn shard_drift_below_baseline_fails() {
        let base = shard_doc(2.0, 3.4);
        let f = compare_shard(&base, &shard_doc(1.9, 2.9), "f", 0.25);
        assert!(f.iter().any(|f| f.message.contains("drifted")), "{f:?}");
    }

    #[test]
    fn shard_missing_device_count_fails() {
        let base = shard_doc(1.8, 2.9);
        let fresh =
            parse("{\"version\":1,\"devices\":[{\"devices\":1,\"sim_ms\":24.0,\"speedup\":1}]}")
                .expect("valid fixture");
        let f = compare_shard(&base, &fresh, "f", 0.25);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "bench_structure"), "{f:?}");
    }

    fn stream_doc(ratio_small: f64, ratio_big: f64, exact: bool) -> Value {
        let mk = |fraction: f64, ratio: f64| {
            let full = 1_000_000u64;
            let inc = (ratio * full as f64) as u64;
            format!(
                "{{\"fraction\":{fraction},\"batch\":100,\"distances_full\":{full},\
                 \"distances_inc\":{inc},\"segmental_inc\":5000,\"dist_cache_hits\":900,\
                 \"ratio\":{ratio},\"exact_match\":{exact},\"sim_ms_full\":8.0,\
                 \"sim_ms_inc\":1.0}}"
            )
        };
        let json = format!(
            "{{\"version\":1,\"workload\":{{\"n\":32000,\"d\":15,\"k\":8,\"l\":5,\
             \"seed\":1,\"quick\":false}},\"fractions\":[{},{}]}}",
            mk(0.01, ratio_small),
            mk(0.05, ratio_big)
        );
        parse(&json).expect("valid fixture")
    }

    #[test]
    fn stream_floor_passes_and_fails() {
        let base = stream_doc(0.05, 0.4, true);
        assert!(compare_stream(&base, &stream_doc(0.06, 0.42, true), "f", 0.25).is_empty());
        let f = compare_stream(&base, &stream_doc(0.30, 0.4, true), "f", 1.0);
        assert!(f.iter().any(|f| f.message.contains("ceiling")), "{f:?}");
    }

    #[test]
    fn stream_inexact_result_fails() {
        let base = stream_doc(0.05, 0.4, true);
        let f = compare_stream(&base, &stream_doc(0.05, 0.4, false), "f", 1.0);
        assert!(f.iter().any(|f| f.message.contains("not exact")), "{f:?}");
    }

    #[test]
    fn stream_ratio_drift_above_baseline_fails() {
        let base = stream_doc(0.05, 0.30, true);
        let f = compare_stream(&base, &stream_doc(0.06, 0.60, true), "f", 0.1);
        assert!(f.iter().any(|f| f.message.contains("drifted")), "{f:?}");
    }

    #[test]
    fn stream_missing_gated_fraction_fails() {
        let base = stream_doc(0.05, 0.4, true);
        let fresh = parse(
            "{\"version\":1,\"fractions\":[{\"fraction\":0.05,\"batch\":100,\
             \"distances_full\":1000,\"distances_inc\":400,\"ratio\":0.4,\
             \"exact_match\":true}]}",
        )
        .expect("valid fixture");
        let f = compare_stream(&base, &fresh, "f", 0.25);
        assert!(
            f.iter().any(|f| f.message.contains("not exercised")),
            "{f:?}"
        );
    }

    fn distance_doc(ratio: f64, batch_ratio: f64, bitwise: bool) -> Value {
        let mk = |n: u64, d: u64| {
            format!(
                "{{\"n\":{n},\"d\":{d},\"scalar_ms\":10.0,\"simd_ms\":{},\"ratio\":{ratio},\
                 \"batch_scalar_ms\":100.0,\"batch_simd_ms\":{},\"batch_ratio\":{batch_ratio},\
                 \"bitwise_equal\":{bitwise}}}",
                10.0 / ratio,
                100.0 / batch_ratio
            )
        };
        let json = format!(
            "{{\"version\":1,\"workload\":{{\"batch_rows\":10,\"seed\":1,\"reps\":3,\
             \"quick\":false}},\"combos\":[{},{}]}}",
            mk(64_000, 8),
            mk(64_000, 32)
        );
        parse(&json).expect("valid fixture")
    }

    #[test]
    fn distance_floor_passes_and_fails() {
        let base = distance_doc(2.5, 3.0, true);
        assert!(compare_distance(&base, &distance_doc(2.1, 2.8, true), "f").is_empty());
        let f = compare_distance(&base, &distance_doc(1.4, 1.8, true), "f");
        assert!(
            f.iter().any(|f| f.message.contains("vectorization floor")),
            "{f:?}"
        );
    }

    #[test]
    fn distance_bitwise_divergence_fails() {
        let base = distance_doc(2.5, 3.0, true);
        let f = compare_distance(&base, &distance_doc(2.5, 3.0, false), "f");
        assert!(
            f.iter().any(|f| f.message.contains("not bitwise-equal")),
            "{f:?}"
        );
    }

    #[test]
    fn distance_slower_than_scalar_combo_fails() {
        let base = distance_doc(2.5, 3.0, true);
        let f = compare_distance(&base, &distance_doc(0.6, 3.0, true), "f");
        assert!(f.iter().any(|f| f.message.contains("per-combo")), "{f:?}");
    }

    #[test]
    fn distance_collapse_below_half_of_baseline_fails() {
        // 2.1x clears the absolute floor but is under half the baseline's 5x.
        let base = distance_doc(5.0, 5.0, true);
        let f = compare_distance(&base, &distance_doc(2.1, 2.1, true), "f");
        assert!(f.iter().any(|f| f.message.contains("collapsed")), "{f:?}");
        // The same fresh run against a modest baseline passes.
        let base = distance_doc(2.5, 3.0, true);
        assert!(compare_distance(&base, &distance_doc(2.1, 2.1, true), "f").is_empty());
    }

    #[test]
    fn distance_empty_or_malformed_combos_fail() {
        let base = distance_doc(2.5, 3.0, true);
        let fresh = parse("{\"version\":1,\"combos\":[]}").expect("valid fixture");
        let f = compare_distance(&base, &fresh, "f");
        assert!(f.iter().any(|f| f.message.contains("no combos")), "{f:?}");
        let fresh =
            parse("{\"version\":1,\"combos\":[{\"n\":64000,\"d\":8}]}").expect("valid fixture");
        let f = compare_distance(&base, &fresh, "f");
        assert!(
            f.iter().any(|f| f.message.contains("expected positive")),
            "{f:?}"
        );
    }

    #[test]
    fn missing_run_or_counter_fails() {
        let base = telemetry_doc(200_000);
        let fresh = parse(
            "{\"version\":1,\"runs\":[{\"version\":1,\
             \"meta\":{\"algo\":\"baseline\",\"backend\":\"cpu\"},\
             \"totals\":{},\"spans\":[]}]}",
        )
        .expect("valid fixture");
        let f = compare_telemetry(&base, &fresh, "f");
        assert!(f.iter().any(|f| f.message.contains("missing")), "{f:?}");
        assert!(f.iter().any(|f| f.message.contains("disappeared")), "{f:?}");
    }

    fn par_doc(skewed_ratio: f64, balanced_ratio: f64, bitwise: bool) -> Value {
        let mk = |workload: &str, ratio: f64| {
            format!(
                "{{\"workload\":\"{workload}\",\"requested_threads\":4,\"threads\":4,\
                 \"seq_ms\":40.0,\"static_ms\":20.0,\"steal_ms\":{},\
                 \"steal_vs_static\":{ratio},\"steal_vs_seq\":2.0,\
                 \"bitwise_equal\":{bitwise}}}",
                20.0 / ratio
            )
        };
        let json = format!(
            "{{\"version\":1,\"workload\":{{\"n\":24576,\"clusters\":64,\"base_cost\":600,\
             \"simulated\":true,\"quick\":false}},\"combos\":[{},{}]}}",
            mk("balanced", balanced_ratio),
            mk("skewed", skewed_ratio)
        );
        parse(&json).expect("valid fixture")
    }

    #[test]
    fn par_floors_pass_and_fail() {
        let base = par_doc(2.6, 1.0, true);
        assert!(compare_par(&base, &par_doc(2.4, 0.98, true), "f").is_empty());
        let f = compare_par(&base, &par_doc(1.1, 1.0, true), "f");
        assert!(f.iter().any(|f| f.message.contains("1.2x floor")), "{f:?}");
        let f = compare_par(&base, &par_doc(2.6, 0.7, true), "f");
        assert!(f.iter().any(|f| f.message.contains("0.9x floor")), "{f:?}");
    }

    #[test]
    fn par_bitwise_divergence_fails() {
        let base = par_doc(2.6, 1.0, true);
        let f = compare_par(&base, &par_doc(2.6, 1.0, false), "f");
        assert!(
            f.iter().any(|f| f.message.contains("not bitwise-equal")),
            "{f:?}"
        );
    }

    #[test]
    fn par_skewed_collapse_below_baseline_fails() {
        // 1.25x clears the absolute floor but is under half the baseline's.
        let base = par_doc(2.8, 1.0, true);
        let f = compare_par(&base, &par_doc(1.25, 1.0, true), "f");
        assert!(f.iter().any(|f| f.message.contains("collapsed")), "{f:?}");
    }

    #[test]
    fn par_missing_gated_combo_fails() {
        let base = par_doc(2.6, 1.0, true);
        let fresh = parse(
            "{\"version\":1,\"combos\":[{\"workload\":\"balanced\",\
             \"requested_threads\":4,\"threads\":4,\"seq_ms\":40.0,\"static_ms\":20.0,\
             \"steal_ms\":20.0,\"steal_vs_static\":1.0,\"steal_vs_seq\":2.0,\
             \"bitwise_equal\":true}]}",
        )
        .expect("valid fixture");
        let f = compare_par(&base, &fresh, "f");
        assert!(
            f.iter()
                .any(|f| f.message.contains("no skewed combo at 4 threads")),
            "{f:?}"
        );
    }
}
