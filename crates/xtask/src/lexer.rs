//! A minimal Rust token scanner for the workspace lints.
//!
//! This is deliberately not a full parser (the container has no `syn`);
//! the lint rules only need a faithful token stream — identifiers and
//! punctuation with line numbers — with comments, strings, raw strings,
//! char literals, and lifetimes handled correctly so that `panic!` inside
//! a doc comment or a string never counts as a call. The scanner also
//! records which `// lint:allow(...)` markers appear on which lines, and
//! which token ranges sit under `#[cfg(test)]`, so rules can honor both.

/// One lexical token the lint rules care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation character (`.`, `(`, `{`, `!`, `#`, …).
    Punct(char),
    /// Any literal (string, raw string, char, number) — collapsed, since
    /// rules never look inside literals.
    Literal,
}

/// A token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// The identifier text (empty for punct/literal).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// True when this token is inside an item annotated `#[cfg(test)]`.
    pub in_test: bool,
}

impl Tok {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for this punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// The scan result: the token stream plus per-line `lint:allow` markers.
#[derive(Debug, Default)]
pub struct Scan {
    /// Tokens in source order.
    pub tokens: Vec<Tok>,
    /// `(line, rule)` pairs for every `// lint:allow(<rule>) -- reason`
    /// marker; a finding on line L is suppressed by a marker on L or L-1.
    pub allows: Vec<(u32, String)>,
}

impl Scan {
    /// True when `rule` is allowed on `line` (marker on the same or the
    /// preceding line).
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || *l + 1 == line))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans `source` into tokens; never fails (unterminated constructs just
/// consume to EOF, which is fine for linting — rustc rejects such files
/// long before the lint runs).
pub fn scan(source: &str) -> Scan {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Scan::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = chars.len();

    macro_rules! bump_line {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < n {
        let c = chars[i];
        // Whitespace
        if c.is_whitespace() {
            bump_line!(c);
            i += 1;
            continue;
        }
        // Line comment (may carry a lint:allow marker)
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if let Some(pos) = text.find("lint:allow(") {
                let rest = &text[pos + "lint:allow(".len()..];
                if let Some(end) = rest.find(')') {
                    out.allows.push((line, rest[..end].trim().to_string()));
                }
            }
            continue;
        }
        // Block comment (nested)
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    bump_line!(chars[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw strings / raw byte strings: r"..", r#".."#, br".." …
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (prefix_len, rest0) = if c == 'b' && chars[i + 1] == 'r' {
                (2, i + 2)
            } else if c == 'r' {
                (1, i + 1)
            } else {
                (0, i)
            };
            if prefix_len > 0 && rest0 < n && (chars[rest0] == '#' || chars[rest0] == '"') {
                let mut j = rest0;
                let mut hashes = 0;
                while j < n && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && chars[j] == '"' {
                    // scan to `"` + hashes `#`s
                    j += 1;
                    'raw: while j < n {
                        if chars[j] == '"' {
                            let mut h = 0;
                            while j + 1 + h < n && h < hashes && chars[j + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        bump_line!(chars[j]);
                        j += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                        in_test: false,
                    });
                    i = j;
                    continue;
                }
                // `r#ident` raw identifier: fall through to ident scan below
            }
        }
        // String / byte-string literal
        if c == '"' || (c == 'b' && i + 1 < n && chars[i + 1] == '"') {
            i += if c == 'b' { 2 } else { 1 };
            while i < n {
                if chars[i] == '\\' {
                    i += 2;
                    continue;
                }
                if chars[i] == '"' {
                    i += 1;
                    break;
                }
                bump_line!(chars[i]);
                i += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Literal,
                text: String::new(),
                line,
                in_test: false,
            });
            continue;
        }
        // Char literal vs lifetime
        if c == '\'' {
            // Lifetime: 'ident not followed by a closing quote.
            if i + 1 < n && is_ident_start(chars[i + 1]) {
                let mut j = i + 1;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                if j < n && chars[j] == '\'' && j == i + 2 {
                    // 'x' — a char literal
                    i = j + 1;
                    out.tokens.push(Tok {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                        in_test: false,
                    });
                } else {
                    // lifetime — emit nothing, rules don't need it
                    i = j;
                }
                continue;
            }
            // Escaped or symbolic char literal: '\n', '\'', '(' …
            let mut j = i + 1;
            if j < n && chars[j] == '\\' {
                j += 2;
            } else if j < n {
                j += 1;
            }
            if j < n && chars[j] == '\'' {
                j += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Literal,
                text: String::new(),
                line,
                in_test: false,
            });
            i = j;
            continue;
        }
        // Identifier / keyword (incl. r#raw idents)
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
                in_test: false,
            });
            continue;
        }
        // Number literal (digits; suffixes get eaten by ident rule later,
        // which is fine for our rules)
        if c.is_ascii_digit() {
            while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '.' || chars[i] == '_')
            {
                // avoid swallowing `..` range or method call on literal
                if chars[i] == '.' && i + 1 < n && !chars[i + 1].is_ascii_digit() {
                    break;
                }
                i += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Literal,
                text: String::new(),
                line,
                in_test: false,
            });
            continue;
        }
        // Punctuation, one char at a time
        out.tokens.push(Tok {
            kind: TokKind::Punct(c),
            text: String::new(),
            line,
            in_test: false,
        });
        i += 1;
    }

    mark_test_items(&mut out.tokens);
    out
}

/// Marks every token belonging to an item annotated `#[cfg(test)]` (the
/// attribute's own tokens included). Handles the common item shapes: the
/// annotated item ends at its matching close brace, or at a top-level `;`
/// for brace-less items (`use`, type aliases).
fn mark_test_items(tokens: &mut [Tok]) {
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_at(tokens, i) {
            // Find the end of the annotated item.
            let mut j = i;
            // skip over any further attributes
            while j < tokens.len() && tokens[j].is_punct('#') {
                // skip #[ ... ] balanced
                let mut depth = 0;
                j += 1; // at '['
                while j < tokens.len() {
                    if tokens[j].is_punct('[') {
                        depth += 1;
                    } else if tokens[j].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            // now scan to item end: first `{` balanced to `}` , or `;`
            let mut brace_depth = 0;
            let mut end = j;
            while end < tokens.len() {
                if tokens[end].is_punct('{') {
                    brace_depth += 1;
                } else if tokens[end].is_punct('}') {
                    brace_depth -= 1;
                    if brace_depth == 0 {
                        end += 1;
                        break;
                    }
                } else if tokens[end].is_punct(';') && brace_depth == 0 {
                    end += 1;
                    break;
                }
                end += 1;
            }
            for t in tokens[i..end].iter_mut() {
                t.in_test = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
}

/// True when tokens at `i` start `#[cfg(test)]` or `#[cfg(all(test, …))]`
/// (any cfg attribute that mentions the `test` predicate).
fn is_cfg_test_at(tokens: &[Tok], i: usize) -> bool {
    if !(tokens.get(i).is_some_and(|t| t.is_punct('#'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg")))
    {
        return false;
    }
    // scan the attribute body for the `test` ident
    let mut depth = 0;
    let mut j = i + 1;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if tokens[j].is_ident("test") {
            return true;
        }
        j += 1;
    }
    false
}

/// Returns the index of the `}` matching the `{` at `open` (which must be
/// a `{` token), or `tokens.len()` when unbalanced.
pub fn matching_brace(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('{') {
            depth += 1;
        } else if tokens[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_hide_tokens() {
        let s = scan(
            r##"
            // panic! in a comment
            /* unwrap() in a block /* nested */ comment */
            let x = "panic!(\"no\")"; // strings too
            let c = 'p';
            let r = r#"panic!"#;
        "##,
        );
        assert!(!s.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(!s.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> &'a str { x.trim() }");
        assert!(s.tokens.iter().any(|t| t.is_ident("trim")));
        assert!(s.tokens.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let s = scan(
            "fn live() { a.unwrap(); }\n\
             #[cfg(test)]\n\
             mod tests {\n    fn t() { b.unwrap(); }\n}\n\
             fn live2() {}",
        );
        let unwraps: Vec<bool> = s
            .tokens
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        let live2 = s.tokens.iter().find(|t| t.is_ident("live2")).unwrap();
        assert!(!live2.in_test);
    }

    #[test]
    fn allow_markers_are_collected() {
        let s = scan(
            "// lint:allow(no_panic) -- the injected-panic fixture\n\
             x.unwrap();\n\
             y.unwrap();",
        );
        assert_eq!(s.allows, vec![(1, "no_panic".to_string())]);
        assert!(s.allowed(1, "no_panic"));
        assert!(s.allowed(2, "no_panic"));
        assert!(!s.allowed(3, "no_panic"));
    }

    #[test]
    fn matching_brace_matches() {
        let s = scan("loop { if x { y() } }");
        let open = s.tokens.iter().position(|t| t.is_punct('{')).unwrap();
        let close = matching_brace(&s.tokens, open);
        assert!(s.tokens[close].is_punct('}'));
        assert_eq!(close, s.tokens.len() - 1);
    }
}
