//! Workspace automation (`cargo xtask <command>`).
//!
//! Commands:
//!
//! * `lint` — the custom workspace lints over `crates/` (see
//!   [`lint`] and DESIGN.md §11); writes
//!   `results/lint_findings.json` and exits non-zero on any finding.
//! * `deny` — offline dependency/license policy from the committed
//!   manifests ([`deny`]); writes `results/deny.json`.
//! * `msrv` — checks the MSRV pin: the workspace sets `rust-version`
//!   and every member inherits it.
//! * `bench-compare --kind <serve|telemetry|shard|stream|distance|par> <baseline> <fresh>` —
//!   ratio/structure comparison of a fresh bench run against the
//!   committed baseline ([`bench_compare`]).

mod bench_compare;
mod deny;
mod lexer;
mod lint;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lint::{findings_json, Finding};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(findings) if findings.is_empty() => ExitCode::SUCCESS,
        Ok(findings) => {
            for f in &findings {
                eprintln!("{}: {}:{}: {}", f.rule, f.file, f.line, f.message);
            }
            eprintln!("{} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("xtask: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<Vec<Finding>, String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "lint" => {
            let root = flag_value(rest, "--root").unwrap_or_else(|| ".".into());
            let out = flag_value(rest, "--json-out")
                .unwrap_or_else(|| format!("{root}/results/lint_findings.json"));
            let findings = lint::run(Path::new(&root))?;
            write_json(&out, &findings_json(&findings))?;
            println!("lint: {} finding(s), report at {out}", findings.len());
            Ok(findings)
        }
        "deny" => {
            let root = flag_value(rest, "--root").unwrap_or_else(|| ".".into());
            let out = flag_value(rest, "--json-out")
                .unwrap_or_else(|| format!("{root}/results/deny.json"));
            let findings = deny::run(Path::new(&root))?;
            write_json(&out, &findings_json(&findings))?;
            println!("deny: {} finding(s), report at {out}", findings.len());
            Ok(findings)
        }
        "msrv" => {
            let root = flag_value(rest, "--root").unwrap_or_else(|| ".".into());
            let findings = msrv(Path::new(&root))?;
            println!("msrv: {} finding(s)", findings.len());
            Ok(findings)
        }
        "bench-compare" => {
            let kind = flag_value(rest, "--kind").ok_or("bench-compare needs --kind")?;
            let tolerance = flag_value(rest, "--tolerance")
                .map(|t| t.parse::<f64>().map_err(|e| format!("--tolerance: {e}")))
                .transpose()?
                .unwrap_or(0.25);
            let paths: Vec<&String> = positional(rest);
            let [baseline, fresh] = paths.as_slice() else {
                return Err("bench-compare needs <baseline> <fresh>".to_string());
            };
            let findings =
                bench_compare::run(&kind, Path::new(baseline), Path::new(fresh), tolerance)?;
            if let Some(out) = flag_value(rest, "--json-out") {
                write_json(&out, &findings_json(&findings))?;
            }
            println!("bench-compare({kind}): {} finding(s)", findings.len());
            Ok(findings)
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: cargo xtask <lint|deny|msrv|bench-compare> [--root DIR] [--json-out PATH]\n       \
     cargo xtask bench-compare --kind <serve|telemetry|shard|stream|distance|par> [--tolerance F] <baseline> <fresh>"
        .to_string()
}

/// `--flag value` lookup.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Arguments that are neither flags nor flag values.
fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        out.push(a);
    }
    out
}

fn write_json(path: &str, json: &str) -> Result<(), String> {
    if let Some(dir) = Path::new(path).parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))
}

/// MSRV pinning: the workspace declares `rust-version` under
/// `[workspace.package]` and every member inherits it with
/// `rust-version.workspace = true`, so a single edit moves the floor and
/// CI's pinned-toolchain build job stays honest.
fn msrv(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    let text = std::fs::read_to_string(&root_manifest)
        .map_err(|e| format!("read {}: {e}", root_manifest.display()))?;
    let mut section = String::new();
    let mut pinned = None;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') && line.ends_with(']') {
            section = line[1..line.len() - 1].to_string();
        } else if section == "workspace.package" && line.starts_with("rust-version") {
            pinned = line
                .split('=')
                .nth(1)
                .map(|v| v.trim().trim_matches('"').to_string());
        }
    }
    match pinned {
        Some(v) => println!("workspace MSRV: {v}"),
        None => findings.push(Finding {
            rule: "msrv_pin",
            file: "Cargo.toml".to_string(),
            line: 1,
            message: "no rust-version under [workspace.package]".to_string(),
        }),
    }
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for e in entries.flatten() {
            let m = e.path().join("Cargo.toml");
            if m.is_file() {
                members.push(m);
            }
        }
    }
    members.sort();
    for manifest in members {
        let rel = manifest
            .strip_prefix(root)
            .unwrap_or(&manifest)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&manifest)
            .map_err(|e| format!("read {}: {e}", manifest.display()))?;
        let inherits = text
            .lines()
            .any(|l| l.trim().replace(' ', "") == "rust-version.workspace=true");
        if !inherits {
            findings.push(Finding {
                rule: "msrv_pin",
                file: rel,
                line: 1,
                message: "crate does not inherit the workspace MSRV \
                          (`rust-version.workspace = true`)"
                    .to_string(),
            });
        }
    }
    Ok(findings)
}
