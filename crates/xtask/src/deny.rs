//! Offline dependency policy (`cargo xtask deny`).
//!
//! The real `cargo-deny` needs a registry index; this container has no
//! network, so the policy that matters day-to-day is enforced here from
//! the committed manifests alone (CI additionally runs `cargo-deny`
//! against `deny.toml` when the network is available — same policy, two
//! enforcers):
//!
//! * every **external** dependency must be on the allowlist baked into the
//!   container image — anything else cannot build here;
//! * no git dependencies, no wildcard (`*`) versions;
//! * the workspace license is `MIT OR Apache-2.0` and member crates
//!   inherit it (`license.workspace = true`).

use std::path::Path;

use crate::lint::Finding;

/// External crates the container image bakes in. Path/workspace deps are
/// always allowed.
const ALLOWED_EXTERNAL: [&str; 5] = ["rand", "crossbeam", "parking_lot", "proptest", "criterion"];

const DEP_SECTIONS: [&str; 4] = [
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

/// Checks the workspace rooted at `root`; findings reuse the lint shape so
/// they serialize with [`crate::lint::findings_json`].
pub fn run(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for e in entries.flatten() {
            let m = e.path().join("Cargo.toml");
            if m.is_file() {
                manifests.push(m);
            }
        }
    }
    manifests.sort();
    for manifest in manifests {
        let rel = manifest
            .strip_prefix(root)
            .unwrap_or(&manifest)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&manifest)
            .map_err(|e| format!("read {}: {e}", manifest.display()))?;
        check_manifest(&rel, &text, &mut findings);
    }
    Ok(findings)
}

/// Line-oriented TOML walk — the workspace's manifests keep one
/// dependency per line, which is all this needs (and a new multi-line
/// table would simply be flagged as unparsable, which is a finding too).
pub fn check_manifest(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    let mut section = String::new();
    let is_root = rel == "Cargo.toml";
    let mut saw_license_key = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = (idx + 1) as u32;
        if line.starts_with('[') && line.ends_with(']') {
            section = line[1..line.len() - 1].to_string();
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if section == "workspace.package" && line.starts_with("license") {
            saw_license_key = true;
            if !line.contains("MIT OR Apache-2.0") {
                findings.push(Finding {
                    rule: "deny_license",
                    file: rel.to_string(),
                    line: lineno,
                    message: format!("workspace license must be `MIT OR Apache-2.0`, got: {line}"),
                });
            }
        }
        if section == "package" && line.starts_with("license") && !line.contains("workspace") {
            findings.push(Finding {
                rule: "deny_license",
                file: rel.to_string(),
                line: lineno,
                message: "member crates must inherit the license (`license.workspace = true`)"
                    .to_string(),
            });
        }
        if !DEP_SECTIONS.contains(&section.as_str()) {
            continue;
        }
        let Some((name_part, value)) = line.split_once('=') else {
            continue;
        };
        let name = name_part.trim().trim_matches('"');
        let value = value.trim();
        // `foo.workspace = true` — inherited, resolved at the root.
        if name.ends_with(".workspace") {
            continue;
        }
        if value.contains("git =") || value.contains("git=") {
            findings.push(Finding {
                rule: "deny_source",
                file: rel.to_string(),
                line: lineno,
                message: format!("git dependency `{name}` — registry and path sources only"),
            });
            continue;
        }
        let is_path = value.contains("path =") || value.contains("path=");
        let is_workspace_inherit = value.contains("workspace = true");
        if is_path || is_workspace_inherit {
            continue;
        }
        if value.contains('*') {
            findings.push(Finding {
                rule: "deny_version",
                file: rel.to_string(),
                line: lineno,
                message: format!("wildcard version for `{name}`"),
            });
        }
        if !ALLOWED_EXTERNAL.contains(&name) {
            findings.push(Finding {
                rule: "deny_external",
                file: rel.to_string(),
                line: lineno,
                message: format!(
                    "external dependency `{name}` is not in the offline allowlist \
                     ({}) — the build container cannot fetch it",
                    ALLOWED_EXTERNAL.join(", "),
                ),
            });
        }
    }
    if is_root && !saw_license_key {
        findings.push(Finding {
            rule: "deny_license",
            file: rel.to_string(),
            line: 1,
            message: "workspace manifest has no [workspace.package] license".to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(text: &str) -> Vec<&'static str> {
        let mut f = Vec::new();
        check_manifest("crates/x/Cargo.toml", text, &mut f);
        f.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn allowed_and_path_deps_pass() {
        let text = "\
[package]\nname = \"x\"\nlicense.workspace = true\n\
[dependencies]\nrand = \"0.8\"\nproclus = { path = \"../core\" }\n\
proclus-telemetry.workspace = true\n\
[dev-dependencies]\nproptest.workspace = true\n";
        assert!(check(text).is_empty());
    }

    #[test]
    fn unlisted_external_is_denied() {
        let text = "[dependencies]\nserde = \"1\"\n";
        assert_eq!(check(text), vec!["deny_external"]);
    }

    #[test]
    fn git_and_wildcard_are_denied() {
        let text = "[dependencies]\n\
            left = { git = \"https://example.com/x\" }\n\
            rand = \"*\"\n";
        let rules = check(text);
        assert!(rules.contains(&"deny_source"), "{rules:?}");
        assert!(rules.contains(&"deny_version"), "{rules:?}");
    }

    #[test]
    fn hardcoded_member_license_is_denied() {
        let text = "[package]\nname = \"x\"\nlicense = \"GPL-3.0\"\n";
        assert_eq!(check(text), vec!["deny_license"]);
    }
}
