//! The workspace lint rules (`cargo xtask lint`).
//!
//! Six rules, each an AST-shaped walk over the token stream from
//! [`crate::lexer`] (DESIGN.md §11 documents the catalogue and how to add
//! a rule):
//!
//! | rule                  | scope                                   | enforces |
//! |-----------------------|-----------------------------------------|----------|
//! | `no_panic`            | `crates/{serve,stream}/src`, driver + backends | no `.unwrap()` / `.expect()` / `panic!`-family in hot paths |
//! | `cancel_polled`       | `core/src/{driver,backend}.rs`, `gpu/src/{backend,shard}.rs`, `stream/src/driver.rs` | every `loop`/`while` polls the `CancelToken` |
//! | `launch_entry`        | all crates except `gpu-sim` internals   | kernel launches only in `crates/gpu/src/kernels/` |
//! | `public_result_error` | `crates/{core,gpu,serve}/src`           | public `Result` APIs use the typed error set |
//! | `float_cmp_guarded`   | `core/src/{fast,fast_star}.rs`, `stream/src/driver.rs` | `dist`/`delta` comparisons sit in a function with a NaN sentinel |
//! | `no_raw_scope`        | all crates except `par.rs`, `gpu-sim`, `verify` | data-parallel fan-out goes through the `Executor` pool, not raw `thread::spawn` / `thread::scope` |
//!
//! Findings are machine-readable ([`Finding`], [`findings_json`]) and any
//! finding fails the build (non-zero exit from `main`). Intentional
//! exceptions carry `// lint:allow(<rule>) -- <reason>` on the same or
//! preceding line — the reason is mandatory by convention and reviewed,
//! not parsed.

use std::path::{Path, PathBuf};

use crate::lexer::{matching_brace, scan, Scan, Tok, TokKind};

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (`no_panic`, `cancel_polled`, …).
    pub rule: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and how to fix it.
    pub message: String,
}

/// Serializes findings in the workspace's report style.
pub fn findings_json(findings: &[Finding]) -> String {
    use proclus_telemetry::json::escape;
    let mut out = String::from("{\"version\":1,\"component\":\"xtask-lint\",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            f.rule,
            escape(&f.file),
            f.line,
            escape(&f.message),
        ));
    }
    out.push_str("]}");
    out
}

/// Runs every rule over the workspace rooted at `root`.
pub fn run(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for file in rust_sources(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let source =
            std::fs::read_to_string(&file).map_err(|e| format!("read {}: {e}", file.display()))?;
        findings.extend(lint_source(&rel, &source));
    }
    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Ok(findings)
}

/// Lints one file's source text; `rel` selects which rules apply.
pub fn lint_source(rel: &str, source: &str) -> Vec<Finding> {
    let scan = scan(source);
    let mut findings = Vec::new();
    if no_panic_in_scope(rel) {
        no_panic(rel, &scan, &mut findings);
    }
    if is_driver(rel) {
        cancel_polled(rel, &scan, &mut findings);
    }
    if launch_entry_in_scope(rel) {
        launch_entry(rel, &scan, &mut findings);
    }
    if public_result_in_scope(rel) {
        public_result_error(rel, &scan, &mut findings);
    }
    if float_cmp_in_scope(rel) {
        float_cmp_guarded(rel, &scan, &mut findings);
    }
    if no_raw_scope_in_scope(rel) {
        no_raw_scope(rel, &scan, &mut findings);
    }
    findings
}

fn rust_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let mut stack = vec![crates];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

// ---------------------------------------------------------------- scopes

fn is_driver(rel: &str) -> bool {
    rel == "crates/core/src/driver.rs"
        || rel == "crates/core/src/backend.rs"
        || rel == "crates/gpu/src/backend.rs"
        || rel == "crates/gpu/src/shard.rs"
        || rel == "crates/stream/src/driver.rs"
}

fn no_panic_in_scope(rel: &str) -> bool {
    (rel.starts_with("crates/serve/src/")
        || rel.starts_with("crates/stream/src/")
        || is_driver(rel))
        && !rel.contains("/tests/")
}

fn launch_entry_in_scope(rel: &str) -> bool {
    rel.starts_with("crates/")
        && !rel.starts_with("crates/gpu-sim/")
        && !rel.starts_with("crates/gpu/src/kernels/")
        && !rel.contains("/tests/")
        && !rel.contains("/benches/")
}

/// The δ-scan hot paths: the files whose `dist < δ` comparisons drive
/// medoid decisions and ΔL shell membership.
fn float_cmp_in_scope(rel: &str) -> bool {
    rel == "crates/core/src/fast.rs"
        || rel == "crates/core/src/fast_star.rs"
        || rel == "crates/stream/src/driver.rs"
}

/// Everywhere except the executor itself (`par.rs` is the one sanctioned
/// home of raw threads), the simulator, the verification harness, and
/// test/bench code.
fn no_raw_scope_in_scope(rel: &str) -> bool {
    rel.starts_with("crates/")
        && rel != "crates/core/src/par.rs"
        && !rel.starts_with("crates/gpu-sim/")
        && !rel.starts_with("crates/verify/")
        && !rel.contains("/tests/")
        && !rel.contains("/benches/")
}

fn public_result_in_scope(rel: &str) -> bool {
    (rel.starts_with("crates/core/src/")
        || rel.starts_with("crates/gpu/src/")
        || rel.starts_with("crates/serve/src/"))
        && !rel.contains("/tests/")
}

// ----------------------------------------------------------------- rules

/// `no_panic`: no `.unwrap()` / `.expect(…)` / `panic!`-family macros in
/// the serving layer or the driver hot paths — these run inside worker
/// threads and behind the public API, where a panic either poisons shared
/// state or rides the panic-isolation path that exists for *bugs*, not
/// for control flow. `unwrap_or_else`, `unwrap_or_default`, … are fine
/// and not matched.
fn no_panic(rel: &str, scan: &Scan, findings: &mut Vec<Finding>) {
    const MACROS: [&str; 4] = ["panic", "todo", "unimplemented", "unreachable"];
    let toks = &scan.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let method_call = |name: &str| {
            t.is_ident(name)
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        };
        let bang_macro = MACROS.iter().any(|m| t.is_ident(m))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        let hit = if method_call("unwrap") || method_call("expect") {
            Some(format!(
                ".{}() in a no-panic path — return a typed error instead",
                t.text
            ))
        } else if bang_macro {
            Some(format!(
                "{}! in a no-panic path — return a typed error instead",
                t.text
            ))
        } else {
            None
        };
        if let Some(message) = hit {
            if !scan.allowed(t.line, "no_panic") {
                findings.push(Finding {
                    rule: "no_panic",
                    file: rel.to_string(),
                    line: t.line,
                    message,
                });
            }
        }
    }
}

/// `cancel_polled`: every `loop { … }` / `while … { … }` in the driver
/// and backend hot paths must poll the `CancelToken` (a `cancel…check(…)`
/// call somewhere in its body). The iterative refinement loops are the places
/// a runaway parameter set spins for minutes; a loop that cannot be
/// cancelled holds its job slot and its worker thread hostage.
fn cancel_polled(rel: &str, scan: &Scan, findings: &mut Vec<Finding>) {
    let toks = &scan.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || !(t.is_ident("loop") || t.is_ident("while")) {
            continue;
        }
        // Find the body's `{` (immediately next for `loop`; after the
        // condition for `while`).
        let mut open = i + 1;
        while open < toks.len() && !toks[open].is_punct('{') {
            open += 1;
        }
        if open >= toks.len() {
            continue;
        }
        let close = matching_brace(toks, open);
        let body = &toks[open..close];
        let polls = body
            .windows(3)
            .any(|w| w[0].is_ident("cancel") && w[1].is_punct('.') && w[2].is_ident("check"));
        if !polls && !scan.allowed(t.line, "cancel_polled") {
            findings.push(Finding {
                rule: "cancel_polled",
                file: rel.to_string(),
                line: t.line,
                message: format!(
                    "`{}` body never polls the CancelToken (`cancel.check()?`) — \
                     phase loops must stay cancellable",
                    t.text
                ),
            });
        }
    }
}

/// `launch_entry`: `.launch(…)` / `.launch_on(…)` calls — the gpu-sim
/// sanitizer-aware kernel entry points — may only appear in the audited
/// wrappers under `crates/gpu/src/kernels/`. Everywhere else must call
/// those wrappers, so the sanitizer, launch statistics, and hazard checks
/// can never be bypassed.
fn launch_entry(rel: &str, scan: &Scan, findings: &mut Vec<Finding>) {
    let toks = &scan.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let is_launch = (t.is_ident("launch") || t.is_ident("launch_on"))
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if is_launch && !scan.allowed(t.line, "launch_entry") {
            findings.push(Finding {
                rule: "launch_entry",
                file: rel.to_string(),
                line: t.line,
                message: format!(
                    ".{}() outside crates/gpu/src/kernels/ — kernel launches must go \
                     through the audited sanitizer-aware wrappers",
                    t.text
                ),
            });
        }
    }
}

/// `no_raw_scope`: no `thread::spawn` / `thread::scope` /
/// `thread::Builder` (std or crossbeam) outside `core/src/par.rs` — ad-hoc
/// threads bypass the shared work-stealing pool, so concurrent callers
/// would oversubscribe cores and their scheduling would sit outside the
/// pool's determinism and telemetry story. Long-lived *service* threads
/// (the serve worker loop, stream feeders) are legitimate and carry a
/// reviewed `lint:allow(no_raw_scope)`.
fn no_raw_scope(rel: &str, scan: &Scan, findings: &mut Vec<Finding>) {
    const ENTRIES: [&str; 3] = ["spawn", "scope", "Builder"];
    let toks = &scan.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || !t.is_ident("thread") {
            continue;
        }
        let entry = match (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3)) {
            (Some(a), Some(b), Some(e))
                if a.is_punct(':') && b.is_punct(':') && ENTRIES.iter().any(|n| e.is_ident(n)) =>
            {
                e
            }
            _ => continue,
        };
        if !scan.allowed(entry.line, "no_raw_scope") {
            findings.push(Finding {
                rule: "no_raw_scope",
                file: rel.to_string(),
                line: entry.line,
                message: format!(
                    "thread::{} outside core/src/par.rs — data-parallel work must go \
                     through the Executor's shared work-stealing pool",
                    entry.text
                ),
            });
        }
    }
}

/// `float_cmp_guarded`: in the δ-scan hot paths, any ordered comparison
/// whose operand names a distance (`…dist…` / `…delta…`) must sit in a
/// function that also calls a NaN sentinel (`debug_assert_finite`,
/// `is_nan` or `is_finite`). Every such comparison is silently *false* on
/// NaN — a poisoned cached row would not crash but would quietly drop
/// points from ΔL shells or misassign medoids, which is exactly the class
/// of bug a debug-mode sentinel catches at the source.
fn float_cmp_guarded(rel: &str, scan: &Scan, findings: &mut Vec<Finding>) {
    const GUARDS: [&str; 3] = ["debug_assert_finite", "is_nan", "is_finite"];
    let toks = &scan.tokens;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.in_test || !t.is_ident("fn") {
            i += 1;
            continue;
        }
        let mut open = i + 1;
        while open < toks.len() && !toks[open].is_punct('{') {
            open += 1;
        }
        if open >= toks.len() {
            break;
        }
        let close = matching_brace(toks, open);
        let body = &toks[open..close];
        let guarded = body.iter().any(|t| GUARDS.iter().any(|g| t.is_ident(g)));
        if !guarded {
            for k in 0..body.len() {
                if let Some(line) = distance_comparison_at(body, k) {
                    if !scan.allowed(line, "float_cmp_guarded") {
                        findings.push(Finding {
                            rule: "float_cmp_guarded",
                            file: rel.to_string(),
                            line,
                            message: "dist/delta comparison in a function with no NaN \
                                      sentinel — a NaN compares false against everything \
                                      and silently corrupts the δ-scan; call \
                                      debug_assert_finite on the buffer first"
                                .to_string(),
                        });
                    }
                }
            }
        }
        i = close.max(i + 1);
    }
}

/// If `toks[k]` is an ordered comparison (`<`, `>`, `<=`, `>=`) with an
/// operand whose identifier path mentions `dist` or `delta`, returns the
/// comparison's line. Arrows (`->`, `=>`), shifts and generics fall out
/// naturally: they either aren't ordered comparisons or have no matching
/// operand name.
fn distance_comparison_at(toks: &[Tok], k: usize) -> Option<u32> {
    let t = toks.get(k)?;
    if !(t.is_punct('<') || t.is_punct('>')) {
        return None;
    }
    // `->`, `=>`, `<<`, `>>` are not ordered comparisons.
    if k > 0 && (toks[k - 1].is_punct('-') || toks[k - 1].is_punct('=')) {
        return None;
    }
    let same = |o: Option<&Tok>| o.is_some_and(|n| n.kind == t.kind);
    if same(k.checked_sub(1).and_then(|p| toks.get(p))) || same(toks.get(k + 1)) {
        return None;
    }
    let named = |s: &str| {
        let s = s.to_ascii_lowercase();
        s.contains("dist") || s.contains("delta")
    };
    // Idents that mark a *type* position — `Vec<&mut [f32]> = self.dist…`
    // is a generic close followed by `=`, not a `>=` comparison.
    const TYPE_MARKERS: [&str; 13] = [
        "mut", "dyn", "impl", "f32", "f64", "u8", "u16", "u32", "u64", "usize", "i32", "i64",
        "bool",
    ];
    // Left operand: walk back over balanced `[…]` / `(…)` groups and a
    // trailing `a.b.c` path, testing every segment name.
    let mut j = k as isize - 1;
    while let Some(tok) = usize::try_from(j).ok().and_then(|j| toks.get(j)) {
        if TYPE_MARKERS.iter().any(|m| tok.is_ident(m)) || tok.is_punct('&') {
            return None;
        }
        if tok.is_punct(']') || tok.is_punct(')') {
            let close = if tok.is_punct(']') { ']' } else { ')' };
            let open = if close == ']' { '[' } else { '(' };
            let mut depth = 0;
            while j >= 0 {
                if toks[j as usize].is_punct(close) {
                    depth += 1;
                } else if toks[j as usize].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j -= 1;
            }
            j -= 1;
        } else if tok.kind == TokKind::Ident {
            if named(&tok.text) {
                return Some(t.line);
            }
            // continue through an `a.b` path
            if j >= 1 && toks[j as usize - 1].is_punct('.') {
                j -= 2;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    // Right operand: skip the `=` of `<=`/`>=`, then walk an `a.b[i].c`
    // path forward.
    let mut j = k + 1;
    if toks.get(j).is_some_and(|n| n.is_punct('=')) {
        j += 1;
    }
    while let Some(tok) = toks.get(j) {
        if tok.kind == TokKind::Ident {
            if named(&tok.text) {
                return Some(t.line);
            }
            j += 1;
        } else if tok.is_punct('.') {
            j += 1;
        } else if tok.is_punct('[') {
            let mut depth = 0;
            while j < toks.len() {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            j += 1;
        } else {
            break;
        }
    }
    None
}

/// Error types a public `Result` may carry. `io::Error` / `fmt::Error`
/// are approved at process boundaries (connection handling, Display
/// impls); everything else must be one of the workspace's typed errors.
const APPROVED_ERRORS: [&str; 5] = [
    "ProclusError",
    "GpuProclusError",
    "ServeError",
    "io::Error",
    "fmt::Error",
];

/// `public_result_error`: every `pub fn` (not `pub(crate)`) in the
/// algorithm and serving crates that returns a `Result` must use an
/// approved error type. Single-parameter `Result<T>` is a crate alias
/// over `ProclusError`-family errors and is approved; `std::io::Result`
/// likewise.
fn public_result_error(rel: &str, scan: &Scan, findings: &mut Vec<Finding>) {
    let toks = &scan.tokens;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.in_test || !t.is_ident("pub") {
            i += 1;
            continue;
        }
        // pub(crate) / pub(super): restricted, not public API.
        if toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            i += 1;
            continue;
        }
        // allow qualifiers between pub and fn: const/unsafe/async
        let mut j = i + 1;
        while j < toks.len()
            && (toks[j].is_ident("const")
                || toks[j].is_ident("unsafe")
                || toks[j].is_ident("async"))
        {
            j += 1;
        }
        if !toks.get(j).is_some_and(|n| n.is_ident("fn")) {
            i += 1;
            continue;
        }
        let fn_line = toks[j].line;
        let fn_name = toks.get(j + 1).map(|n| n.text.clone()).unwrap_or_default();
        // Skip to the end of the parameter list: first `(` after the
        // name/generics, balanced (generics may contain `(` in Fn traits,
        // but those appear *inside* `<>`; tracking both is enough).
        let mut k = j + 1;
        let mut angle = 0i32;
        while k < toks.len() {
            if toks[k].is_punct('<') {
                angle += 1;
            } else if toks[k].is_punct('>') {
                angle -= 1;
            } else if toks[k].is_punct('(') && angle <= 0 {
                break;
            }
            k += 1;
        }
        let mut paren = 0;
        while k < toks.len() {
            if toks[k].is_punct('(') {
                paren += 1;
            } else if toks[k].is_punct(')') {
                paren -= 1;
                if paren == 0 {
                    k += 1;
                    break;
                }
            }
            k += 1;
        }
        // Return type: `-> …` up to `{`, `;`, or `where` at depth 0.
        if !(toks.get(k).is_some_and(|n| n.is_punct('-'))
            && toks.get(k + 1).is_some_and(|n| n.is_punct('>')))
        {
            i = k.max(i + 1);
            continue;
        }
        let ret_start = k + 2;
        let mut end = ret_start;
        let mut depth = 0i32;
        while end < toks.len() {
            let t = &toks[end];
            if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') {
                // `->` inside Fn() return types never appears at depth 0
                // here because we started after the outer `->`.
                depth -= 1;
            } else if depth <= 0 && (t.is_punct('{') || t.is_punct(';') || t.is_ident("where")) {
                break;
            }
            end += 1;
        }
        let ret = &toks[ret_start..end];
        if let Some(message) = check_return_type(ret, &fn_name) {
            if !scan.allowed(fn_line, "public_result_error") {
                findings.push(Finding {
                    rule: "public_result_error",
                    file: rel.to_string(),
                    line: fn_line,
                    message,
                });
            }
        }
        i = end.max(i + 1);
    }
}

/// Checks one return-type token slice; `None` means approved.
fn check_return_type(ret: &[Tok], fn_name: &str) -> Option<String> {
    let pos = ret.iter().position(|t| t.is_ident("Result"))?;
    // Find the `<` that opens Result's generics (if absent, it's a bare
    // alias like `io::Result` used without parameters — approved).
    let open = pos + 1;
    if !ret.get(open).is_some_and(|t| t.is_punct('<')) {
        return None;
    }
    // Split the generic arguments at top level.
    let mut depth = 0i32;
    let mut args: Vec<Vec<&Tok>> = vec![Vec::new()];
    let mut k = open;
    while k < ret.len() {
        let t = &ret[k];
        if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
            if depth > 1 {
                args.last_mut().expect("non-empty args").push(t);
            }
        } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
            args.last_mut().expect("non-empty args").push(t);
        } else if t.is_punct(',') && depth == 1 {
            args.push(Vec::new());
        } else if depth >= 1 {
            args.last_mut().expect("non-empty args").push(t);
        }
        k += 1;
    }
    if args.len() < 2 {
        // `Result<T>`: a crate alias over a typed error — approved.
        return None;
    }
    let err_ty: String = args[1]
        .iter()
        .map(|t| {
            if t.text.is_empty() {
                match t.kind {
                    crate::lexer::TokKind::Punct(c) => c.to_string(),
                    _ => String::new(),
                }
            } else {
                t.text.clone()
            }
        })
        .collect();
    if APPROVED_ERRORS
        .iter()
        .any(|ok| err_ty == *ok || err_ty.ends_with(&format!("::{ok}")) || err_ty.contains(ok))
    {
        return None;
    }
    Some(format!(
        "pub fn {fn_name} returns Result<_, {err_ty}> — public APIs must use a typed \
         workspace error ({})",
        APPROVED_ERRORS.join(", "),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(rel: &str, src: &str) -> Vec<&'static str> {
        lint_source(rel, src).iter().map(|f| f.rule).collect()
    }

    // ---- no_panic --------------------------------------------------

    /// Seeded defect: a hot-path unwrap in the serving layer is caught.
    #[test]
    fn seeded_hot_path_unwrap_is_caught() {
        let src = "pub fn take(&self) -> Job { self.queue.lock().unwrap().pop().unwrap() }";
        let f = lint_source("crates/serve/src/server.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "no_panic"));
        assert!(f[0].message.contains("unwrap"));
    }

    #[test]
    fn panic_family_macros_are_caught_but_tests_and_allows_are_not() {
        let src = "\
fn a() { panic!(\"boom\"); }\n\
// lint:allow(no_panic) -- injected-panic fixture for isolation tests\n\
fn b() { panic!(\"fixture\"); }\n\
#[cfg(test)]\nmod tests { fn t() { x.unwrap(); panic!(); } }\n";
        let f = lint_source("crates/serve/src/job.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let src = "fn a(m: &M) { m.lock().unwrap_or_else(p); v.unwrap_or_default(); }";
        assert!(rules("crates/serve/src/metrics.rs", src).is_empty());
    }

    #[test]
    fn out_of_scope_files_are_not_linted_for_panics() {
        let src = "fn a() { x.unwrap(); }";
        assert!(rules("crates/core/src/phases/assign.rs", src).is_empty());
    }

    // ---- cancel_polled ---------------------------------------------

    /// Seeded defect: a phase loop with no cancel poll is caught.
    #[test]
    fn seeded_cancel_free_loop_is_caught() {
        let src = "\
pub fn run(cancel: &CancelToken) -> Result<()> {\n\
    loop {\n        refine();\n        if done { break; }\n    }\n\
    Ok(())\n}\n";
        let f = lint_source("crates/core/src/driver.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "cancel_polled");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn loop_with_cancel_poll_passes() {
        let src = "\
pub fn run(cancel: &CancelToken) -> Result<()> {\n\
    loop {\n        cancel.check()?;\n        refine();\n        if done { break; }\n    }\n\
    while pending { cancel.check()?; step(); }\n\
    Ok(())\n}\n";
        assert!(rules("crates/gpu/src/shard.rs", src).is_empty());
    }

    #[test]
    fn inner_for_loops_are_not_required_to_poll() {
        let src = "pub fn f() { for x in xs { use_it(x); } }";
        assert!(rules("crates/core/src/driver.rs", src).is_empty());
    }

    // ---- launch_entry ----------------------------------------------

    /// Seeded defect: a stray kernel launch outside the audited wrappers —
    /// the sharded backend is the newest launch-adjacent entry point, so it
    /// doubles as the fixture.
    #[test]
    fn seeded_stray_launch_is_caught() {
        let src = "fn f(dev: &mut Device) { dev.launch(\"k\", grid, || {}); }";
        let f = lint_source("crates/gpu/src/shard.rs", src);
        assert!(f.iter().any(|f| f.rule == "launch_entry"), "{f:?}");
        let f = lint_source("crates/gpu/src/backend.rs", src);
        assert!(f.iter().any(|f| f.rule == "launch_entry"), "{f:?}");
    }

    #[test]
    fn launches_in_kernel_wrappers_and_gpu_sim_pass() {
        let src = "fn f(dev: &mut Device) { dev.launch_on(\"k\", grid, || {}); }";
        assert!(rules("crates/gpu/src/kernels/assign.rs", src).is_empty());
        assert!(rules("crates/gpu-sim/src/device.rs", src).is_empty());
    }

    // ---- public_result_error ---------------------------------------

    /// Seeded defect: a public API returning a stringly error.
    #[test]
    fn seeded_string_error_public_api_is_caught() {
        let src = "pub fn load(p: &Path) -> Result<Data, String> { body() }";
        let f = lint_source("crates/core/src/dataset.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "public_result_error");
        assert!(f[0].message.contains("String"), "{}", f[0].message);
    }

    #[test]
    fn typed_errors_aliases_and_restricted_visibility_pass() {
        let src = "\
pub fn a() -> Result<Clustering> { b() }\n\
pub fn b() -> Result<u32, ProclusError> { Ok(1) }\n\
pub fn c() -> std::io::Result<()> { Ok(()) }\n\
pub fn d() -> Result<(), ServeError> { Ok(()) }\n\
pub(crate) fn e() -> Result<(), String> { Ok(()) }\n\
pub fn f() -> proclus::Result<RunOutput> { g() }\n\
pub fn not_result() -> Vec<u8> { vec![] }\n";
        assert!(rules("crates/serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn closure_params_returning_result_are_ignored() {
        // The Result<(), String> here is in *parameter* position.
        let src =
            "pub fn on_check(f: impl Fn(&S) -> Result<(), String> + 'static) -> Self { self }";
        assert!(rules("crates/core/src/run.rs", src).is_empty());
    }

    // ---- float_cmp_guarded -----------------------------------------

    /// Seeded defect: an unguarded δ-scan comparison in a hot-path file.
    #[test]
    fn seeded_unguarded_distance_comparison_is_caught() {
        let src = "\
fn scan(dist: &[f32], delta: f32) -> usize {\n\
    dist.iter().filter(|&&v| v < delta).count()\n\
}\n";
        let f = lint_source("crates/core/src/fast.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "float_cmp_guarded");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn sentinel_in_the_same_function_passes() {
        let src = "\
fn scan(dist: &[f32], delta: f32) -> usize {\n\
    debug_assert_finite(dist, \"scan\");\n\
    dist.iter().filter(|&&v| v < delta).count()\n\
}\n";
        assert!(rules("crates/core/src/fast.rs", src).is_empty());
    }

    #[test]
    fn indexed_and_field_path_operands_are_recognized() {
        // `self.dists[c] < mind[c]` — the dist name is behind indexing.
        let src = "fn f(&self) { if self.dists[c] < mind[c] { go(); } }";
        let f = lint_source("crates/stream/src/driver.rs", src);
        assert!(f.iter().any(|f| f.rule == "float_cmp_guarded"), "{f:?}");
        // `cur > eh.prev_delta` — the delta name is a field segment.
        let src = "fn f(cur: f32, eh: &E) { if cur > eh.prev_delta { go(); } }";
        let f = lint_source("crates/core/src/fast.rs", src);
        assert!(f.iter().any(|f| f.rule == "float_cmp_guarded"), "{f:?}");
    }

    #[test]
    fn integer_comparisons_arrows_and_generics_are_not_flagged() {
        let src = "\
fn f(n: usize) -> Vec<f32> {\n\
    let mut out: Vec<f32> = Vec::new();\n\
    let mut i = 0;\n\
    while i < n { i += 1; }\n\
    let x = n << 2;\n\
    let g = |a: usize| -> usize { a };\n\
    match i { 0 => g(0), _ => g(1) };\n\
    out\n\
}\n";
        assert!(rules("crates/core/src/fast.rs", src).is_empty());
    }

    #[test]
    fn float_cmp_allow_escape_and_scope_are_honored() {
        let src = "\
fn scan(dist: &[f32], delta: f32) -> usize {\n\
    // lint:allow(float_cmp_guarded) -- caller asserts finiteness\n\
    dist.iter().filter(|&&v| v < delta).count()\n\
}\n";
        assert!(rules("crates/core/src/fast_star.rs", src).is_empty());
        // Same unguarded code outside the hot-path scope is not linted.
        let src = "fn f(dist: &[f32], delta: f32) -> bool { dist[0] < delta }";
        assert!(rules("crates/core/src/distance.rs", src).is_empty());
    }

    // ---- no_raw_scope ----------------------------------------------

    /// Seeded defect: a raw spawn in a hot path bypassing the pool.
    #[test]
    fn seeded_raw_spawn_is_caught() {
        let src = "fn fan_out() { let h = std::thread::spawn(|| work()); h.join().unwrap(); }";
        let f = lint_source("crates/stream/src/store.rs", src);
        assert!(
            f.iter().any(|f| f.rule == "no_raw_scope"),
            "expected no_raw_scope in {f:?}"
        );
        assert!(f
            .iter()
            .any(|f| f.message.contains("thread::spawn") && f.message.contains("Executor")));
    }

    /// Seeded defect: both scope flavors and `Builder` are caught.
    #[test]
    fn seeded_raw_scope_variants_are_caught() {
        let src = "\
fn a() { crossbeam::thread::scope(|s| {}).unwrap(); }\n\
fn b() { std::thread::scope(|s| {}); }\n\
fn c() { std::thread::Builder::new(); }\n";
        let f = lint_source("crates/core/src/multi_param.rs", src);
        let raw: Vec<_> = f.iter().filter(|f| f.rule == "no_raw_scope").collect();
        assert_eq!(raw.len(), 3, "{f:?}");
        assert_eq!(
            raw.iter().map(|f| f.line).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    /// par.rs is the sanctioned home of raw threads; tests and allows
    /// are exempt everywhere.
    #[test]
    fn par_rs_tests_and_allows_may_use_raw_threads() {
        let src = "fn w() { std::thread::spawn(|| {}); }";
        assert!(rules("crates/core/src/par.rs", src).is_empty());
        assert!(rules("crates/verify/src/model.rs", src).is_empty());
        assert!(rules("crates/serve/tests/concurrency.rs", src).is_empty());

        let in_test = "#[cfg(test)]\nmod tests { fn t() { std::thread::spawn(|| {}); } }";
        assert!(rules("crates/core/src/run.rs", in_test).is_empty());

        let allowed = "\
// lint:allow(no_raw_scope) -- long-lived service worker, not data-parallel fan-out\n\
fn w() { std::thread::Builder::new().spawn(|| {}); }\n";
        assert!(rules("crates/serve/src/server.rs", allowed).is_empty());
    }

    // ---- plumbing ---------------------------------------------------

    #[test]
    fn findings_serialize_to_json() {
        let f = vec![Finding {
            rule: "no_panic",
            file: "crates/serve/src/server.rs".into(),
            line: 7,
            message: "x".into(),
        }];
        let json = findings_json(&f);
        assert!(json.contains("\"component\":\"xtask-lint\""));
        assert!(json.contains("\"rule\":\"no_panic\""));
        assert!(json.contains("\"line\":7"));
        let parsed = proclus_telemetry::json::parse(&json).expect("valid json");
        assert_eq!(
            parsed
                .get("findings")
                .and_then(|v| v.as_array())
                .map(|a| a.len()),
            Some(1)
        );
    }
}
