//! Tracked lock wrappers: `std::sync` pass-throughs that (under the
//! `lockcheck` feature) feed every acquisition into the global
//! acquisition-order graph in [`crate::graph`].
//!
//! Design points:
//!
//! * **Named, not addressed.** Tracking is keyed by the `&'static str`
//!   name given at construction, so all instances of `"job.slot"` form one
//!   node in the order graph — lock-order discipline is defined per *role*,
//!   not per object.
//! * **Poison-recovering.** The wrappers return guards, not `Result`s: a
//!   panic while holding a lock is already isolated at the batch boundary
//!   by the serving layer (`catch_unwind`), and under `lockcheck` the
//!   recovery itself is visible in the report (the hold is accounted).
//!   This removes the `.lock().unwrap()` noise the workspace lint
//!   (`cargo xtask lint`, rule `no_panic_paths`) would otherwise flag at
//!   every call site.
//! * **Zero-cost when off.** Without the feature, `lock()` compiles to the
//!   `std` call plus poison recovery — no globals, no thread-locals, no
//!   allocation.
//!
//! Condvar waits go through [`TrackedCondvar`], which tells the registry
//! the mutex is released for the duration of the sleep (and flags waits
//! entered while *other* tracked locks are still held).

use std::ops::{Deref, DerefMut};
use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult,
};
use std::time::Duration;

#[cfg(feature = "lockcheck")]
use crate::graph;

#[cfg(feature = "lockcheck")]
macro_rules! track {
    ($($call:tt)*) => {
        graph::$($call)*
    };
}

#[cfg(not(feature = "lockcheck"))]
macro_rules! track {
    ($($call:tt)*) => {{}};
}

// ------------------------------------------------------------------- mutex

/// A named mutex whose acquisitions are recorded in the global
/// acquisition-order graph under the `lockcheck` feature.
#[derive(Debug, Default)]
pub struct TrackedMutex<T> {
    name: &'static str,
    inner: Mutex<T>,
}

/// Guard returned by [`TrackedMutex::lock`]; releases (and records the
/// release of) the lock on drop.
#[derive(Debug)]
pub struct TrackedMutexGuard<'a, T> {
    name: &'static str,
    /// `None` only transiently inside [`TrackedCondvar`] wait plumbing.
    inner: Option<MutexGuard<'a, T>>,
}

impl<T> TrackedMutex<T> {
    /// A mutex named `name` (the node label in the order graph).
    pub fn new(name: &'static str, value: T) -> Self {
        Self {
            name,
            inner: Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning (see module docs).
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        track!(on_acquire_attempt(self.name, "mutex"));
        #[cfg(feature = "lockcheck")]
        let guard = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                graph::on_contended(self.name);
                self.inner.lock().unwrap_or_else(PoisonError::into_inner)
            }
        };
        #[cfg(not(feature = "lockcheck"))]
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        track!(on_acquired(self.name));
        TrackedMutexGuard {
            name: self.name,
            inner: Some(guard),
        }
    }

    /// The lock's static name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Consumes the mutex and returns the inner value (poison recovered).
    /// No acquisition is recorded: ownership proves exclusivity.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken only during wait")
    }
}

impl<T> DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken only during wait")
    }
}

impl<T> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            track!(on_release(self.name));
        }
    }
}

// ----------------------------------------------------------------- condvar

/// A named condition variable for use with [`TrackedMutex`].
#[derive(Debug, Default)]
pub struct TrackedCondvar {
    #[allow(dead_code)] // read only in diagnostics / future findings
    name: &'static str,
    inner: Condvar,
}

impl TrackedCondvar {
    /// A condvar named `name`.
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            inner: Condvar::new(),
        }
    }

    /// Blocks until notified; the mutex is recorded as released for the
    /// duration of the sleep. Entering a wait while *other* tracked locks
    /// are held is flagged as a [`crate::LockFindingKind::WaitWhileHolding`]
    /// hazard.
    pub fn wait<'a, T>(&self, mut guard: TrackedMutexGuard<'a, T>) -> TrackedMutexGuard<'a, T> {
        let name = guard.name;
        let inner = guard.inner.take().expect("live guard");
        track!(on_wait_begin(name));
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        track!(on_wait_end(name));
        TrackedMutexGuard {
            name,
            inner: Some(inner),
        }
    }

    /// [`TrackedCondvar::wait`] with a timeout.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: TrackedMutexGuard<'a, T>,
        timeout: Duration,
    ) -> (TrackedMutexGuard<'a, T>, WaitTimeoutResult) {
        let name = guard.name;
        let inner = guard.inner.take().expect("live guard");
        track!(on_wait_begin(name));
        let (inner, timed_out) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        track!(on_wait_end(name));
        (
            TrackedMutexGuard {
                name,
                inner: Some(inner),
            },
            timed_out,
        )
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

// ------------------------------------------------------------------ rwlock

/// A named reader–writer lock tracked like [`TrackedMutex`] (reads and
/// writes both count as acquisitions of the same graph node).
#[derive(Debug, Default)]
pub struct TrackedRwLock<T> {
    name: &'static str,
    inner: RwLock<T>,
}

/// Shared-read guard returned by [`TrackedRwLock::read`].
#[derive(Debug)]
pub struct TrackedRwLockReadGuard<'a, T> {
    #[cfg_attr(not(feature = "lockcheck"), allow(dead_code))]
    name: &'static str,
    inner: Option<RwLockReadGuard<'a, T>>,
}

/// Exclusive-write guard returned by [`TrackedRwLock::write`].
#[derive(Debug)]
pub struct TrackedRwLockWriteGuard<'a, T> {
    #[cfg_attr(not(feature = "lockcheck"), allow(dead_code))]
    name: &'static str,
    inner: Option<RwLockWriteGuard<'a, T>>,
}

impl<T> TrackedRwLock<T> {
    /// An rwlock named `name`.
    pub fn new(name: &'static str, value: T) -> Self {
        Self {
            name,
            inner: RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> TrackedRwLockReadGuard<'_, T> {
        track!(on_acquire_attempt(self.name, "rwlock"));
        #[cfg(feature = "lockcheck")]
        let guard = match self.inner.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                graph::on_contended(self.name);
                self.inner.read().unwrap_or_else(PoisonError::into_inner)
            }
        };
        #[cfg(not(feature = "lockcheck"))]
        let guard = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        track!(on_acquired(self.name));
        TrackedRwLockReadGuard {
            name: self.name,
            inner: Some(guard),
        }
    }

    /// Acquires the exclusive write guard.
    pub fn write(&self) -> TrackedRwLockWriteGuard<'_, T> {
        track!(on_acquire_attempt(self.name, "rwlock"));
        #[cfg(feature = "lockcheck")]
        let guard = match self.inner.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                graph::on_contended(self.name);
                self.inner.write().unwrap_or_else(PoisonError::into_inner)
            }
        };
        #[cfg(not(feature = "lockcheck"))]
        let guard = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        track!(on_acquired(self.name));
        TrackedRwLockWriteGuard {
            name: self.name,
            inner: Some(guard),
        }
    }

    /// The lock's static name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl<T> Deref for TrackedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("read guard present")
    }
}

impl<T> Drop for TrackedRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            track!(on_release(self.name));
        }
    }
}

impl<T> Deref for TrackedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("write guard present")
    }
}

impl<T> DerefMut for TrackedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("write guard present")
    }
}

impl<T> Drop for TrackedRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            track!(on_release(self.name));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trips_values_across_threads() {
        let m = Arc::new(TrackedMutex::new("test.sync.counter", 0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker exits cleanly");
        }
        assert_eq!(*m.lock(), 400);
        assert_eq!(m.name(), "test.sync.counter");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((
            TrackedMutex::new("test.sync.flag", false),
            TrackedCondvar::new("test.sync.cv"),
        ));
        let remote = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*remote;
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(t.join().expect("waiter exits"));
    }

    #[test]
    fn condvar_wait_timeout_times_out() {
        let m = TrackedMutex::new("test.sync.timeout", ());
        let cv = TrackedCondvar::new("test.sync.timeout_cv");
        let g = m.lock();
        let (_g, res) = cv.wait_timeout(g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = TrackedRwLock::new("test.sync.rw", vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
