//! # proclus-verify — host-side concurrency verification
//!
//! PR 1 gave the *device* side a racecheck/initcheck-style sanitizer; this
//! crate is the host-side counterpart for the concurrency-heavy serving
//! layer. It has three pillars:
//!
//! 1. **Tracked locks** ([`TrackedMutex`], [`TrackedRwLock`],
//!    [`TrackedCondvar`]): drop-in wrappers over `std::sync` used by
//!    `proclus-serve` and `proclus-telemetry`. Without the `lockcheck`
//!    feature they are thin pass-throughs (no global state, no extra
//!    allocation); with it, every acquisition feeds a global
//!    **acquisition-order graph** keyed by the lock's static name.
//! 2. **Lock-order analysis** ([`graph`]): an edge `A → B` is recorded
//!    whenever a thread acquires `B` while holding `A`. A cycle in that
//!    graph is a potential deadlock ([`LockFindingKind::OrderInversion`]);
//!    further hazards are condvar waits entered while holding *another*
//!    tracked lock ([`LockFindingKind::WaitWhileHolding`]) and long-hold
//!    outliers ([`LockFindingKind::LongHold`]).
//! 3. **Model checking** ([`model`]): a small exhaustive-interleaving
//!    explorer (a loom-style checker, reimplemented on `std` only — see
//!    DESIGN.md §11 for the substitution note) used to exercise the
//!    scheduler's enqueue/coalesce/cancel/deadline interleavings and the
//!    registry's concurrent load–evict path, including seeded-defect
//!    fixtures (an intentional lock-order inversion, a lost wakeup) that
//!    prove each checker detects what it claims to detect.
//!
//! ## Modes
//!
//! Findings are reported through the same three modes as the PR 1 kernel
//! sanitizer ([`VerifyMode::Off`] / [`VerifyMode::Report`] /
//! [`VerifyMode::Abort`]), selected programmatically ([`set_mode`]) or via
//! the `PROCLUS_LOCKCHECK` environment variable (`off` / `report` /
//! `abort`). In `Report` mode findings accumulate and are exported as
//! DeviceReport-style JSON ([`lock_report`] / [`LockReport::to_json`]);
//! in `Abort` mode the offending acquisition panics at the detection site.
//!
//! ```
//! use proclus_verify::TrackedMutex;
//!
//! let m = TrackedMutex::new("example.counter", 0u64);
//! *m.lock() += 1;
//! assert_eq!(*m.lock(), 1);
//! // With `--features lockcheck`, the acquisitions above are now visible:
//! // proclus_verify::lock_report() lists `example.counter` with its
//! // acquisition count and maximum hold time.
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod graph;
pub mod model;
pub mod report;
pub mod sync;

pub use report::{LockEdgeInfo, LockFinding, LockFindingKind, LockInfo, LockReport};
pub use sync::{
    TrackedCondvar, TrackedMutex, TrackedMutexGuard, TrackedRwLock, TrackedRwLockReadGuard,
    TrackedRwLockWriteGuard,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// What to do when the lock checker detects a hazard — mirrors the kernel
/// sanitizer's `SanitizerMode` (DESIGN.md §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// Record nothing beyond acquisition statistics.
    Off,
    /// Accumulate findings; read them back with [`lock_report`].
    #[default]
    Report,
    /// Panic at the detection site with the finding's message — turns a
    /// *potential* deadlock into a loud test failure.
    Abort,
}

impl VerifyMode {
    /// Parses `off` / `report` / `abort` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Some(VerifyMode::Off),
            "report" => Some(VerifyMode::Report),
            "abort" => Some(VerifyMode::Abort),
            _ => None,
        }
    }

    /// The wire name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            VerifyMode::Off => "off",
            VerifyMode::Report => "report",
            VerifyMode::Abort => "abort",
        }
    }
}

const MODE_UNSET: u8 = 0xff;
static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

/// Sets the global checking mode (overrides `PROCLUS_LOCKCHECK`).
pub fn set_mode(mode: VerifyMode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// The effective checking mode: the last [`set_mode`] call, else the
/// `PROCLUS_LOCKCHECK` environment variable, else [`VerifyMode::Report`].
pub fn mode() -> VerifyMode {
    match MODE.load(Ordering::Relaxed) {
        0 => VerifyMode::Off,
        1 => VerifyMode::Report,
        2 => VerifyMode::Abort,
        _ => {
            let m = std::env::var("PROCLUS_LOCKCHECK")
                .ok()
                .and_then(|v| VerifyMode::parse(&v))
                .unwrap_or_default();
            MODE.store(m as u8, Ordering::Relaxed);
            m
        }
    }
}

/// Snapshot of everything the lock checker has seen: per-lock acquisition
/// statistics, the acquisition-order edges, and any findings. Empty when
/// the `lockcheck` feature is off.
pub fn lock_report() -> LockReport {
    graph::registry_report()
}

/// Clears the global lock registry (graph, statistics, findings). Intended
/// for tests that need isolation from each other; locks created before the
/// reset keep working and simply re-register on next use.
pub fn reset() {
    graph::registry_reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_and_round_trips() {
        assert_eq!(VerifyMode::parse("abort"), Some(VerifyMode::Abort));
        assert_eq!(VerifyMode::parse("REPORT"), Some(VerifyMode::Report));
        assert_eq!(VerifyMode::parse("off"), Some(VerifyMode::Off));
        assert_eq!(VerifyMode::parse("loud"), None);
        for m in [VerifyMode::Off, VerifyMode::Report, VerifyMode::Abort] {
            assert_eq!(VerifyMode::parse(m.name()), Some(m));
        }
    }

    #[test]
    fn set_mode_wins_over_env() {
        set_mode(VerifyMode::Abort);
        assert_eq!(mode(), VerifyMode::Abort);
        set_mode(VerifyMode::Report);
        assert_eq!(mode(), VerifyMode::Report);
    }
}
