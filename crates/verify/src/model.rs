//! A small exhaustive-interleaving model checker (loom-style, `std`-only).
//!
//! Concurrency logic is modeled as a set of **threads**, each a finite
//! sequence of **atomic steps** over a shared, clonable state `S`. The
//! checker enumerates *every* interleaving of those steps (depth-first
//! over "which thread moves next"), so a property verified here holds for
//! all schedules of the modeled program — the guarantee loom gives real
//! code, applied to an explicit state machine of it. (The real `loom`
//! crate instruments actual `std::sync` types; it is not vendorable in
//! this environment, so the serving layer's protocols are modeled
//! explicitly instead — see DESIGN.md §11.)
//!
//! Steps either complete ([`StepOutcome::Done`]) or report themselves
//! **blocked** ([`StepOutcome::Blocked`]) — e.g. a modeled condvar wait
//! whose predicate is false, or a modeled mutex that is held. A blocked
//! step MUST leave the state unchanged (the checker discards its state
//! clone, so violations of that contract cannot corrupt exploration, but
//! they can hide schedules). A schedule where some thread has steps left
//! but *no* thread can move is a **deadlock** and is reported with its
//! full trace — this is exactly how a lost wakeup manifests: the sleeper
//! waits on a signal whose notification was consumed before it slept.
//!
//! Invariants come in two flavors:
//! * [`ModelBuilder::invariant_always`] — checked after every step
//!   (safety, e.g. "cached bytes never exceed the budget");
//! * [`ModelBuilder::invariant_final`] — checked on complete schedules
//!   (post-conditions, e.g. "every job was fulfilled exactly once").
//!
//! ```
//! use proclus_verify::model::{ModelBuilder, StepOutcome};
//!
//! // Two producers increment; a consumer drains only after both ran.
//! let result = ModelBuilder::new(0i32)
//!     .thread("p1", |t| {
//!         t.step("inc", |s| {
//!             *s += 1;
//!             StepOutcome::Done
//!         });
//!     })
//!     .thread("p2", |t| {
//!         t.step("inc", |s| {
//!             *s += 1;
//!             StepOutcome::Done
//!         });
//!     })
//!     .thread("consumer", |t| {
//!         t.step("drain", |s| {
//!             if *s < 2 {
//!                 return StepOutcome::Blocked;
//!             }
//!             *s = 0;
//!             StepOutcome::Done
//!         });
//!     })
//!     .invariant_final(|s| (*s == 0).then_some(()).ok_or("not drained".to_string()))
//!     .check();
//! assert!(result.passed(), "{result:?}");
//! ```

/// Result of attempting one atomic step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The step ran; the thread advances.
    Done,
    /// The step cannot run in this state (and did not modify it); the
    /// thread stays put and may be retried after others move.
    Blocked,
}

type StepFn<S> = Box<dyn Fn(&mut S) -> StepOutcome>;
type CheckFn<S> = Box<dyn Fn(&S) -> Result<(), String>>;

struct Step<S> {
    label: &'static str,
    run: StepFn<S>,
}

/// One modeled thread: a named, finite sequence of atomic steps.
pub struct ThreadBuilder<S> {
    name: &'static str,
    steps: Vec<Step<S>>,
}

impl<S> ThreadBuilder<S> {
    /// Appends an atomic step.
    pub fn step(
        &mut self,
        label: &'static str,
        run: impl Fn(&mut S) -> StepOutcome + 'static,
    ) -> &mut Self {
        self.steps.push(Step {
            label,
            run: Box::new(run),
        });
        self
    }
}

/// Builder for a model; see the module docs for the exploration rules.
pub struct ModelBuilder<S> {
    initial: S,
    threads: Vec<ThreadBuilder<S>>,
    always: Vec<CheckFn<S>>,
    fin: Vec<CheckFn<S>>,
    max_schedules: usize,
}

/// One schedule prefix, as `(thread name, step label)` pairs.
pub type Trace = Vec<(&'static str, &'static str)>;

/// What exploration found.
#[derive(Debug, Default)]
pub struct Exploration {
    /// Complete schedules explored.
    pub schedules: usize,
    /// Schedules that ended with runnable-but-blocked threads.
    pub deadlocks: Vec<Trace>,
    /// `(trace, message)` for invariant failures.
    pub violations: Vec<(Trace, String)>,
    /// True when the `max_schedules` cap stopped exploration early (the
    /// verdict then covers only the explored prefix).
    pub truncated: bool,
}

impl Exploration {
    /// True when every interleaving completed and satisfied every
    /// invariant.
    pub fn passed(&self) -> bool {
        self.deadlocks.is_empty() && self.violations.is_empty() && !self.truncated
    }

    /// A compact human-readable rendering of the first failure, for
    /// assertion messages.
    pub fn first_failure(&self) -> Option<String> {
        if let Some(t) = self.deadlocks.first() {
            return Some(format!("deadlock after {}", render(t)));
        }
        if let Some((t, m)) = self.violations.first() {
            return Some(format!("invariant `{m}` violated after {}", render(t)));
        }
        None
    }
}

fn render(t: &Trace) -> String {
    let steps: Vec<String> = t.iter().map(|(th, st)| format!("{th}.{st}")).collect();
    format!("[{}]", steps.join(" "))
}

impl<S: Clone> ModelBuilder<S> {
    /// A model starting from `initial`.
    pub fn new(initial: S) -> Self {
        Self {
            initial,
            threads: Vec::new(),
            always: Vec::new(),
            fin: Vec::new(),
            max_schedules: 1_000_000,
        }
    }

    /// Adds a thread; `build` receives a [`ThreadBuilder`] to append steps.
    pub fn thread(mut self, name: &'static str, build: impl FnOnce(&mut ThreadBuilder<S>)) -> Self {
        let mut t = ThreadBuilder {
            name,
            steps: Vec::new(),
        };
        build(&mut t);
        self.threads.push(t);
        self
    }

    /// A safety invariant checked after every step of every schedule.
    pub fn invariant_always(mut self, check: impl Fn(&S) -> Result<(), String> + 'static) -> Self {
        self.always.push(Box::new(check));
        self
    }

    /// A post-condition checked at the end of every complete schedule.
    pub fn invariant_final(mut self, check: impl Fn(&S) -> Result<(), String> + 'static) -> Self {
        self.fin.push(Box::new(check));
        self
    }

    /// Caps the number of complete schedules explored (default 1e6);
    /// hitting the cap sets [`Exploration::truncated`].
    pub fn max_schedules(mut self, cap: usize) -> Self {
        self.max_schedules = cap.max(1);
        self
    }

    /// Exhaustively explores every interleaving.
    pub fn check(self) -> Exploration {
        let mut out = Exploration::default();
        let pcs = vec![0usize; self.threads.len()];
        let mut trace: Trace = Vec::new();
        self.dfs(&self.initial, &pcs, &mut trace, &mut out);
        out
    }

    fn dfs(&self, state: &S, pcs: &[usize], trace: &mut Trace, out: &mut Exploration) {
        if out.schedules >= self.max_schedules {
            out.truncated = true;
            return;
        }
        let mut any_runnable = false;
        let mut any_moved = false;
        for (ti, thread) in self.threads.iter().enumerate() {
            if pcs[ti] >= thread.steps.len() {
                continue;
            }
            any_runnable = true;
            let step = &thread.steps[pcs[ti]];
            let mut next = state.clone();
            match (step.run)(&mut next) {
                StepOutcome::Blocked => continue,
                StepOutcome::Done => {}
            }
            any_moved = true;
            trace.push((thread.name, step.label));
            let mut ok = true;
            for check in &self.always {
                if let Err(msg) = check(&next) {
                    out.violations.push((trace.clone(), msg));
                    ok = false;
                    break;
                }
            }
            if ok {
                let mut next_pcs = pcs.to_vec();
                next_pcs[ti] += 1;
                self.dfs(&next, &next_pcs, trace, out);
            }
            trace.pop();
        }
        if !any_runnable {
            // Every thread finished: a complete schedule.
            out.schedules += 1;
            for check in &self.fin {
                if let Err(msg) = check(state) {
                    out.violations.push((trace.clone(), msg));
                }
            }
        } else if !any_moved {
            // Steps remain but none can run: deadlock.
            out.deadlocks.push(trace.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counter model: exhaustiveness means both orders of two increments
    /// are seen — 2 schedules for 2 single-step threads.
    #[test]
    fn explores_every_interleaving() {
        let r = ModelBuilder::new(())
            .thread("a", |t| {
                t.step("s", |_| StepOutcome::Done);
            })
            .thread("b", |t| {
                t.step("s", |_| StepOutcome::Done);
            })
            .check();
        assert_eq!(r.schedules, 2);
        assert!(r.passed());
    }

    #[test]
    fn three_threads_two_steps_each_is_ninety_schedules() {
        // (6)! / (2!)^3 = 720 / 8 = 90 interleavings.
        let mk = |t: &mut ThreadBuilder<u32>| {
            t.step("x", |s| {
                *s += 1;
                StepOutcome::Done
            });
            t.step("y", |s| {
                *s += 1;
                StepOutcome::Done
            });
        };
        let r = ModelBuilder::new(0u32)
            .thread("a", mk)
            .thread("b", mk)
            .thread("c", mk)
            .invariant_final(|s| {
                if *s == 6 {
                    Ok(())
                } else {
                    Err(format!("sum {s}"))
                }
            })
            .check();
        assert_eq!(r.schedules, 90);
        assert!(r.passed());
    }

    #[test]
    fn deadlock_is_detected_with_trace() {
        // Two modeled mutexes taken in opposite orders: the interleaving
        // where each thread holds one and wants the other deadlocks.
        #[derive(Clone, Default)]
        struct S {
            a: bool,
            b: bool,
        }
        let take = |field: fn(&mut S) -> &mut bool| {
            move |s: &mut S| {
                let f = field(s);
                if *f {
                    StepOutcome::Blocked
                } else {
                    *f = true;
                    StepOutcome::Done
                }
            }
        };
        let unlock_both = |s: &mut S| {
            s.a = false;
            s.b = false;
            StepOutcome::Done
        };
        let r = ModelBuilder::new(S::default())
            .thread("t1", |t| {
                t.step("lock_a", take(|s| &mut s.a));
                t.step("lock_b", take(|s| &mut s.b));
                t.step("unlock", unlock_both);
            })
            .thread("t2", |t| {
                t.step("lock_b", take(|s| &mut s.b));
                t.step("lock_a", take(|s| &mut s.a));
                t.step("unlock", unlock_both);
            })
            .check();
        assert!(!r.deadlocks.is_empty(), "opposite lock order must deadlock");
        assert!(r.schedules > 0, "benign schedules still complete");
        let deadlocked = r.deadlocks.iter().map(render).collect::<Vec<_>>();
        assert!(
            deadlocked
                .iter()
                .any(|t| t.contains("t1.lock_a") && t.contains("t2.lock_b")),
            "{deadlocked:?}"
        );
        assert!(r.first_failure().is_some());
    }

    #[test]
    fn always_invariant_catches_transient_states() {
        // The *final* sum is always fine; only an always-invariant sees
        // the intermediate overdraft.
        let r = ModelBuilder::new(0i64)
            .thread("debit", |t| {
                t.step("take", |s| {
                    *s -= 1;
                    StepOutcome::Done
                });
            })
            .thread("credit", |t| {
                t.step("put", |s| {
                    *s += 1;
                    StepOutcome::Done
                });
            })
            .invariant_always(|s| {
                if *s >= 0 {
                    Ok(())
                } else {
                    Err("overdraft".to_string())
                }
            })
            .check();
        assert!(!r.violations.is_empty());
        assert!(r.violations.iter().any(|(_, m)| m == "overdraft"));
    }

    #[test]
    fn schedule_cap_reports_truncation() {
        let mk = |t: &mut ThreadBuilder<()>| {
            for _ in 0..4 {
                t.step("s", |_| StepOutcome::Done);
            }
        };
        let r = ModelBuilder::new(())
            .thread("a", mk)
            .thread("b", mk)
            .thread("c", mk)
            .max_schedules(3)
            .check();
        assert!(r.truncated);
        assert!(!r.passed());
    }
}
