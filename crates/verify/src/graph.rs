//! The global lock registry and acquisition-order graph.
//!
//! Every [`crate::TrackedMutex`] / [`crate::TrackedRwLock`] registers
//! itself here on first acquisition (under the `lockcheck` feature). The
//! registry maintains:
//!
//! * per-lock statistics (acquisitions, maximum observed hold time),
//! * the **acquisition-order graph**: a directed edge `A → B` is inserted
//!   the first time any thread acquires `B` while holding `A`,
//! * the findings list (cycles, waits-while-holding, long holds).
//!
//! Cycle detection runs incrementally: inserting edge `A → B` searches for
//! a path `B ⇝ A`; if one exists the closed cycle is reported as a
//! potential deadlock. The check is cheap because the node set is the set
//! of *distinct lock names* in the program (a handful), not the set of
//! lock instances — `job.slot` is one node no matter how many jobs exist,
//! which is exactly the granularity at which ordering discipline is
//! defined.
//!
//! Holding the registry's own (std) mutex while running user code is never
//! done: all bookkeeping happens in short critical sections around the
//! tracked acquisition itself.

#[cfg(not(feature = "lockcheck"))]
use crate::report::LockReport;

#[cfg(feature = "lockcheck")]
pub(crate) use imp::{
    on_acquire_attempt, on_acquired, on_contended, on_release, on_wait_begin, on_wait_end,
    registry_report, registry_reset,
};

#[cfg(not(feature = "lockcheck"))]
pub(crate) fn registry_report() -> LockReport {
    LockReport::default()
}

#[cfg(not(feature = "lockcheck"))]
pub(crate) fn registry_reset() {}

#[cfg(feature = "lockcheck")]
mod imp {
    use std::cell::RefCell;
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::{Mutex, OnceLock, PoisonError};
    use std::time::Instant;

    use crate::report::{LockEdgeInfo, LockFinding, LockFindingKind, LockInfo, LockReport};
    use crate::VerifyMode;

    /// Hold times above this many microseconds are reported as
    /// [`LockFindingKind::LongHold`] outliers. Overridable via
    /// `PROCLUS_LOCKCHECK_HOLD_MS`.
    const DEFAULT_LONG_HOLD_US: u64 = 500_000;

    #[derive(Default)]
    struct Registry {
        /// Per lock-name statistics (the node set of the graph).
        locks: BTreeMap<&'static str, LockStats>,
        /// Acquisition-order edges `held → acquired` with observation info.
        edges: BTreeMap<(&'static str, &'static str), EdgeStats>,
        findings: Vec<LockFinding>,
        /// Dedup keys so one discipline violation is reported once, not
        /// once per occurrence.
        seen: BTreeSet<String>,
    }

    #[derive(Default)]
    struct LockStats {
        kind: &'static str,
        acquisitions: u64,
        contended_estimate: u64,
        max_hold_us: u64,
    }

    #[derive(Default)]
    struct EdgeStats {
        count: u64,
        first_thread: String,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
    }

    fn long_hold_threshold_us() -> u64 {
        static THRESHOLD: OnceLock<u64> = OnceLock::new();
        *THRESHOLD.get_or_init(|| {
            std::env::var("PROCLUS_LOCKCHECK_HOLD_MS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .map(|ms| ms.saturating_mul(1000))
                .unwrap_or(DEFAULT_LONG_HOLD_US)
        })
    }

    thread_local! {
        /// Locks currently held by this thread, acquisition order, with
        /// the instant each was acquired (for hold-time accounting).
        static HELD: RefCell<Vec<(&'static str, Instant)>> = const { RefCell::new(Vec::new()) };
    }

    fn thread_name() -> String {
        std::thread::current()
            .name()
            .unwrap_or("<unnamed>")
            .to_string()
    }

    /// Searches the edge set for a path `from ⇝ to`, returning it as a
    /// node list when found. Iterative DFS; the node set is tiny (distinct
    /// lock names), so this is effectively free.
    fn find_path(
        edges: &BTreeMap<(&'static str, &'static str), EdgeStats>,
        from: &'static str,
        to: &'static str,
    ) -> Option<Vec<&'static str>> {
        let mut stack = vec![vec![from]];
        let mut visited = BTreeSet::new();
        visited.insert(from);
        while let Some(path) = stack.pop() {
            let last = *path.last()?;
            if last == to {
                return Some(path);
            }
            for &(a, b) in edges.keys() {
                if a == last && visited.insert(b) {
                    let mut next = path.clone();
                    next.push(b);
                    stack.push(next);
                }
            }
        }
        None
    }

    fn emit(reg: &mut Registry, key: String, finding: LockFinding) {
        if !reg.seen.insert(key) {
            return;
        }
        match crate::mode() {
            VerifyMode::Off => {}
            VerifyMode::Report => reg.findings.push(finding),
            VerifyMode::Abort => panic!("lockcheck: {}", finding.message),
        }
    }

    /// Called *before* blocking on `name`: records the order edge from the
    /// innermost lock this thread already holds and runs the cycle check.
    pub(crate) fn on_acquire_attempt(name: &'static str, kind: &'static str) {
        let holder = HELD.with(|h| h.borrow().last().map(|&(n, _)| n));
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        reg.locks.entry(name).or_default().kind = kind;
        let Some(held) = holder else { return };
        if held == name {
            // Re-acquiring the same *name* (not instance) is common for
            // per-object locks like `job.slot`; it is not an order edge.
            return;
        }
        let is_new = !reg.edges.contains_key(&(held, name));
        let e = reg.edges.entry((held, name)).or_default();
        e.count += 1;
        if e.first_thread.is_empty() {
            e.first_thread = thread_name();
        }
        if is_new {
            // A new edge can close a cycle: look for the reverse path
            // `name ⇝ held` among the previously known edges.
            if let Some(mut path) = find_path(&reg.edges, name, held) {
                path.push(name);
                let cycle: Vec<String> = path.iter().map(|s| (*s).to_string()).collect();
                let message = format!(
                    "lock-order inversion (potential deadlock): cycle {} closed by thread `{}` \
                     acquiring `{name}` while holding `{held}`",
                    cycle.join(" -> "),
                    thread_name(),
                );
                let key = format!("cycle:{}", cycle.join(","));
                emit(
                    &mut reg,
                    key,
                    LockFinding {
                        kind: LockFindingKind::OrderInversion,
                        lock: name.to_string(),
                        thread: thread_name(),
                        message,
                        cycle,
                        held_us: 0,
                    },
                );
            }
        }
    }

    /// Called when a fast-path `try_lock` failed and the thread is about
    /// to block — a cheap contention estimate, not a precise count.
    pub(crate) fn on_contended(name: &'static str) {
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        reg.locks.entry(name).or_default().contended_estimate += 1;
    }

    /// Called once the lock is actually held.
    pub(crate) fn on_acquired(name: &'static str) {
        {
            let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
            reg.locks.entry(name).or_default().acquisitions += 1;
        }
        HELD.with(|h| h.borrow_mut().push((name, Instant::now())));
    }

    /// Called when the guard drops (or a condvar wait releases the lock).
    pub(crate) fn on_release(name: &'static str) {
        let since = HELD.with(|h| {
            let mut held = h.borrow_mut();
            match held.iter().rposition(|&(n, _)| n == name) {
                Some(i) => Some(held.remove(i).1),
                None => None,
            }
        });
        let Some(since) = since else { return };
        let held_us = since.elapsed().as_micros() as u64;
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        let stats = reg.locks.entry(name).or_default();
        if held_us > stats.max_hold_us {
            stats.max_hold_us = held_us;
        }
        if held_us > long_hold_threshold_us() {
            let message = format!(
                "long hold: `{name}` held {held_us} us by thread `{}` (threshold {} us)",
                thread_name(),
                long_hold_threshold_us(),
            );
            let key = format!("longhold:{name}:{}", thread_name());
            emit(
                &mut reg,
                key,
                LockFinding {
                    kind: LockFindingKind::LongHold,
                    lock: name.to_string(),
                    thread: thread_name(),
                    message,
                    cycle: Vec::new(),
                    held_us,
                },
            );
        }
    }

    /// Called when a condvar wait is about to release `name`: flags waits
    /// entered while other tracked locks are still held (those stay held
    /// for the whole sleep — a classic lost-progress / deadlock shape),
    /// then removes `name` from the held set for the duration of the wait.
    pub(crate) fn on_wait_begin(name: &'static str) {
        let others: Vec<&'static str> = HELD.with(|h| {
            h.borrow()
                .iter()
                .map(|&(n, _)| n)
                .filter(|&n| n != name)
                .collect()
        });
        if !others.is_empty() {
            let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
            let message = format!(
                "condvar wait on `{name}` while holding [{}] in thread `{}`: the held locks \
                 block every other thread for the full sleep",
                others.join(", "),
                thread_name(),
            );
            let key = format!("wait:{name}:{}", others.join(","));
            emit(
                &mut reg,
                key,
                LockFinding {
                    kind: LockFindingKind::WaitWhileHolding,
                    lock: name.to_string(),
                    thread: thread_name(),
                    message,
                    cycle: others.iter().map(|s| (*s).to_string()).collect(),
                    held_us: 0,
                },
            );
        }
        on_release(name);
    }

    /// Called when the condvar wait returns and the lock is held again.
    pub(crate) fn on_wait_end(name: &'static str) {
        on_acquired(name);
    }

    pub(crate) fn registry_report() -> LockReport {
        let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        LockReport {
            mode: crate::mode().name().to_string(),
            lockcheck: true,
            locks: reg
                .locks
                .iter()
                .map(|(name, s)| LockInfo {
                    name: (*name).to_string(),
                    kind: s.kind.to_string(),
                    acquisitions: s.acquisitions,
                    contended_estimate: s.contended_estimate,
                    max_hold_us: s.max_hold_us,
                })
                .collect(),
            edges: reg
                .edges
                .iter()
                .map(|(&(a, b), e)| LockEdgeInfo {
                    from: a.to_string(),
                    to: b.to_string(),
                    count: e.count,
                    first_thread: e.first_thread.clone(),
                })
                .collect(),
            findings: reg.findings.clone(),
        }
    }

    pub(crate) fn registry_reset() {
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        reg.locks.clear();
        reg.edges.clear();
        reg.findings.clear();
        reg.seen.clear();
    }
}
