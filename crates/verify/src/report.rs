//! Lock-checker findings and their JSON export — the host-side analogue of
//! the kernel sanitizer's `DeviceReport` (`gpu-sim`): per-lock aggregates,
//! the acquisition-order edge list, and a findings list, serialized as a
//! single self-contained JSON object.

use std::fmt::Write as _;

/// What kind of hazard a finding describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockFindingKind {
    /// A cycle in the acquisition-order graph — two code paths acquire the
    /// same locks in opposite orders, so the right interleaving deadlocks.
    OrderInversion,
    /// A condvar wait entered while other tracked locks were still held;
    /// those locks stay held for the entire sleep.
    WaitWhileHolding,
    /// A lock held longer than the configured threshold
    /// (`PROCLUS_LOCKCHECK_HOLD_MS`, default 500 ms).
    LongHold,
}

impl LockFindingKind {
    /// The wire name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            LockFindingKind::OrderInversion => "order_inversion",
            LockFindingKind::WaitWhileHolding => "wait_while_holding",
            LockFindingKind::LongHold => "long_hold",
        }
    }
}

/// One detected hazard.
#[derive(Debug, Clone)]
pub struct LockFinding {
    /// Hazard class.
    pub kind: LockFindingKind,
    /// The lock whose acquisition (or wait/release) triggered detection.
    pub lock: String,
    /// Name of the thread that triggered detection.
    pub thread: String,
    /// Human-readable description.
    pub message: String,
    /// For [`LockFindingKind::OrderInversion`]: the cycle's lock names in
    /// path order (first == last). For
    /// [`LockFindingKind::WaitWhileHolding`]: the locks still held.
    pub cycle: Vec<String>,
    /// For [`LockFindingKind::LongHold`]: the observed hold time.
    pub held_us: u64,
}

/// Per-lock aggregate statistics (one row per distinct lock *name*).
#[derive(Debug, Clone)]
pub struct LockInfo {
    /// The static name given at construction (`"server.state"`, …).
    pub name: String,
    /// `"mutex"` / `"rwlock"`.
    pub kind: String,
    /// Total acquisitions (read + write for rwlocks).
    pub acquisitions: u64,
    /// Acquisitions whose fast-path `try_lock` failed — a cheap lower
    /// bound on contention, not a precise count.
    pub contended_estimate: u64,
    /// Longest observed hold, microseconds.
    pub max_hold_us: u64,
}

/// One acquisition-order edge: some thread acquired `to` while holding
/// `from`.
#[derive(Debug, Clone)]
pub struct LockEdgeInfo {
    /// The lock already held.
    pub from: String,
    /// The lock acquired while holding `from`.
    pub to: String,
    /// How many times the edge was observed.
    pub count: u64,
    /// The thread that first recorded the edge.
    pub first_thread: String,
}

/// Snapshot of the global lock registry. With the `lockcheck` feature off
/// this is always empty ([`LockReport::lockcheck`] = `false`), so callers
/// can assert on it unconditionally.
#[derive(Debug, Clone, Default)]
pub struct LockReport {
    /// The reporting mode at snapshot time (`off` / `report` / `abort`).
    pub mode: String,
    /// Whether the `lockcheck` feature was compiled in.
    pub lockcheck: bool,
    /// Per-lock aggregates, sorted by name.
    pub locks: Vec<LockInfo>,
    /// Acquisition-order edges, sorted by (from, to).
    pub edges: Vec<LockEdgeInfo>,
    /// Detected hazards, in detection order.
    pub findings: Vec<LockFinding>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn string_list(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", escape(s));
    }
    out.push(']');
    out
}

impl LockReport {
    /// True when no hazards were detected.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the report as a single JSON object, in the same style as
    /// the kernel sanitizer's device report: a `version` tag, the mode,
    /// per-lock aggregates, the order-graph edges, and the findings.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"version\":1,\"component\":\"proclus-verify\",\"mode\":\"{}\",\
             \"lockcheck\":{},\"locks\":[",
            escape(&self.mode),
            self.lockcheck,
        );
        for (i, l) in self.locks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"acquisitions\":{},\
                 \"contended_estimate\":{},\"max_hold_us\":{}}}",
                escape(&l.name),
                escape(&l.kind),
                l.acquisitions,
                l.contended_estimate,
                l.max_hold_us,
            );
        }
        out.push_str("],\"edges\":[");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"from\":\"{}\",\"to\":\"{}\",\"count\":{},\"first_thread\":\"{}\"}}",
                escape(&e.from),
                escape(&e.to),
                e.count,
                escape(&e.first_thread),
            );
        }
        out.push_str("],\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"kind\":\"{}\",\"lock\":\"{}\",\"thread\":\"{}\",\"message\":\"{}\",\
                 \"locks_involved\":{},\"held_us\":{}}}",
                f.kind.name(),
                escape(&f.lock),
                escape(&f.thread),
                escape(&f.message),
                string_list(&f.cycle),
                f.held_us,
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_serializes() {
        let r = LockReport::default();
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"findings\":[]"));
        assert!(r.is_clean());
    }

    #[test]
    fn findings_and_escapes_render() {
        let r = LockReport {
            mode: "report".into(),
            lockcheck: true,
            locks: vec![LockInfo {
                name: "a\"b".into(),
                kind: "mutex".into(),
                acquisitions: 3,
                contended_estimate: 1,
                max_hold_us: 42,
            }],
            edges: vec![LockEdgeInfo {
                from: "a".into(),
                to: "b".into(),
                count: 2,
                first_thread: "t".into(),
            }],
            findings: vec![LockFinding {
                kind: LockFindingKind::OrderInversion,
                lock: "b".into(),
                thread: "t".into(),
                message: "cycle a -> b -> a".into(),
                cycle: vec!["a".into(), "b".into(), "a".into()],
                held_us: 0,
            }],
        };
        let json = r.to_json();
        assert!(json.contains("\\\"b\""), "escaped quote: {json}");
        assert!(json.contains("\"order_inversion\""));
        assert!(json.contains("\"locks_involved\":[\"a\",\"b\",\"a\"]"));
        assert!(!r.is_clean());
    }
}
