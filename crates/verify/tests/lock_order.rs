//! Lock-order analysis tests: seeded-defect fixtures proving the checker
//! detects what it claims (an intentional lock-order inversion, a condvar
//! wait entered while holding another lock, a long hold), plus the clean
//! case and the Abort-mode contract.
//!
//! Everything here requires the `lockcheck` feature — run with
//! `cargo test -p proclus-verify --features lockcheck`.
#![cfg(feature = "lockcheck")]

use std::panic::AssertUnwindSafe;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use proclus_verify::{
    lock_report, reset, set_mode, LockFindingKind, TrackedCondvar, TrackedMutex, VerifyMode,
};

/// The lock registry is process-global and Rust runs tests in parallel, so
/// every test serializes on this and starts from a [`reset`] registry. The
/// Abort-mode test panics on purpose; recover the poison.
static SERIAL: Mutex<()> = Mutex::new(());

fn isolated() -> MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    reset();
    set_mode(VerifyMode::Report);
    guard
}

/// Seeded defect #1: two lock roles acquired in opposite orders on two
/// code paths. No schedule here actually deadlocks (one thread, sequential
/// sections) — which is the point: the *order graph* convicts the
/// discipline violation without needing the losing interleaving to occur.
#[test]
fn seeded_order_inversion_is_detected() {
    let _s = isolated();
    let a = TrackedMutex::new("fixture.inversion.a", ());
    let b = TrackedMutex::new("fixture.inversion.b", ());

    {
        let _ga = a.lock();
        let _gb = b.lock(); // edge a -> b
    }
    {
        let _gb = b.lock();
        let _ga = a.lock(); // edge b -> a: closes the cycle
    }

    let report = lock_report();
    let inversions: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.kind == LockFindingKind::OrderInversion)
        .collect();
    assert_eq!(inversions.len(), 1, "one deduped finding: {report:?}");
    let f = inversions[0];
    assert!(f.cycle.contains(&"fixture.inversion.a".to_string()));
    assert!(f.cycle.contains(&"fixture.inversion.b".to_string()));
    assert!(
        f.cycle.first() == f.cycle.last(),
        "cycle path is closed: {:?}",
        f.cycle
    );
    assert!(!report.is_clean());
}

/// Seeded defect #2: a condvar wait entered while another tracked lock is
/// held — the held lock blocks all other threads for the entire sleep.
#[test]
fn seeded_wait_while_holding_is_detected() {
    let _s = isolated();
    let outer = TrackedMutex::new("fixture.wait.outer", ());
    let inner = TrackedMutex::new("fixture.wait.inner", ());
    let cv = TrackedCondvar::new("fixture.wait.cv");

    let _held = outer.lock();
    let g = inner.lock();
    let (_g, timed_out) = cv.wait_timeout(g, Duration::from_millis(1));
    assert!(timed_out.timed_out());

    let report = lock_report();
    let waits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.kind == LockFindingKind::WaitWhileHolding)
        .collect();
    assert_eq!(waits.len(), 1, "{report:?}");
    assert_eq!(waits[0].lock, "fixture.wait.inner");
    assert_eq!(waits[0].cycle, vec!["fixture.wait.outer".to_string()]);
}

/// Seeded defect #3: a hold longer than the threshold (default 500 ms) is
/// reported as an outlier with its measured duration.
#[test]
fn seeded_long_hold_is_detected() {
    let _s = isolated();
    let m = TrackedMutex::new("fixture.long_hold", ());
    {
        let _g = m.lock();
        std::thread::sleep(Duration::from_millis(600));
    }

    let report = lock_report();
    let holds: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.kind == LockFindingKind::LongHold)
        .collect();
    assert_eq!(holds.len(), 1, "{report:?}");
    assert_eq!(holds[0].lock, "fixture.long_hold");
    assert!(holds[0].held_us >= 500_000, "{}", holds[0].held_us);
}

/// The clean case: consistent `a` -> `b` ordering across several real
/// threads produces edges and statistics but no findings.
#[test]
fn consistent_ordering_across_threads_is_clean() {
    let _s = isolated();
    let locks = std::sync::Arc::new((
        TrackedMutex::new("fixture.clean.a", 0u64),
        TrackedMutex::new("fixture.clean.b", 0u64),
    ));
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let locks = std::sync::Arc::clone(&locks);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let mut ga = locks.0.lock();
                    let mut gb = locks.1.lock();
                    *ga += 1;
                    *gb += 1;
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker exits cleanly");
    }

    let report = lock_report();
    assert!(report.is_clean(), "{report:?}");
    assert!(report.lockcheck);
    let a = report
        .locks
        .iter()
        .find(|l| l.name == "fixture.clean.a")
        .expect("lock registered");
    assert_eq!(a.acquisitions, 200);
    assert!(report
        .edges
        .iter()
        .any(|e| e.from == "fixture.clean.a" && e.to == "fixture.clean.b" && e.count == 200));
    assert!(!report
        .edges
        .iter()
        .any(|e| e.from == "fixture.clean.b" && e.to == "fixture.clean.a"));
}

/// Abort mode turns the detection site into a panic, so CI fails loudly at
/// the exact acquisition that closed the cycle.
#[test]
fn abort_mode_panics_at_the_inverting_acquisition() {
    let _s = isolated();
    set_mode(VerifyMode::Abort);
    let a = TrackedMutex::new("fixture.abort.a", ());
    let b = TrackedMutex::new("fixture.abort.b", ());

    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _ga = a.lock(); // panics here
        }
    }));
    set_mode(VerifyMode::Report);
    let err = outcome.expect_err("inversion must panic in Abort mode");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic>".to_string());
    assert!(msg.contains("lockcheck"), "{msg}");
    assert!(msg.contains("fixture.abort.a"), "{msg}");
}

/// JSON export carries the full picture — the DeviceReport-style contract
/// the CI artifacts rely on.
#[test]
fn report_exports_device_report_style_json() {
    let _s = isolated();
    let a = TrackedMutex::new("fixture.json.a", ());
    let b = TrackedMutex::new("fixture.json.b", ());
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _ga = a.lock();
    }

    let json = lock_report().to_json();
    assert!(json.contains("\"component\":\"proclus-verify\""), "{json}");
    assert!(json.contains("\"mode\":\"report\""), "{json}");
    assert!(json.contains("\"lockcheck\":true"), "{json}");
    assert!(json.contains("\"name\":\"fixture.json.a\""), "{json}");
    assert!(
        json.contains("\"from\":\"fixture.json.a\",\"to\":\"fixture.json.b\""),
        "{json}"
    );
    assert!(json.contains("\"kind\":\"order_inversion\""), "{json}");
}
