//! Model checks of the serving layer's concurrency protocols, run on the
//! exhaustive-interleaving explorer in [`proclus_verify::model`].
//!
//! Each test encodes one protocol as an explicit state machine and checks
//! its invariants over **every** interleaving:
//!
//! * the scheduler's enqueue / coalesce / cancel / deadline path
//!   (`proclus-serve::server`): every job reaches exactly one terminal
//!   state, coalesced jobs share one execution;
//! * the dataset registry's concurrent load–evict path
//!   (`proclus-serve::registry`): the byte budget is never exceeded, and
//!   with single-flight loading two concurrent loads of one fingerprint
//!   hash exactly once;
//! * a seeded lost-wakeup defect (predicate check separated from the
//!   sleep) that the checker reports as a deadlock, next to the corrected
//!   protocol that passes.
//!
//! These tests run with or without the `lockcheck` feature — the model
//! checker has no global state.

use proclus_verify::model::{ModelBuilder, StepOutcome};

// ------------------------------------------------------------- scheduler

/// Job terminal states, in the order they were reached.
#[derive(Clone, Default, Debug)]
struct Sched {
    /// FIFO of `(coalesce_key, job_id)` awaiting a worker.
    queue: Vec<(u32, u32)>,
    /// Cancellation requested for job 2 (may land before or after it runs).
    cancel_2: bool,
    /// Deadline elapsed for job 3.
    expired_3: bool,
    /// `(job_id, outcome)` — each job must appear exactly once.
    terminal: Vec<(u32, &'static str)>,
    /// Batches executed (coalesced jobs share one).
    executions: u32,
}

const JOBS: [u32; 3] = [1, 2, 3];

fn enqueue(key: u32, job: u32) -> impl Fn(&mut Sched) -> StepOutcome {
    move |s: &mut Sched| {
        s.queue.push((key, job));
        StepOutcome::Done
    }
}

/// One worker iteration: take the front job plus everything sharing its
/// coalesce key (one batch, one execution), then settle each job —
/// cancelled and expired jobs still terminalize, exactly once. When the
/// queue is empty but jobs remain outstanding the worker sleeps (Blocked);
/// once every job is terminal it idles through remaining steps (Done).
fn worker_take(s: &mut Sched) -> StepOutcome {
    if s.queue.is_empty() {
        let all_terminal = JOBS
            .iter()
            .all(|j| s.terminal.iter().any(|&(id, _)| id == *j));
        return if all_terminal {
            StepOutcome::Done
        } else {
            StepOutcome::Blocked
        };
    }
    let key = s.queue[0].0;
    let batch: Vec<(u32, u32)> = {
        let (take, keep): (Vec<_>, Vec<_>) = s.queue.iter().partition(|&&(k, _)| k == key);
        s.queue = keep;
        take
    };
    s.executions += 1;
    for (_, job) in batch {
        let outcome = if job == 2 && s.cancel_2 {
            "cancelled"
        } else if job == 3 && s.expired_3 {
            "deadline"
        } else {
            "fulfilled"
        };
        s.terminal.push((job, outcome));
    }
    StepOutcome::Done
}

/// Scheduler protocol: three clients (jobs 1 and 2 share a coalesce key),
/// a canceller racing job 2, a deadline clock racing job 3, and a worker.
/// Exhaustive exploration proves that in every interleaving each job
/// reaches exactly one terminal state and coalescing never duplicates or
/// drops an execution.
#[test]
fn scheduler_enqueue_coalesce_cancel_deadline_is_sound() {
    let result = ModelBuilder::new(Sched::default())
        .thread("client1", |t| {
            t.step("enqueue_j1", enqueue(10, 1));
        })
        .thread("client2", |t| {
            t.step("enqueue_j2", enqueue(10, 2)); // same key as j1: coalesces
        })
        .thread("client3", |t| {
            t.step("enqueue_j3", enqueue(20, 3));
        })
        .thread("canceller", |t| {
            t.step("cancel_j2", |s: &mut Sched| {
                s.cancel_2 = true;
                StepOutcome::Done
            });
        })
        .thread("clock", |t| {
            t.step("expire_j3", |s: &mut Sched| {
                s.expired_3 = true;
                StepOutcome::Done
            });
        })
        .thread("worker", |t| {
            for _ in 0..3 {
                t.step("take_batch", worker_take);
            }
        })
        .invariant_always(|s| {
            for j in JOBS {
                if s.terminal.iter().filter(|&&(id, _)| id == j).count() > 1 {
                    return Err(format!("job {j} terminalized twice"));
                }
            }
            Ok(())
        })
        .invariant_final(|s| {
            for j in JOBS {
                if !s.terminal.iter().any(|&(id, _)| id == j) {
                    return Err(format!("job {j} never reached a terminal state"));
                }
            }
            // Two coalesce keys exist, so 2 batches when j1/j2 coalesced,
            // 3 when the worker took them separately — never more.
            if !(2..=3).contains(&s.executions) {
                return Err(format!("{} batch executions", s.executions));
            }
            Ok(())
        })
        .check();
    assert!(
        result.passed(),
        "{}",
        result.first_failure().unwrap_or_default()
    );
    assert!(result.schedules > 100, "exhaustive: {}", result.schedules);
}

// -------------------------------------------------------------- registry

/// Dataset registry state: cache with a byte budget, single-flight pending
/// set, and a hash counter.
#[derive(Clone, Default, Debug)]
struct Reg {
    cached: Vec<(u32, u64)>, // (fingerprint, bytes), LRU order
    bytes: u64,
    budget: u64,
    pending: Vec<u32>,
    hashes: u32,
    hits: u32,
    /// Which loader threads claimed the miss for key 7.
    claimed: [bool; 2],
}

impl Reg {
    fn insert_and_evict(&mut self, key: u32, size: u64) {
        self.cached.push((key, size));
        self.bytes += size;
        while self.bytes > self.budget && !self.cached.is_empty() {
            let (_, sz) = self.cached.remove(0);
            self.bytes -= sz;
        }
    }
}

/// Single-flight load of key 7 by loader `who`: the begin step either hits
/// the cache, claims the pending slot, or blocks behind the other loader's
/// in-flight load; the finish step hashes + inserts (with eviction) only
/// for the claimant.
fn sf_begin(who: usize) -> impl Fn(&mut Reg) -> StepOutcome {
    move |s: &mut Reg| {
        if s.cached.iter().any(|&(k, _)| k == 7) {
            s.hits += 1;
            return StepOutcome::Done;
        }
        if s.pending.contains(&7) {
            return StepOutcome::Blocked; // waits on registry.pending's condvar
        }
        s.pending.push(7);
        s.claimed[who] = true;
        StepOutcome::Done
    }
}

fn sf_finish(who: usize) -> impl Fn(&mut Reg) -> StepOutcome {
    move |s: &mut Reg| {
        if s.claimed[who] {
            s.hashes += 1;
            s.insert_and_evict(7, 60);
            s.pending.retain(|&k| k != 7);
        }
        StepOutcome::Done
    }
}

/// Registry protocol with single-flight: two loaders race the same
/// fingerprint while a third loads an unrelated dataset. The budget is
/// roomy here (no eviction — an evict-then-reload legitimately re-hashes,
/// see the next test for eviction pressure), so in every interleaving the
/// shared fingerprint is hashed exactly once and the pending set drains.
#[test]
fn registry_concurrent_loads_of_one_fingerprint_hash_once() {
    let initial = Reg {
        budget: 200,
        ..Reg::default()
    };
    let result = ModelBuilder::new(initial)
        .thread("loader_a", |t| {
            t.step("begin_load_7", sf_begin(0));
            t.step("finish_load_7", sf_finish(0));
        })
        .thread("loader_b", |t| {
            t.step("begin_load_7", sf_begin(1));
            t.step("finish_load_7", sf_finish(1));
        })
        .thread("loader_other", |t| {
            t.step("load_9", |s: &mut Reg| {
                s.hashes += 1;
                s.insert_and_evict(9, 80);
                StepOutcome::Done
            });
        })
        .invariant_always(|s| {
            if s.bytes > s.budget {
                Err(format!(
                    "cache at {} bytes exceeds budget {}",
                    s.bytes, s.budget
                ))
            } else {
                Ok(())
            }
        })
        .invariant_final(|s| {
            let hashes_of_7 = s.hashes - 1; // one hash belongs to key 9
            if hashes_of_7 != 1 {
                return Err(format!("fingerprint 7 hashed {hashes_of_7} times"));
            }
            if !s.pending.is_empty() {
                return Err("pending set not drained".to_string());
            }
            if s.hits != 1 {
                return Err(format!(
                    "{} cache hits, expected the late loader's 1",
                    s.hits
                ));
            }
            Ok(())
        })
        .check();
    assert!(
        result.passed(),
        "{}",
        result.first_failure().unwrap_or_default()
    );
}

/// Eviction pressure: three loaders with distinct fingerprints against a
/// budget that can hold at most two of them. The byte budget is a safety
/// invariant — it must hold after *every* step of *every* interleaving,
/// not just at quiescence.
#[test]
fn registry_eviction_never_exceeds_budget_in_any_interleaving() {
    let load = |key: u32, size: u64| {
        move |s: &mut Reg| {
            s.hashes += 1;
            s.insert_and_evict(key, size);
            StepOutcome::Done
        }
    };
    let result = ModelBuilder::new(Reg {
        budget: 100,
        ..Reg::default()
    })
    .thread("loader_a", |t| {
        t.step("load_1", load(1, 60));
    })
    .thread("loader_b", |t| {
        t.step("load_2", load(2, 50));
    })
    .thread("loader_c", |t| {
        t.step("load_3", load(3, 40));
    })
    .invariant_always(|s| {
        if s.bytes > s.budget {
            Err(format!(
                "cache at {} bytes exceeds budget {}",
                s.bytes, s.budget
            ))
        } else {
            Ok(())
        }
    })
    .invariant_final(|s| {
        if s.cached.is_empty() {
            return Err("eviction emptied the cache entirely".to_string());
        }
        Ok(())
    })
    .check();
    assert!(
        result.passed(),
        "{}",
        result.first_failure().unwrap_or_default()
    );
    assert_eq!(result.schedules, 6, "3 single-step threads, 3! orders");
}

/// Seeded defect: the same two loaders *without* the pending set (the
/// pre-single-flight code): both miss, both hash — the duplicated work the
/// real registry's `loads_performed()` test pins down.
#[test]
fn seeded_registry_without_single_flight_double_hashes() {
    // The defect: the cache check and the hash+insert are separate
    // critical sections (the real pre-fix code dropped the registry lock
    // while hashing), so two threads can both observe the miss.
    let naive_check = |who: usize| {
        move |s: &mut Reg| {
            if s.cached.iter().any(|&(k, _)| k == 7) {
                s.hits += 1;
            } else {
                s.claimed[who] = true; // remembers "I saw a miss"
            }
            StepOutcome::Done
        }
    };
    let naive_load = |who: usize| {
        move |s: &mut Reg| {
            if s.claimed[who] {
                s.hashes += 1;
                s.insert_and_evict(7, 60);
            }
            StepOutcome::Done
        }
    };
    let result = ModelBuilder::new(Reg {
        budget: 200,
        ..Reg::default()
    })
    .thread("loader_a", |t| {
        t.step("check_7", naive_check(0));
        t.step("load_7", naive_load(0));
    })
    .thread("loader_b", |t| {
        t.step("check_7", naive_check(1));
        t.step("load_7", naive_load(1));
    })
    .invariant_final(|s| {
        if s.hashes == 1 {
            Ok(())
        } else {
            Err(format!("hashed {} times", s.hashes))
        }
    })
    .check();
    assert!(
        !result.passed(),
        "the naive protocol must double-hash in some schedule"
    );
    assert!(result
        .violations
        .iter()
        .any(|(_, m)| m.contains("hashed 2 times")));
}

// ----------------------------------------------------------- lost wakeup

#[derive(Clone, Default)]
struct Wakeup {
    ready: bool,
    sleeping: bool,
    notified: bool,
    consumed: bool,
    skip_sleep: bool,
}

/// Seeded defect: the consumer checks the predicate and *then* goes to
/// sleep as two separate atomic sections (i.e. the mutex is dropped
/// between check and wait). The producer's notification only reaches a
/// consumer that is already sleeping — exactly `Condvar::notify_one`
/// semantics — so the schedule check → produce+notify → sleep loses the
/// wakeup and the checker reports it as a deadlock.
#[test]
fn seeded_lost_wakeup_is_detected_as_deadlock() {
    let result = ModelBuilder::new(Wakeup::default())
        .thread("producer", |t| {
            t.step("produce_and_notify", |s: &mut Wakeup| {
                s.ready = true;
                if s.sleeping {
                    s.notified = true;
                }
                StepOutcome::Done
            });
        })
        .thread("consumer", |t| {
            t.step("check_outside_lock", |s: &mut Wakeup| {
                if s.ready {
                    s.consumed = true;
                    s.skip_sleep = true;
                }
                StepOutcome::Done
            });
            t.step("enter_wait", |s: &mut Wakeup| {
                if !s.skip_sleep {
                    s.sleeping = true;
                }
                StepOutcome::Done
            });
            t.step("wake", |s: &mut Wakeup| {
                if s.skip_sleep {
                    return StepOutcome::Done;
                }
                if s.notified {
                    s.consumed = true;
                    StepOutcome::Done
                } else {
                    StepOutcome::Blocked
                }
            });
        })
        .check();
    assert!(!result.deadlocks.is_empty(), "lost wakeup must deadlock");
    let trace = &result.deadlocks[0];
    assert!(
        trace
            .iter()
            .any(|&(th, st)| th == "producer" && st == "produce_and_notify"),
        "the losing schedule has the notify before the sleep: {trace:?}"
    );
}

/// The corrected protocol: predicate check and wait form one atomic
/// section (the mutex is held across both, as `TrackedCondvar::wait`
/// enforces). Every interleaving completes and consumes.
#[test]
fn corrected_wait_with_predicate_under_lock_passes() {
    let result = ModelBuilder::new(Wakeup::default())
        .thread("producer", |t| {
            t.step("produce_and_notify", |s: &mut Wakeup| {
                s.ready = true;
                StepOutcome::Done
            });
        })
        .thread("consumer", |t| {
            t.step("wait_while_not_ready", |s: &mut Wakeup| {
                if !s.ready {
                    return StepOutcome::Blocked;
                }
                s.consumed = true;
                StepOutcome::Done
            });
        })
        .invariant_final(|s| {
            if s.consumed {
                Ok(())
            } else {
                Err("value never consumed".to_string())
            }
        })
        .check();
    assert!(
        result.passed(),
        "{}",
        result.first_failure().unwrap_or_default()
    );
}
