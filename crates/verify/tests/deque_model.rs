//! Exhaustive-interleaving model of the work-stealing deque protocol in
//! `proclus::par` (a Chase–Lev deque specialised to grain indices).
//!
//! The model breaks each operation into its real atomic shared-memory
//! steps — every load, store, and CAS of `top` / `bottom` is one model
//! step — and explores **every** interleaving of an owner (push + take)
//! against stealing threads:
//!
//! * push: write the slot, *then* publish it by incrementing `bottom`;
//! * take: decrement `bottom`, read `top`; plain take when more than one
//!   item remains, a CAS on `top` to win the race for the last item;
//! * steal: read `top`, read `bottom`, then CAS `top` forward to claim.
//!
//! The safety property is the one the executor's determinism rests on:
//! **every pushed grain is claimed exactly once, and only after its slot
//! was written**. Two seeded defects pin the checker's teeth: dropping
//! the last-item CAS from take (double pop) and publishing `bottom`
//! before the slot write (a thief steals an unwritten slot, losing the
//! real item).

use proclus_verify::model::{ModelBuilder, StepOutcome};

/// Sentinel read from a slot the owner has not written yet.
const UNWRITTEN: u32 = 999;

/// Shared deque state plus the per-thread registers of the in-flight
/// operations (each model step is one atomic access, so values loaded by
/// earlier steps live in named registers, as they would in CPU registers).
#[derive(Clone, Debug)]
struct Deque {
    top: isize,
    bottom: isize,
    buf: Vec<u32>,
    /// Every value claimed by any thread, in claim order.
    claimed: Vec<u32>,
    /// Owner registers: decremented bottom and loaded top.
    o_b: isize,
    o_t: isize,
    /// Thief registers, one pair per thief.
    t_top: [isize; 2],
    t_bot: [isize; 2],
}

impl Deque {
    /// An empty deque with `cap` unwritten slots.
    fn empty(cap: usize) -> Self {
        Deque {
            top: 0,
            bottom: 0,
            buf: vec![UNWRITTEN; cap],
            claimed: Vec::new(),
            o_b: 0,
            o_t: 0,
            t_top: [0; 2],
            t_bot: [0; 2],
        }
    }

    /// A deque pre-filled with `items` (the executor's `new_desc` path:
    /// the buffer is written before any thread can observe it).
    fn prefilled(items: &[u32]) -> Self {
        let mut d = Deque::empty(items.len());
        d.buf.copy_from_slice(items);
        d.bottom = items.len() as isize;
        d
    }
}

// ------------------------------------------------------- atomic steps

fn push_write(val: u32) -> impl Fn(&mut Deque) -> StepOutcome {
    move |s: &mut Deque| {
        s.buf[s.bottom as usize] = val;
        StepOutcome::Done
    }
}

fn push_publish(s: &mut Deque) -> StepOutcome {
    s.bottom += 1;
    StepOutcome::Done
}

/// The slot write of a push whose publish already ran (the seeded
/// publish-before-write defect): same slot, wrong order.
fn push_write_late(val: u32) -> impl Fn(&mut Deque) -> StepOutcome {
    move |s: &mut Deque| {
        s.buf[(s.bottom - 1) as usize] = val;
        StepOutcome::Done
    }
}

fn take_dec_bottom(s: &mut Deque) -> StepOutcome {
    s.o_b = s.bottom - 1;
    s.bottom = s.o_b;
    StepOutcome::Done
}

fn take_read_top(s: &mut Deque) -> StepOutcome {
    s.o_t = s.top;
    StepOutcome::Done
}

/// The take resolution with the last-item CAS (correct protocol).
fn take_resolve(s: &mut Deque) -> StepOutcome {
    if s.o_t < s.o_b {
        // More than one item: the slot at o_b is the owner's, no race.
        s.claimed.push(s.buf[s.o_b as usize]);
    } else if s.o_t == s.o_b {
        // Last item: win it with a CAS on `top` against any thief.
        if s.top == s.o_t {
            s.top += 1;
            s.claimed.push(s.buf[s.o_b as usize]);
        }
        s.bottom = s.o_b + 1;
    } else {
        // Empty: restore bottom.
        s.bottom = s.o_b + 1;
    }
    StepOutcome::Done
}

/// SEEDED DEFECT: the last-item case takes the slot *without* the CAS, so
/// a thief whose CAS lands in the same window claims the same grain.
fn take_resolve_no_cas(s: &mut Deque) -> StepOutcome {
    if s.o_t <= s.o_b {
        s.claimed.push(s.buf[s.o_b as usize]);
        if s.o_t == s.o_b {
            s.top += 1;
            s.bottom = s.o_b + 1;
        }
    } else {
        s.bottom = s.o_b + 1;
    }
    StepOutcome::Done
}

fn steal_read_top(i: usize) -> impl Fn(&mut Deque) -> StepOutcome {
    move |s: &mut Deque| {
        s.t_top[i] = s.top;
        StepOutcome::Done
    }
}

fn steal_read_bottom(i: usize) -> impl Fn(&mut Deque) -> StepOutcome {
    move |s: &mut Deque| {
        s.t_bot[i] = s.bottom;
        StepOutcome::Done
    }
}

fn steal_cas_claim(i: usize) -> impl Fn(&mut Deque) -> StepOutcome {
    move |s: &mut Deque| {
        if s.t_top[i] < s.t_bot[i] && s.top == s.t_top[i] {
            s.top += 1;
            s.claimed.push(s.buf[s.t_top[i] as usize]);
        }
        StepOutcome::Done
    }
}

// -------------------------------------------------------- invariants

fn exactly_once_so_far(s: &Deque) -> Result<(), String> {
    for (i, v) in s.claimed.iter().enumerate() {
        if *v == UNWRITTEN {
            return Err("claimed an unwritten slot".to_string());
        }
        if s.claimed[..i].contains(v) {
            return Err(format!("grain {v} claimed twice"));
        }
    }
    Ok(())
}

fn all_claimed(expected: &'static [u32]) -> impl Fn(&Deque) -> Result<(), String> {
    move |s: &Deque| {
        let mut got = s.claimed.clone();
        got.sort_unstable();
        if got == expected {
            Ok(())
        } else {
            Err(format!("claimed {got:?}, expected {expected:?}"))
        }
    }
}

// ------------------------------------------------------------- tests

/// The real protocol, exhaustively: an owner pushes two grains then
/// drains, while two thieves race it. Every interleaving must claim each
/// grain exactly once, never from an unwritten slot.
#[test]
fn correct_deque_protocol_claims_each_grain_exactly_once() {
    let result = ModelBuilder::new(Deque::empty(2))
        .thread("owner", |t| {
            t.step("push10.write", push_write(10))
                .step("push10.publish", push_publish)
                .step("push20.write", push_write(20))
                .step("push20.publish", push_publish)
                .step("take.dec_bottom", take_dec_bottom)
                .step("take.read_top", take_read_top)
                .step("take.resolve", take_resolve)
                .step("take.dec_bottom", take_dec_bottom)
                .step("take.read_top", take_read_top)
                .step("take.resolve", take_resolve);
        })
        .thread("thief_a", |t| {
            t.step("steal.read_top", steal_read_top(0))
                .step("steal.read_bottom", steal_read_bottom(0))
                .step("steal.cas_claim", steal_cas_claim(0));
        })
        .thread("thief_b", |t| {
            t.step("steal.read_top", steal_read_top(1))
                .step("steal.read_bottom", steal_read_bottom(1))
                .step("steal.cas_claim", steal_cas_claim(1));
        })
        .invariant_always(exactly_once_so_far)
        .invariant_final(all_claimed(&[10, 20]))
        .check();
    assert!(
        result.passed(),
        "deque protocol failed: {}",
        result.first_failure().unwrap_or_default()
    );
    assert!(result.schedules > 1000, "exploration was vacuous");
}

/// Pre-filled deques (the executor's actual construction) under the same
/// owner/thief race over the last item.
#[test]
fn prefilled_deque_last_item_race_is_safe() {
    let result = ModelBuilder::new(Deque::prefilled(&[7]))
        .thread("owner", |t| {
            t.step("take.dec_bottom", take_dec_bottom)
                .step("take.read_top", take_read_top)
                .step("take.resolve", take_resolve);
        })
        .thread("thief", |t| {
            t.step("steal.read_top", steal_read_top(0))
                .step("steal.read_bottom", steal_read_bottom(0))
                .step("steal.cas_claim", steal_cas_claim(0));
        })
        .invariant_always(exactly_once_so_far)
        .invariant_final(all_claimed(&[7]))
        .check();
    assert!(
        result.passed(),
        "last-item race failed: {}",
        result.first_failure().unwrap_or_default()
    );
}

/// SEEDED DOUBLE-POP: without the last-item CAS, some interleaving lets
/// the owner and a thief both claim the final grain — the checker must
/// find it (a grain executed twice would corrupt `map_chunks` partials).
#[test]
fn double_pop_defect_is_caught() {
    let result = ModelBuilder::new(Deque::prefilled(&[7]))
        .thread("owner", |t| {
            t.step("take.dec_bottom", take_dec_bottom)
                .step("take.read_top", take_read_top)
                .step("take.resolve_no_cas", take_resolve_no_cas);
        })
        .thread("thief", |t| {
            t.step("steal.read_top", steal_read_top(0))
                .step("steal.read_bottom", steal_read_bottom(0))
                .step("steal.cas_claim", steal_cas_claim(0));
        })
        .invariant_always(exactly_once_so_far)
        .invariant_final(all_claimed(&[7]))
        .check();
    assert!(
        !result.violations.is_empty(),
        "the CAS-less take should admit a double claim, got {result:?}"
    );
    let msg = &result.violations[0].1;
    assert!(msg.contains("claimed twice"), "unexpected failure: {msg}");
}

/// SEEDED LOST ITEM: publishing `bottom` before the slot write lets a
/// thief claim the slot before the grain lands in it — the real grain is
/// lost (never executed) and garbage is claimed in its place.
#[test]
fn lost_item_defect_is_caught() {
    let result = ModelBuilder::new(Deque::empty(1))
        .thread("owner", |t| {
            // Defect: publish first, write second.
            t.step("push7.publish", push_publish)
                .step("push7.write", push_write_late(7))
                .step("take.dec_bottom", take_dec_bottom)
                .step("take.read_top", take_read_top)
                .step("take.resolve", take_resolve);
        })
        .thread("thief", |t| {
            t.step("steal.read_top", steal_read_top(0))
                .step("steal.read_bottom", steal_read_bottom(0))
                .step("steal.cas_claim", steal_cas_claim(0));
        })
        .invariant_always(exactly_once_so_far)
        .invariant_final(all_claimed(&[7]))
        .check();
    assert!(
        !result.violations.is_empty(),
        "publish-before-write should lose the item, got {result:?}"
    );
    let messages: Vec<&str> = result.violations.iter().map(|(_, m)| m.as_str()).collect();
    assert!(
        messages
            .iter()
            .any(|m| m.contains("unwritten") || m.contains("expected")),
        "unexpected failures: {messages:?}"
    );
}
