//! Criterion benchmarks of the multi-parameter reuse levels (§3.1) on the
//! CPU: how much wall-clock each cumulative level saves across a 4-setting
//! grid, isolating the algorithmic effect from the GPU model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use proclus::multi_param::{ReuseLevel, Setting};
use proclus::par::Executor;
use proclus::{fast_proclus_multi, proclus_multi};
use proclus_bench::workloads;

fn bench_reuse_levels(c: &mut Criterion) {
    let mut g = c.benchmark_group("multi_param/cpu");
    g.sample_size(10);
    let n = 8_000usize;
    let cfg = workloads::default_synthetic(n, 11);
    let data = workloads::synthetic_data(&cfg, 0);
    let base = workloads::default_params().with_seed(5);
    let grid = vec![
        Setting::new(8, 4),
        Setting::new(10, 5),
        Setting::new(12, 5),
        Setting::new(10, 7),
    ];
    let exec = Executor::Sequential;

    for (name, level) in [
        ("L0_independent", ReuseLevel::Independent),
        ("L1_shared_cache", ReuseLevel::SharedCache),
        ("L2_shared_greedy", ReuseLevel::SharedGreedy),
        ("L3_warm_start", ReuseLevel::WarmStart),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &level, |b, &level| {
            b.iter(|| black_box(fast_proclus_multi(&data, &base, &grid, level, &exec).unwrap()));
        });
    }
    g.bench_function("baseline_proclus_multi", |b| {
        b.iter(|| black_box(proclus_multi(&data, &base, &grid, &exec).unwrap()));
    });
    g.finish();
}

criterion_group!(benches, bench_reuse_levels);
criterion_main!(benches);
