//! Microbenchmarks of the CPU sub-phases (the paper's "most time-consuming
//! steps", §3): baseline ComputeL+X vs. the FAST ΔL update, AssignPoints,
//! EvaluateClusters, greedy selection and the refinement pieces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use proclus::par::Executor;
use proclus::phases::assign::assign_points;
use proclus::phases::compute_l::{compute_x_baseline, medoid_deltas};
use proclus::phases::evaluate::evaluate_clusters;
use proclus::phases::find_dimensions::find_dimensions;
use proclus::phases::initialization::greedy_select;
use proclus::phases::refinement::remove_outliers;
use proclus::{DataMatrix, ProclusRng};
use proclus_bench::workloads;

const N: usize = 16_000;
const K: usize = 10;

struct Fixture {
    data: DataMatrix,
    medoids: Vec<usize>,
    deltas: Vec<f32>,
    dims: Vec<Vec<usize>>,
    labels: Vec<i32>,
}

fn fixture() -> Fixture {
    let cfg = workloads::default_synthetic(N, 7);
    let data = workloads::synthetic_data(&cfg, 0);
    let medoids: Vec<usize> = (0..K).map(|i| i * (N / K) + 13).collect();
    let deltas = medoid_deltas(&data, &medoids);
    let (x, _) = compute_x_baseline(&data, &medoids, &deltas, &Executor::Sequential);
    let dims = find_dimensions(&x, K, data.d(), 5);
    let labels = assign_points(&data, &medoids, &dims, &Executor::Sequential);
    Fixture {
        data,
        medoids,
        deltas,
        dims,
        labels,
    }
}

fn bench_phases(c: &mut Criterion) {
    let f = fixture();
    let exec = Executor::Sequential;

    c.bench_function("phase/compute_x_baseline_16k", |b| {
        b.iter(|| black_box(compute_x_baseline(&f.data, &f.medoids, &f.deltas, &exec)));
    });

    c.bench_function("phase/medoid_deltas", |b| {
        b.iter(|| black_box(medoid_deltas(&f.data, &f.medoids)));
    });

    c.bench_function("phase/assign_points_16k", |b| {
        b.iter(|| black_box(assign_points(&f.data, &f.medoids, &f.dims, &exec)));
    });

    c.bench_function("phase/evaluate_clusters_16k", |b| {
        b.iter(|| black_box(evaluate_clusters(&f.data, &f.labels, &f.dims, &exec)));
    });

    c.bench_function("phase/remove_outliers_16k", |b| {
        b.iter(|| {
            black_box(remove_outliers(
                &f.data, &f.labels, &f.medoids, &f.dims, &exec,
            ))
        });
    });

    let mut g = c.benchmark_group("phase/greedy");
    for &s in &[250usize, 1000] {
        let sample: Vec<usize> = (0..s).map(|i| i * (N / s)).collect();
        g.bench_with_input(BenchmarkId::from_parameter(s), &sample, |b, sample| {
            b.iter(|| {
                let mut rng = ProclusRng::new(3);
                black_box(greedy_select(&f.data, sample, 50, &mut rng, &exec))
            });
        });
    }
    g.finish();
}

fn bench_fast_delta(c: &mut Criterion) {
    // The FAST ΔL H-update vs. the baseline full recomputation: the
    // algorithmic speedup of §3 in isolation. A small radius change makes
    // the band tiny, which is the common case between iterations.
    use proclus::fast::bench_support;

    let f = fixture();
    let exec = Executor::Sequential;
    let m = f.medoids[0];

    c.bench_function("phase/fast_h_update_small_band", |b| {
        let dist_row = bench_support::dist_row(&f.data, m, &exec);
        let m_row: Vec<f32> = f.data.row(m).to_vec();
        b.iter(|| {
            let mut h = vec![0.0f64; f.data.d()];
            let mut lsize = 1000usize;
            bench_support::h_update(
                &f.data, &dist_row, &m_row, 0.30, 0.32, &mut h, &mut lsize, &exec,
            );
            black_box(h)
        });
    });
}

criterion_group!(benches, bench_phases, bench_fast_delta);
criterion_main!(benches);
