//! End-to-end Criterion benchmarks: full runs of each CPU variant and
//! simulated-device runs of each GPU variant on the paper's default
//! workload shape (scaled to keep `cargo bench` fast).
//!
//! The figure harnesses in `src/bin/` are the tool for paper-shaped sweeps;
//! these benches exist to catch performance regressions per variant.

#![allow(deprecated)] // exercises the legacy entry points deliberately

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gpu_sim::{Device, DeviceConfig};
use proclus_bench::runners::{fast_proclus, fast_star_proclus, proclus};
use proclus_bench::workloads;
use proclus_gpu::{gpu_fast_proclus, gpu_fast_star_proclus, gpu_proclus};

fn bench_cpu_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e/cpu");
    g.sample_size(10);
    for &n in &[4_000usize, 16_000] {
        let cfg = workloads::default_synthetic(n, 5);
        let data = workloads::synthetic_data(&cfg, 0);
        let params = workloads::default_params().with_seed(3);
        g.bench_with_input(BenchmarkId::new("PROCLUS", n), &data, |b, data| {
            b.iter(|| black_box(proclus(data, &params).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("FAST", n), &data, |b, data| {
            b.iter(|| black_box(fast_proclus(data, &params).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("FAST_STAR", n), &data, |b, data| {
            b.iter(|| black_box(fast_star_proclus(data, &params).unwrap()));
        });
    }
    g.finish();
}

fn bench_gpu_variants(c: &mut Criterion) {
    // Wall-clock of the *functional simulation* — tracks simulator overhead,
    // not device time (which is deterministic and reported by the
    // harnesses).
    let mut g = c.benchmark_group("e2e/gpu-sim-wall");
    g.sample_size(10);
    let n = 8_000usize;
    let cfg = workloads::default_synthetic(n, 5);
    let data = workloads::synthetic_data(&cfg, 0);
    let params = workloads::default_params().with_seed(3);
    g.bench_function("GPU_PROCLUS", |b| {
        b.iter(|| {
            let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
            black_box(gpu_proclus(&mut dev, &data, &params).unwrap())
        });
    });
    g.bench_function("GPU_FAST", |b| {
        b.iter(|| {
            let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
            black_box(gpu_fast_proclus(&mut dev, &data, &params).unwrap())
        });
    });
    g.bench_function("GPU_FAST_STAR", |b| {
        b.iter(|| {
            let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
            black_box(gpu_fast_star_proclus(&mut dev, &data, &params).unwrap())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cpu_variants, bench_gpu_variants);
criterion_main!(benches);
