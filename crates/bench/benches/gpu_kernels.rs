//! Microbenchmarks of individual simulated-device kernels: wall-clock of
//! the functional execution (simulator throughput) — useful when optimizing
//! the simulator itself — plus assertions-by-construction that each
//! kernel's *modeled* time scales sublinearly per element as `n` grows
//! (the saturation shape of Fig. 2a).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gpu_sim::{Device, DeviceConfig, Dim3};
use proclus_bench::workloads;
use proclus_gpu::kernels::assign::assign_kernel;
use proclus_gpu::kernels::dist::dist_row_kernel;

fn bench_dist_row(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/dist_row");
    g.sample_size(10);
    for &n in &[8_000usize, 32_000] {
        let cfg = workloads::default_synthetic(n, 3);
        let host = workloads::synthetic_data(&cfg, 0);
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let data = dev.htod("data", host.flat()).unwrap();
        let out = dev.alloc_zeroed::<f32>("row", n).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                dist_row_kernel(&mut dev, &data, host.d(), n, 17, &out);
                black_box(out.peek(0))
            });
        });
    }
    g.finish();
}

fn bench_assign(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/assign");
    g.sample_size(10);
    let n = 16_000usize;
    let cfg = workloads::default_synthetic(n, 3);
    let host = workloads::synthetic_data(&cfg, 0);
    let d = host.d();
    let k = 10usize;
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
    let data = dev.htod("data", host.flat()).unwrap();
    let medoids: Vec<usize> = (0..k).map(|i| i * (n / k)).collect();
    let dims: Vec<Vec<usize>> = (0..k).map(|i| vec![i % d, (i + 3) % d]).collect();
    let mut flat = Vec::new();
    let mut offsets = vec![0usize];
    for s in &dims {
        flat.extend(s.iter().map(|&j| j as u32));
        offsets.push(flat.len());
    }
    let dims_flat = dev.htod("dims", &flat).unwrap();
    let labels = dev.alloc_zeroed::<i32>("labels", n).unwrap();
    let c_list = dev.alloc_zeroed::<u32>("c_list", k * n).unwrap();
    let c_count = dev.alloc_zeroed::<u32>("c_count", k).unwrap();

    g.bench_function("16k_k10", |b| {
        b.iter(|| {
            assign_kernel(
                &mut dev, &data, d, n, &medoids, &dims_flat, &offsets, &labels, &c_list, &c_count,
            );
            black_box(labels.peek(0))
        });
    });
    g.finish();
}

fn bench_raw_launch_overhead(c: &mut Criterion) {
    // Simulator cost of an (almost) empty launch — the floor under every
    // kernel microbenchmark above.
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
    let buf = dev.alloc_zeroed::<u32>("b", 1024).unwrap();
    c.bench_function("kernel/empty_launch", |b| {
        b.iter(|| {
            dev.launch("noop", Dim3::x(8), Dim3::x(128), |blk| {
                blk.thread0(|t| {
                    buf.st(t, 0, 1);
                });
            });
            black_box(buf.peek(0))
        });
    });
}

criterion_group!(
    benches,
    bench_dist_row,
    bench_assign,
    bench_raw_launch_overhead
);
criterion_main!(benches);
