//! Tiny flag parser shared by the figure harnesses. No external dependency
//! needed for four flags.

/// Harness options parsed from `std::env::args`.
#[derive(Debug, Clone)]
pub struct Options {
    /// Run the paper's full-size workloads (default: scaled-down grid).
    pub paper_scale: bool,
    /// Repetitions averaged per configuration (paper: 10).
    pub reps: usize,
    /// Output directory for CSV files.
    pub out_dir: String,
    /// Skip the slow sequential CPU baseline at large `n` (it dominates
    /// harness runtime; speedups are then reported against the largest `n`
    /// where it was measured).
    pub quick: bool,
    /// Base RNG seed; repetition `r` uses `seed + r`.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            paper_scale: false,
            reps: 3,
            out_dir: "results".to_string(),
            quick: false,
            seed: 0xBE7C,
        }
    }
}

impl Options {
    /// Parses flags: `--paper-scale`, `--quick`, `--reps N`, `--out DIR`,
    /// `--seed S`. Unknown flags abort with a usage message.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut opts = Self::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--paper-scale" => {
                    opts.paper_scale = true;
                    opts.reps = opts.reps.max(10);
                }
                "--quick" => opts.quick = true,
                "--reps" => {
                    opts.reps = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--reps needs a positive integer"));
                }
                "--out" => {
                    opts.out_dir = args.next().unwrap_or_else(|| die("--out needs a path"));
                }
                "--seed" => {
                    opts.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--seed needs an integer"));
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --paper-scale  run the paper's full workload sizes\n       \
                         --quick        smallest grid, 1 rep (smoke test)\n       \
                         --reps N       repetitions per configuration (default 3)\n       \
                         --out DIR      CSV output directory (default results/)\n       \
                         --seed S       base RNG seed"
                    );
                    std::process::exit(0);
                }
                other => die(&format!("unknown flag `{other}` (try --help)")),
            }
        }
        if opts.quick {
            opts.reps = 1;
        }
        opts
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Options {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert!(!o.paper_scale);
        assert_eq!(o.reps, 3);
        assert_eq!(o.out_dir, "results");
    }

    #[test]
    fn paper_scale_raises_reps_to_ten() {
        let o = parse(&["--paper-scale"]);
        assert!(o.paper_scale);
        assert_eq!(o.reps, 10);
    }

    #[test]
    fn quick_forces_single_rep() {
        let o = parse(&["--reps", "5", "--quick"]);
        assert_eq!(o.reps, 1);
    }

    #[test]
    fn explicit_values() {
        let o = parse(&["--reps", "7", "--out", "/tmp/x", "--seed", "42"]);
        assert_eq!(o.reps, 7);
        assert_eq!(o.out_dir, "/tmp/x");
        assert_eq!(o.seed, 42);
    }
}
