//! # proclus-bench — experiment harnesses for every figure of the paper
//!
//! One binary per figure/table of GPU-FAST-PROCLUS §5 (see DESIGN.md §5 for
//! the index). Each harness:
//!
//! * generates the paper's workload (scaled down by default; pass
//!   `--paper-scale` for the full sizes),
//! * measures **wall-clock** time for the CPU algorithms and **simulated
//!   device time** for the GPU algorithms (the `gpu-sim` performance
//!   model; see EXPERIMENTS.md for how to read these numbers),
//! * prints the figure's series as a table and writes
//!   `results/<figure>.csv`.
//!
//! Shared machinery lives here: [`cli`] (flag parsing), [`timing`]
//! (repetition + measurement), [`table`] (series accumulation, printing,
//! CSV output) and [`workloads`] (dataset construction).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;
pub mod runners;
pub mod table;
pub mod timing;
pub mod workloads;

pub use cli::Options;
pub use table::ExpTable;
pub use timing::{time_cpu_ms, time_gpu_ms};
