//! Thin CPU-variant runners for the harnesses.
//!
//! The legacy per-variant free functions (`proclus`, `fast_proclus`, …)
//! were removed from the `proclus` crate in favor of the unified
//! [`proclus::run`] entry point over the `Backend` trait; the harnesses
//! still want one-call-per-variant ergonomics, so the aliases live here.

use proclus::{run, Algo, Clustering, Config, DataMatrix, Params, Result};

fn cpu(data: &DataMatrix, params: &Params, algo: Algo, threads: usize) -> Result<Clustering> {
    let config = Config::new(params.clone())
        .with_algo(algo)
        .with_threads(threads);
    run(data, &config).map(|o| o.clusterings.into_iter().next().expect("one clustering"))
}

/// Sequential baseline PROCLUS via the unified entry point.
pub fn proclus(data: &DataMatrix, params: &Params) -> Result<Clustering> {
    cpu(data, params, Algo::Baseline, 0)
}

/// Sequential FAST-PROCLUS via the unified entry point.
pub fn fast_proclus(data: &DataMatrix, params: &Params) -> Result<Clustering> {
    cpu(data, params, Algo::Fast, 0)
}

/// Sequential FAST*-PROCLUS via the unified entry point.
pub fn fast_star_proclus(data: &DataMatrix, params: &Params) -> Result<Clustering> {
    cpu(data, params, Algo::FastStar, 0)
}

/// Multi-threaded baseline PROCLUS via the unified entry point.
pub fn proclus_par(data: &DataMatrix, params: &Params, threads: usize) -> Result<Clustering> {
    cpu(data, params, Algo::Baseline, threads)
}

/// Multi-threaded FAST-PROCLUS via the unified entry point.
pub fn fast_proclus_par(data: &DataMatrix, params: &Params, threads: usize) -> Result<Clustering> {
    cpu(data, params, Algo::Fast, threads)
}

/// Multi-threaded FAST*-PROCLUS via the unified entry point.
pub fn fast_star_proclus_par(
    data: &DataMatrix,
    params: &Params,
    threads: usize,
) -> Result<Clustering> {
    cpu(data, params, Algo::FastStar, threads)
}
