//! Work-stealing executor harness, written as `results/BENCH_par.json`.
//!
//! Compares the persistent work-stealing pool (`Executor::Parallel`)
//! against the legacy static splitter (`Executor::StaticSplit`) and the
//! sequential baseline over two item-cost shapes at 1 / 2 / 4 / all
//! threads:
//!
//! * **balanced** — every item costs the same (uniform rows), the shape
//!   the static splitter was tuned for; stealing must not regress it;
//! * **skewed** — items belong to zipf-sized clusters and an item's cost
//!   scales with its cluster's population (per-point work during
//!   refinement grows with cluster size), concentrating most of the work
//!   in the first grains. A static split strands that head on one worker;
//!   the deques let idle workers steal it.
//!
//! Like `shard_bench`, the gated times are **simulated** clocks, not
//! wall-clock: per-grain work is summed over the *real* grain
//! decomposition (`proclus::par::grains_for`), the static time is the
//! heaviest contiguous grain block (exactly the splitter's partition),
//! and the stealing time is the greedy list-scheduling makespan over the
//! same grains (an idle worker always takes the next unclaimed grain —
//! what the deque protocol converges to). Simulated clocks are
//! deterministic, so the gated ratios are machine-independent and hold on
//! single-core CI runners where wall-clock parallelism is unmeasurable.
//!
//! What *is* executed for real is the determinism contract: every combo
//! runs the actual executors and cross-checks the grain-ordered f64
//! reduction **bitwise** against `Executor::Sequential`. The JSON feeds
//! `cargo xtask bench-compare --kind par`, which gates the bitwise flag,
//! a ≥1.2x skewed floor at 4 threads, and a balanced no-regression floor.

use std::fmt::Write as _;

use proclus::par::{grains_for, Executor};
use proclus_bench::Options;
use proclus_telemetry::json::fmt_f64;

/// Zipf-sized clusters in the skewed shape.
const CLUSTERS: usize = 64;
/// Per-item cost units in the balanced shape (and the skewed mean).
const BASE_COST: u32 = 600;
/// Simulated cost units per millisecond (a nominal ~1 unit = 1 ns FP
/// chain step; only ratios are gated, so the scale is cosmetic).
const UNITS_PER_MS: f64 = 1.0e6;

struct Measured {
    workload: &'static str,
    requested: usize,
    threads: usize,
    seq_ms: f64,
    static_ms: f64,
    steal_ms: f64,
    bitwise_equal: bool,
}

/// Deterministic per-item kernel for the real bitwise runs: `cost`
/// dependent fused multiply-adds.
fn item_work(i: usize, cost: u32) -> f64 {
    let mut acc = (i as f64) + 1.0;
    for k in 0..cost {
        acc = acc.mul_add(1.000_000_011_920_929, ((k & 7) as f64) * 1e-9);
    }
    acc
}

/// Item costs for zipf-sized clusters: cluster `c` holds `~n/(c+1)H`
/// items, and each of its items costs `BASE_COST · size/mean` — the head
/// cluster is both large and per-item expensive, like refinement over a
/// dominant cluster.
fn zipf_costs(n: usize) -> Vec<u32> {
    let h: f64 = (1..=CLUSTERS).map(|c| 1.0 / c as f64).sum();
    let mut sizes: Vec<usize> = (1..=CLUSTERS)
        .map(|c| (((n as f64) / (c as f64 * h)) as usize).max(1))
        .collect();
    let short = n.saturating_sub(sizes.iter().sum());
    sizes[0] += short;
    let mean = n as f64 / CLUSTERS as f64;
    let mut costs = Vec::with_capacity(n);
    for &s in &sizes {
        let cost = ((BASE_COST as f64) * (s as f64) / mean).max(1.0) as u32;
        costs.extend(std::iter::repeat_n(cost, s));
    }
    costs.truncate(n);
    costs
}

/// Per-grain work over the real decomposition the executors run.
fn grain_work(costs: &[u32]) -> Vec<u64> {
    let (grain, grains) = grains_for(costs.len());
    (0..grains)
        .map(|g| {
            costs[g * grain..((g + 1) * grain).min(costs.len())]
                .iter()
                .map(|&c| u64::from(c))
                .sum()
        })
        .collect()
}

/// Static splitter's simulated time: the heaviest of `threads` contiguous
/// grain blocks (the exact partition `Executor::StaticSplit` hands its
/// scoped workers).
fn static_sim_ms(work: &[u64], threads: usize) -> f64 {
    let t = threads.max(1);
    let per = work.len().div_ceil(t);
    let heaviest = work
        .chunks(per.max(1))
        .map(|b| b.iter().sum::<u64>())
        .max()
        .unwrap_or(0);
    heaviest as f64 / UNITS_PER_MS
}

/// Work-stealing simulated time: greedy list scheduling in grain order —
/// each grain goes to the earliest-free worker, which is what the deque
/// protocol converges to (an idle worker immediately steals the next
/// unclaimed grain). Lower-bounded by the heaviest single grain.
fn steal_sim_ms(work: &[u64], threads: usize) -> f64 {
    let mut busy = vec![0u64; threads.max(1)];
    for &w in work {
        let min = busy
            .iter()
            .enumerate()
            .min_by_key(|(_, &b)| b)
            .map_or(0, |(i, _)| i);
        busy[min] += w;
    }
    busy.into_iter().max().unwrap_or(0) as f64 / UNITS_PER_MS
}

/// One full real pass: per-grain partials reduced in grain order. The
/// fold order is the determinism contract — identical for every executor.
fn run_workload(exec: &Executor, costs: &[u32]) -> f64 {
    exec.map_chunks(
        costs.len(),
        || 0.0f64,
        |acc, range| {
            for i in range {
                *acc += item_work(i, costs[i]);
            }
        },
    )
    .into_iter()
    .fold(0.0f64, |a, b| a + b)
}

fn measure(workload: &'static str, costs: &[u32], requested: usize) -> Measured {
    let threads = if requested == 0 {
        Executor::all_cores().threads()
    } else {
        requested
    };
    let work = grain_work(costs);
    let seq_ms = work.iter().sum::<u64>() as f64 / UNITS_PER_MS;
    let static_ms = static_sim_ms(&work, threads);
    let steal_ms = steal_sim_ms(&work, threads);

    // The real executors, cross-checked bit for bit: scheduling must not
    // move the reduction by even an ulp.
    let expected = run_workload(&Executor::Sequential, costs).to_bits();
    let bitwise_equal = run_workload(&Executor::StaticSplit { threads }, costs).to_bits()
        == expected
        && run_workload(&Executor::Parallel { threads }, costs).to_bits() == expected;

    Measured {
        workload,
        requested,
        threads,
        seq_ms,
        static_ms,
        steal_ms,
        bitwise_equal,
    }
}

fn main() {
    let opts = Options::from_args();
    let n = if opts.quick { 12_288 } else { 24_576 };
    let thread_grid: &[usize] = if opts.quick { &[1, 4] } else { &[1, 2, 4, 0] };
    let shapes: [(&'static str, Vec<u32>); 2] =
        [("balanced", vec![BASE_COST; n]), ("skewed", zipf_costs(n))];
    println!(
        "par_bench: n={n}, threads {:?}{} (simulated clocks, real bitwise runs)",
        thread_grid,
        if opts.quick { " (quick)" } else { "" }
    );
    println!(
        "{:<9} {:>7} {:>9} {:>10} {:>9} {:>13} {:>13}  bitwise",
        "workload", "threads", "seq_ms", "static_ms", "steal_ms", "static/steal", "seq/steal"
    );

    let mut rows = Vec::new();
    for (name, costs) in &shapes {
        for &requested in thread_grid {
            let m = measure(name, costs, requested);
            println!(
                "{:<9} {:>7} {:>9.2} {:>10.2} {:>9.2} {:>12.2}x {:>12.2}x  {}",
                m.workload,
                m.threads,
                m.seq_ms,
                m.static_ms,
                m.steal_ms,
                m.static_ms / m.steal_ms,
                m.seq_ms / m.steal_ms,
                if m.bitwise_equal { "ok" } else { "DIVERGED" }
            );
            rows.push(m);
        }
    }

    let mut json = String::from("{\"version\":1,");
    let _ = write!(
        json,
        "\"workload\":{{\"n\":{n},\"clusters\":{CLUSTERS},\"base_cost\":{BASE_COST},\
         \"simulated\":true,\"quick\":{}}},\"combos\":[",
        opts.quick
    );
    for (i, m) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"workload\":\"{}\",\"requested_threads\":{},\"threads\":{},\
             \"seq_ms\":{},\"static_ms\":{},\"steal_ms\":{},\
             \"steal_vs_static\":{},\"steal_vs_seq\":{},\"bitwise_equal\":{}}}",
            m.workload,
            m.requested,
            m.threads,
            fmt_f64(m.seq_ms),
            fmt_f64(m.static_ms),
            fmt_f64(m.steal_ms),
            fmt_f64(m.static_ms / m.steal_ms),
            fmt_f64(m.seq_ms / m.steal_ms),
            m.bitwise_equal
        );
    }
    json.push_str("]}");

    std::fs::create_dir_all(&opts.out_dir).expect("create results dir");
    let path = format!("{}/BENCH_par.json", opts.out_dir);
    std::fs::write(&path, &json).expect("write par json");
    println!("\nwrote {path}");
}
