//! Fig. 3g: running time on the real-world dataset shapes (glass, vowel,
//! pendigits, SkyServer cuts), each explored with the 9-setting `(k, l)`
//! grid of §5.3.
//!
//! Paper shape to reproduce: GPU-FAST-PROCLUS keeps its large speedup on
//! real-world data, growing with dataset size (paper: 5,490× on sky5×5).
//! The datasets here are shape-identical synthesized stand-ins (see
//! DESIGN.md §2); drop genuine CSVs in via `datagen::io` to re-run on the
//! originals.

use gpu_sim::DeviceConfig;
use proclus::multi_param::{ReuseLevel, Setting};
use proclus::{default_grid, proclus_multi};
use proclus_bench::workloads::names::PROCLUS;
use proclus_bench::{time_cpu_ms, time_gpu_ms, ExpTable, Options};
use proclus_gpu::gpu_fast_proclus_multi;

fn main() {
    let opts = Options::from_args();
    let gpu_cfg = DeviceConfig::gtx_1660_ti();
    let grid: Vec<Setting> = default_grid(10, 5);
    let settings = grid.len() as f64;
    let exec = proclus::par::Executor::Sequential;

    let datasets: &[&str] = if opts.quick {
        &["glass", "vowel"]
    } else if opts.paper_scale {
        &["glass", "vowel", "pendigits", "sky1x1", "sky2x2", "sky5x5"]
    } else {
        &["glass", "vowel", "pendigits", "sky1x1"]
    };

    let mut table = ExpTable::new("fig3g_realworld", "dataset", &[PROCLUS, "GPU-FAST-L3"]);

    for name in datasets {
        eprintln!("[fig3g] {name} ...");
        table.add_row(*name);
        let gen = datagen::realworld::by_name(name, opts.seed).expect("known dataset");
        let data = gen.data;
        // The paper keeps k=10, l=5 defaults; tiny datasets need smaller
        // samples so A·k does not exceed n (handled by the clamp) and a
        // feasible k relative to n.
        let base = |rep: usize| proclus::Params::new(10, 5).with_seed(opts.seed + rep as u64);

        table.set(
            PROCLUS,
            time_cpu_ms(opts.reps, |r| {
                proclus_multi(&data, &base(r), &grid, &exec).unwrap();
            }) / settings,
        );
        table.set(
            "GPU-FAST-L3",
            time_gpu_ms(&gpu_cfg, opts.reps, |r, dev| {
                gpu_fast_proclus_multi(dev, &data, &base(r), &grid, ReuseLevel::WarmStart).unwrap();
            }) / settings,
        );
    }

    table.add_speedup_column(PROCLUS, "GPU-FAST-L3");
    table.print("ms per setting; CPU wall-clock, GPU simulated");
    table.write_csv(&opts.out_dir).expect("write csv");
}
