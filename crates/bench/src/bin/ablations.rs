//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Bad-medoid rule** — the EDBT'22 wording vs. the original SIGMOD'99
//!    rule (which always also discards the smallest cluster): compares
//!    iterations to convergence, final cost and runtime.
//! 2. **Distance caching vs. H-increment** — PROCLUS vs. FAST isolates the
//!    combined effect; FAST vs. FAST* isolates the space/time trade-off of
//!    keeping all rows vs. only the current `k` (how often replaced medoids
//!    recompute).
//! 3. **Deterministic vs. parallel block execution** of the simulated
//!    device — verifies the clustering is unaffected and reports the
//!    functional-execution wall-clock difference (the modeled device time
//!    is identical by construction).
//! 4. **CUDA streams for the per-medoid distance rows** — the paper's §5.4
//!    future-work remark: independent kernels overlapped on streams engage
//!    more cores when each launch underutilizes the device (small `n`).

#![allow(deprecated)] // exercises the legacy entry points deliberately

use gpu_sim::{Device, DeviceConfig};
use proclus::BadMedoidRule;
use proclus_bench::runners::{fast_proclus, fast_star_proclus, proclus};
use proclus_bench::{time_cpu_ms, workloads, ExpTable, Options};
use proclus_gpu::gpu_fast_proclus;

fn main() {
    let opts = Options::from_args();
    let n = if opts.paper_scale { 64_000 } else { 16_000 };
    let cfg = workloads::default_synthetic(n, opts.seed);
    let datasets: Vec<_> = (0..opts.reps)
        .map(|r| workloads::synthetic_data(&cfg, r))
        .collect();

    // --- 1. bad-medoid rule -------------------------------------------------
    let mut table = ExpTable::new(
        "ablation_bad_medoid_rule",
        "metric",
        &["PaperEdbt22", "Original99"],
    );
    for (row, f) in [
        ("runtime_ms", 0usize),
        ("iterations", 1),
        ("final_cost_x1000", 2),
    ] {
        table.add_row(row);
        for (col, rule) in [
            ("PaperEdbt22", BadMedoidRule::PaperEdbt22),
            ("Original99", BadMedoidRule::Original99),
        ] {
            let params = |rep: usize| {
                workloads::default_params()
                    .with_seed(opts.seed + rep as u64)
                    .with_bad_medoid_rule(rule)
            };
            let v = match f {
                0 => time_cpu_ms(opts.reps, |r| {
                    fast_proclus(&datasets[r], &params(r)).unwrap();
                }),
                1 => {
                    let total: usize = (0..opts.reps)
                        .map(|r| fast_proclus(&datasets[r], &params(r)).unwrap().iterations)
                        .sum();
                    total as f64 / opts.reps as f64
                }
                _ => {
                    let total: f64 = (0..opts.reps)
                        .map(|r| fast_proclus(&datasets[r], &params(r)).unwrap().cost)
                        .sum();
                    total / opts.reps as f64 * 1000.0
                }
            };
            table.set(col, v);
        }
    }
    table.print("per metric");
    table.write_csv(&opts.out_dir).expect("write csv");
    println!();

    // --- 2. caching strategies ---------------------------------------------
    let mut table = ExpTable::new("ablation_caching", "variant", &["runtime_ms", "vs_PROCLUS"]);
    let params = |rep: usize| workloads::default_params().with_seed(opts.seed + rep as u64);
    let base = time_cpu_ms(opts.reps, |r| {
        proclus(&datasets[r], &params(r)).unwrap();
    });
    for (name, t) in [
        ("PROCLUS (no cache)", base),
        (
            "FAST (Dist cache + H increment)",
            time_cpu_ms(opts.reps, |r| {
                fast_proclus(&datasets[r], &params(r)).unwrap();
            }),
        ),
        (
            "FAST* (k rows only)",
            time_cpu_ms(opts.reps, |r| {
                fast_star_proclus(&datasets[r], &params(r)).unwrap();
            }),
        ),
    ] {
        table.add_row(name);
        table.set("runtime_ms", t);
        table.set("vs_PROCLUS", base / t);
    }
    table.print("ms");
    table.write_csv(&opts.out_dir).expect("write csv");
    println!();

    // --- 3. deterministic vs. parallel block execution ----------------------
    let data = &datasets[0];
    let params = workloads::default_params().with_seed(opts.seed);
    let run = |det: bool| {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.set_deterministic(det);
        let t0 = std::time::Instant::now();
        let c = gpu_fast_proclus(&mut dev, data, &params).unwrap();
        (c, t0.elapsed().as_secs_f64() * 1e3, dev.elapsed_ms())
    };
    let (c_det, wall_det, sim_det) = run(true);
    let (c_par, wall_par, sim_par) = run(false);
    println!("## ablation_block_execution (n = {n})");
    println!(
        "  deterministic blocks: wall {wall_det:.1} ms, simulated {sim_det:.3} ms\n  \
         parallel blocks:      wall {wall_par:.1} ms, simulated {sim_par:.3} ms"
    );
    println!(
        "  identical clustering: {}",
        c_det.medoids == c_par.medoids && c_det.labels == c_par.labels
    );

    // --- 4. streams for per-medoid distance rows -----------------------------
    use proclus_gpu::kernels::dist::{dist_row_kernel, dist_row_kernel_on};
    println!("\n## ablation_streams (k = 10 distance rows, modeled device time)");
    for n_small in [2_000usize, 16_000, 128_000] {
        let cfg_small = workloads::default_synthetic(n_small, opts.seed);
        let small = workloads::synthetic_data(&cfg_small, 0);
        let medoids: Vec<usize> = (0..10).map(|i| i * (n_small / 10)).collect();

        let mut dev_seq = Device::new(DeviceConfig::gtx_1660_ti());
        let data_d = dev_seq.htod("data", small.flat()).unwrap();
        let rows: Vec<_> = (0..10)
            .map(|i| {
                dev_seq
                    .alloc_zeroed::<f32>(&format!("r{i}"), n_small)
                    .unwrap()
            })
            .collect();
        let t0 = dev_seq.elapsed_us();
        for (i, &m) in medoids.iter().enumerate() {
            dist_row_kernel(&mut dev_seq, &data_d, small.d(), n_small, m, &rows[i]);
        }
        let sequential = dev_seq.elapsed_us() - t0;

        let mut dev_str = Device::new(DeviceConfig::gtx_1660_ti());
        let data_d = dev_str.htod("data", small.flat()).unwrap();
        let rows: Vec<_> = (0..10)
            .map(|i| {
                dev_str
                    .alloc_zeroed::<f32>(&format!("r{i}"), n_small)
                    .unwrap()
            })
            .collect();
        let t0 = dev_str.elapsed_us();
        for (i, &m) in medoids.iter().enumerate() {
            let s = dev_str.create_stream();
            dist_row_kernel_on(&mut dev_str, s, &data_d, small.d(), n_small, m, &rows[i]);
        }
        dev_str.sync_streams();
        let streamed = dev_str.elapsed_us() - t0;
        println!(
            "  n = {n_small:>7}: sequential {sequential:>9.1} us, streamed {streamed:>9.1} us \
             ({:.2}x)",
            sequential / streamed
        );
    }
}
