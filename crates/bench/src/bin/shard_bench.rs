//! Multi-device scaling harness: FAST-PROCLUS on the sharded backend at
//! `D ∈ {1, 2, 4}` simulated devices over one large synthetic workload,
//! written as `results/BENCH_shard.json`.
//!
//! Reported time is the ensemble's **simulated** clock (max per-shard
//! device delta per phase barrier plus the modeled cross-device reduction
//! cost), so the speedups are machine-independent: the quantity measured
//! is how much per-phase kernel work leaves each device when the points
//! are partitioned, against the fixed cost of reducing `k × d` scalars at
//! every barrier. `cargo xtask bench-compare --kind shard` gates the
//! floors (≥1.6× at D=2, ≥2.5× at D=4).

use std::fmt::Write as _;

use datagen::synthetic::SyntheticConfig;
use gpu_sim::DeviceConfig;
use proclus::backend::{run_full, Backend};
use proclus::{CancelToken, DataMatrix, Params};
use proclus_bench::{workloads, Options};
use proclus_gpu::{GpuVariant, ShardedBackend};
use proclus_telemetry::json::fmt_f64;
use proclus_telemetry::NullRecorder;

const DEVICE_COUNTS: [usize; 3] = [1, 2, 4];

struct Workload {
    n: usize,
    d: usize,
    k: usize,
    l: usize,
    device: DeviceConfig,
}

/// The full regime is the paper's large-synthetic setting on the 1660 Ti;
/// `--quick` shrinks the point count *and* the simulated device together so
/// the compute-to-overhead ratio (and therefore the scaling behaviour being
/// gated) stays in the same regime at a fraction of the wall-clock.
fn workload(quick: bool) -> Workload {
    if quick {
        Workload {
            n: 48_000,
            d: 12,
            k: 6,
            l: 5,
            device: DeviceConfig {
                name: "derated GTX 1660 Ti (quick)".into(),
                num_sms: 2,
                mem_bandwidth_gbps: 12.0,
                ..DeviceConfig::gtx_1660_ti()
            },
        }
    } else {
        Workload {
            n: 512_000,
            d: 16,
            k: 8,
            l: 6,
            device: DeviceConfig::gtx_1660_ti(),
        }
    }
}

/// One full FAST run on `devices` shards; returns the simulated time (ms).
fn sharded_run_ms(
    device: &DeviceConfig,
    data: &DataMatrix,
    params: &Params,
    devices: usize,
) -> f64 {
    let cancel = CancelToken::default();
    let mut backend = ShardedBackend::new(
        device,
        data,
        devices,
        params.k,
        params.sample_size(data.n()),
        GpuVariant::Fast,
        cancel.clone(),
    )
    .expect("shard ensemble allocates");
    let result = run_full(&mut backend, params, &NullRecorder, &cancel);
    let sim_us = backend.clock_us().unwrap_or(0.0);
    backend.free().expect("shard ensemble frees");
    result.expect("sharded run succeeds");
    sim_us / 1_000.0
}

fn main() {
    let opts = Options::from_args();
    let w = workload(opts.quick);
    let params = Params::new(w.k, w.l)
        .with_a(20)
        .with_b(5)
        .with_seed(opts.seed);

    println!(
        "shard_bench: n={} d={} k={} l={} reps={}{}",
        w.n,
        w.d,
        w.k,
        w.l,
        opts.reps,
        if opts.quick { " (quick)" } else { "" }
    );
    println!("{:<10} {:>12} {:>10}", "devices", "sim_ms", "speedup");

    let cfg = SyntheticConfig {
        d: w.d,
        num_clusters: w.k,
        ..workloads::default_synthetic(w.n, opts.seed)
    };
    let mut sim_ms = Vec::new();
    for &devices in &DEVICE_COUNTS {
        let mut total = 0.0;
        for rep in 0..opts.reps {
            let data = workloads::synthetic_data(&cfg, rep);
            total += sharded_run_ms(&w.device, &data, &params, devices);
        }
        let avg = total / opts.reps as f64;
        let speedup = sim_ms.first().map_or(1.0, |&base: &f64| base / avg);
        println!("{devices:<10} {avg:>12.2} {speedup:>9.2}x");
        sim_ms.push(avg);
    }

    let base = sim_ms[0];
    let mut json = String::from("{\"version\":1,");
    let _ = write!(
        json,
        "\"workload\":{{\"n\":{},\"d\":{},\"k\":{},\"l\":{},\"seed\":{},\"reps\":{},\
         \"quick\":{}}},\"devices\":[",
        w.n, w.d, w.k, w.l, opts.seed, opts.reps, opts.quick
    );
    for (i, (&devices, &ms)) in DEVICE_COUNTS.iter().zip(&sim_ms).enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"devices\":{devices},\"sim_ms\":{},\"speedup\":{}}}",
            fmt_f64(ms),
            fmt_f64(base / ms)
        );
    }
    json.push_str("]}");

    std::fs::create_dir_all(&opts.out_dir).expect("create results dir");
    let path = format!("{}/BENCH_shard.json", opts.out_dir);
    std::fs::write(&path, &json).expect("write shard json");
    println!("\nwrote {path}");
}
