//! Incremental re-clustering harness: appends a batch of `fraction × n`
//! points to a converged [`StreamingClusterer`] and measures the
//! incremental epoch's distance computations against a from-scratch run
//! over the same final dataset, written as `results/BENCH_stream.json`.
//!
//! The gated quantity is exactness-preserving work avoidance: the
//! incremental epoch must produce **bitwise-identical** medoids, subspaces
//! and labels to the from-scratch run (`exact_match`, self-checked here)
//! while recomputing only the distance rows the appended points dirtied.
//! `cargo xtask bench-compare --kind stream` enforces the ratio floor at
//! the smallest fraction (< 0.25 of the full run's distances at a ≤1%
//! append, per the acceptance criteria).

use std::fmt::Write as _;

use gpu_sim::DeviceConfig;
use proclus::{CancelToken, Params};
use proclus_bench::{workloads, Options};
use proclus_stream::{ReclusterReport, StreamBackendSpec, StreamingClusterer};
use proclus_telemetry::json::fmt_f64;
use proclus_telemetry::NullRecorder;

struct Workload {
    n: usize,
    d: usize,
    k: usize,
    l: usize,
    fractions: &'static [f64],
}

/// Quick mode shrinks the base dataset and the fraction grid, keeping the
/// ≤1% point that the floor gates.
fn workload(quick: bool) -> Workload {
    if quick {
        Workload {
            n: 8_000,
            d: 15,
            k: 8,
            l: 5,
            fractions: &[0.01, 0.05],
        }
    } else {
        Workload {
            n: 32_000,
            d: 15,
            k: 8,
            l: 5,
            fractions: &[0.005, 0.01, 0.02, 0.05],
        }
    }
}

fn spec() -> StreamBackendSpec {
    StreamBackendSpec::gpu(DeviceConfig::gtx_1660_ti())
}

/// Appends `rows[range]` to `c`, asserting the feed never evicts.
fn feed(c: &mut StreamingClusterer, rows: &[Vec<f32>], range: std::ops::Range<usize>) {
    for r in &rows[range] {
        let (_, evicted) = c.append(r).expect("append");
        assert!(evicted.is_empty(), "no window configured");
    }
}

fn recluster(c: &mut StreamingClusterer) -> ReclusterReport {
    let cancel = CancelToken::default();
    c.recluster(&NullRecorder, &cancel).expect("recluster")
}

/// True when both clusterers hold the same converged state (medoids,
/// subspaces, labels, costs) — the harness's exactness self-check.
fn states_match(a: &StreamingClusterer, b: &StreamingClusterer) -> bool {
    let (sa, sb) = match (a.state(), b.state()) {
        (Some(x), Some(y)) => (x, y),
        _ => return false,
    };
    sa.medoid_pids == sb.medoid_pids
        && sa.subspaces == sb.subspaces
        && sa.labels == sb.labels
        && sa.cost == sb.cost
        && sa.refined_cost == sb.refined_cost
}

struct Row {
    fraction: f64,
    batch: usize,
    distances_full: u64,
    distances_inc: u64,
    segmental_inc: u64,
    cache_hits: u64,
    exact: bool,
    sim_ms_full: f64,
    sim_ms_inc: f64,
}

fn main() {
    let opts = Options::from_args();
    let w = workload(opts.quick);
    let params = Params::new(w.k, w.l)
        .with_a(20)
        .with_b(4)
        .with_seed(opts.seed);

    println!(
        "stream_bench: n={} d={} k={} l={}{}",
        w.n,
        w.d,
        w.k,
        w.l,
        if opts.quick { " (quick)" } else { "" }
    );
    println!(
        "{:<10} {:>7} {:>14} {:>14} {:>7} {:>6}",
        "fraction", "batch", "dist_full", "dist_inc", "ratio", "exact"
    );

    let max_batch = (w.fractions.iter().fold(0.0f64, |m, &f| m.max(f)) * w.n as f64) as usize;
    let cfg = datagen::synthetic::SyntheticConfig {
        d: w.d,
        num_clusters: w.k,
        ..workloads::default_synthetic(w.n + max_batch, opts.seed)
    };
    let data = workloads::synthetic_data(&cfg, 0);
    let rows: Vec<Vec<f32>> = (0..data.n()).map(|p| data.row(p).to_vec()).collect();

    let mut table = Vec::new();
    for &fraction in w.fractions {
        let batch = ((fraction * w.n as f64) as usize).max(1);

        // Warm path: converge on n points, then append the batch and
        // re-cluster incrementally.
        let mut warm = StreamingClusterer::new(w.d, params.clone(), spec()).expect("clusterer");
        feed(&mut warm, &rows, 0..w.n);
        recluster(&mut warm);
        feed(&mut warm, &rows, w.n..w.n + batch);
        let inc = recluster(&mut warm);
        assert_eq!(inc.mode.as_str(), "incremental", "warm epoch stayed warm");

        // Reference: a from-scratch run over the same final dataset.
        let mut cold = StreamingClusterer::new(w.d, params.clone(), spec()).expect("clusterer");
        feed(&mut cold, &rows, 0..w.n + batch);
        let full = recluster(&mut cold);

        let exact = states_match(&warm, &cold);
        assert!(exact, "incremental result diverged at fraction {fraction}");
        let ratio = inc.distances as f64 / full.distances.max(1) as f64;
        println!(
            "{fraction:<10} {batch:>7} {:>14} {:>14} {ratio:>7.3} {exact:>6}",
            full.distances, inc.distances
        );
        table.push(Row {
            fraction,
            batch,
            distances_full: full.distances,
            distances_inc: inc.distances,
            segmental_inc: inc.segmental,
            cache_hits: inc.dist_cache_hits,
            exact,
            sim_ms_full: full.sim_us.unwrap_or(0.0) / 1e3,
            sim_ms_inc: inc.sim_us.unwrap_or(0.0) / 1e3,
        });
    }

    let mut json = String::from("{\"version\":1,");
    let _ = write!(
        json,
        "\"workload\":{{\"n\":{},\"d\":{},\"k\":{},\"l\":{},\"seed\":{},\"quick\":{}}},\
         \"fractions\":[",
        w.n, w.d, w.k, w.l, opts.seed, opts.quick
    );
    for (i, r) in table.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"fraction\":{},\"batch\":{},\"distances_full\":{},\"distances_inc\":{},\
             \"segmental_inc\":{},\"dist_cache_hits\":{},\"ratio\":{},\"exact_match\":{},\
             \"sim_ms_full\":{},\"sim_ms_inc\":{}}}",
            fmt_f64(r.fraction),
            r.batch,
            r.distances_full,
            r.distances_inc,
            r.segmental_inc,
            r.cache_hits,
            fmt_f64(r.distances_inc as f64 / r.distances_full.max(1) as f64),
            r.exact,
            fmt_f64(r.sim_ms_full),
            fmt_f64(r.sim_ms_inc)
        );
    }
    json.push_str("]}");

    std::fs::create_dir_all(&opts.out_dir).expect("create results dir");
    let path = format!("{}/BENCH_stream.json", opts.out_dir);
    std::fs::write(&path, &json).expect("write stream json");
    println!("\nwrote {path}");
}
