//! Runs every figure/table harness in sequence, forwarding the common
//! flags. Intended entry point for regenerating the full evaluation:
//!
//! ```text
//! cargo run --release -p proclus-bench --bin all_experiments            # scaled grid
//! cargo run --release -p proclus-bench --bin all_experiments -- --quick # smoke test
//! ```

use std::process::Command;

const HARNESSES: &[&str] = &[
    "fig1",
    "fig2_scalability",
    "fig2_dims",
    "fig2_distribution",
    "fig2_params",
    "fig3_multiparam",
    "fig3_space",
    "fig3_realworld",
    "table_utilization",
    "ablations",
    "telemetry",
    "serve_bench",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let this = std::env::current_exe().expect("current exe path");
    let dir = this.parent().expect("target dir");

    let mut failures = Vec::new();
    for name in HARNESSES {
        let bin = dir.join(name);
        println!("\n=== {name} ===");
        let status = Command::new(&bin)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {bin:?}: {e} (build with `cargo build --release -p proclus-bench` first)"));
        if !status.success() {
            failures.push(*name);
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed; CSVs in results/");
    } else {
        eprintln!("\nFAILED harnesses: {failures:?}");
        std::process::exit(1);
    }
}
