//! §5.4 GPU-utilization table: theoretical occupancy, achieved occupancy
//! and memory throughput per kernel, at a large and a small dataset size —
//! the simulator's answer to the paper's NVIDIA Nsight Compute numbers.
//!
//! Paper observations to reproduce:
//! * the EvaluateCluster kernel (the most time-consuming one) is near 100 %
//!   occupancy with high memory throughput on millions of points, and
//!   noticeably lower on 8,000 points;
//! * the tiny `k × k` δ-kernel (`compute_l.delta`) has a theoretical
//!   occupancy around 50 % and an achieved occupancy of a few percent —
//!   "not a good utilization, but not a time-consuming computation either".

#![allow(deprecated)] // exercises the legacy entry points deliberately

use gpu_sim::{Device, DeviceConfig};
use proclus_bench::{workloads, Options};
use proclus_gpu::gpu_fast_proclus;

fn main() {
    let opts = Options::from_args();
    let gpu_cfg = DeviceConfig::gtx_1660_ti();
    // Paper: 4,096,000 and 8,000 points with 10 dimensions.
    let large_n = if opts.paper_scale { 4_096_000 } else { 512_000 };
    let sizes = [(large_n, "large"), (8_000usize, "small")];

    for (n, tag) in sizes {
        eprintln!("[util] n = {n} ...");
        let mut cfg = workloads::default_synthetic(n, opts.seed);
        cfg.d = 10;
        let data = workloads::synthetic_data(&cfg, 0);
        let params = workloads::default_params().with_seed(opts.seed);

        let mut dev = Device::new(gpu_cfg.clone());
        gpu_fast_proclus(&mut dev, &data, &params).unwrap();
        let report = dev.report();
        println!("\n## kernel utilization, n = {n} ({tag}), d = 10, k = 10");
        print!("{}", report.kernel_table());

        // Spell out the two kernels the paper singles out.
        for name in ["evaluate.cost", "compute_l.delta"] {
            if let Some(agg) = report.kernels.get(name) {
                if let Some(rep) = &agg.representative {
                    println!(
                        "{name}: grid {} x block {}, occ_theoretical {:.2}%, \
                         occ_achieved {:.2}%, mem throughput {:.2}% (bound: {:?})",
                        rep.grid,
                        rep.block,
                        rep.timing.theoretical_occupancy * 100.0,
                        rep.timing.achieved_occupancy * 100.0,
                        rep.timing.mem_throughput_frac * 100.0,
                        rep.timing.bound,
                    );
                }
            }
        }
    }
}
