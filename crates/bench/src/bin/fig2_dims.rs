//! Fig. 2c–2d: running time and GPU speedup vs. data dimensionality `d`.
//!
//! Paper shape to reproduce: runtime grows with `d` for all variants, and
//! the GPU speedup *factor* is somewhat higher at low `d` (the paper
//! measures 896–1,265×, attributing the drop at high `d` to distance
//! computations not being parallelized across dimensions).

#![allow(deprecated)] // exercises the legacy entry points deliberately

use gpu_sim::DeviceConfig;
use proclus_bench::runners::{fast_proclus, proclus};
use proclus_bench::workloads::{self, names::*};
use proclus_bench::{time_cpu_ms, time_gpu_ms, ExpTable, Options};
use proclus_gpu::{gpu_fast_proclus, gpu_proclus};

fn main() {
    let opts = Options::from_args();
    let gpu_cfg = DeviceConfig::gtx_1660_ti();
    let n = if opts.paper_scale { 64_000 } else { 16_000 };
    let mut table = ExpTable::new(
        "fig2cd_runtime_vs_d",
        "d",
        &[PROCLUS, FAST, GPU_PROCLUS, GPU_FAST],
    );

    for d in workloads::d_grid(opts.paper_scale, opts.quick) {
        eprintln!("[fig2cd] d = {d} ...");
        table.add_row(d);
        let mut cfg = workloads::default_synthetic(n, opts.seed);
        cfg.d = d;
        cfg.subspace_dims = cfg.subspace_dims.min(d);
        let datasets: Vec<_> = (0..opts.reps)
            .map(|r| workloads::synthetic_data(&cfg, r))
            .collect();
        let params = |rep: usize| {
            let mut p = workloads::default_params().with_seed(opts.seed + rep as u64);
            p.l = p.l.min(d);
            p
        };

        table.set(
            PROCLUS,
            time_cpu_ms(opts.reps, |r| {
                proclus(&datasets[r], &params(r)).unwrap();
            }),
        );
        table.set(
            FAST,
            time_cpu_ms(opts.reps, |r| {
                fast_proclus(&datasets[r], &params(r)).unwrap();
            }),
        );
        table.set(
            GPU_PROCLUS,
            time_gpu_ms(&gpu_cfg, opts.reps, |r, dev| {
                gpu_proclus(dev, &datasets[r], &params(r)).unwrap();
            }),
        );
        table.set(
            GPU_FAST,
            time_gpu_ms(&gpu_cfg, opts.reps, |r, dev| {
                gpu_fast_proclus(dev, &datasets[r], &params(r)).unwrap();
            }),
        );
    }

    table.add_speedup_column(PROCLUS, GPU_PROCLUS);
    table.add_speedup_column(FAST, GPU_FAST);
    table.print("ms; CPU wall-clock, GPU simulated");
    table.write_csv(&opts.out_dir).expect("write csv");
}
