//! Telemetry harness: one instrumented run per algorithm/backend
//! combination on the default workload, written as
//! `results/BENCH_telemetry.json` (the multi-run telemetry document) and
//! `results/BENCH_trace.json` (a combined Chrome trace loadable in
//! `about:tracing` / Perfetto).
//!
//! This is the machine-readable counterpart of the timing figures: the
//! counters (`distances_computed`, `dist_cache_hits`, `delta_l_points`, …)
//! show *why* FAST/FAST* are faster, not just that they are.

use gpu_sim::{Device, DeviceConfig};
use proclus::telemetry::{chrome_trace_combined, counters, runs_json, TelemetryReport};
use proclus::{Algo, Backend, Config};
use proclus_bench::{workloads, Options};

fn main() {
    let opts = Options::from_args();
    let n = if opts.paper_scale {
        64_000
    } else if opts.quick {
        2_000
    } else {
        8_000
    };
    let cfg = workloads::default_synthetic(n, opts.seed);
    let data = workloads::synthetic_data(&cfg, 0);
    let params = workloads::default_params().with_seed(opts.seed);

    let combos = [
        (Algo::Baseline, Backend::Cpu),
        (Algo::Fast, Backend::Cpu),
        (Algo::FastStar, Backend::Cpu),
        (Algo::Baseline, Backend::Gpu),
        (Algo::Fast, Backend::Gpu),
        (Algo::FastStar, Backend::Gpu),
    ];

    let mut reports: Vec<TelemetryReport> = Vec::new();
    println!(
        "{:<20} {:>16} {:>12} {:>12} {:>14}",
        "configuration", "distances", "cache hits", "cache miss", "delta-L points"
    );
    for (algo, backend) in combos {
        let config = Config::new(params.clone())
            .with_algo(algo)
            .with_backend(backend)
            .with_telemetry(true);
        let report = match backend {
            Backend::Cpu => proclus::run(&data, &config),
            Backend::Gpu | Backend::Sharded => {
                let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
                proclus_gpu::run_on(&mut dev, &data, &config)
            }
        }
        .expect("run failed")
        .telemetry
        .expect("telemetry was requested");
        println!(
            "{:<20} {:>16} {:>12} {:>12} {:>14}",
            format!("{} on {}", algo.name(), backend.name()),
            report.total(counters::DISTANCES_COMPUTED),
            report.total(counters::DIST_CACHE_HITS),
            report.total(counters::DIST_CACHE_MISSES),
            report.total(counters::DELTA_L_POINTS),
        );
        reports.push(report);
    }

    std::fs::create_dir_all(&opts.out_dir).expect("create results dir");
    let tel_path = format!("{}/BENCH_telemetry.json", opts.out_dir);
    std::fs::write(&tel_path, runs_json(&reports)).expect("write telemetry json");
    let trace_path = format!("{}/BENCH_trace.json", opts.out_dir);
    std::fs::write(&trace_path, chrome_trace_combined(&reports)).expect("write chrome trace");
    println!(
        "\nwrote {tel_path} and {trace_path} ({} runs)",
        reports.len()
    );
}
