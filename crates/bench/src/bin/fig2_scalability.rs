//! Fig. 2a–2b: average running time vs. number of points `n`, single
//! parameter setting, for all nine algorithm variants (sequential,
//! multi-core and GPU × {PROCLUS, FAST, FAST*}).
//!
//! Paper shape to reproduce: the algorithmic strategies give 1.2–1.4× over
//! their baselines, the multi-core CPU versions up to ~6×, and the GPU
//! parallelization orders of magnitude more, with the GPU speedup growing
//! with `n` until the device saturates and then staying flat; at 1 M points
//! GPU-FAST-PROCLUS stays under the 100 ms interactivity budget.

#![allow(deprecated)] // exercises the legacy entry points deliberately

use gpu_sim::DeviceConfig;
use proclus_bench::runners::{
    fast_proclus, fast_proclus_par, fast_star_proclus, fast_star_proclus_par, proclus, proclus_par,
};
use proclus_bench::workloads::{self, names::*};
use proclus_bench::{time_cpu_ms, time_gpu_ms, ExpTable, Options};
use proclus_gpu::{gpu_fast_proclus, gpu_fast_star_proclus, gpu_proclus};

fn main() {
    let opts = Options::from_args();
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4);
    let gpu_cfg = DeviceConfig::gtx_1660_ti();
    let mut table = ExpTable::new(
        "fig2ab_runtime_vs_n",
        "n",
        &[
            PROCLUS,
            FAST,
            FAST_STAR,
            MC_PROCLUS,
            MC_FAST,
            MC_FAST_STAR,
            GPU_PROCLUS,
            GPU_FAST,
            GPU_FAST_STAR,
        ],
    );

    for n in workloads::n_grid(opts.paper_scale, opts.quick) {
        eprintln!("[fig2ab] n = {n} ...");
        table.add_row(n);
        let cfg = workloads::default_synthetic(n, opts.seed);
        let datasets: Vec<_> = (0..opts.reps)
            .map(|r| workloads::synthetic_data(&cfg, r))
            .collect();
        let params = |rep: usize| workloads::default_params().with_seed(opts.seed + rep as u64);

        // The sequential baseline dominates harness runtime at large n.
        let run_seq_baseline = !opts.quick || n <= 8_000;
        if run_seq_baseline {
            table.set(
                PROCLUS,
                time_cpu_ms(opts.reps, |r| {
                    proclus(&datasets[r], &params(r)).unwrap();
                }),
            );
            table.set(
                FAST,
                time_cpu_ms(opts.reps, |r| {
                    fast_proclus(&datasets[r], &params(r)).unwrap();
                }),
            );
            table.set(
                FAST_STAR,
                time_cpu_ms(opts.reps, |r| {
                    fast_star_proclus(&datasets[r], &params(r)).unwrap();
                }),
            );
        }
        table.set(
            MC_PROCLUS,
            time_cpu_ms(opts.reps, |r| {
                proclus_par(&datasets[r], &params(r), threads).unwrap();
            }),
        );
        table.set(
            MC_FAST,
            time_cpu_ms(opts.reps, |r| {
                fast_proclus_par(&datasets[r], &params(r), threads).unwrap();
            }),
        );
        table.set(
            MC_FAST_STAR,
            time_cpu_ms(opts.reps, |r| {
                fast_star_proclus_par(&datasets[r], &params(r), threads).unwrap();
            }),
        );
        table.set(
            GPU_PROCLUS,
            time_gpu_ms(&gpu_cfg, opts.reps, |r, dev| {
                gpu_proclus(dev, &datasets[r], &params(r)).unwrap();
            }),
        );
        table.set(
            GPU_FAST,
            time_gpu_ms(&gpu_cfg, opts.reps, |r, dev| {
                gpu_fast_proclus(dev, &datasets[r], &params(r)).unwrap();
            }),
        );
        table.set(
            GPU_FAST_STAR,
            time_gpu_ms(&gpu_cfg, opts.reps, |r, dev| {
                gpu_fast_star_proclus(dev, &datasets[r], &params(r)).unwrap();
            }),
        );
    }

    table.add_speedup_column(PROCLUS, FAST);
    table.add_speedup_column(PROCLUS, MC_PROCLUS);
    table.add_speedup_column(PROCLUS, GPU_PROCLUS);
    table.add_speedup_column(PROCLUS, GPU_FAST);
    table.print("ms; CPU wall-clock, GPU simulated");
    table.write_csv(&opts.out_dir).expect("write csv");
}
