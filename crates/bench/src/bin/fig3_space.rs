//! Fig. 3f: peak device memory vs. `n` for the three GPU variants, plus the
//! out-of-memory wall of §5.3 (the paper hits it at 8 M points with 4.2 GB
//! of free device memory).
//!
//! Paper shape to reproduce: all three grow linearly in `n`;
//! GPU-FAST uses roughly twice the memory of GPU-FAST* (it caches a
//! `Dist`/`H` row for every *distinct* medoid ever tried, not just the
//! current `k`), and GPU-FAST* ≈ GPU-PROCLUS. Peak memory is a
//! deterministic model output (pool accounting), so one repetition
//! suffices.

#![allow(deprecated)] // exercises the legacy entry points deliberately

use gpu_sim::{Device, DeviceConfig};
use proclus_bench::workloads::{self, names::*};
use proclus_bench::{ExpTable, Options};
use proclus_gpu::{gpu_fast_proclus, gpu_fast_star_proclus, gpu_proclus};

fn main() {
    let opts = Options::from_args();
    let gpu_cfg = DeviceConfig::gtx_1660_ti();
    let mut table = ExpTable::new(
        "fig3f_peak_device_memory",
        "n",
        &[GPU_PROCLUS, GPU_FAST, GPU_FAST_STAR, "FAST/FAST* ratio"],
    );

    for n in workloads::n_grid(opts.paper_scale, opts.quick) {
        eprintln!("[fig3f] n = {n} ...");
        table.add_row(n);
        let cfg = workloads::default_synthetic(n, opts.seed);
        let data = workloads::synthetic_data(&cfg, 0);
        let params = workloads::default_params().with_seed(opts.seed);

        let mut peaks = [0usize; 3];
        for (slot, run) in [
            gpu_proclus as fn(&mut Device, &proclus::DataMatrix, &proclus::Params) -> _,
            gpu_fast_proclus,
            gpu_fast_star_proclus,
        ]
        .iter()
        .enumerate()
        {
            let mut dev = Device::new(gpu_cfg.clone());
            run(&mut dev, &data, &params).unwrap();
            peaks[slot] = dev.mem_peak();
        }
        let mb = |b: usize| b as f64 / 1e6;
        table.set(GPU_PROCLUS, mb(peaks[0]));
        table.set(GPU_FAST, mb(peaks[1]));
        table.set(GPU_FAST_STAR, mb(peaks[2]));
        table.set("FAST/FAST* ratio", peaks[1] as f64 / peaks[2] as f64);
    }

    table.print("MB peak device memory (pool accounting)");
    table.write_csv(&opts.out_dir).expect("write csv");

    // The §5.3 memory wall, demonstrated on a proportionally shrunken
    // device: a card with 1/32 of the paper's free memory hits the same
    // wall at 1/32 of the paper's 8M points (≈ 250k).
    let limited = gpu_cfg.clone().with_memory_limit(4_200_000_000 / 32);
    println!(
        "\n## §5.3 memory wall (device limited to {} MB)",
        limited.global_mem_bytes / 1_000_000
    );
    for n in [128_000usize, 256_000, 512_000] {
        let cfg = workloads::default_synthetic(n, opts.seed);
        let data = workloads::synthetic_data(&cfg, 0);
        let params = workloads::default_params().with_seed(opts.seed);
        let mut dev = Device::new(limited.clone());
        match gpu_fast_proclus(&mut dev, &data, &params) {
            Ok(_) => println!(
                "  n = {n:>8}: ok (peak {:.1} MB)",
                dev.mem_peak() as f64 / 1e6
            ),
            Err(e) => println!("  n = {n:>8}: OUT OF MEMORY — {e}"),
        }
    }
}
