//! Fig. 1: speedup of the algorithmic strategies relative to their own
//! baselines — FAST and FAST* w.r.t. PROCLUS on the CPU, GPU-FAST and
//! GPU-FAST* w.r.t. GPU-PROCLUS — as a function of `n`.
//!
//! Paper shape to reproduce: the strategies give roughly 1.2–1.4× on both
//! platforms, and FAST* is a 1.05–1.1× slowdown relative to FAST (the
//! price of the factor-`B` space reduction, §5.1).

#![allow(deprecated)] // exercises the legacy entry points deliberately

use gpu_sim::DeviceConfig;
use proclus_bench::runners::{fast_proclus, fast_star_proclus, proclus};
use proclus_bench::workloads;
use proclus_bench::{time_cpu_ms, time_gpu_ms, ExpTable, Options};
use proclus_gpu::{gpu_fast_proclus, gpu_fast_star_proclus, gpu_proclus};

fn main() {
    let opts = Options::from_args();
    let gpu_cfg = DeviceConfig::gtx_1660_ti();
    let mut table = ExpTable::new(
        "fig1_strategy_speedups",
        "n",
        &[
            "FAST/PROCLUS",
            "FAST*/PROCLUS",
            "GPU-FAST/GPU-PROCLUS",
            "GPU-FAST*/GPU-PROCLUS",
            "FAST/FAST* (space cost)",
        ],
    );

    for n in workloads::n_grid(opts.paper_scale, opts.quick) {
        eprintln!("[fig1] n = {n} ...");
        table.add_row(n);
        let cfg = workloads::default_synthetic(n, opts.seed);
        let datasets: Vec<_> = (0..opts.reps)
            .map(|r| workloads::synthetic_data(&cfg, r))
            .collect();
        let params = |rep: usize| workloads::default_params().with_seed(opts.seed + rep as u64);

        let t_base = time_cpu_ms(opts.reps, |r| {
            proclus(&datasets[r], &params(r)).unwrap();
        });
        let t_fast = time_cpu_ms(opts.reps, |r| {
            fast_proclus(&datasets[r], &params(r)).unwrap();
        });
        let t_star = time_cpu_ms(opts.reps, |r| {
            fast_star_proclus(&datasets[r], &params(r)).unwrap();
        });
        let g_base = time_gpu_ms(&gpu_cfg, opts.reps, |r, dev| {
            gpu_proclus(dev, &datasets[r], &params(r)).unwrap();
        });
        let g_fast = time_gpu_ms(&gpu_cfg, opts.reps, |r, dev| {
            gpu_fast_proclus(dev, &datasets[r], &params(r)).unwrap();
        });
        let g_star = time_gpu_ms(&gpu_cfg, opts.reps, |r, dev| {
            gpu_fast_star_proclus(dev, &datasets[r], &params(r)).unwrap();
        });

        table.set("FAST/PROCLUS", t_base / t_fast);
        table.set("FAST*/PROCLUS", t_base / t_star);
        table.set("GPU-FAST/GPU-PROCLUS", g_base / g_fast);
        table.set("GPU-FAST*/GPU-PROCLUS", g_base / g_star);
        table.set("FAST/FAST* (space cost)", t_star / t_fast);
    }

    table.print("speedup factor (>1 = numerator faster)");
    table.write_csv(&opts.out_dir).expect("write csv");
}
