//! Fig. 2g–2k: effect of the algorithm parameters, increased one at a time
//! from the defaults (`k = 10, l = 5, A = 100, B = 10, minDev = 0.7,
//! itrPat = 5`).
//!
//! Paper shape to reproduce: running time is almost flat for most
//! parameters but grows with `k` and with `B` (more distance rows to
//! compute), while the GPU speedup factor stays roughly constant
//! (≈1,100× in the paper) across all sweeps.

#![allow(deprecated)] // exercises the legacy entry points deliberately

use gpu_sim::DeviceConfig;
use proclus::Params;
use proclus_bench::runners::{fast_proclus, proclus};
use proclus_bench::workloads::{self, names::*};
use proclus_bench::{time_cpu_ms, time_gpu_ms, ExpTable, Options};
use proclus_gpu::{gpu_fast_proclus, gpu_proclus};

fn run_sweep<F>(opts: &Options, n: usize, id: &str, x_name: &str, values: &[usize], set: F)
where
    F: Fn(&mut Params, usize),
{
    let gpu_cfg = DeviceConfig::gtx_1660_ti();
    let mut table = ExpTable::new(id, x_name, &[PROCLUS, FAST, GPU_PROCLUS, GPU_FAST]);
    let cfg = workloads::default_synthetic(n, opts.seed);
    let datasets: Vec<_> = (0..opts.reps)
        .map(|r| workloads::synthetic_data(&cfg, r))
        .collect();
    for &v in values {
        eprintln!("[{id}] {x_name} = {v} ...");
        table.add_row(v);
        let params = |rep: usize| {
            let mut p = workloads::default_params().with_seed(opts.seed + rep as u64);
            set(&mut p, v);
            p
        };
        table.set(
            PROCLUS,
            time_cpu_ms(opts.reps, |r| {
                proclus(&datasets[r], &params(r)).unwrap();
            }),
        );
        table.set(
            FAST,
            time_cpu_ms(opts.reps, |r| {
                fast_proclus(&datasets[r], &params(r)).unwrap();
            }),
        );
        table.set(
            GPU_PROCLUS,
            time_gpu_ms(&gpu_cfg, opts.reps, |r, dev| {
                gpu_proclus(dev, &datasets[r], &params(r)).unwrap();
            }),
        );
        table.set(
            GPU_FAST,
            time_gpu_ms(&gpu_cfg, opts.reps, |r, dev| {
                gpu_fast_proclus(dev, &datasets[r], &params(r)).unwrap();
            }),
        );
    }
    table.add_speedup_column(PROCLUS, GPU_PROCLUS);
    table.print("ms; CPU wall-clock, GPU simulated");
    table.write_csv(&opts.out_dir).expect("write csv");
    println!();
}

fn main() {
    let opts = Options::from_args();
    let n = if opts.paper_scale { 64_000 } else { 16_000 };
    let full = !opts.quick;

    // Fig. 2g: k.
    let ks: &[usize] = if full { &[2, 5, 10, 15, 20] } else { &[5, 10] };
    run_sweep(&opts, n, "fig2g_runtime_vs_k", "k", ks, |p, v| p.k = v);

    // Fig. 2h: l.
    let ls: &[usize] = if full { &[2, 3, 5, 7, 9] } else { &[3, 5] };
    run_sweep(&opts, n, "fig2h_runtime_vs_l", "l", ls, |p, v| p.l = v);

    // Fig. 2i: A.
    let avals: &[usize] = if full {
        &[25, 50, 100, 200]
    } else {
        &[50, 100]
    };
    run_sweep(&opts, n, "fig2i_runtime_vs_A", "A", avals, |p, v| p.a = v);

    // Fig. 2j: B.
    let bvals: &[usize] = if full { &[2, 5, 10, 20] } else { &[5, 10] };
    run_sweep(&opts, n, "fig2j_runtime_vs_B", "B", bvals, |p, v| p.b = v);

    // Fig. 2k: itrPat (patience), plus a minDev sweep — the paper raises
    // "each of the parameters one by one".
    let pats: &[usize] = if full { &[2, 5, 10, 15] } else { &[2, 5] };
    run_sweep(
        &opts,
        n,
        "fig2k_runtime_vs_itrPat",
        "itrPat",
        pats,
        |p, v| p.itr_pat = v,
    );
    let devs: &[usize] = if full { &[3, 5, 7, 9] } else { &[5, 7] };
    run_sweep(
        &opts,
        n,
        "fig2k_runtime_vs_minDev",
        "minDev_x10",
        devs,
        |p, v| p.min_dev = v as f64 / 10.0,
    );
}
