//! Scalar vs vectorized distance-kernel harness, written as
//! `results/BENCH_distance.json`.
//!
//! Measures the two row kernels the hot path actually runs — one `Dist`
//! row against all `n` points (`proclus::distance_simd::euclidean_strip`
//! vs the scalar `euclidean` loop) and a `Bk`-row batch against
//! cache-block column strips (`dist_rows_strip` vs `Bk` scalar sweeps) —
//! across the grid n ∈ {64k, 512k} × d ∈ {8, 32, 128} (`--quick`: 64k ×
//! {8, 32}). Every repetition cross-checks the vectorized outputs
//! bitwise against the scalar kernel (the tentpole contract: lanes are
//! independent accumulator chains, so vectorization must not move a
//! single bit), and the JSON records the per-combo timing ratios that
//! `cargo xtask bench-compare --kind distance` gates (row-kernel floor
//! ≥ 2.0x at the best combo; no combo materially slower than scalar).
//!
//! Timing ratios are wall-clock and therefore machine-*dependent* in
//! absolute terms; what is machine-independent is their structure: the
//! 8 independent f64 chains per lane group beat one chain per point on
//! any hardware with more than one FP pipe.

use std::fmt::Write as _;
use std::time::Instant;

use proclus::distance::euclidean;
use proclus::distance_simd::{dist_rows_strip, euclidean_strip};
use proclus_bench::Options;
use proclus_telemetry::json::fmt_f64;

/// Medoid rows in the batched kernel — the paper's `Bk` replacement pool.
const BATCH_ROWS: usize = 10;

struct Combo {
    n: usize,
    d: usize,
}

struct Measured {
    n: usize,
    d: usize,
    scalar_ms: f64,
    simd_ms: f64,
    batch_scalar_ms: f64,
    batch_simd_ms: f64,
    bitwise_equal: bool,
}

fn combos(quick: bool) -> Vec<Combo> {
    let (ns, ds): (&[usize], &[usize]) = if quick {
        (&[64_000], &[8, 32])
    } else {
        (&[64_000, 512_000], &[8, 32, 128])
    };
    let mut out = Vec::new();
    for &n in ns {
        for &d in ds {
            out.push(Combo { n, d });
        }
    }
    out
}

/// Deterministic dataset fill — a Weyl sequence, cheap enough that data
/// generation never dominates the harness at n = 512k × d = 128.
fn fill(n: usize, d: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n * d)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            ((state >> 40) as f32) / 65_536.0
        })
        .collect()
}

/// Minimum wall-clock milliseconds of `f` over `reps` runs (minimum, not
/// mean: the ratio gate wants the kernels' speed, not the scheduler's
/// noise).
fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

fn measure(c: &Combo, reps: usize, seed: u64) -> Measured {
    let (n, d) = (c.n, c.d);
    let flat = fill(n, d, seed ^ (n as u64) ^ ((d as u64) << 32));
    let medoids: Vec<usize> = (0..BATCH_ROWS).map(|i| (i * n) / BATCH_ROWS).collect();
    let m_row: Vec<f32> = flat[medoids[0] * d..(medoids[0] + 1) * d].to_vec();

    // Single-row kernel: scalar baseline, then the 8-lane strip.
    let mut scalar_out = vec![0.0f32; n];
    let scalar_ms = best_ms(reps, || {
        for p in 0..n {
            scalar_out[p] = euclidean(&flat[p * d..(p + 1) * d], &m_row);
        }
    });
    let mut simd_out = vec![0.0f32; n];
    let simd_ms = best_ms(reps, || {
        euclidean_strip(&flat, d, &m_row, &mut simd_out);
    });
    let mut bitwise_equal = scalar_out
        .iter()
        .zip(&simd_out)
        .all(|(a, b)| a.to_bits() == b.to_bits());

    // Batched kernel: Bk rows, scalar sweeps vs cache-blocked strips.
    let m_rows: Vec<&[f32]> = medoids.iter().map(|&m| &flat[m * d..(m + 1) * d]).collect();
    let mut batch_scalar = vec![0.0f32; BATCH_ROWS * n];
    let batch_scalar_ms = best_ms(reps, || {
        for (i, m_row) in m_rows.iter().enumerate() {
            for p in 0..n {
                batch_scalar[i * n + p] = euclidean(&flat[p * d..(p + 1) * d], m_row);
            }
        }
    });
    let mut batch_simd = vec![0.0f32; BATCH_ROWS * n];
    let batch_simd_ms = best_ms(reps, || {
        let mut outs: Vec<&mut [f32]> = batch_simd.chunks_mut(n).collect();
        dist_rows_strip(&flat, d, &m_rows, &mut outs);
    });
    bitwise_equal &= batch_scalar
        .iter()
        .zip(&batch_simd)
        .all(|(a, b)| a.to_bits() == b.to_bits());

    Measured {
        n,
        d,
        scalar_ms,
        simd_ms,
        batch_scalar_ms,
        batch_simd_ms,
        bitwise_equal,
    }
}

fn main() {
    let opts = Options::from_args();
    let grid = combos(opts.quick);
    println!(
        "distance_bench: {} combos, reps={}{}",
        grid.len(),
        opts.reps,
        if opts.quick { " (quick)" } else { "" }
    );
    println!(
        "{:<9} {:>5} {:>11} {:>9} {:>7} {:>11} {:>9} {:>7}  bitwise",
        "n", "d", "scalar_ms", "simd_ms", "ratio", "batch_sc", "batch_v", "ratio"
    );

    let mut rows = Vec::new();
    for c in &grid {
        let m = measure(c, opts.reps, opts.seed);
        println!(
            "{:<9} {:>5} {:>11.2} {:>9.2} {:>6.2}x {:>11.2} {:>9.2} {:>6.2}x  {}",
            m.n,
            m.d,
            m.scalar_ms,
            m.simd_ms,
            m.scalar_ms / m.simd_ms,
            m.batch_scalar_ms,
            m.batch_simd_ms,
            m.batch_scalar_ms / m.batch_simd_ms,
            if m.bitwise_equal { "ok" } else { "DIVERGED" }
        );
        rows.push(m);
    }

    let mut json = String::from("{\"version\":1,");
    let _ = write!(
        json,
        "\"workload\":{{\"batch_rows\":{BATCH_ROWS},\"seed\":{},\"reps\":{},\"quick\":{}}},\
         \"combos\":[",
        opts.seed, opts.reps, opts.quick
    );
    for (i, m) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"n\":{},\"d\":{},\"scalar_ms\":{},\"simd_ms\":{},\"ratio\":{},\
             \"batch_scalar_ms\":{},\"batch_simd_ms\":{},\"batch_ratio\":{},\
             \"bitwise_equal\":{}}}",
            m.n,
            m.d,
            fmt_f64(m.scalar_ms),
            fmt_f64(m.simd_ms),
            fmt_f64(m.scalar_ms / m.simd_ms),
            fmt_f64(m.batch_scalar_ms),
            fmt_f64(m.batch_simd_ms),
            fmt_f64(m.batch_scalar_ms / m.batch_simd_ms),
            m.bitwise_equal
        );
    }
    json.push_str("]}");

    std::fs::create_dir_all(&opts.out_dir).expect("create results dir");
    let path = format!("{}/BENCH_distance.json", opts.out_dir);
    std::fs::write(&path, &json).expect("write distance json");
    println!("\nwrote {path}");
}
