//! Serving-layer harness: the same burst of mixed `(k, l)` requests served
//! with the batching scheduler on (`max_batch = 16`) and off
//! (`max_batch = 1`), written as `results/BENCH_serve.json`.
//!
//! The serving layer exists to exploit §3.1 across requests: queued jobs on
//! the same dataset that differ only in `(k, l)` coalesce into one grid run
//! sharing the sample, greedy candidates and `Dist`/`H` caches. This
//! harness quantifies the win as clients see it — throughput and
//! end-to-end latency (queue wait + service) — next to the distances
//! counter that explains it.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use proclus::telemetry::counters;
use proclus::Params;
use proclus_bench::{workloads, Options};
use proclus_serve::{DatasetRef, JobRequest, ServeConfig, Server};
use proclus_telemetry::json::fmt_f64;

/// One mode's aggregate over all repetitions.
struct ModeStats {
    mode: &'static str,
    max_batch: usize,
    jobs: usize,
    wall_ms: f64,
    throughput: f64,
    distances: u64,
    batches: u64,
    latency_p50_us: u64,
    latency_p99_us: u64,
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_mode(
    mode: &'static str,
    max_batch: usize,
    data: &Arc<proclus::DataMatrix>,
    grid: &[(usize, usize)],
    reps: usize,
    seed: u64,
) -> ModeStats {
    let mut wall_ms = 0.0;
    let mut distances = 0u64;
    let mut batches = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for rep in 0..reps {
        let server = Server::start(
            ServeConfig::default()
                .with_workers(2)
                .with_max_batch(max_batch)
                .with_start_paused(true),
        )
        .expect("server starts");
        let dataset = DatasetRef::Inline {
            name: format!("bench-{rep}"),
            data: Arc::clone(data),
        };
        let handles: Vec<_> = grid
            .iter()
            .map(|&(k, l)| {
                let params = Params::new(k, l)
                    .with_a(20)
                    .with_b(5)
                    .with_seed(seed.wrapping_add(rep as u64));
                server
                    .submit(JobRequest::new(dataset.clone(), params))
                    .expect("admitted")
            })
            .collect();
        let t0 = Instant::now();
        server.resume();
        for h in &handles {
            let out = h.wait().expect("job succeeds");
            latencies.push(out.queue_wait_us + out.service_us);
            distances += out
                .telemetry
                .expect("telemetry on")
                .total(counters::DISTANCES_COMPUTED);
        }
        wall_ms += t0.elapsed().as_secs_f64() * 1e3;
        batches += server.metrics().total(counters::BATCHES_EXECUTED);
        server.shutdown();
    }
    latencies.sort_unstable();
    let jobs = grid.len() * reps;
    ModeStats {
        mode,
        max_batch,
        jobs,
        wall_ms,
        throughput: jobs as f64 / (wall_ms / 1e3),
        distances,
        batches,
        latency_p50_us: quantile(&latencies, 0.50),
        latency_p99_us: quantile(&latencies, 0.99),
    }
}

fn main() {
    let opts = Options::from_args();
    let n = if opts.paper_scale {
        64_000
    } else if opts.quick {
        2_000
    } else {
        8_000
    };
    let cfg = workloads::default_synthetic(n, opts.seed);
    let data = Arc::new(workloads::synthetic_data(&cfg, 0));
    let grid: Vec<(usize, usize)> = (2..=9)
        .flat_map(|k| [3usize, 4, 5].map(|l| (k, l)))
        .collect();

    println!(
        "serving {} mixed (k, l) requests x {} reps over {} x {} points\n",
        grid.len(),
        opts.reps,
        data.n(),
        data.d()
    );
    let modes = [
        run_mode("batched", 16, &data, &grid, opts.reps, opts.seed),
        run_mode("unbatched", 1, &data, &grid, opts.reps, opts.seed),
    ];

    println!(
        "{:<12} {:>10} {:>12} {:>14} {:>9} {:>12} {:>12}",
        "mode", "wall ms", "jobs/s", "distances", "batches", "p50 us", "p99 us"
    );
    for m in &modes {
        println!(
            "{:<12} {:>10.1} {:>12.1} {:>14} {:>9} {:>12} {:>12}",
            m.mode,
            m.wall_ms,
            m.throughput,
            m.distances,
            m.batches,
            m.latency_p50_us,
            m.latency_p99_us
        );
    }
    let [batched, unbatched] = &modes;
    println!(
        "\nbatching saves {:.1}% of distances; throughput x{:.2}",
        100.0 * (1.0 - batched.distances as f64 / unbatched.distances as f64),
        batched.throughput / unbatched.throughput,
    );

    let mut json = format!(
        "{{\"version\":1,\"workload\":{{\"n\":{},\"d\":{},\"jobs_per_rep\":{},\"reps\":{}}},\
         \"modes\":[",
        data.n(),
        data.d(),
        grid.len(),
        opts.reps
    );
    for (i, m) in modes.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"mode\":\"{}\",\"max_batch\":{},\"jobs\":{},\"wall_ms\":{},\
             \"throughput_jobs_per_s\":{},\"distances_computed\":{},\"batches_executed\":{},\
             \"latency_p50_us\":{},\"latency_p99_us\":{}}}",
            m.mode,
            m.max_batch,
            m.jobs,
            fmt_f64(m.wall_ms),
            fmt_f64(m.throughput),
            m.distances,
            m.batches,
            m.latency_p50_us,
            m.latency_p99_us
        );
    }
    json.push_str("]}");

    std::fs::create_dir_all(&opts.out_dir).expect("create results dir");
    let path = format!("{}/BENCH_serve.json", opts.out_dir);
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    proclus_telemetry::json::parse(&json).expect("well-formed output");
    println!("wrote {path}");
}
