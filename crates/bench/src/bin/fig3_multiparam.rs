//! Fig. 3a–3e: nine `(k, l)` parameter settings explored at once — the
//! average running time *per setting* vs. `n`, comparing independent runs
//! against the three cumulative reuse levels of §3.1.
//!
//! Paper shape to reproduce: GPU-FAST-PROCLUS with reuse beats independent
//! GPU-FAST (level 1 ≈ 1.4×, level 2 ≈ 1.6×, level 3 ≈ 2.3× over running
//! one setting at a time), giving up to ~7,000× over sequential PROCLUS,
//! and the per-setting time of the reusing GPU variant stays sub-second
//! even at the largest `n`.

use gpu_sim::DeviceConfig;
use proclus::multi_param::{ReuseLevel, Setting};
use proclus::{default_grid, fast_proclus_multi, proclus_multi};
use proclus_bench::workloads::{self, names::PROCLUS};
use proclus_bench::{time_cpu_ms, time_gpu_ms, ExpTable, Options};
use proclus_gpu::{gpu_fast_proclus_multi, gpu_proclus_multi};

fn main() {
    let opts = Options::from_args();
    let gpu_cfg = DeviceConfig::gtx_1660_ti();
    let grid: Vec<Setting> = default_grid(10, 5);
    let settings = grid.len() as f64;
    let exec = proclus::par::Executor::Sequential;

    let mut table = ExpTable::new(
        "fig3ae_multiparam_avg_per_setting",
        "n",
        &[
            PROCLUS,
            "FAST-multi3",
            "GPU-PROCLUS",
            "GPU-FAST-L0",
            "GPU-FAST-L1",
            "GPU-FAST-L2",
            "GPU-FAST-L3",
        ],
    );

    for n in workloads::n_grid(opts.paper_scale, opts.quick) {
        eprintln!("[fig3ae] n = {n} ...");
        table.add_row(n);
        let cfg = workloads::default_synthetic(n, opts.seed);
        let datasets: Vec<_> = (0..opts.reps)
            .map(|r| workloads::synthetic_data(&cfg, r))
            .collect();
        let base = |rep: usize| workloads::default_params().with_seed(opts.seed + rep as u64);

        // Sequential PROCLUS, one setting at a time (the reference curve).
        // Skipped at the largest sizes in quick mode: it dominates runtime.
        if !opts.quick || n <= 8_000 {
            table.set(
                PROCLUS,
                time_cpu_ms(opts.reps, |r| {
                    proclus_multi(&datasets[r], &base(r), &grid, &exec).unwrap();
                }) / settings,
            );
            table.set(
                "FAST-multi3",
                time_cpu_ms(opts.reps, |r| {
                    fast_proclus_multi(&datasets[r], &base(r), &grid, ReuseLevel::WarmStart, &exec)
                        .unwrap();
                }) / settings,
            );
        }
        table.set(
            "GPU-PROCLUS",
            time_gpu_ms(&gpu_cfg, opts.reps, |r, dev| {
                gpu_proclus_multi(dev, &datasets[r], &base(r), &grid).unwrap();
            }) / settings,
        );
        for (name, level) in [
            ("GPU-FAST-L0", ReuseLevel::Independent),
            ("GPU-FAST-L1", ReuseLevel::SharedCache),
            ("GPU-FAST-L2", ReuseLevel::SharedGreedy),
            ("GPU-FAST-L3", ReuseLevel::WarmStart),
        ] {
            table.set(
                name,
                time_gpu_ms(&gpu_cfg, opts.reps, |r, dev| {
                    gpu_fast_proclus_multi(dev, &datasets[r], &base(r), &grid, level).unwrap();
                }) / settings,
            );
        }
    }

    table.add_speedup_column(PROCLUS, "GPU-FAST-L3");
    table.add_speedup_column("GPU-FAST-L0", "GPU-FAST-L1");
    table.add_speedup_column("GPU-FAST-L0", "GPU-FAST-L2");
    table.add_speedup_column("GPU-FAST-L0", "GPU-FAST-L3");
    table.print("ms per setting; CPU wall-clock, GPU simulated");
    table.write_csv(&opts.out_dir).expect("write csv");
}
