//! Fig. 2e–2f: effect of the *data distribution* on running time — the
//! number of planted clusters (2e) and their standard deviation (2f).
//!
//! Paper shape to reproduce: running times of PROCLUS and GPU-PROCLUS are
//! largely unaffected by either knob (the work per iteration depends on
//! `n`, `d`, `k`, not on how the points are arranged).

#![allow(deprecated)] // exercises the legacy entry points deliberately

use gpu_sim::DeviceConfig;
use proclus_bench::runners::{fast_proclus, proclus};
use proclus_bench::workloads::{self, names::*};
use proclus_bench::{time_cpu_ms, time_gpu_ms, ExpTable, Options};
use proclus_gpu::{gpu_fast_proclus, gpu_proclus};

fn run_sweep(
    opts: &Options,
    id: &str,
    x_name: &str,
    configs: &[(String, datagen::SyntheticConfig)],
) {
    let gpu_cfg = DeviceConfig::gtx_1660_ti();
    let mut table = ExpTable::new(id, x_name, &[PROCLUS, FAST, GPU_PROCLUS, GPU_FAST]);
    for (label, cfg) in configs {
        eprintln!("[{id}] {x_name} = {label} ...");
        table.add_row(label.clone());
        let datasets: Vec<_> = (0..opts.reps)
            .map(|r| workloads::synthetic_data(cfg, r))
            .collect();
        let params = |rep: usize| workloads::default_params().with_seed(opts.seed + rep as u64);
        table.set(
            PROCLUS,
            time_cpu_ms(opts.reps, |r| {
                proclus(&datasets[r], &params(r)).unwrap();
            }),
        );
        table.set(
            FAST,
            time_cpu_ms(opts.reps, |r| {
                fast_proclus(&datasets[r], &params(r)).unwrap();
            }),
        );
        table.set(
            GPU_PROCLUS,
            time_gpu_ms(&gpu_cfg, opts.reps, |r, dev| {
                gpu_proclus(dev, &datasets[r], &params(r)).unwrap();
            }),
        );
        table.set(
            GPU_FAST,
            time_gpu_ms(&gpu_cfg, opts.reps, |r, dev| {
                gpu_fast_proclus(dev, &datasets[r], &params(r)).unwrap();
            }),
        );
    }
    table.print("ms; CPU wall-clock, GPU simulated");
    table.write_csv(&opts.out_dir).expect("write csv");
    println!();
}

fn main() {
    let opts = Options::from_args();
    let n = if opts.paper_scale { 64_000 } else { 16_000 };

    // Fig. 2e: number of planted clusters.
    let cluster_counts: &[usize] = if opts.quick {
        &[5, 20]
    } else {
        &[5, 10, 20, 40]
    };
    let configs: Vec<_> = cluster_counts
        .iter()
        .map(|&c| {
            let mut cfg = workloads::default_synthetic(n, opts.seed);
            cfg.num_clusters = c;
            (c.to_string(), cfg)
        })
        .collect();
    run_sweep(
        &opts,
        "fig2e_runtime_vs_data_clusters",
        "clusters",
        &configs,
    );

    // Fig. 2f: cluster standard deviation.
    let sigmas: &[f32] = if opts.quick {
        &[1.0, 8.0]
    } else {
        &[1.0, 2.0, 4.0, 8.0, 16.0]
    };
    let configs: Vec<_> = sigmas
        .iter()
        .map(|&s| {
            let mut cfg = workloads::default_synthetic(n, opts.seed);
            cfg.std_dev = s;
            (s.to_string(), cfg)
        })
        .collect();
    run_sweep(&opts, "fig2f_runtime_vs_stddev", "std_dev", &configs);
}
