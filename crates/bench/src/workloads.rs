//! Workload construction shared by the harnesses: the paper's default
//! synthetic configuration (§5) with per-repetition seeds, plus the sweep
//! grids used by each figure.

use datagen::synthetic::{generate, SyntheticConfig};
use proclus::{DataMatrix, Params};

/// The paper's default algorithm parameters (§5):
/// `k = 10, l = 5, A = 100, B = 10, minDev = 0.7, itrPat = 5`.
pub fn default_params() -> Params {
    Params::new(10, 5)
}

/// The paper's default synthetic generator configuration (§5): 64,000 × 15,
/// 10 Gaussian clusters in 5-d subspaces, σ = 5.0, values in 0..100.
pub fn default_synthetic(n: usize, seed: u64) -> SyntheticConfig {
    SyntheticConfig {
        n,
        d: 15,
        num_clusters: 10,
        subspace_dims: 5,
        std_dev: 5.0,
        value_range: (0.0, 100.0),
        noise_fraction: 0.0,
        seed,
    }
}

/// Generates a min–max-normalized dataset for repetition `rep` ("averages
/// of 10 runs on *different generated datasets*", §5).
pub fn synthetic_data(cfg: &SyntheticConfig, rep: usize) -> DataMatrix {
    let mut c = cfg.clone();
    c.seed = cfg
        .seed
        .wrapping_add(rep as u64)
        .wrapping_mul(0x9E3779B97F4A7C15);
    let mut g = generate(&c);
    g.data.minmax_normalize();
    g.data
}

/// The `n` sweep of Fig. 2a–b / Fig. 1 (paper: up to 1M and beyond;
/// the default grid is scaled for simulation, `--paper-scale` restores it).
pub fn n_grid(paper_scale: bool, quick: bool) -> Vec<usize> {
    if quick {
        vec![2_000, 8_000]
    } else if paper_scale {
        vec![16_000, 64_000, 256_000, 1_024_000]
    } else {
        vec![2_000, 8_000, 32_000, 128_000]
    }
}

/// The dimensionality sweep of Fig. 2c–d.
pub fn d_grid(paper_scale: bool, quick: bool) -> Vec<usize> {
    if quick {
        vec![5, 15]
    } else if paper_scale {
        vec![5, 10, 15, 30, 45, 60]
    } else {
        vec![5, 10, 15, 30]
    }
}

/// Standard algorithm column names used across harnesses.
pub mod names {
    /// Sequential baseline.
    pub const PROCLUS: &str = "PROCLUS";
    /// Sequential FAST.
    pub const FAST: &str = "FAST";
    /// Sequential FAST*.
    pub const FAST_STAR: &str = "FAST*";
    /// Multi-core baseline.
    pub const MC_PROCLUS: &str = "MC-PROCLUS";
    /// Multi-core FAST.
    pub const MC_FAST: &str = "MC-FAST";
    /// Multi-core FAST*.
    pub const MC_FAST_STAR: &str = "MC-FAST*";
    /// GPU baseline (simulated device time).
    pub const GPU_PROCLUS: &str = "GPU-PROCLUS";
    /// GPU FAST (simulated device time).
    pub const GPU_FAST: &str = "GPU-FAST";
    /// GPU FAST* (simulated device time).
    pub const GPU_FAST_STAR: &str = "GPU-FAST*";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = default_params();
        assert_eq!((p.k, p.l, p.a, p.b), (10, 5, 100, 10));
        let s = default_synthetic(64_000, 1);
        assert_eq!(
            (s.n, s.d, s.num_clusters, s.subspace_dims),
            (64_000, 15, 10, 5)
        );
        assert_eq!(s.std_dev, 5.0);
    }

    #[test]
    fn per_rep_seeds_differ() {
        let cfg = default_synthetic(500, 7);
        let a = synthetic_data(&cfg, 0);
        let b = synthetic_data(&cfg, 1);
        assert_ne!(a, b);
        // Same rep reproduces.
        assert_eq!(a, synthetic_data(&cfg, 0));
    }

    #[test]
    fn grids_scale_with_flags() {
        assert!(n_grid(true, false).contains(&1_024_000));
        assert!(!n_grid(false, false).contains(&1_024_000));
        assert_eq!(n_grid(false, true).len(), 2);
        assert!(d_grid(true, false).contains(&60));
    }
}
