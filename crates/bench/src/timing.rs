//! Measurement helpers: wall-clock for CPU algorithms, simulated device
//! time for GPU algorithms.
//!
//! Following the paper (§5), every reported number is the average over
//! `reps` runs on *different generated datasets* (the caller varies the
//! seed per repetition through the closure argument).

use std::time::Instant;

use gpu_sim::{Device, DeviceConfig};

/// Average wall-clock milliseconds of `f(rep)` over `reps` repetitions.
pub fn time_cpu_ms(reps: usize, mut f: impl FnMut(usize)) -> f64 {
    assert!(reps > 0);
    let mut total = 0.0f64;
    for rep in 0..reps {
        let t0 = Instant::now();
        f(rep);
        total += t0.elapsed().as_secs_f64() * 1e3;
    }
    total / reps as f64
}

/// Average *simulated* device milliseconds of `f(rep, &mut Device)` over
/// `reps` repetitions. A fresh device is built per repetition so pool peaks
/// and kernel statistics do not leak between runs; the returned time is the
/// device clock advanced by kernels and transfers.
pub fn time_gpu_ms(cfg: &DeviceConfig, reps: usize, mut f: impl FnMut(usize, &mut Device)) -> f64 {
    assert!(reps > 0);
    let mut total = 0.0f64;
    for rep in 0..reps {
        let mut dev = Device::new(cfg.clone());
        f(rep, &mut dev);
        total += dev.elapsed_ms();
    }
    total / reps as f64
}

/// Like [`time_gpu_ms`] but also returns the device report of the *last*
/// repetition (for utilization/space harnesses).
pub fn time_gpu_ms_with_report(
    cfg: &DeviceConfig,
    reps: usize,
    mut f: impl FnMut(usize, &mut Device),
) -> (f64, gpu_sim::DeviceReport) {
    assert!(reps > 0);
    let mut total = 0.0f64;
    let mut last = None;
    for rep in 0..reps {
        let mut dev = Device::new(cfg.clone());
        f(rep, &mut dev);
        total += dev.elapsed_ms();
        last = Some(dev.report());
    }
    (total / reps as f64, last.expect("reps > 0"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_timer_averages() {
        let mut calls = 0;
        let ms = time_cpu_ms(4, |_| calls += 1);
        assert_eq!(calls, 4);
        assert!(ms >= 0.0);
    }

    #[test]
    fn gpu_timer_uses_simulated_clock() {
        let cfg = DeviceConfig::gtx_1660_ti();
        let ms = time_gpu_ms(&cfg, 2, |_, dev| {
            dev.charge_us(1500.0);
        });
        assert!((ms - 1.5).abs() < 1e-9);
    }

    #[test]
    fn report_comes_from_last_rep() {
        let cfg = DeviceConfig::gtx_1660_ti();
        let (_, rep) = time_gpu_ms_with_report(&cfg, 2, |r, dev| {
            if r == 1 {
                let _ = dev.alloc_zeroed::<f32>("x", 100).unwrap();
            }
        });
        assert_eq!(rep.mem_peak, 400);
    }
}
