//! Experiment result tables: accumulate series, print like the paper's
//! plots (one row per x value, one column per algorithm), derive speedups,
//! and write CSV.

use std::fs;
use std::io::Write;
use std::path::Path;

/// An experiment's results: `columns` are algorithm names, `rows` are the
/// swept x values with one optional measurement per column (skipped
/// configurations stay empty).
#[derive(Debug, Clone)]
pub struct ExpTable {
    /// Experiment identifier, e.g. `fig2a_runtime_vs_n`.
    pub id: String,
    /// Name of the swept variable (first CSV column).
    pub x_name: String,
    /// Algorithm/series names.
    pub columns: Vec<String>,
    rows: Vec<(String, Vec<Option<f64>>)>,
}

impl ExpTable {
    /// Creates an empty table with the given series.
    pub fn new(id: &str, x_name: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            x_name: x_name.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Starts a new x row; subsequent [`ExpTable::set`] calls fill it.
    pub fn add_row(&mut self, x: impl ToString) {
        self.rows
            .push((x.to_string(), vec![None; self.columns.len()]));
    }

    /// Sets the current row's value for `column`.
    ///
    /// # Panics
    ///
    /// Panics if the column is unknown or no row was started.
    pub fn set(&mut self, column: &str, value: f64) {
        let c = self
            .columns
            .iter()
            .position(|s| s == column)
            .unwrap_or_else(|| panic!("unknown column `{column}` in {}", self.id));
        let row = self.rows.last_mut().expect("add_row before set");
        row.1[c] = Some(value);
    }

    /// Value at (x row index, column name), if measured.
    pub fn get(&self, row: usize, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|s| s == column)?;
        self.rows.get(row)?.1[c]
    }

    /// Number of x rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Derives a speedup column: `base / target` per row, appended as
    /// `"{target} speedup"`.
    pub fn add_speedup_column(&mut self, base: &str, target: &str) {
        let b = self.columns.iter().position(|s| s == base);
        let t = self.columns.iter().position(|s| s == target);
        let (Some(b), Some(t)) = (b, t) else { return };
        self.columns.push(format!("{target} speedup"));
        for row in &mut self.rows {
            let v = match (row.1[b], row.1[t]) {
                (Some(base_v), Some(target_v)) if target_v > 0.0 => Some(base_v / target_v),
                _ => None,
            };
            row.1.push(v);
        }
    }

    /// Renders the table with aligned columns; `unit` annotates the header.
    pub fn render(&self, unit: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {} [{unit}]\n", self.id));
        out.push_str(&format!("{:>12}", self.x_name));
        for c in &self.columns {
            out.push_str(&format!(" {c:>18}"));
        }
        out.push('\n');
        for (x, vals) in &self.rows {
            out.push_str(&format!("{x:>12}"));
            for v in vals {
                match v {
                    Some(v) if *v >= 100.0 => out.push_str(&format!(" {v:>18.1}")),
                    Some(v) => out.push_str(&format!(" {v:>18.4}")),
                    None => out.push_str(&format!(" {:>18}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self, unit: &str) {
        print!("{}", self.render(unit));
    }

    /// Writes `<out_dir>/<id>.csv`.
    pub fn write_csv(&self, out_dir: &str) -> std::io::Result<()> {
        fs::create_dir_all(out_dir)?;
        let path = Path::new(out_dir).join(format!("{}.csv", self.id));
        let mut f = fs::File::create(&path)?;
        write!(f, "{}", self.x_name)?;
        for c in &self.columns {
            write!(f, ",{c}")?;
        }
        writeln!(f)?;
        for (x, vals) in &self.rows {
            write!(f, "{x}")?;
            for v in vals {
                match v {
                    Some(v) => write!(f, ",{v}")?,
                    None => write!(f, ",")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExpTable {
        let mut t = ExpTable::new("test_fig", "n", &["PROCLUS", "GPU-PROCLUS"]);
        t.add_row(1000);
        t.set("PROCLUS", 100.0);
        t.set("GPU-PROCLUS", 0.5);
        t.add_row(2000);
        t.set("PROCLUS", 200.0);
        t
    }

    #[test]
    fn get_returns_set_values_and_none_for_gaps() {
        let t = sample();
        assert_eq!(t.get(0, "PROCLUS"), Some(100.0));
        assert_eq!(t.get(1, "GPU-PROCLUS"), None);
        assert_eq!(t.get(0, "nope"), None);
    }

    #[test]
    fn speedup_column_divides_base_by_target() {
        let mut t = sample();
        t.add_speedup_column("PROCLUS", "GPU-PROCLUS");
        assert_eq!(t.get(0, "GPU-PROCLUS speedup"), Some(200.0));
        assert_eq!(t.get(1, "GPU-PROCLUS speedup"), None);
    }

    #[test]
    fn render_contains_all_cells() {
        let s = sample().render("ms");
        assert!(s.contains("test_fig"));
        assert!(s.contains("100.0"));
        assert!(s.contains('-'));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join(format!("proclus-bench-{}", std::process::id()));
        let t = sample();
        t.write_csv(dir.to_str().unwrap()).unwrap();
        let content = std::fs::read_to_string(dir.join("test_fig.csv")).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "n,PROCLUS,GPU-PROCLUS");
        assert!(lines[2].ends_with(','), "missing value renders empty");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn set_unknown_column_panics() {
        let mut t = sample();
        t.set("nope", 1.0);
    }
}
