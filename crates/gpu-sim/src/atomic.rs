//! Scalar element types and word-level atomic primitives.
//!
//! All device memory (global buffers and block-shared memory) is stored as
//! 64-bit words. Every element type converts losslessly to and from a word,
//! which lets plain loads/stores be relaxed atomic word accesses (no UB under
//! concurrent block execution) and lets the float atomics be implemented as
//! compare-and-swap loops — precisely how `atomicAdd(float*)`-style
//! operations behave on hardware that lacks a native instruction for them.

use std::sync::atomic::{AtomicU64, Ordering};

/// An element type storable in simulated device memory.
///
/// `BYTES` is the *logical* size used for memory accounting and bandwidth
/// modeling (an `f32` costs 4 bytes of traffic even though the simulator
/// physically stores it in a 64-bit word).
pub trait Scalar: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// Logical size in bytes (what the performance model charges).
    const BYTES: usize;
    /// The additive identity, used by `alloc_zeroed` and `memset`.
    const ZERO: Self;
    /// Bit-converts the value into a storage word.
    fn to_word(self) -> u64;
    /// Recovers the value from a storage word.
    fn from_word(w: u64) -> Self;
}

/// A [`Scalar`] with the arithmetic needed by atomic read-modify-write ops.
pub trait AtomicNum: Scalar {
    /// Saturating-free addition (wrapping for integers, IEEE for floats).
    fn add(self, rhs: Self) -> Self;
    /// Minimum of two values.
    fn min_v(self, rhs: Self) -> Self;
    /// Maximum of two values.
    fn max_v(self, rhs: Self) -> Self;
}

macro_rules! impl_scalar_float {
    ($t:ty, $bits:ty, $bytes:expr) => {
        impl Scalar for $t {
            const BYTES: usize = $bytes;
            const ZERO: Self = 0.0;
            #[inline(always)]
            fn to_word(self) -> u64 {
                self.to_bits() as u64
            }
            #[inline(always)]
            fn from_word(w: u64) -> Self {
                <$t>::from_bits(w as $bits)
            }
        }
        impl AtomicNum for $t {
            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                self + rhs
            }
            #[inline(always)]
            fn min_v(self, rhs: Self) -> Self {
                self.min(rhs)
            }
            #[inline(always)]
            fn max_v(self, rhs: Self) -> Self {
                self.max(rhs)
            }
        }
    };
}

macro_rules! impl_scalar_int {
    ($t:ty, $bytes:expr) => {
        impl Scalar for $t {
            const BYTES: usize = $bytes;
            const ZERO: Self = 0;
            #[inline(always)]
            fn to_word(self) -> u64 {
                self as u64
            }
            #[inline(always)]
            fn from_word(w: u64) -> Self {
                w as $t
            }
        }
        impl AtomicNum for $t {
            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                self.wrapping_add(rhs)
            }
            #[inline(always)]
            fn min_v(self, rhs: Self) -> Self {
                std::cmp::min(self, rhs)
            }
            #[inline(always)]
            fn max_v(self, rhs: Self) -> Self {
                std::cmp::max(self, rhs)
            }
        }
    };
}

impl_scalar_float!(f32, u32, 4);
impl_scalar_float!(f64, u64, 8);
impl_scalar_int!(u32, 4);
impl_scalar_int!(i32, 4);
impl_scalar_int!(u64, 8);
impl_scalar_int!(i64, 8);

/// Relaxed word load.
#[inline(always)]
pub(crate) fn word_load<T: Scalar>(w: &AtomicU64) -> T {
    T::from_word(w.load(Ordering::Relaxed))
}

/// Relaxed word store.
#[inline(always)]
pub(crate) fn word_store<T: Scalar>(w: &AtomicU64, v: T) {
    w.store(v.to_word(), Ordering::Relaxed);
}

/// CAS-loop read-modify-write, returning the previous value — the shape of
/// every CUDA atomic. `f` must be pure.
#[inline(always)]
pub(crate) fn word_rmw<T: Scalar>(w: &AtomicU64, f: impl Fn(T) -> T) -> T {
    let mut cur = w.load(Ordering::Relaxed);
    loop {
        let old = T::from_word(cur);
        let new = f(old).to_word();
        match w.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return old,
            Err(actual) => cur = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn float_word_roundtrip_preserves_bits() {
        for v in [0.0f32, -0.0, 1.5, f32::INFINITY, f32::MIN_POSITIVE] {
            assert_eq!(f32::from_word(v.to_word()).to_bits(), v.to_bits());
        }
        for v in [0.0f64, -1.25e300, f64::NEG_INFINITY] {
            assert_eq!(f64::from_word(v.to_word()).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn int_word_roundtrip_preserves_value() {
        assert_eq!(i32::from_word((-7i32).to_word()), -7);
        assert_eq!(u32::from_word(u32::MAX.to_word()), u32::MAX);
        assert_eq!(i64::from_word((-7i64).to_word()), -7);
    }

    #[test]
    fn rmw_returns_previous_value() {
        let w = AtomicU64::new(5u64.to_word());
        let prev: u64 = word_rmw(&w, |x: u64| x + 3);
        assert_eq!(prev, 5);
        assert_eq!(word_load::<u64>(&w), 8);
    }

    #[test]
    fn concurrent_float_adds_do_not_lose_updates() {
        let w = AtomicU64::new(0f64.to_word());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        word_rmw(&w, |x: f64| x + 1.0);
                    }
                });
            }
        });
        assert_eq!(word_load::<f64>(&w), 8000.0);
    }
}
