//! Error type for device operations.

use std::fmt;

/// Result alias for fallible device operations.
pub type Result<T> = std::result::Result<T, GpuError>;

/// Errors raised by the simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// An allocation would exceed the device's global memory capacity.
    ///
    /// This mirrors `cudaErrorMemoryAllocation`; the paper runs into exactly
    /// this limit at 8 M points on a 6 GB card (§5.3).
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// Bytes still available on the device.
        available: usize,
        /// Label of the allocation that failed.
        label: String,
    },
    /// A launch was configured with more threads per block than the device
    /// supports, or with a zero-sized grid/block.
    InvalidLaunch {
        /// Human-readable description of the invalid configuration.
        reason: String,
    },
    /// A buffer was freed twice or used after being freed.
    InvalidBuffer {
        /// Label of the offending buffer.
        label: String,
    },
    /// The kernel sanitizer detected a race or uninitialized read (see
    /// [`crate::sanitizer`]).
    Hazard {
        /// Kernel in which the hazard occurred.
        kernel: String,
        /// Buffer label (or `shared#N` for block-shared memory).
        buffer: String,
        /// Element index within the allocation.
        index: usize,
        /// Human-readable description of the conflicting accesses.
        threads: String,
    },
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfMemory {
                requested,
                available,
                label,
            } => write!(
                f,
                "device out of memory allocating `{label}`: requested {requested} B, \
                 {available} B available"
            ),
            GpuError::InvalidLaunch { reason } => write!(f, "invalid kernel launch: {reason}"),
            GpuError::InvalidBuffer { label } => write!(f, "invalid buffer `{label}`"),
            GpuError::Hazard {
                kernel,
                buffer,
                index,
                threads,
            } => write!(
                f,
                "sanitizer hazard in kernel `{kernel}` on `{buffer}`[{index}]: {threads}"
            ),
        }
    }
}

impl std::error::Error for GpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_label_and_sizes() {
        let e = GpuError::OutOfMemory {
            requested: 100,
            available: 10,
            label: "dist".into(),
        };
        let s = e.to_string();
        assert!(s.contains("dist") && s.contains("100") && s.contains("10"));
    }
}
