//! Kernel execution timeline: per-launch records with start/end times and
//! stream lanes, a text Gantt renderer, and Chrome-trace (`chrome://tracing`
//! / Perfetto) JSON export.
//!
//! Tracing is off by default (a long PROCLUS run launches hundreds of
//! kernels); enable it with [`crate::Device::set_tracing`]. Each record
//! captures the *modeled* device interval the launch occupied, so the
//! timeline shows exactly what the performance model believes happened —
//! including stream overlap.

use std::fmt::Write as _;

/// One traced device operation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Kernel name (or `htod`/`dtoh`/`memset` for transfers).
    pub name: String,
    /// Modeled start time, µs since device creation.
    pub start_us: f64,
    /// Modeled end time, µs.
    pub end_us: f64,
    /// Stream lane: 0 = default stream, `s + 1` = async stream `s`.
    pub lane: usize,
}

impl TraceEvent {
    /// Duration in microseconds.
    pub fn duration_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// The recorded timeline.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    pub(crate) fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    pub(crate) fn record(&mut self, name: &str, start_us: f64, end_us: f64, lane: usize) {
        if self.enabled {
            self.events.push(TraceEvent {
                name: name.to_string(),
                start_us,
                end_us,
                lane,
            });
        }
    }

    /// All recorded events, in issue order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Drops all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Renders a text Gantt chart of the last `max_events` events, `width`
    /// characters wide. Each row is one event; the bar spans its modeled
    /// interval within the rendered window. Lanes are tagged `[dN]` for the
    /// default stream and `[sN]` for async streams.
    pub fn render_gantt(&self, max_events: usize, width: usize) -> String {
        let events: &[TraceEvent] = if self.events.len() > max_events {
            &self.events[self.events.len() - max_events..]
        } else {
            &self.events
        };
        if events.is_empty() {
            return "(no trace events; call Device::set_tracing(true))\n".to_string();
        }
        let t0 = events
            .iter()
            .map(|e| e.start_us)
            .fold(f64::INFINITY, f64::min);
        let t1 = events.iter().map(|e| e.end_us).fold(0.0f64, f64::max);
        let span = (t1 - t0).max(1e-9);
        let width = width.max(20);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "timeline: {:.1} us .. {:.1} us ({} events)",
            t0,
            t1,
            events.len()
        );
        for e in events {
            let b = (((e.start_us - t0) / span) * width as f64).floor() as usize;
            let e_end = (((e.end_us - t0) / span) * width as f64).ceil() as usize;
            let e_end = e_end.clamp(b + 1, width);
            let mut bar = vec![b' '; width];
            for c in bar.iter_mut().take(e_end).skip(b) {
                *c = b'#';
            }
            let lane = if e.lane == 0 {
                "[d]".to_string()
            } else {
                format!("[s{}]", e.lane - 1)
            };
            let _ = writeln!(
                out,
                "{:<26} {:>4} |{}| {:>9.1} us",
                truncate(&e.name, 26),
                lane,
                String::from_utf8_lossy(&bar),
                e.duration_us()
            );
        }
        out
    }

    /// Exports the timeline as Chrome-trace JSON (open in
    /// `chrome://tracing` or Perfetto). Stream lanes map to thread ids.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
                json_escape(&e.name),
                e.start_us,
                e.duration_us(),
                e.lane
            );
        }
        out.push(']');
        out
    }

    /// Total busy time per lane (µs), lane 0 first.
    pub fn lane_busy_us(&self) -> Vec<(usize, f64)> {
        let mut lanes: std::collections::BTreeMap<usize, f64> = Default::default();
        for e in &self.events {
            *lanes.entry(e.lane).or_insert(0.0) += e.duration_us();
        }
        lanes.into_iter().collect()
    }
}

/// First `n` *characters* of `s` — slicing by byte count would panic on a
/// multi-byte UTF-8 boundary.
fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

/// Escapes `s` for use inside a JSON string literal (RFC 8259 §7).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Device, DeviceConfig, Dim3};

    fn traced_device() -> Device {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.set_tracing(true);
        dev
    }

    #[test]
    fn disabled_by_default_records_nothing() {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let b = dev.alloc_zeroed::<u32>("b", 8).unwrap();
        dev.launch("k", Dim3::x(1), Dim3::x(8), |blk| {
            blk.threads(|t| b.st(t, t.tid as usize, 1));
        });
        assert!(dev.trace().events().is_empty());
    }

    #[test]
    fn launches_record_contiguous_default_lane_intervals() {
        let mut dev = traced_device();
        let b = dev.alloc_zeroed::<u32>("b", 8).unwrap();
        for _ in 0..3 {
            dev.launch("k", Dim3::x(1), Dim3::x(8), |blk| {
                blk.threads(|t| b.st(t, t.tid as usize, 1));
            });
        }
        let kernel_events: Vec<_> = dev
            .trace()
            .events()
            .iter()
            .filter(|e| e.name == "k")
            .cloned()
            .collect();
        assert_eq!(kernel_events.len(), 3);
        for w in kernel_events.windows(2) {
            assert!(
                w[0].end_us <= w[1].start_us + 1e-9,
                "default lane is serial"
            );
        }
        assert!(kernel_events.iter().all(|e| e.lane == 0));
    }

    #[test]
    fn stream_launches_land_on_their_own_lanes_and_overlap() {
        let mut dev = traced_device();
        let b = dev.alloc_zeroed::<f32>("b", 256).unwrap();
        let s1 = dev.create_stream();
        let s2 = dev.create_stream();
        for s in [s1, s2] {
            let bb = b.clone();
            dev.launch_on(s, "w", Dim3::x(2), Dim3::x(128), move |blk| {
                blk.threads(|t| {
                    t.flops(100_000);
                    bb.st(t, t.tid as usize, 1.0);
                });
            });
        }
        dev.sync_streams();
        let ev: Vec<_> = dev
            .trace()
            .events()
            .iter()
            .filter(|e| e.name == "w")
            .cloned()
            .collect();
        assert_eq!(ev.len(), 2);
        assert_ne!(ev[0].lane, ev[1].lane);
        // The intervals overlap in modeled time.
        assert!(ev[0].start_us < ev[1].end_us && ev[1].start_us < ev[0].end_us);
    }

    #[test]
    fn gantt_renders_every_event_with_bars() {
        let mut dev = traced_device();
        let b = dev.alloc_zeroed::<u32>("b", 8).unwrap();
        dev.launch("alpha", Dim3::x(1), Dim3::x(8), |blk| {
            blk.threads(|t| b.st(t, t.tid as usize, 1));
        });
        dev.launch("beta", Dim3::x(1), Dim3::x(8), |blk| {
            blk.threads(|t| b.st(t, t.tid as usize, 2));
        });
        let g = dev.trace().render_gantt(10, 40);
        assert!(g.contains("alpha") && g.contains("beta"));
        assert!(g.contains('#'));
    }

    #[test]
    fn chrome_trace_is_valid_jsonish() {
        let mut dev = traced_device();
        let b = dev.alloc_zeroed::<u32>("b", 8).unwrap();
        dev.launch("k1", Dim3::x(1), Dim3::x(8), |blk| {
            blk.threads(|t| b.st(t, t.tid as usize, 1));
        });
        let json = dev.trace().to_chrome_trace();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"k1\""));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn transfers_are_traced_too() {
        let mut dev = traced_device();
        let b = dev.htod("x", &[1.0f32; 100]).unwrap();
        let _ = dev.dtoh(&b);
        let names: Vec<&str> = dev
            .trace()
            .events()
            .iter()
            .map(|e| e.name.as_str())
            .collect();
        assert!(names.contains(&"htod:x"));
        assert!(names.iter().any(|n| n.starts_with("dtoh")));
    }

    #[test]
    fn gantt_truncates_multibyte_names_on_char_boundaries() {
        // Regression: `&s[..26]` panicked when byte 26 fell inside a
        // multi-byte character. `µ` is 2 bytes, so 26 of them straddle
        // every even byte index.
        let mut t = Trace::default();
        t.set_enabled(true);
        t.record(&"µ".repeat(40), 0.0, 5.0, 0);
        t.record("find_dims.z_σ²_und_mehr_αβγδεζη", 5.0, 9.0, 0);
        let g = t.render_gantt(10, 40);
        assert!(g.contains(&"µ".repeat(26)));
        assert!(!g.contains(&"µ".repeat(27)));
    }

    #[test]
    fn truncate_counts_chars_not_bytes() {
        assert_eq!(truncate("abcdef", 4), "abcd");
        assert_eq!(truncate("abc", 4), "abc");
        assert_eq!(truncate("ααββ", 2), "αα");
        assert_eq!(truncate("", 0), "");
    }

    /// Minimal JSON reader for the test below (no serde_json in-tree):
    /// validates the exact shape `to_chrome_trace` emits — an array of flat
    /// objects with string and number values — and returns each object's
    /// decoded `name`.
    fn parse_chrome_trace(json: &str) -> Result<Vec<String>, String> {
        let mut chars = json.chars().peekable();
        let mut names = Vec::new();
        let expect =
            |chars: &mut std::iter::Peekable<std::str::Chars<'_>>, want: char| match chars.next() {
                Some(c) if c == want => Ok(()),
                other => Err(format!("expected {want:?}, got {other:?}")),
            };
        let parse_string =
            |chars: &mut std::iter::Peekable<std::str::Chars<'_>>| -> Result<String, String> {
                expect(chars, '"')?;
                let mut s = String::new();
                loop {
                    match chars.next().ok_or("eof in string")? {
                        '"' => return Ok(s),
                        '\\' => match chars.next().ok_or("eof after backslash")? {
                            '"' => s.push('"'),
                            '\\' => s.push('\\'),
                            'n' => s.push('\n'),
                            'r' => s.push('\r'),
                            't' => s.push('\t'),
                            'u' => {
                                let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                                let v = u32::from_str_radix(&hex, 16)
                                    .map_err(|e| format!("bad \\u{hex}: {e}"))?;
                                s.push(char::from_u32(v).ok_or("bad codepoint")?);
                            }
                            c => return Err(format!("bad escape \\{c}")),
                        },
                        c if (c as u32) < 0x20 => {
                            return Err(format!("raw control char {:#04x}", c as u32))
                        }
                        c => s.push(c),
                    }
                }
            };
        expect(&mut chars, '[')?;
        if chars.peek() == Some(&']') {
            return Ok(names);
        }
        loop {
            expect(&mut chars, '{')?;
            loop {
                let key = parse_string(&mut chars)?;
                expect(&mut chars, ':')?;
                if chars.peek() == Some(&'"') {
                    let val = parse_string(&mut chars)?;
                    if key == "name" {
                        names.push(val);
                    }
                } else {
                    // number
                    let mut any = false;
                    while matches!(chars.peek(), Some(c) if c.is_ascii_digit() || "+-.eE".contains(*c))
                    {
                        chars.next();
                        any = true;
                    }
                    if !any {
                        return Err(format!("expected a value after {key:?}"));
                    }
                }
                match chars.next() {
                    Some(',') => continue,
                    Some('}') => break,
                    other => return Err(format!("expected , or }} got {other:?}")),
                }
            }
            match chars.next() {
                Some(',') => continue,
                Some(']') => break,
                other => return Err(format!("expected , or ] got {other:?}")),
            }
        }
        match chars.next() {
            None => Ok(names),
            Some(c) => Err(format!("trailing {c:?}")),
        }
    }

    #[test]
    fn chrome_trace_escapes_special_characters() {
        // Regression: quotes used to be mangled into apostrophes and
        // backslashes / control characters passed through unescaped,
        // producing invalid JSON.
        let mut t = Trace::default();
        t.set_enabled(true);
        let evil = "k\"quoted\" \\slash\nnewline\ttab\u{1}ctl";
        t.record(evil, 0.0, 1.0, 0);
        t.record("plain", 1.0, 2.0, 1);
        let json = t.to_chrome_trace();
        let names = parse_chrome_trace(&json).expect("output must be valid JSON");
        // Round-trips losslessly: the decoded name equals the original.
        assert_eq!(names, vec![evil.to_string(), "plain".to_string()]);
    }

    #[test]
    fn empty_chrome_trace_parses() {
        let t = Trace::default();
        assert_eq!(parse_chrome_trace(&t.to_chrome_trace()).unwrap().len(), 0);
    }

    #[test]
    fn lane_busy_sums_durations() {
        let mut t = Trace::default();
        t.set_enabled(true);
        t.record("a", 0.0, 5.0, 0);
        t.record("b", 5.0, 7.0, 0);
        t.record("c", 0.0, 3.0, 1);
        let busy = t.lane_busy_us();
        assert_eq!(busy, vec![(0, 7.0), (1, 3.0)]);
    }
}
