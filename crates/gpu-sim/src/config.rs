//! Device descriptions: the hardware parameters the performance model uses.

/// Static description of a simulated device.
///
/// The presets correspond to the two cards used in the paper's evaluation
/// (GTX 1660 Ti for the real-world experiments, RTX 3090 for the large
/// synthetic ones); numbers are taken from NVIDIA's published specifications.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Marketing name, used in reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// FP32 lanes ("CUDA cores") per SM.
    pub cores_per_sm: u32,
    /// Threads per warp (32 on every NVIDIA architecture to date).
    pub warp_size: u32,
    /// Hardware limit on threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident threads per SM (occupancy limit).
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM (occupancy limit).
    pub max_blocks_per_sm: u32,
    /// Shared memory per SM in bytes (occupancy limit).
    pub shared_mem_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Peak global-memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Resident warps per SM needed to reach peak memory bandwidth.
    ///
    /// Below this the model scales bandwidth down linearly — the standard
    /// "little's law" approximation for latency-bound kernels.
    pub warps_to_saturate_mem: u32,
    /// DRAM traffic amplification for *strided* loads (see
    /// [`crate::WorkCounters::strided_bytes`]): each element of a strided
    /// access pulls a whole memory sector of which only `1/penalty` is
    /// useful. GDDR6 moves 32-byte sectors, so an uncoalesced 4-byte load
    /// wastes 8× — the factor the presets use. Must be ≥ 1; `1.0` turns the
    /// tiling term off.
    pub strided_mem_penalty: f64,
    /// Effective cost of one global atomic in nanoseconds (device-wide
    /// serialization budget; same-address contention is *not* modeled).
    pub global_atomic_ns: f64,
    /// Effective cost of one shared-memory atomic in nanoseconds per SM.
    pub shared_atomic_ns: f64,
    /// Fixed host-side cost of launching a kernel, in microseconds.
    pub kernel_launch_us: f64,
    /// PCIe (or NVLink) transfer bandwidth in GB/s.
    pub pcie_bandwidth_gbps: f64,
    /// Fixed per-transfer latency in microseconds.
    pub pcie_latency_us: f64,
    /// Global memory capacity in bytes available to allocations.
    pub global_mem_bytes: usize,
}

impl DeviceConfig {
    /// GeForce GTX 1660 Ti (Turing TU116): 24 SMs × 64 cores, 6 GB GDDR6.
    ///
    /// The paper reports ~4.2 GB of the 6 GB actually free for allocations;
    /// use [`DeviceConfig::with_memory_limit`] to reproduce that.
    pub fn gtx_1660_ti() -> Self {
        Self {
            name: "GeForce GTX 1660 Ti (simulated)".into(),
            num_sms: 24,
            cores_per_sm: 64,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 16,
            shared_mem_per_sm: 64 * 1024,
            clock_ghz: 1.77,
            mem_bandwidth_gbps: 288.0,
            warps_to_saturate_mem: 8,
            strided_mem_penalty: 8.0,
            global_atomic_ns: 0.4,
            shared_atomic_ns: 0.06,
            kernel_launch_us: 4.0,
            pcie_bandwidth_gbps: 12.0,
            pcie_latency_us: 10.0,
            global_mem_bytes: 6 * 1024 * 1024 * 1024,
        }
    }

    /// GeForce RTX 3090 (Ampere GA102): 82 SMs × 128 FP32 lanes, 24 GB GDDR6X.
    pub fn rtx_3090() -> Self {
        Self {
            name: "GeForce RTX 3090 (simulated)".into(),
            num_sms: 82,
            cores_per_sm: 128,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 16,
            shared_mem_per_sm: 100 * 1024,
            clock_ghz: 1.70,
            mem_bandwidth_gbps: 936.0,
            warps_to_saturate_mem: 10,
            strided_mem_penalty: 8.0,
            global_atomic_ns: 0.25,
            shared_atomic_ns: 0.05,
            kernel_launch_us: 3.5,
            pcie_bandwidth_gbps: 24.0,
            pcie_latency_us: 8.0,
            global_mem_bytes: 24 * 1024 * 1024 * 1024,
        }
    }

    /// A deliberately tiny device, useful in tests that want to hit the
    /// out-of-memory and low-occupancy paths quickly.
    pub fn tiny_test_device() -> Self {
        Self {
            name: "tiny-test-device".into(),
            num_sms: 2,
            cores_per_sm: 8,
            warp_size: 32,
            max_threads_per_block: 256,
            max_threads_per_sm: 512,
            max_blocks_per_sm: 4,
            shared_mem_per_sm: 16 * 1024,
            clock_ghz: 1.0,
            mem_bandwidth_gbps: 10.0,
            warps_to_saturate_mem: 4,
            strided_mem_penalty: 4.0,
            global_atomic_ns: 1.0,
            shared_atomic_ns: 0.2,
            kernel_launch_us: 2.0,
            pcie_bandwidth_gbps: 4.0,
            pcie_latency_us: 5.0,
            global_mem_bytes: 1024 * 1024,
        }
    }

    /// Returns a copy with the global-memory capacity replaced by `bytes`.
    pub fn with_memory_limit(mut self, bytes: usize) -> Self {
        self.global_mem_bytes = bytes;
        self
    }

    /// Total FP32 lanes on the device.
    #[inline]
    pub fn total_cores(&self) -> u64 {
        self.num_sms as u64 * self.cores_per_sm as u64
    }

    /// Maximum resident warps per SM.
    #[inline]
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_self_consistent() {
        for cfg in [
            DeviceConfig::gtx_1660_ti(),
            DeviceConfig::rtx_3090(),
            DeviceConfig::tiny_test_device(),
        ] {
            assert!(cfg.num_sms > 0);
            assert!(cfg.warp_size > 0);
            assert!(cfg.max_threads_per_block <= cfg.max_threads_per_sm);
            assert!(cfg.max_warps_per_sm() >= 1);
            assert!(cfg.clock_ghz > 0.0 && cfg.mem_bandwidth_gbps > 0.0);
            assert!(cfg.strided_mem_penalty >= 1.0);
        }
    }

    #[test]
    fn gtx_1660_ti_core_count_matches_spec() {
        assert_eq!(DeviceConfig::gtx_1660_ti().total_cores(), 1536);
    }

    #[test]
    fn memory_limit_override() {
        let cfg = DeviceConfig::gtx_1660_ti().with_memory_limit(4_200_000_000);
        assert_eq!(cfg.global_mem_bytes, 4_200_000_000);
    }
}
