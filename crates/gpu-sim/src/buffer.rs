//! Global device memory: typed, atomically-accessible buffers.

use std::marker::PhantomData;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use crate::atomic::{word_load, word_rmw, word_store, AtomicNum, Scalar};
use crate::kernel::ThreadCtx;
use crate::sanitizer::AccessKind;

/// Word pattern backing [`crate::Device::alloc_uninit`] allocations: a
/// recognizable non-zero sentinel, so code that wrongly consumes
/// uninitialized memory misbehaves visibly instead of reading convenient
/// zeros (real `cudaMalloc` memory is garbage).
pub(crate) const UNINIT_WORD: u64 = 0xA5A5_A5A5_A5A5_A5A5;

pub(crate) struct BufInner {
    pub(crate) words: Box<[AtomicU64]>,
    pub(crate) label: String,
    pub(crate) pool_id: u64,
    /// One bit per element, set once the element has been written; present
    /// only for [`crate::Device::alloc_uninit`] allocations. `None` means
    /// the whole buffer was initialized at allocation time, so the common
    /// path pays nothing for init tracking.
    init: Option<Box<[AtomicU64]>>,
}

impl BufInner {
    /// True if element `i` (absolute index) has ever been initialized.
    #[inline]
    pub(crate) fn is_init(&self, i: usize) -> bool {
        match &self.init {
            None => true,
            Some(bits) => {
                bits[i / 64].load(std::sync::atomic::Ordering::Relaxed) & (1u64 << (i % 64)) != 0
            }
        }
    }

    /// Marks element `i` (absolute index) initialized.
    #[inline]
    fn mark_init(&self, i: usize) {
        if let Some(bits) = &self.init {
            bits[i / 64].fetch_or(1u64 << (i % 64), std::sync::atomic::Ordering::Relaxed);
        }
    }
}

/// A typed allocation in simulated device global memory.
///
/// Cloning is cheap (an `Arc` bump) so buffers can be captured by kernel
/// closures freely. All device-side accesses go through a [`ThreadCtx`] so
/// the performance model can count traffic; host-side access happens through
/// [`crate::Device::htod`] / [`crate::Device::dtoh`], which charge PCIe
/// transfer time.
///
/// Atomic operations have CUDA semantics: they return the *previous* value
/// and are implemented as CAS loops on the underlying word, so concurrent
/// updates from different blocks are never lost.
#[derive(Clone)]
pub struct DeviceBuffer<T: Scalar> {
    pub(crate) inner: Arc<BufInner>,
    pub(crate) offset: usize,
    pub(crate) len: usize,
    pub(crate) view: bool,
    pub(crate) _marker: PhantomData<T>,
}

impl<T: Scalar> DeviceBuffer<T> {
    pub(crate) fn new_zeroed(label: &str, len: usize, pool_id: u64) -> Self {
        let words: Box<[AtomicU64]> = (0..len)
            .map(|_| AtomicU64::new(T::ZERO.to_word()))
            .collect();
        Self {
            inner: Arc::new(BufInner {
                words,
                label: label.to_string(),
                pool_id,
                init: None,
            }),
            offset: 0,
            len,
            view: false,
            _marker: PhantomData,
        }
    }

    /// A `cudaMalloc` analogue: contents are a garbage sentinel and every
    /// element is tracked as uninitialized until first written (by a device
    /// store, an atomic, or a host-side transfer/memset).
    pub(crate) fn new_uninit(label: &str, len: usize, pool_id: u64) -> Self {
        let words: Box<[AtomicU64]> = (0..len).map(|_| AtomicU64::new(UNINIT_WORD)).collect();
        let init = (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(BufInner {
                words,
                label: label.to_string(),
                pool_id,
                init: Some(init),
            }),
            offset: 0,
            len,
            view: false,
            _marker: PhantomData,
        }
    }

    /// A zero-copy sub-range view (pointer arithmetic into the same
    /// allocation): lets algorithms bump-allocate many rows out of one
    /// up-front slab instead of paying per-row `cudaMalloc` latency (§4.1).
    /// Views cannot be freed — free the parent allocation.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len` exceeds this buffer.
    pub fn slice(&self, offset: usize, len: usize) -> Self {
        assert!(
            offset + len <= self.len,
            "slice {offset}+{len} out of `{}` of {}",
            self.inner.label,
            self.len
        );
        Self {
            inner: Arc::clone(&self.inner),
            offset: self.offset + offset,
            len,
            view: true,
            _marker: PhantomData,
        }
    }

    /// True if this handle is a sub-range view of another allocation.
    pub fn is_view(&self) -> bool {
        self.view
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The label given at allocation time.
    pub fn label(&self) -> &str {
        &self.inner.label
    }

    /// Logical size in bytes (what the pool accounts).
    pub fn bytes(&self) -> usize {
        self.len() * T::BYTES
    }

    #[inline(always)]
    fn word(&self, i: usize) -> &AtomicU64 {
        debug_assert!(i < self.len);
        &self.inner.words[self.offset + i]
    }

    /// Device-side load of element `i` (counts one global load).
    #[inline(always)]
    pub fn ld(&self, t: &mut ThreadCtx<'_>, i: usize) -> T {
        t.count_global_load(T::BYTES);
        t.san_global(&self.inner, self.offset + i, AccessKind::Read);
        word_load(self.word(i))
    }

    /// Device-side load of element `i` through a *strided* access pattern:
    /// same value as [`Self::ld`], but the performance model additionally
    /// books the bytes as [`crate::WorkCounters::strided_bytes`], which the
    /// memory roofline amplifies by the device's
    /// [`crate::DeviceConfig::strided_mem_penalty`]. Use this in kernels
    /// whose warps touch addresses a row apart (untiled row-major sweeps);
    /// keep plain `ld` for coalesced or shared-memory-staged (tiled)
    /// access. Results are identical either way — only modeled time moves.
    #[inline(always)]
    pub fn ld_strided(&self, t: &mut ThreadCtx<'_>, i: usize) -> T {
        t.count_global_load_strided(T::BYTES);
        t.san_global(&self.inner, self.offset + i, AccessKind::Read);
        word_load(self.word(i))
    }

    /// Device-side store to element `i` (counts one global store).
    #[inline(always)]
    pub fn st(&self, t: &mut ThreadCtx<'_>, i: usize, v: T) {
        t.count_global_store(T::BYTES);
        t.san_global(&self.inner, self.offset + i, AccessKind::Write);
        self.inner.mark_init(self.offset + i);
        word_store(self.word(i), v);
    }

    /// Host-side read without transfer accounting. Intended for the device's
    /// own transfer routines and for test assertions.
    #[inline]
    pub fn peek(&self, i: usize) -> T {
        word_load(self.word(i))
    }

    /// Host-side write without transfer accounting (see [`Self::peek`]).
    #[inline]
    pub fn poke(&self, i: usize, v: T) {
        self.inner.mark_init(self.offset + i);
        word_store(self.word(i), v);
    }

    /// Host-side snapshot of the whole buffer without transfer accounting.
    pub fn peek_all(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.peek(i)).collect()
    }
}

impl<T: AtomicNum> DeviceBuffer<T> {
    /// `atomicAdd`: adds `v` to element `i`, returning the previous value.
    #[inline(always)]
    pub fn atomic_add(&self, t: &mut ThreadCtx<'_>, i: usize, v: T) -> T {
        t.count_global_atomic(T::BYTES);
        t.san_global(&self.inner, self.offset + i, AccessKind::Atomic);
        self.inner.mark_init(self.offset + i);
        word_rmw(self.word(i), |x: T| x.add(v))
    }

    /// `atomicMin`: lowers element `i` to `min(old, v)`, returning the old value.
    #[inline(always)]
    pub fn atomic_min(&self, t: &mut ThreadCtx<'_>, i: usize, v: T) -> T {
        t.count_global_atomic(T::BYTES);
        t.san_global(&self.inner, self.offset + i, AccessKind::Atomic);
        self.inner.mark_init(self.offset + i);
        word_rmw(self.word(i), |x: T| x.min_v(v))
    }

    /// `atomicMax`: raises element `i` to `max(old, v)`, returning the old value.
    #[inline(always)]
    pub fn atomic_max(&self, t: &mut ThreadCtx<'_>, i: usize, v: T) -> T {
        t.count_global_atomic(T::BYTES);
        t.san_global(&self.inner, self.offset + i, AccessKind::Atomic);
        self.inner.mark_init(self.offset + i);
        word_rmw(self.word(i), |x: T| x.max_v(v))
    }
}

impl DeviceBuffer<u32> {
    /// `atomicInc`-style counter bump: adds 1 to element `i` and returns the
    /// previous value — the idiom PROCLUS uses to append points into the
    /// next free slot of `L_i` / `C_i` (Alg. 3 line 11, Alg. 5 line 8).
    #[inline(always)]
    pub fn atomic_inc(&self, t: &mut ThreadCtx<'_>, i: usize) -> u32 {
        self.atomic_add(t, i, 1)
    }

    /// `atomicCAS` on a `u32` element; returns the previous value. Used to
    /// claim a slot exactly once (e.g. the argmax claim in Greedy, Alg. 2
    /// line 8, where several points may tie on `maxDist`).
    #[inline(always)]
    pub fn atomic_cas(&self, t: &mut ThreadCtx<'_>, i: usize, expected: u32, new: u32) -> u32 {
        t.count_global_atomic(4);
        t.san_global(&self.inner, self.offset + i, AccessKind::Atomic);
        self.inner.mark_init(self.offset + i);
        word_rmw(self.word(i), |x: u32| if x == expected { new } else { x })
    }
}

impl<T: Scalar> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("label", &self.inner.label)
            .field("len", &self.len())
            .field("bytes", &self.bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {

    use crate::{Device, DeviceConfig, Dim3};

    fn device() -> Device {
        Device::new(DeviceConfig::gtx_1660_ti())
    }

    #[test]
    fn zeroed_on_allocation() {
        let mut dev = device();
        let b = dev.alloc_zeroed::<f32>("b", 16).unwrap();
        assert!(b.peek_all().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ld_st_roundtrip_and_counting() {
        let mut dev = device();
        let b = dev.alloc_zeroed::<f64>("b", 8).unwrap();
        dev.launch("rw", Dim3::x(1), Dim3::x(8), |blk| {
            blk.threads(|t| {
                let i = t.tid as usize;
                b.st(t, i, i as f64 * 1.5);
                let v = b.ld(t, i);
                b.st(t, i, v + 1.0);
            });
        });
        assert_eq!(b.peek(4), 7.0);
        let rep = dev.report();
        let agg = &rep.kernels["rw"];
        assert_eq!(agg.work.global_loads, 8);
        assert_eq!(agg.work.global_stores, 16);
        assert_eq!(agg.work.bytes_loaded, 64);
    }

    #[test]
    fn atomic_add_from_many_blocks_is_exact() {
        let mut dev = device();
        let acc = dev.alloc_zeroed::<u64>("acc", 1).unwrap();
        dev.launch("add", Dim3::x(64), Dim3::x(128), |blk| {
            blk.threads(|t| {
                acc.atomic_add(t, 0, 1u64);
            });
        });
        assert_eq!(acc.peek(0), 64 * 128);
    }

    #[test]
    fn atomic_min_max_float() {
        let mut dev = device();
        let m = dev.alloc::<f32>("m", 2, f32::INFINITY).unwrap();
        m.poke(1, f32::NEG_INFINITY);
        dev.launch("minmax", Dim3::x(4), Dim3::x(32), |blk| {
            blk.threads(|t| {
                let v = (t.global_id_x() as f32) - 10.0;
                m.atomic_min(t, 0, v);
                m.atomic_max(t, 1, v);
            });
        });
        assert_eq!(m.peek(0), -10.0);
        assert_eq!(m.peek(1), 4.0 * 32.0 - 1.0 - 10.0);
    }

    #[test]
    fn atomic_inc_allocates_unique_slots() {
        let mut dev = device();
        let count = dev.alloc_zeroed::<u32>("count", 1).unwrap();
        let slots = dev.alloc_zeroed::<u32>("slots", 256).unwrap();
        dev.launch("claim", Dim3::x(8), Dim3::x(32), |blk| {
            blk.threads(|t| {
                let pos = count.atomic_inc(t, 0) as usize;
                slots.st(t, pos, t.global_id_x() as u32 + 1);
            });
        });
        assert_eq!(count.peek(0), 256);
        let mut got = slots.peek_all();
        got.sort_unstable();
        let want: Vec<u32> = (1..=256).collect();
        assert_eq!(got, want, "every thread claimed exactly one distinct slot");
    }

    #[test]
    fn views_share_storage_with_parent() {
        let mut dev = device();
        let slab = dev.alloc_zeroed::<f32>("slab", 100).unwrap();
        let row0 = slab.slice(0, 25);
        let row2 = slab.slice(50, 25);
        row2.poke(3, 7.5);
        assert_eq!(slab.peek(53), 7.5);
        assert_eq!(row0.len(), 25);
        assert!(row2.is_view() && !slab.is_view());
        // Nested views compose offsets.
        let sub = row2.slice(2, 4);
        assert_eq!(sub.peek(1), 7.5);
    }

    #[test]
    fn views_cannot_be_freed() {
        let mut dev = device();
        let slab = dev.alloc_zeroed::<u32>("slab", 10).unwrap();
        let view = slab.slice(0, 5);
        assert!(dev.free(&view).is_err());
        assert!(dev.free(&slab).is_ok());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn oversized_view_panics() {
        let mut dev = device();
        let slab = dev.alloc_zeroed::<u32>("slab", 10).unwrap();
        let _ = slab.slice(8, 5);
    }

    #[test]
    fn device_access_through_view_counts_against_view_range() {
        let mut dev = device();
        let slab = dev.alloc_zeroed::<u64>("slab", 64).unwrap();
        let view = slab.slice(32, 32);
        dev.launch("view", Dim3::x(1), Dim3::x(32), |blk| {
            blk.threads(|t| {
                view.st(t, t.tid as usize, t.tid as u64 + 1);
            });
        });
        assert_eq!(slab.peek(32), 1);
        assert_eq!(slab.peek(63), 32);
        assert_eq!(slab.peek(0), 0);
    }

    #[test]
    fn atomic_cas_claims_once() {
        let mut dev = device();
        let flag = dev.alloc_zeroed::<u32>("flag", 1).unwrap();
        let winners = dev.alloc_zeroed::<u32>("winners", 1).unwrap();
        dev.launch("cas", Dim3::x(16), Dim3::x(64), |blk| {
            blk.threads(|t| {
                if flag.atomic_cas(t, 0, 0, 1) == 0 {
                    winners.atomic_inc(t, 0);
                }
            });
        });
        assert_eq!(winners.peek(0), 1);
    }
}
