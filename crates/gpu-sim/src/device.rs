//! The simulated device: memory management, kernel launching, clock and
//! statistics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::atomic::Scalar;
use crate::buffer::DeviceBuffer;
use crate::config::DeviceConfig;
use crate::dim::Dim3;
use crate::error::Result;
use crate::kernel::BlockCtx;
use crate::memory::MemoryPool;
use crate::perf::{self, KernelTiming};
use crate::sanitizer::{HazardFinding, LaunchSanitizer, SanitizerMode};
use crate::stats::{DeviceReport, KernelAggregate, KernelStats, WorkCounters};
use crate::trace::Trace;

/// A simulated GPU.
///
/// Owns a global-memory pool, a simulated clock, and per-kernel statistics.
/// Kernels launched through [`Device::launch`] execute functionally on host
/// threads while the device clock advances by the *modeled* kernel time
/// (see [`crate::perf`]).
pub struct Device {
    cfg: DeviceConfig,
    pool: MemoryPool,
    elapsed_us: f64,
    transfer_us: f64,
    launches: u64,
    kernels: BTreeMap<String, KernelAggregate>,
    deterministic: bool,
    host_threads: usize,
    /// Per-stream completion times for async launches (µs).
    streams: Vec<f64>,
    /// Device-seconds of work issued to streams since the last sync
    /// (throughput bound on overlap).
    stream_busy_us: f64,
    /// Clock value at the last stream sync point.
    last_sync_us: f64,
    /// Optional execution timeline (off by default).
    trace: Trace,
    /// Kernel sanitizer mode (off by default; see [`crate::sanitizer`]).
    sanitizer: SanitizerMode,
    /// Hazards accumulated across launches while the sanitizer is on.
    hazards: Vec<HazardFinding>,
    /// Findings dropped by per-launch dedup/caps (count only).
    hazards_truncated: u64,
}

/// Handle to a CUDA-style stream created with [`Device::create_stream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamId(usize);

impl Device {
    /// Creates a device with the given hardware description.
    pub fn new(cfg: DeviceConfig) -> Self {
        let host_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let pool = MemoryPool::new(cfg.global_mem_bytes);
        Self {
            cfg,
            pool,
            elapsed_us: 0.0,
            transfer_us: 0.0,
            launches: 0,
            kernels: BTreeMap::new(),
            deterministic: false,
            host_threads,
            streams: Vec::new(),
            stream_busy_us: 0.0,
            last_sync_us: 0.0,
            trace: Trace::default(),
            sanitizer: SanitizerMode::Off,
            hazards: Vec::new(),
            hazards_truncated: 0,
        }
    }

    /// The device's hardware description.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// When `true`, blocks execute sequentially in block order so that
    /// floating-point atomic reductions are bit-reproducible. Default: off
    /// (blocks run in parallel across host threads, like real hardware).
    pub fn set_deterministic(&mut self, det: bool) {
        self.deterministic = det;
    }

    /// Limits the number of host threads used for functional execution.
    pub fn set_host_threads(&mut self, n: usize) {
        self.host_threads = n.max(1);
    }

    /// Enables or disables timeline recording (see [`crate::trace`]).
    pub fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    /// Sets the kernel sanitizer mode (see [`crate::sanitizer`]).
    ///
    /// In [`SanitizerMode::Report`] detected hazards accumulate (see
    /// [`Device::hazards`]); in [`SanitizerMode::Abort`] the offending
    /// launch panics with the first finding. Expect a functional-execution
    /// slowdown of roughly 2–5× while enabled; modeled timings are
    /// unaffected.
    pub fn set_sanitizer(&mut self, mode: SanitizerMode) {
        self.sanitizer = mode;
    }

    /// The current sanitizer mode.
    pub fn sanitizer(&self) -> SanitizerMode {
        self.sanitizer
    }

    /// Hazards detected so far (empty when the sanitizer is off or all
    /// launches ran clean).
    pub fn hazards(&self) -> &[HazardFinding] {
        &self.hazards
    }

    /// Removes and returns all accumulated hazards.
    pub fn take_hazards(&mut self) -> Vec<HazardFinding> {
        self.hazards_truncated = 0;
        std::mem::take(&mut self.hazards)
    }

    /// `Ok(())` if no hazards have been detected, otherwise the first
    /// finding as a structured [`crate::GpuError::Hazard`].
    pub fn check_hazards(&self) -> Result<()> {
        match self.hazards.first() {
            None => Ok(()),
            Some(h) => Err(h.to_error()),
        }
    }

    /// The recorded execution timeline.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the timeline (e.g. to clear it between phases).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    // ---------------------------------------------------------------- memory

    /// Allocates `len` elements initialized to `init`. Each allocation
    /// charges the driver's `cudaMalloc` latency to the clock — the reason
    /// the algorithms pool all memory up front (§4.1).
    pub fn alloc<T: Scalar>(
        &mut self,
        label: &str,
        len: usize,
        init: T,
    ) -> Result<DeviceBuffer<T>> {
        let id = self.pool.alloc(label, len * T::BYTES)?;
        self.elapsed_us += self.pool.alloc_cost_us();
        let buf = DeviceBuffer::new_zeroed(label, len, id);
        if init != T::ZERO {
            for i in 0..len {
                buf.poke(i, init);
            }
        }
        Ok(buf)
    }

    /// Allocates `len` zero-initialized elements.
    pub fn alloc_zeroed<T: Scalar>(&mut self, label: &str, len: usize) -> Result<DeviceBuffer<T>> {
        self.alloc(label, len, T::ZERO)
    }

    /// Allocates `len` elements *without* initializing them — the honest
    /// `cudaMalloc` analogue. Contents are a garbage sentinel, and the
    /// sanitizer's initcheck (see [`crate::sanitizer`]) flags any device
    /// read of an element that was never stored to (by a kernel, `upload`,
    /// `memset` or `poke`).
    pub fn alloc_uninit<T: Scalar>(&mut self, label: &str, len: usize) -> Result<DeviceBuffer<T>> {
        let id = self.pool.alloc(label, len * T::BYTES)?;
        self.elapsed_us += self.pool.alloc_cost_us();
        Ok(DeviceBuffer::new_uninit(label, len, id))
    }

    /// Frees a buffer's reservation in the pool. The handle itself stays
    /// readable (the simulator is lenient where hardware would fault), but
    /// the bytes return to the pool and a second free is an error.
    pub fn free<T: Scalar>(&mut self, buf: &DeviceBuffer<T>) -> Result<()> {
        if buf.is_view() {
            return Err(crate::error::GpuError::InvalidBuffer {
                label: format!("{} (a view; free the parent allocation)", buf.label()),
            });
        }
        self.pool.free(buf.inner.pool_id)?;
        self.elapsed_us += self.pool.alloc_cost_us();
        Ok(())
    }

    /// Host→device copy: allocates and fills a buffer, charging PCIe time.
    pub fn htod<T: Scalar>(&mut self, label: &str, data: &[T]) -> Result<DeviceBuffer<T>> {
        let buf = self.alloc_zeroed::<T>(label, data.len())?;
        for (i, &v) in data.iter().enumerate() {
            buf.poke(i, v);
        }
        let t = perf::model_transfer(&self.cfg, data.len() * T::BYTES);
        self.transfer_us += t;
        let start = self.elapsed_us;
        self.elapsed_us += t;
        self.trace
            .record(&format!("htod:{label}"), start, self.elapsed_us, 0);
        Ok(buf)
    }

    /// Host→device copy into an *existing* buffer (a `cudaMemcpy` into
    /// pre-allocated memory), charging PCIe time. Panics if `data` is
    /// longer than the buffer; shorter uploads fill a prefix.
    pub fn upload<T: Scalar>(&mut self, buf: &DeviceBuffer<T>, data: &[T]) {
        assert!(
            data.len() <= buf.len(),
            "upload of {} elements into `{}` of {}",
            data.len(),
            buf.label(),
            buf.len()
        );
        for (i, &v) in data.iter().enumerate() {
            buf.poke(i, v);
        }
        let t = perf::model_transfer(&self.cfg, data.len() * T::BYTES);
        self.transfer_us += t;
        self.elapsed_us += t;
    }

    /// Device→host copy of a whole buffer, charging PCIe time.
    pub fn dtoh<T: Scalar>(&mut self, buf: &DeviceBuffer<T>) -> Vec<T> {
        let t = perf::model_transfer(&self.cfg, buf.bytes());
        self.transfer_us += t;
        let start = self.elapsed_us;
        self.elapsed_us += t;
        self.trace
            .record(&format!("dtoh:{}", buf.label()), start, self.elapsed_us, 0);
        buf.peek_all()
    }

    /// Device-side fill (a `cudaMemset` analogue): charges write bandwidth
    /// but no kernel launch.
    pub fn memset<T: Scalar>(&mut self, buf: &DeviceBuffer<T>, v: T) {
        for i in 0..buf.len() {
            buf.poke(i, v);
        }
        self.elapsed_us += buf.bytes() as f64 / (self.cfg.mem_bandwidth_gbps * 1e3);
    }

    /// Adds `us` microseconds of host-side driver time to the clock (used
    /// for modeled host work between kernels, e.g. tiny selection logic).
    pub fn charge_us(&mut self, us: f64) {
        self.elapsed_us += us;
    }

    /// Bytes currently allocated on the device.
    pub fn mem_used(&self) -> usize {
        self.pool.used()
    }

    /// Peak bytes ever allocated (Fig. 3f's metric).
    pub fn mem_peak(&self) -> usize {
        self.pool.peak()
    }

    /// Resets the peak-memory tracker to current usage.
    pub fn reset_mem_peak(&mut self) {
        self.pool.reset_peak();
    }

    /// Live allocations, largest first.
    pub fn live_allocations(&self) -> Vec<crate::memory::Allocation> {
        self.pool.live_allocations()
    }

    // ---------------------------------------------------------------- launch

    /// Launches a kernel: executes `f` once per block of `grid`, with
    /// `block.x` threads per block, then advances the simulated clock by the
    /// modeled kernel time. Returns the timing for this launch.
    ///
    /// # Panics
    ///
    /// Panics on invalid configurations (zero-sized grid/block, more threads
    /// per block than the device supports, or multi-dimensional thread
    /// blocks, which the simulator does not model) — these are programming
    /// errors in the kernel host code, the analogue of
    /// `cudaErrorInvalidConfiguration`.
    pub fn launch<F>(&mut self, name: &str, grid: Dim3, block: Dim3, f: F) -> KernelTiming
    where
        F: Fn(&mut BlockCtx) + Sync,
    {
        // The default stream synchronizes with all async streams first,
        // as in CUDA's legacy default-stream semantics.
        self.sync_streams();
        let timing = self.execute(name, grid, block, f);
        let start = self.elapsed_us;
        self.elapsed_us += timing.time_us;
        self.trace.record(name, start, self.elapsed_us, 0);
        timing
    }

    /// Creates a stream for overlapping independent kernels — the paper's
    /// §5.4 remark that non-dependent kernels "could be used to run two
    /// kernels concurrently to engage more cores".
    ///
    /// Overlap is bounded twice: (1) each stream is sequential, and (2) the
    /// device as a whole cannot exceed its throughput — every overlapped
    /// kernel contributes `body_time × utilization` of busy device-seconds
    /// (utilization = max of achieved occupancy and memory-throughput
    /// fraction), plus its host-serialized launch overhead. A kernel that
    /// saturates the device therefore gains nothing from streams, while
    /// underutilizing kernels overlap almost fully — matching the effect
    /// the paper describes for its small low-occupancy kernels (§5.4).
    pub fn create_stream(&mut self) -> StreamId {
        self.streams.push(self.elapsed_us);
        StreamId(self.streams.len() - 1)
    }

    /// Launches on `stream`: the kernel executes functionally now, but its
    /// modeled time advances only that stream's clock (subject to the
    /// throughput bound at the next sync). Call [`Device::sync_streams`]
    /// (or any default-stream operation) to join.
    pub fn launch_on<F>(
        &mut self,
        stream: StreamId,
        name: &str,
        grid: Dim3,
        block: Dim3,
        f: F,
    ) -> KernelTiming
    where
        F: Fn(&mut BlockCtx) + Sync,
    {
        let timing = self.execute(name, grid, block, f);
        if self.stream_busy_us == 0.0 {
            // First async launch since the last sync: anchor the
            // throughput bound at the current clock.
            self.last_sync_us = self.elapsed_us;
        }
        let start = self.streams[stream.0].max(self.elapsed_us);
        self.streams[stream.0] = start + timing.time_us;
        self.trace
            .record(name, start, self.streams[stream.0], stream.0 + 1);
        let utilization = timing
            .achieved_occupancy
            .max(timing.mem_throughput_frac)
            .clamp(0.0, 1.0);
        let body = (timing.time_us - self.cfg.kernel_launch_us).max(0.0);
        self.stream_busy_us += self.cfg.kernel_launch_us + body * utilization;
        timing
    }

    /// Joins all streams: the device clock advances to the later of the
    /// latest stream completion (dependency bound) and the accumulated
    /// busy time since the last sync (throughput bound) — a
    /// `cudaDeviceSynchronize`.
    pub fn sync_streams(&mut self) {
        let wall = self
            .streams
            .iter()
            .fold(self.elapsed_us, |acc, &s| acc.max(s));
        let throughput = self.last_sync_us + self.stream_busy_us;
        self.elapsed_us = wall.max(throughput);
        for s in &mut self.streams {
            *s = self.elapsed_us;
        }
        self.stream_busy_us = 0.0;
        self.last_sync_us = self.elapsed_us;
    }

    fn execute<F>(&mut self, name: &str, grid: Dim3, block: Dim3, f: F) -> KernelTiming
    where
        F: Fn(&mut BlockCtx) + Sync,
    {
        assert!(grid.volume() >= 1, "kernel `{name}`: empty grid");
        assert!(
            block.y == 1 && block.z == 1,
            "kernel `{name}`: only 1-D thread blocks are supported"
        );
        assert!(
            (1..=self.cfg.max_threads_per_block).contains(&block.x),
            "kernel `{name}`: {} threads/block exceeds device limit {}",
            block.x,
            self.cfg.max_threads_per_block
        );

        let total_blocks = grid.volume();
        let work = Mutex::new(WorkCounters::default());
        let shared_max = AtomicUsize::new(0);
        // When the sanitizer is on, every block records its access sets and
        // merges them here as it retires; cross-block conflicts fall out of
        // the merge (each block merges exactly once, so pre-existing entries
        // are always from a different block).
        let san =
            (self.sanitizer != SanitizerMode::Off).then(|| Mutex::new(LaunchSanitizer::new()));
        let sanitize = san.is_some();

        let run_block = |lin: u64, acc: &mut WorkCounters, sh: &mut usize| {
            let mut ctx = BlockCtx::new(grid.from_linear(lin), grid, block, lin, sanitize);
            f(&mut ctx);
            acc.merge(&ctx.counters);
            *sh = (*sh).max(ctx.shared_bytes);
            if let (Some(launch_san), Some(block_san)) = (&san, ctx.san.take()) {
                launch_san.lock().merge_block(*block_san);
            }
        };

        let workers = self.host_threads.min(total_blocks as usize).max(1);
        if self.deterministic || workers == 1 || total_blocks < 4 {
            let mut acc = WorkCounters::default();
            let mut sh = 0usize;
            for lin in 0..total_blocks {
                run_block(lin, &mut acc, &mut sh);
            }
            work.lock().merge(&acc);
            shared_max.fetch_max(sh, Ordering::Relaxed);
        } else {
            let next = AtomicU64::new(0);
            // Chunked dynamic scheduling keeps the fetch_add cost negligible
            // while balancing blocks of uneven cost.
            let chunk = (total_blocks / (workers as u64 * 8)).clamp(1, 1024);
            crossbeam::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|_| {
                        let mut acc = WorkCounters::default();
                        let mut sh = 0usize;
                        loop {
                            let start = next.fetch_add(chunk, Ordering::Relaxed);
                            if start >= total_blocks {
                                break;
                            }
                            let end = (start + chunk).min(total_blocks);
                            for lin in start..end {
                                run_block(lin, &mut acc, &mut sh);
                            }
                        }
                        work.lock().merge(&acc);
                        shared_max.fetch_max(sh, Ordering::Relaxed);
                    });
                }
            })
            .expect("kernel worker thread panicked");
        }

        let work = work.into_inner();
        let shared_bytes = shared_max.into_inner();
        let timing = perf::model_kernel(&self.cfg, grid, block, shared_bytes, &work);

        self.launches += 1;
        let agg = self.kernels.entry(name.to_string()).or_default();
        agg.launches += 1;
        agg.total_time_us += timing.time_us;
        agg.work.merge(&work);
        let stats = KernelStats {
            name: name.to_string(),
            grid,
            block,
            shared_bytes_per_block: shared_bytes,
            work,
            timing,
        };
        let replace = agg
            .representative
            .as_ref()
            .map(|r| grid.volume() >= r.grid.volume())
            .unwrap_or(true);
        if replace {
            agg.representative = Some(stats);
        }

        if let Some(san) = san {
            let (findings, truncated) = san.into_inner().finish(name);
            self.hazards_truncated += truncated;
            if !findings.is_empty() {
                let first = findings[0].clone();
                self.hazards.extend(findings);
                if self.sanitizer == SanitizerMode::Abort {
                    panic!("kernel sanitizer: {first}");
                }
            }
        }
        timing
    }

    // ---------------------------------------------------------------- clock

    /// Simulated device time consumed so far, in microseconds.
    pub fn elapsed_us(&self) -> f64 {
        self.elapsed_us
    }

    /// Simulated device time in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_us / 1e3
    }

    /// Resets the clock and transfer accumulator (not the memory pool).
    pub fn reset_clock(&mut self) {
        self.elapsed_us = 0.0;
        self.transfer_us = 0.0;
    }

    /// Advances the clock by `us` microseconds without executing work —
    /// used by multi-device ensembles to credit their simulated time to
    /// the device the caller handed in, so `elapsed_ms()` stays
    /// meaningful whichever backend ran.
    pub fn advance_clock_us(&mut self, us: f64) {
        self.elapsed_us += us.max(0.0);
    }

    /// Clears per-kernel statistics and the launch counter.
    pub fn reset_stats(&mut self) {
        self.kernels.clear();
        self.launches = 0;
    }

    /// Snapshot of everything the device has done so far.
    pub fn report(&self) -> DeviceReport {
        DeviceReport {
            elapsed_us: self.elapsed_us,
            transfer_us: self.transfer_us,
            launches: self.launches,
            mem_used: self.pool.used(),
            mem_peak: self.pool.peak(),
            kernels: self.kernels.clone(),
            hazards: self.hazards.clone(),
        }
    }

    /// Number of sanitizer findings dropped by per-launch dedup/caps.
    pub fn hazards_truncated(&self) -> u64 {
        self.hazards_truncated
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("name", &self.cfg.name)
            .field("elapsed_us", &self.elapsed_us)
            .field("mem_used", &self.pool.used())
            .field("launches", &self.launches)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::new(DeviceConfig::gtx_1660_ti())
    }

    #[test]
    fn htod_dtoh_roundtrip_charges_time() {
        let mut d = dev();
        let data: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let buf = d.htod("x", &data).unwrap();
        let t_after_up = d.elapsed_us();
        assert!(t_after_up > 0.0);
        let back = d.dtoh(&buf);
        assert_eq!(back, data);
        assert!(d.elapsed_us() > t_after_up);
        assert_eq!(d.mem_used(), 4000);
    }

    #[test]
    fn parallel_and_deterministic_execution_agree_on_integer_work() {
        let run = |det: bool| {
            let mut d = dev();
            d.set_deterministic(det);
            let acc = d.alloc_zeroed::<u64>("acc", 16).unwrap();
            d.launch("sum", Dim3::x(200), Dim3::x(256), |blk| {
                blk.threads(|t| {
                    let g = t.global_id_x() as u64;
                    acc.atomic_add(t, (g % 16) as usize, g);
                });
            });
            acc.peek_all()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn launch_panics_on_oversized_block() {
        let mut d = dev();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.launch("bad", Dim3::x(1), Dim3::x(2048), |_| {});
        }));
        assert!(r.is_err());
    }

    #[test]
    fn kernel_aggregates_accumulate() {
        let mut d = dev();
        let buf = d.alloc_zeroed::<f32>("b", 1024).unwrap();
        for _ in 0..3 {
            d.launch("touch", Dim3::x(1), Dim3::x(1024), |blk| {
                blk.threads(|t| {
                    buf.st(t, t.tid as usize, 1.0);
                });
            });
        }
        let rep = d.report();
        assert_eq!(rep.launches, 3);
        assert_eq!(rep.kernels["touch"].launches, 3);
        assert_eq!(rep.kernels["touch"].work.global_stores, 3 * 1024);
    }

    #[test]
    fn free_returns_bytes_to_pool() {
        let mut d = dev();
        let b = d.alloc_zeroed::<f64>("b", 100).unwrap();
        assert_eq!(d.mem_used(), 800);
        d.free(&b).unwrap();
        assert_eq!(d.mem_used(), 0);
        assert!(d.free(&b).is_err(), "double free must fail");
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let mut d = Device::new(DeviceConfig::tiny_test_device());
        assert!(d.alloc_zeroed::<f64>("huge", 10_000_000).is_err());
    }

    #[test]
    fn memset_fills_and_charges() {
        let mut d = dev();
        let b = d.alloc_zeroed::<u32>("b", 10).unwrap();
        let t0 = d.elapsed_us();
        d.memset(&b, 7);
        assert!(b.peek_all().iter().all(|&v| v == 7));
        assert!(d.elapsed_us() > t0);
    }

    #[test]
    fn underutilizing_kernels_overlap_on_streams() {
        // Compute-heavy kernels with tiny grids (a few percent occupancy):
        // the case streams exist for. Two of them overlapped should cost
        // roughly one, not two.
        let heavy = |buf: &crate::DeviceBuffer<f32>| {
            let b = buf.clone();
            move |blk: &mut BlockCtx| {
                blk.threads(|t| {
                    t.flops(200_000);
                    let v = b.ld(t, t.tid as usize);
                    b.st(t, t.tid as usize, v + 1.0);
                });
            }
        };
        let mut dev1 = dev();
        let buf = dev1.alloc_zeroed::<f32>("b", 256).unwrap();
        let t0 = dev1.elapsed_us();
        dev1.launch("seq", Dim3::x(2), Dim3::x(128), heavy(&buf));
        dev1.launch("seq", Dim3::x(2), Dim3::x(128), heavy(&buf));
        let sequential = dev1.elapsed_us() - t0;

        let mut dev2 = dev();
        let buf2 = dev2.alloc_zeroed::<f32>("b", 256).unwrap();
        let t0 = dev2.elapsed_us();
        let s1 = dev2.create_stream();
        let s2 = dev2.create_stream();
        dev2.launch_on(s1, "par", Dim3::x(2), Dim3::x(128), heavy(&buf2));
        dev2.launch_on(s2, "par", Dim3::x(2), Dim3::x(128), heavy(&buf2));
        dev2.sync_streams();
        let overlapped = dev2.elapsed_us() - t0;
        assert!(
            overlapped < sequential * 0.75,
            "overlap {overlapped} vs sequential {sequential}"
        );
    }

    #[test]
    fn saturating_kernels_gain_nothing_from_streams() {
        // Full-device kernels cannot exceed device throughput: streams must
        // not beat sequential launches by more than launch-overhead hiding.
        let wide = |buf: &crate::DeviceBuffer<f32>| {
            let b = buf.clone();
            move |blk: &mut BlockCtx| {
                blk.threads(|t| {
                    let g = t.global_id_x();
                    if g < b.len() {
                        t.flops(500);
                        let v = b.ld(t, g);
                        b.st(t, g, v + 1.0);
                    }
                });
            }
        };
        let mut dev1 = dev();
        let buf = dev1.alloc_zeroed::<f32>("b", 1 << 17).unwrap();
        let t0 = dev1.elapsed_us();
        dev1.launch("seq", Dim3::x(128), Dim3::x(1024), wide(&buf));
        dev1.launch("seq", Dim3::x(128), Dim3::x(1024), wide(&buf));
        let sequential = dev1.elapsed_us() - t0;

        let mut dev2 = dev();
        let buf2 = dev2.alloc_zeroed::<f32>("b", 1 << 17).unwrap();
        let t0 = dev2.elapsed_us();
        let s1 = dev2.create_stream();
        let s2 = dev2.create_stream();
        dev2.launch_on(s1, "par", Dim3::x(128), Dim3::x(1024), wide(&buf2));
        dev2.launch_on(s2, "par", Dim3::x(128), Dim3::x(1024), wide(&buf2));
        dev2.sync_streams();
        let overlapped = dev2.elapsed_us() - t0;
        assert!(
            overlapped > sequential * 0.85,
            "saturating overlap {overlapped} should approach sequential {sequential}"
        );
    }

    #[test]
    fn default_stream_joins_async_streams() {
        let mut d = dev();
        let buf = d.alloc_zeroed::<u32>("b", 64).unwrap();
        let s = d.create_stream();
        let b = buf.clone();
        d.launch_on(s, "async", Dim3::x(1), Dim3::x(64), move |blk| {
            blk.threads(|t| {
                let v = t.tid;
                b.st(t, t.tid as usize, v);
            });
        });
        let before_join = d.elapsed_us();
        // A default-stream launch must first wait for the async stream.
        let b = buf.clone();
        d.launch("sync", Dim3::x(1), Dim3::x(1), move |blk| {
            blk.thread0(|t| {
                let v = b.ld(t, 63);
                b.st(t, 0, v);
            });
        });
        assert!(d.elapsed_us() > before_join);
        assert_eq!(buf.peek(0), 63);
    }

    #[test]
    fn clock_reset_keeps_memory() {
        let mut d = dev();
        let _b = d.alloc_zeroed::<u32>("b", 10).unwrap();
        d.charge_us(5.0);
        d.reset_clock();
        assert_eq!(d.elapsed_us(), 0.0);
        assert_eq!(d.mem_used(), 40);
    }
}
