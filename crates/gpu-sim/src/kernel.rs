//! Kernel execution contexts: blocks, threads, barriers and registers.

use std::cell::Cell;

use crate::atomic::Scalar;
use crate::buffer::BufInner;
use crate::dim::Dim3;
use crate::sanitizer::{AccessKind, AccessSite, BlockSanitizer};
use crate::shared::Shared;
use crate::stats::WorkCounters;

/// Execution context for one thread block.
///
/// The kernel body receives a `BlockCtx` and expresses the classic CUDA
/// phase structure:
///
/// ```text
/// blk.threads(|t| { ... });   // phase 1 — all threads
/// // implicit __syncthreads()
/// blk.threads(|t| { ... });   // phase 2 — all threads
/// ```
///
/// Each [`BlockCtx::threads`] call runs its closure once per thread of the
/// block; because a phase completes for every thread before the next phase
/// starts, the boundary between consecutive calls is exactly a block-wide
/// barrier. State that must survive a barrier lives in [`Shared`] memory or
/// per-thread [`Regs`].
pub struct BlockCtx {
    /// This block's index within the grid.
    pub block: Dim3,
    /// The grid extent of the launch.
    pub grid_dim: Dim3,
    /// The block extent of the launch (threads per block; x-dimension only).
    pub block_dim: Dim3,
    pub(crate) counters: WorkCounters,
    pub(crate) shared_bytes: usize,
    /// Linear block index within the grid (sanitizer coordinate).
    pub(crate) block_lin: u64,
    /// Barrier-phase counter: each `threads`/`thread0` call is one phase.
    pub(crate) phase: u32,
    /// Sequential id handed to each `Shared` allocation of this block.
    pub(crate) shared_count: u32,
    /// Per-block access recorder, present when the device sanitizer is on.
    pub(crate) san: Option<Box<BlockSanitizer>>,
}

impl BlockCtx {
    pub(crate) fn new(
        block: Dim3,
        grid_dim: Dim3,
        block_dim: Dim3,
        block_lin: u64,
        sanitize: bool,
    ) -> Self {
        Self {
            block,
            grid_dim,
            block_dim,
            counters: WorkCounters::default(),
            shared_bytes: 0,
            block_lin,
            phase: 0,
            shared_count: 0,
            san: sanitize.then(|| Box::new(BlockSanitizer::new())),
        }
    }

    /// Runs `f` once for every thread of the block (a kernel *phase*).
    /// Consecutive calls are separated by an implicit block barrier.
    #[inline]
    pub fn threads<F: FnMut(&mut ThreadCtx<'_>)>(&mut self, mut f: F) {
        self.phase += 1;
        let n = self.block_dim.x;
        let (block, grid_dim, block_dim) = (self.block, self.grid_dim, self.block_dim);
        let (block_lin, phase) = (self.block_lin, self.phase);
        for tid in 0..n {
            let mut t = ThreadCtx {
                tid,
                block,
                grid_dim,
                block_dim,
                counters: &mut self.counters,
                block_lin,
                phase,
                san: self.san.as_deref_mut(),
            };
            f(&mut t);
        }
    }

    /// Runs `f` on thread 0 only — the `if (threadIdx.x == 0)` idiom.
    #[inline]
    pub fn thread0<F: FnOnce(&mut ThreadCtx<'_>)>(&mut self, f: F) {
        self.phase += 1;
        let mut t = ThreadCtx {
            tid: 0,
            block: self.block,
            grid_dim: self.grid_dim,
            block_dim: self.block_dim,
            counters: &mut self.counters,
            block_lin: self.block_lin,
            phase: self.phase,
            san: self.san.as_deref_mut(),
        };
        f(&mut t);
    }

    /// Allocates block-shared memory of `len` elements of `T`.
    ///
    /// The allocation counts toward the launch's shared-memory footprint
    /// and thereby toward its occupancy limit. Like CUDA `__shared__`
    /// arrays, the contents start *uninitialized* as far as the sanitizer
    /// is concerned (the simulator backs them with zeros, but relying on
    /// that would not survive real hardware).
    pub fn shared<T: Scalar>(&mut self, len: usize) -> Shared<T> {
        self.shared_bytes += len * T::BYTES;
        let id = self.shared_count;
        self.shared_count += 1;
        Shared::new(len, id)
    }

    /// Allocates one register per thread of the block, initialized to
    /// `T::default()`. Registers persist across barriers.
    pub fn regs<T: Copy + Default>(&self) -> Regs<T> {
        Regs {
            vals: (0..self.block_dim.x as usize)
                .map(|_| Cell::new(T::default()))
                .collect(),
        }
    }
}

/// Per-thread registers surviving across block barriers.
pub struct Regs<T: Copy> {
    vals: Box<[Cell<T>]>,
}

impl<T: Copy> Regs<T> {
    /// Reads the calling thread's register.
    #[inline(always)]
    pub fn get(&self, t: &ThreadCtx<'_>) -> T {
        self.vals[t.tid as usize].get()
    }

    /// Writes the calling thread's register.
    #[inline(always)]
    pub fn set(&self, t: &ThreadCtx<'_>, v: T) {
        self.vals[t.tid as usize].set(v);
    }
}

/// Execution context for one thread within a block phase.
pub struct ThreadCtx<'a> {
    /// Thread index within the block (`threadIdx.x`).
    pub tid: u32,
    /// Block index within the grid (`blockIdx`).
    pub block: Dim3,
    /// Grid extent (`gridDim`).
    pub grid_dim: Dim3,
    /// Block extent (`blockDim`).
    pub block_dim: Dim3,
    pub(crate) counters: &'a mut WorkCounters,
    pub(crate) block_lin: u64,
    pub(crate) phase: u32,
    pub(crate) san: Option<&'a mut BlockSanitizer>,
}

impl ThreadCtx<'_> {
    /// The global x-index: `blockIdx.x * blockDim.x + threadIdx.x`.
    #[inline(always)]
    pub fn global_id_x(&self) -> usize {
        self.block.x as usize * self.block_dim.x as usize + self.tid as usize
    }

    /// Grid-stride loop over `0..n`: yields `global_id_x, global_id_x + S,
    /// …` where `S` is the total number of threads along x. This is the
    /// standard pattern for letting a fixed launch cover an arbitrary `n`
    /// ("if the for-loop has more iterations than threads, each thread
    /// handles multiple iterations", paper §4).
    #[inline]
    pub fn grid_stride_x(&self, n: usize) -> impl Iterator<Item = usize> {
        let start = self.global_id_x();
        let stride = self.grid_dim.x as usize * self.block_dim.x as usize;
        (start..n).step_by(stride.max(1))
    }

    /// Charges `n` floating-point operations to the performance model.
    #[inline(always)]
    pub fn flops(&mut self, n: u64) {
        self.counters.flops += n;
    }

    /// Charges `n` integer/address operations.
    #[inline(always)]
    pub fn ops(&mut self, n: u64) {
        self.counters.int_ops += n;
    }

    #[inline(always)]
    pub(crate) fn count_global_load(&mut self, bytes: usize) {
        self.counters.global_loads += 1;
        self.counters.bytes_loaded += bytes as u64;
    }

    #[inline(always)]
    pub(crate) fn count_global_load_strided(&mut self, bytes: usize) {
        self.counters.global_loads += 1;
        self.counters.bytes_loaded += bytes as u64;
        self.counters.strided_bytes += bytes as u64;
    }

    #[inline(always)]
    pub(crate) fn count_global_store(&mut self, bytes: usize) {
        self.counters.global_stores += 1;
        self.counters.bytes_stored += bytes as u64;
    }

    #[inline(always)]
    pub(crate) fn count_global_atomic(&mut self, bytes: usize) {
        self.counters.global_atomics += 1;
        self.counters.bytes_loaded += bytes as u64;
        self.counters.bytes_stored += bytes as u64;
    }

    #[inline(always)]
    pub(crate) fn count_shared_access(&mut self) {
        self.counters.shared_accesses += 1;
    }

    #[inline(always)]
    pub(crate) fn count_shared_atomic(&mut self) {
        self.counters.shared_atomics += 1;
    }

    /// Sanitizer hook for a global-memory access (`index` absolute within
    /// the allocation). No-op unless the device sanitizer is enabled.
    #[inline(always)]
    pub(crate) fn san_global(&mut self, inner: &BufInner, index: usize, kind: AccessKind) {
        if let Some(san) = self.san.as_deref_mut() {
            let site = AccessSite {
                block: self.block_lin,
                thread: self.tid,
                phase: self.phase,
                kind,
            };
            san.global_access(inner, index, site);
        }
    }

    /// Sanitizer hook for a shared-memory access.
    #[inline(always)]
    pub(crate) fn san_shared(&mut self, id: u32, index: usize, kind: AccessKind) {
        if let Some(san) = self.san.as_deref_mut() {
            let site = AccessSite {
                block: self.block_lin,
                thread: self.tid,
                phase: self.phase,
                kind,
            };
            san.shared_access(id, index, site);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Device, DeviceConfig};

    #[test]
    fn phases_form_barriers() {
        // Phase 2 must observe every phase-1 write, for every thread.
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let ok = dev.alloc_zeroed::<u32>("ok", 1).unwrap();
        dev.launch("barrier", Dim3::x(4), Dim3::x(64), |blk| {
            let s = blk.shared::<u32>(64);
            blk.threads(|t| {
                s.st(t, t.tid as usize, t.tid + 1);
            });
            blk.threads(|t| {
                // Read a *different* thread's slot; works only post-barrier.
                let peer = (t.tid as usize + 1) % 64;
                if s.ld(t, peer) == peer as u32 + 1 {
                    ok.atomic_inc(t, 0);
                }
            });
        });
        assert_eq!(ok.peek(0), 4 * 64);
    }

    #[test]
    fn grid_stride_covers_exactly_once() {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let n = 10_007; // prime, not a multiple of the stride
        let hits = dev.alloc_zeroed::<u32>("hits", n).unwrap();
        dev.launch("stride", Dim3::x(8), Dim3::x(128), |blk| {
            blk.threads(|t| {
                for i in t.grid_stride_x(n) {
                    hits.atomic_inc(t, i);
                }
            });
        });
        assert!(hits.peek_all().iter().all(|&h| h == 1));
    }

    #[test]
    fn regs_survive_barriers_per_thread() {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let out = dev.alloc_zeroed::<u32>("out", 32).unwrap();
        dev.launch("regs", Dim3::x(1), Dim3::x(32), |blk| {
            let r = blk.regs::<u32>();
            blk.threads(|t| r.set(t, t.tid * 3));
            blk.threads(|t| {
                let v = r.get(t);
                out.st(t, t.tid as usize, v);
            });
        });
        assert_eq!(out.peek(10), 30);
    }

    #[test]
    fn thread0_runs_once_per_block() {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let c = dev.alloc_zeroed::<u32>("c", 1).unwrap();
        dev.launch("t0", Dim3::x(5), Dim3::x(256), |blk| {
            blk.thread0(|t| {
                c.atomic_inc(t, 0);
            });
        });
        assert_eq!(c.peek(0), 5);
    }
}
