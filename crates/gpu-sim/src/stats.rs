//! Work counters and per-kernel / per-device statistics.

use std::collections::BTreeMap;

use crate::dim::Dim3;
use crate::perf::KernelTiming;
use crate::sanitizer::HazardFinding;

/// Work counted during kernel execution. Threads accumulate into a
/// block-local instance; blocks merge into the kernel total at block exit,
/// so the counting overhead in the hot path is a handful of plain integer
/// increments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Floating-point operations explicitly charged via `ThreadCtx::flops`.
    pub flops: u64,
    /// Integer/address operations charged via `ThreadCtx::ops`.
    pub int_ops: u64,
    /// Global-memory loads (element granularity).
    pub global_loads: u64,
    /// Global-memory stores.
    pub global_stores: u64,
    /// Global-memory atomic read-modify-writes.
    pub global_atomics: u64,
    /// Bytes read from global memory.
    pub bytes_loaded: u64,
    /// Subset of `bytes_loaded` fetched through a *strided* (untiled)
    /// access pattern — adjacent threads touching addresses a row apart, so
    /// each element pulls a mostly-wasted DRAM sector. The perf model
    /// amplifies these by [`crate::DeviceConfig::strided_mem_penalty`];
    /// kernels opt in per access via [`crate::DeviceBuffer::ld_strided`].
    /// Tiled kernels (shared-memory staging, the production PROCLUS path)
    /// leave this at zero and are priced as perfectly coalesced.
    pub strided_bytes: u64,
    /// Bytes written to global memory.
    pub bytes_stored: u64,
    /// Shared-memory accesses (loads + stores).
    pub shared_accesses: u64,
    /// Shared-memory atomics.
    pub shared_atomics: u64,
}

impl WorkCounters {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &WorkCounters) {
        self.flops += other.flops;
        self.int_ops += other.int_ops;
        self.global_loads += other.global_loads;
        self.global_stores += other.global_stores;
        self.global_atomics += other.global_atomics;
        self.bytes_loaded += other.bytes_loaded;
        self.strided_bytes += other.strided_bytes;
        self.bytes_stored += other.bytes_stored;
        self.shared_accesses += other.shared_accesses;
        self.shared_atomics += other.shared_atomics;
    }

    /// Total global-memory traffic in bytes (loads + stores + atomics,
    /// charging an atomic as a read-modify-write of its element).
    pub fn global_bytes(&self) -> u64 {
        self.bytes_loaded + self.bytes_stored
    }

    /// Total instructions issued (the compute-roofline numerator).
    pub fn issued_ops(&self) -> u64 {
        self.flops + self.int_ops + self.global_loads + self.global_stores + self.shared_accesses
    }
}

/// Statistics for one kernel launch.
#[derive(Debug, Clone)]
pub struct KernelStats {
    /// Kernel name as given to `Device::launch`.
    pub name: String,
    /// Grid extent of the launch.
    pub grid: Dim3,
    /// Block extent of the launch.
    pub block: Dim3,
    /// Shared memory allocated per block, in bytes.
    pub shared_bytes_per_block: usize,
    /// Work counted across all blocks.
    pub work: WorkCounters,
    /// The modeled timing for this launch.
    pub timing: KernelTiming,
}

/// Per-kernel-name aggregate over a device's lifetime.
#[derive(Debug, Clone, Default)]
pub struct KernelAggregate {
    /// Number of launches of this kernel.
    pub launches: u64,
    /// Sum of modeled kernel time in microseconds.
    pub total_time_us: f64,
    /// Accumulated work counters.
    pub work: WorkCounters,
    /// Stats of the largest launch seen (by grid volume), kept as the
    /// representative for occupancy/throughput reporting (§5.4).
    pub representative: Option<KernelStats>,
}

/// Snapshot of everything the device has done so far.
#[derive(Debug, Clone, Default)]
pub struct DeviceReport {
    /// Simulated device time consumed so far, in microseconds
    /// (kernels + transfers).
    pub elapsed_us: f64,
    /// Simulated time spent in host↔device transfers, in microseconds.
    pub transfer_us: f64,
    /// Number of kernel launches.
    pub launches: u64,
    /// Current bytes allocated from the pool.
    pub mem_used: usize,
    /// Peak bytes allocated from the pool.
    pub mem_peak: usize,
    /// Aggregates keyed by kernel name (sorted for stable output).
    pub kernels: BTreeMap<String, KernelAggregate>,
    /// Hazards detected by the kernel sanitizer (empty when the sanitizer
    /// is off or every launch ran clean). See [`crate::sanitizer`].
    pub hazards: Vec<HazardFinding>,
}

impl DeviceReport {
    /// Renders a compact table of per-kernel aggregates, most expensive
    /// first — the simulator's answer to `nsight-compute`'s summary page.
    pub fn kernel_table(&self) -> String {
        let mut rows: Vec<(&String, &KernelAggregate)> = self.kernels.iter().collect();
        rows.sort_by(|a, b| b.1.total_time_us.total_cmp(&a.1.total_time_us));
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>8} {:>12} {:>8} {:>8} {:>8}\n",
            "kernel", "launches", "time(us)", "occ_th", "occ_ach", "mem%"
        ));
        for (name, agg) in rows {
            let (occ_t, occ_a, memf) = agg
                .representative
                .as_ref()
                .map(|r| {
                    (
                        r.timing.theoretical_occupancy,
                        r.timing.achieved_occupancy,
                        r.timing.mem_throughput_frac,
                    )
                })
                .unwrap_or((0.0, 0.0, 0.0));
            out.push_str(&format!(
                "{:<28} {:>8} {:>12.1} {:>7.1}% {:>7.1}% {:>7.1}%\n",
                name,
                agg.launches,
                agg.total_time_us,
                occ_t * 100.0,
                occ_a * 100.0,
                memf * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = WorkCounters {
            flops: 1,
            int_ops: 2,
            global_loads: 3,
            global_stores: 4,
            global_atomics: 5,
            bytes_loaded: 6,
            bytes_stored: 7,
            shared_accesses: 8,
            shared_atomics: 9,
            strided_bytes: 10,
        };
        a.merge(&a.clone());
        assert_eq!(a.flops, 2);
        assert_eq!(a.shared_atomics, 18);
        assert_eq!(a.strided_bytes, 20);
        assert_eq!(a.global_bytes(), 26);
    }

    #[test]
    fn kernel_table_sorted_by_time() {
        let mut rep = DeviceReport::default();
        for (name, t) in [("cheap", 1.0), ("hot", 100.0)] {
            rep.kernels.insert(
                name.into(),
                KernelAggregate {
                    launches: 1,
                    total_time_us: t,
                    work: WorkCounters::default(),
                    representative: None,
                },
            );
        }
        let table = rep.kernel_table();
        let hot_pos = table.find("hot").unwrap();
        let cheap_pos = table.find("cheap").unwrap();
        assert!(hot_pos < cheap_pos, "hot kernel should be listed first");
    }
}
