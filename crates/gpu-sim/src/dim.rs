//! Launch geometry: the 3-component dimension type used for grids and blocks.

use std::fmt;

/// A CUDA-style `dim3`: the extent of a grid (in blocks) or of a block
/// (in threads) along up to three axes.
///
/// Components default to 1, so `Dim3::x(n)` is the common 1-D case and
/// `Dim3::xy(n, m)` the 2-D case used for per-(point, medoid) grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// Extent along the x axis (fastest varying).
    pub x: u32,
    /// Extent along the y axis.
    pub y: u32,
    /// Extent along the z axis (slowest varying).
    pub z: u32,
}

impl Dim3 {
    /// A 1-D extent `(x, 1, 1)`.
    #[inline]
    pub const fn x(x: u32) -> Self {
        Self { x, y: 1, z: 1 }
    }

    /// A 2-D extent `(x, y, 1)`.
    #[inline]
    pub const fn xy(x: u32, y: u32) -> Self {
        Self { x, y, z: 1 }
    }

    /// A 3-D extent `(x, y, z)`.
    #[inline]
    pub const fn xyz(x: u32, y: u32, z: u32) -> Self {
        Self { x, y, z }
    }

    /// Total number of elements covered (`x · y · z`).
    #[inline]
    pub const fn volume(self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Decomposes a linear index (in `0..volume()`) back into a coordinate,
    /// with `x` varying fastest. Used by the launcher to enumerate blocks.
    #[inline]
    pub fn from_linear(self, idx: u64) -> Dim3 {
        let x = (idx % self.x as u64) as u32;
        let rest = idx / self.x as u64;
        let y = (rest % self.y as u64) as u32;
        let z = (rest / self.y as u64) as u32;
        Dim3 { x, y, z }
    }

    /// The number of 1-D blocks of `block_size` threads needed to cover
    /// `elems` elements: `ceil(elems / block_size)`.
    #[inline]
    pub fn blocks_for(elems: usize, block_size: u32) -> Dim3 {
        let bs = block_size.max(1) as usize;
        Dim3::x(elems.div_ceil(bs).max(1) as u32)
    }
}

impl Default for Dim3 {
    fn default() -> Self {
        Dim3::x(1)
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.z == 1 && self.y == 1 {
            write!(f, "{}", self.x)
        } else if self.z == 1 {
            write!(f, "{}x{}", self.x, self.y)
        } else {
            write!(f, "{}x{}x{}", self.x, self.y, self.z)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_counts_all_axes() {
        assert_eq!(Dim3::x(7).volume(), 7);
        assert_eq!(Dim3::xy(3, 4).volume(), 12);
        assert_eq!(Dim3::xyz(2, 3, 4).volume(), 24);
    }

    #[test]
    fn linear_roundtrip_covers_grid_exactly_once() {
        let g = Dim3::xyz(3, 4, 2);
        let mut seen = std::collections::HashSet::new();
        for i in 0..g.volume() {
            let c = g.from_linear(i);
            assert!(c.x < 3 && c.y < 4 && c.z < 2);
            assert!(seen.insert((c.x, c.y, c.z)), "duplicate coordinate {c}");
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn linear_order_is_x_fastest() {
        let g = Dim3::xy(3, 2);
        assert_eq!(g.from_linear(0), Dim3::xyz(0, 0, 0));
        assert_eq!(g.from_linear(1), Dim3::xyz(1, 0, 0));
        assert_eq!(g.from_linear(3), Dim3::xyz(0, 1, 0));
    }

    #[test]
    fn blocks_for_rounds_up() {
        assert_eq!(Dim3::blocks_for(1000, 128).x, 8);
        assert_eq!(Dim3::blocks_for(1024, 128).x, 8);
        assert_eq!(Dim3::blocks_for(1025, 128).x, 9);
        assert_eq!(Dim3::blocks_for(0, 128).x, 1);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Dim3::x(5).to_string(), "5");
        assert_eq!(Dim3::xy(5, 2).to_string(), "5x2");
        assert_eq!(Dim3::xyz(5, 2, 3).to_string(), "5x2x3");
    }
}
