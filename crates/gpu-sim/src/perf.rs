//! The analytic kernel performance model.
//!
//! The model is a standard occupancy-aware roofline. For a launch of
//! `B` blocks of `T` threads with counted work `W`:
//!
//! 1. **Occupancy.** Resident blocks per SM are limited by the hardware
//!    block/thread/shared-memory limits (the same arithmetic as NVIDIA's
//!    occupancy calculator). Theoretical occupancy is resident warps over
//!    the SM's warp capacity; achieved occupancy additionally accounts for
//!    grids too small to fill every SM — which is exactly the effect the
//!    paper discusses in §5.4 for the tiny `k × k` δ-kernel (3 % achieved).
//! 2. **Compute time.** Issued operations divided by the clock rate times
//!    the number of *effective* lanes: lanes are capped both by the physical
//!    core count and by the number of concurrently resident threads (small
//!    grids can't use all lanes; threads also can't exceed one instruction
//!    per cycle per lane).
//! 3. **Memory time.** Global traffic divided by peak bandwidth, derated
//!    linearly when too few warps are resident to cover DRAM latency
//!    (Little's-law approximation, `warps_to_saturate_mem` per SM).
//! 4. **Atomic time.** Global and shared atomics are charged a fixed
//!    per-operation cost spread across SMs. Same-address contention is not
//!    modeled; the PROCLUS kernels keep per-thread partials precisely to
//!    avoid such hotspots (paper §4.1).
//! 5. The kernel takes `launch_overhead + max(compute, memory, atomic)`;
//!    the max expresses overlap of computation with memory traffic.
//!
//! The memory term carries a *tiling* refinement: loads a kernel marks as
//! strided ([`WorkCounters::strided_bytes`], charged via
//! `DeviceBuffer::ld_strided`) are amplified by the device's
//! [`DeviceConfig::strided_mem_penalty`], pricing each element as pulling a
//! mostly-wasted DRAM sector. Plain `ld` traffic stays priced as perfectly
//! coalesced — the production PROCLUS kernels stage their reused row
//! through shared memory (the GPU analogue of the CPU path's cache-block
//! tiles, `proclus::distance_simd`), so their sectors are consumed before
//! eviction and the coalesced price is the honest one. Untiled reference
//! kernels charge the strided price, which is how the model reflects what
//! blocking buys.
//!
//! Known simplifications: warp divergence is not modeled, and coalescing is
//! binary (an access is either perfectly coalesced or sector-wasting
//! strided). Both affect absolute times, not the comparative shapes the
//! harnesses report.
//!
//! Absolute times are estimates; what the model is designed to preserve is
//! the *shape* the paper reports: time grows with useful parallel work,
//! speedup versus the CPU grows with `n` until the device saturates and then
//! flattens (Fig. 2a–b), and launch overhead puts a floor under tiny kernels.

use crate::config::DeviceConfig;
use crate::dim::Dim3;
use crate::stats::WorkCounters;

/// Which roofline term dominated a kernel's modeled runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Instruction issue limited.
    Compute,
    /// Global-memory bandwidth limited.
    Memory,
    /// Atomic throughput limited.
    Atomic,
    /// Fixed launch overhead dominates (tiny kernel).
    Launch,
}

/// Modeled timing and utilization for one kernel launch.
#[derive(Debug, Clone, Copy)]
pub struct KernelTiming {
    /// Total modeled time in microseconds, including launch overhead.
    pub time_us: f64,
    /// Occupancy achievable from the launch configuration alone.
    pub theoretical_occupancy: f64,
    /// Occupancy after accounting for grids too small to fill the device.
    pub achieved_occupancy: f64,
    /// Achieved global-memory throughput as a fraction of peak.
    pub mem_throughput_frac: f64,
    /// Dominant roofline term.
    pub bound: Bound,
}

/// Occupancy figures derived purely from the launch configuration.
#[derive(Debug, Clone, Copy)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// `warps_per_sm / max_warps_per_sm`.
    pub theoretical: f64,
    /// Average resident warps per SM given the actual grid size.
    pub achieved: f64,
}

/// Computes occupancy for a launch of `grid` blocks of `block` threads using
/// `shared_bytes` of shared memory per block.
pub fn occupancy(cfg: &DeviceConfig, grid: Dim3, block: Dim3, shared_bytes: usize) -> Occupancy {
    let tpb = block.volume().max(1) as u32;
    let warps_per_block = tpb.div_ceil(cfg.warp_size);

    let by_blocks = cfg.max_blocks_per_sm;
    let by_threads = cfg.max_threads_per_sm / (warps_per_block * cfg.warp_size);
    let by_shared = cfg
        .shared_mem_per_sm
        .checked_div(shared_bytes)
        .map(|b| b as u32)
        .unwrap_or(u32::MAX);
    let blocks_per_sm = by_blocks.min(by_threads).min(by_shared);

    let max_warps = cfg.max_warps_per_sm();
    let warps_per_sm = (blocks_per_sm * warps_per_block).min(max_warps);
    let theoretical = warps_per_sm as f64 / max_warps as f64;

    // Average resident warps per SM over the launch, given the grid size.
    let total_blocks = grid.volume();
    let resident_blocks_device = (cfg.num_sms as u64 * blocks_per_sm as u64).max(1);
    let fill = (total_blocks as f64 / resident_blocks_device as f64).min(1.0);
    let achieved = theoretical * fill;

    Occupancy {
        blocks_per_sm,
        warps_per_sm,
        theoretical,
        achieved,
    }
}

/// Models the runtime of one kernel launch from its counted work.
pub fn model_kernel(
    cfg: &DeviceConfig,
    grid: Dim3,
    block: Dim3,
    shared_bytes: usize,
    w: &WorkCounters,
) -> KernelTiming {
    let occ = occupancy(cfg, grid, block, shared_bytes);
    let tpb = block.volume().max(1);
    let total_threads = grid.volume() * tpb;

    // --- compute roofline -------------------------------------------------
    // Lanes usable simultaneously: capped by the core count and by how many
    // threads are actually resident at once.
    let resident_threads = (grid
        .volume()
        .min(cfg.num_sms as u64 * occ.blocks_per_sm.max(1) as u64))
        * tpb;
    let effective_lanes = (cfg.total_cores() as f64).min(resident_threads.max(1) as f64);
    let cycles = w.issued_ops() as f64;
    let compute_us = cycles / (effective_lanes * cfg.clock_ghz * 1e3);

    // --- memory roofline --------------------------------------------------
    let resident_warps_device = cfg.num_sms as f64
        * (occ.achieved * cfg.max_warps_per_sm() as f64).max(if total_threads > 0 {
            1.0
        } else {
            0.0
        });
    let warps_needed = (cfg.num_sms * cfg.warps_to_saturate_mem) as f64;
    let bw_frac = (resident_warps_device / warps_needed).min(1.0);
    let bw_eff = cfg.mem_bandwidth_gbps * 1e3 * bw_frac; // bytes/us
                                                         // Strided bytes are already counted once inside `global_bytes`; the
                                                         // tiling term adds the wasted remainder of each sector on top.
    let mem_bytes =
        w.global_bytes() as f64 + w.strided_bytes as f64 * (cfg.strided_mem_penalty - 1.0);
    let mem_us = if mem_bytes > 0.0 {
        mem_bytes / bw_eff.max(1e-9)
    } else {
        0.0
    };

    // --- atomics ----------------------------------------------------------
    let atomic_us = (w.global_atomics as f64 * cfg.global_atomic_ns
        + w.shared_atomics as f64 * cfg.shared_atomic_ns)
        / (cfg.num_sms as f64)
        / 1e3;

    let body_us = compute_us.max(mem_us).max(atomic_us);
    let time_us = cfg.kernel_launch_us + body_us;

    let bound = if cfg.kernel_launch_us >= body_us {
        Bound::Launch
    } else if body_us == compute_us {
        Bound::Compute
    } else if body_us == mem_us {
        Bound::Memory
    } else {
        Bound::Atomic
    };

    let mem_throughput_frac = if time_us > 0.0 {
        (mem_bytes / time_us / (cfg.mem_bandwidth_gbps * 1e3)).min(1.0)
    } else {
        0.0
    };

    KernelTiming {
        time_us,
        theoretical_occupancy: occ.theoretical,
        achieved_occupancy: occ.achieved,
        mem_throughput_frac,
        bound,
    }
}

/// Models a host↔device transfer of `bytes`.
pub fn model_transfer(cfg: &DeviceConfig, bytes: usize) -> f64 {
    cfg.pcie_latency_us + bytes as f64 / (cfg.pcie_bandwidth_gbps * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DeviceConfig {
        DeviceConfig::gtx_1660_ti()
    }

    fn big_work(bytes: u64) -> WorkCounters {
        WorkCounters {
            flops: bytes / 2,
            bytes_loaded: bytes,
            global_loads: bytes / 4,
            ..Default::default()
        }
    }

    #[test]
    fn full_grid_reaches_full_theoretical_occupancy() {
        // 1024-thread blocks on Turing: 1 block/SM → 32/32 warps.
        let occ = occupancy(&cfg(), Dim3::x(1000), Dim3::x(1024), 0);
        assert!((occ.theoretical - 1.0).abs() < 1e-9);
        assert!((occ.achieved - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_grid_has_tiny_achieved_occupancy() {
        // The paper's k×k δ-kernel: k=10 blocks of 10 threads (§5.4, ~3%).
        let occ = occupancy(&cfg(), Dim3::x(10), Dim3::x(10), 0);
        assert!(occ.achieved < 0.05, "achieved {} too high", occ.achieved);
        assert!(occ.theoretical <= 0.51);
    }

    #[test]
    fn shared_memory_limits_occupancy() {
        let none = occupancy(&cfg(), Dim3::x(1000), Dim3::x(128), 0);
        let heavy = occupancy(&cfg(), Dim3::x(1000), Dim3::x(128), 32 * 1024);
        assert!(heavy.blocks_per_sm < none.blocks_per_sm);
    }

    #[test]
    fn time_is_monotone_in_work() {
        let c = cfg();
        let t1 = model_kernel(&c, Dim3::x(100), Dim3::x(1024), 0, &big_work(1 << 20));
        let t2 = model_kernel(&c, Dim3::x(100), Dim3::x(1024), 0, &big_work(1 << 24));
        assert!(t2.time_us > t1.time_us);
    }

    #[test]
    fn empty_kernel_costs_launch_overhead() {
        let c = cfg();
        let t = model_kernel(&c, Dim3::x(1), Dim3::x(32), 0, &WorkCounters::default());
        assert_eq!(t.bound, Bound::Launch);
        assert!((t.time_us - c.kernel_launch_us).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_bound_kernel_near_peak_throughput() {
        let c = cfg();
        // 1 GiB of traffic from a saturating grid: memory-bound, ≥ 80% of peak.
        let w = WorkCounters {
            bytes_loaded: 1 << 30,
            global_loads: (1 << 30) / 4,
            ..Default::default()
        };
        let t = model_kernel(&c, Dim3::x(100_000), Dim3::x(1024), 0, &w);
        assert_eq!(t.bound, Bound::Memory);
        assert!(t.mem_throughput_frac > 0.8, "{}", t.mem_throughput_frac);
    }

    #[test]
    fn strided_loads_amplify_memory_time_by_the_penalty() {
        let c = cfg();
        let coalesced = WorkCounters {
            bytes_loaded: 1 << 30,
            global_loads: (1 << 30) / 4,
            ..Default::default()
        };
        let strided = WorkCounters {
            strided_bytes: 1 << 30,
            ..coalesced
        };
        let grid = Dim3::x(100_000);
        let t_co = model_kernel(&c, grid, Dim3::x(1024), 0, &coalesced);
        let t_st = model_kernel(&c, grid, Dim3::x(1024), 0, &strided);
        assert_eq!(t_st.bound, Bound::Memory);
        // Both launches are memory-bound with negligible launch overhead, so
        // the times must sit in the penalty ratio.
        let ratio = t_st.time_us / t_co.time_us;
        assert!(
            (ratio - c.strided_mem_penalty).abs() / c.strided_mem_penalty < 0.05,
            "ratio {ratio}, penalty {}",
            c.strided_mem_penalty
        );
    }

    #[test]
    fn zero_strided_bytes_leave_timings_untouched() {
        // The tiling term is strictly additive: kernels that never call
        // `ld_strided` (every production kernel, hence every committed
        // bench baseline) model exactly as before the term existed.
        let c = cfg();
        let w = big_work(1 << 24);
        assert_eq!(w.strided_bytes, 0);
        let t = model_kernel(&c, Dim3::x(100), Dim3::x(1024), 0, &w);
        let mut flat = c.clone();
        flat.strided_mem_penalty = 1.0;
        let t_flat = model_kernel(&flat, Dim3::x(100), Dim3::x(1024), 0, &w);
        assert_eq!(t.time_us.to_bits(), t_flat.time_us.to_bits());
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let c = cfg();
        let t0 = model_transfer(&c, 0);
        let t1 = model_transfer(&c, 12_000_000); // 12 MB at 12 GB/s ≈ 1000 us
        assert!((t0 - c.pcie_latency_us).abs() < 1e-9);
        assert!((t1 - t0 - 1000.0).abs() < 1.0);
    }

    #[test]
    fn speedup_shape_grows_then_flattens_with_n() {
        // The core scalability claim (Fig. 2a): modeled time per element
        // drops as n grows (fixed overheads amortize) and approaches a
        // bandwidth-dictated floor.
        let c = cfg();
        let mut per_elem = Vec::new();
        for n in [1_000u64, 10_000, 100_000, 1_000_000, 10_000_000] {
            let w = WorkCounters {
                flops: 3 * n,
                global_loads: n,
                bytes_loaded: 4 * n,
                ..Default::default()
            };
            let grid = Dim3::blocks_for(n as usize, 1024);
            let t = model_kernel(&c, grid, Dim3::x(1024), 0, &w);
            per_elem.push(t.time_us / n as f64);
        }
        for pair in per_elem.windows(2) {
            assert!(pair[1] <= pair[0] * 1.0001, "per-element time increased");
        }
        // Flattening: the last two points are within 20% of each other.
        let a = per_elem[per_elem.len() - 2];
        let b = per_elem[per_elem.len() - 1];
        assert!(b / a > 0.5);
    }
}
