//! # gpu-sim — a software SIMT device simulator
//!
//! This crate provides a CUDA-like programming model executed entirely on the
//! host, together with an analytic performance model that estimates how long
//! each kernel would take on a configurable NVIDIA-class device.
//!
//! It exists so that GPU-parallel algorithms — here, the kernels of
//! GPU-FAST-PROCLUS (EDBT 2022) — can be implemented with their exact
//! parallel structure (grids, blocks, threads, `__syncthreads()` barriers,
//! global/shared memory, atomics, up-front memory pooling, host↔device
//! transfers) and validated functionally on machines without a GPU, while
//! still producing meaningful *modeled* kernel timings, occupancy and memory
//! throughput figures.
//!
//! ## Programming model
//!
//! * A [`Device`] owns global memory (a pre-allocating [`memory::MemoryPool`])
//!   and accumulates a simulated clock plus per-kernel statistics.
//! * [`DeviceBuffer<T>`] is global memory. All loads/stores/atomics go
//!   through a [`ThreadCtx`] so the simulator can count work.
//! * [`Device::launch`] executes a kernel over a [`Dim3`] grid of thread
//!   blocks. The block body receives a [`BlockCtx`]; calling
//!   [`BlockCtx::threads`] runs a *phase* for every thread of the block, and
//!   consecutive `threads` calls are separated by an implicit block-wide
//!   barrier — the direct analogue of `__syncthreads()`.
//! * [`Shared`] is block-shared memory; [`Regs`] are per-thread registers
//!   that survive across barriers.
//! * Atomic operations (`atomic_add`, `atomic_min`, CAS, …) are provided on
//!   both global buffers and shared memory, with float variants implemented
//!   as compare-and-swap loops exactly like their CUDA counterparts.
//!
//! Blocks are independent (as on real hardware) and are executed in parallel
//! across host threads; [`Device::set_deterministic`] serializes them in
//! block order so floating-point atomic reduction orders are reproducible.
//!
//! ## Performance model
//!
//! Executed kernels report counted work (flops, integer ops, global/shared
//! traffic, atomics) which [`perf::model_kernel`] converts into a time
//! estimate using a roofline-style model: occupancy-limited compute
//! throughput vs. memory bandwidth, plus atomic and kernel-launch overheads.
//! See [`perf`] for the formulas and their calibration sources.
//!
//! ## Example
//!
//! ```
//! use gpu_sim::{Device, DeviceConfig, Dim3};
//!
//! let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
//! let xs = dev.htod("xs", &[1.0f32, 2.0, 3.0, 4.0]).unwrap();
//! let sum = dev.alloc_zeroed::<f32>("sum", 1).unwrap();
//!
//! dev.launch("sum", Dim3::x(1), Dim3::x(4), |blk| {
//!     blk.threads(|t| {
//!         let v = xs.ld(t, t.tid as usize);
//!         sum.atomic_add(t, 0, v);
//!     });
//! });
//!
//! assert_eq!(dev.dtoh(&sum)[0], 10.0);
//! assert!(dev.elapsed_us() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atomic;
pub mod buffer;
pub mod config;
pub mod device;
pub mod dim;
pub mod error;
pub mod kernel;
pub mod memory;
pub mod perf;
pub mod sanitizer;
pub mod shared;
pub mod stats;
pub mod trace;

pub use buffer::DeviceBuffer;
pub use config::DeviceConfig;
pub use device::{Device, StreamId};
pub use dim::Dim3;
pub use error::{GpuError, Result};
pub use kernel::{BlockCtx, Regs, ThreadCtx};
pub use perf::KernelTiming;
pub use sanitizer::{AccessKind, AccessSite, HazardFinding, HazardKind, SanitizerMode};
pub use shared::Shared;
pub use stats::{DeviceReport, KernelStats, WorkCounters};
pub use trace::{Trace, TraceEvent};
