//! Global-memory accounting: a pre-allocating pool with peak tracking.
//!
//! GPU-PROCLUS allocates all device memory once up-front and reuses it across
//! iterations (paper §4.1) because `cudaMalloc`/`cudaFree` are expensive. The
//! pool mirrors that: allocations are explicit, capacity-checked (so the 8 M
//! point out-of-memory wall from §5.3 is reproducible), and the peak is
//! recorded for the space-usage experiment (Fig. 3f).

use std::collections::BTreeMap;

use crate::error::{GpuError, Result};

/// Accounting state for device global memory.
#[derive(Debug)]
pub struct MemoryPool {
    capacity: usize,
    used: usize,
    peak: usize,
    next_id: u64,
    live: BTreeMap<u64, Allocation>,
    /// Simulated cost of one allocation call, in microseconds.
    alloc_cost_us: f64,
    /// Accumulated simulated allocation time.
    alloc_time_us: f64,
}

/// One live allocation.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Human-readable label (buffer name).
    pub label: String,
    /// Size in logical bytes.
    pub bytes: usize,
}

impl MemoryPool {
    /// Creates a pool with `capacity` bytes. `cudaMalloc` latency defaults
    /// to 100 µs per call, which is what makes up-front allocation worth it.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            used: 0,
            peak: 0,
            next_id: 0,
            live: BTreeMap::new(),
            alloc_cost_us: 100.0,
            alloc_time_us: 0.0,
        }
    }

    /// Registers an allocation of `bytes` labeled `label`.
    pub fn alloc(&mut self, label: &str, bytes: usize) -> Result<u64> {
        let available = self.capacity - self.used;
        if bytes > available {
            return Err(GpuError::OutOfMemory {
                requested: bytes,
                available,
                label: label.to_string(),
            });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        self.alloc_time_us += self.alloc_cost_us;
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(
            id,
            Allocation {
                label: label.to_string(),
                bytes,
            },
        );
        Ok(id)
    }

    /// Releases allocation `id`.
    pub fn free(&mut self, id: u64) -> Result<()> {
        match self.live.remove(&id) {
            Some(a) => {
                self.used -= a.bytes;
                Ok(())
            }
            None => Err(GpuError::InvalidBuffer {
                label: format!("allocation #{id}"),
            }),
        }
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.used
    }

    /// High-water mark of allocated bytes.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Simulated time spent in allocation calls so far (µs).
    pub fn alloc_time_us(&self) -> f64 {
        self.alloc_time_us
    }

    /// Cost of one allocation or free call (µs) — why GPU-PROCLUS
    /// allocates everything up front (§4.1).
    pub fn alloc_cost_us(&self) -> f64 {
        self.alloc_cost_us
    }

    /// Live allocations, largest first — useful when diagnosing an OOM.
    pub fn live_allocations(&self) -> Vec<Allocation> {
        let mut v: Vec<Allocation> = self.live.values().cloned().collect();
        v.sort_by_key(|a| std::cmp::Reverse(a.bytes));
        v
    }

    /// Resets the peak tracker to the current usage (used between
    /// experiment repetitions).
    pub fn reset_peak(&mut self) {
        self.peak = self.used;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip_restores_usage() {
        let mut p = MemoryPool::new(1000);
        let a = p.alloc("a", 400).unwrap();
        let b = p.alloc("b", 500).unwrap();
        assert_eq!(p.used(), 900);
        p.free(a).unwrap();
        assert_eq!(p.used(), 500);
        p.free(b).unwrap();
        assert_eq!(p.used(), 0);
        assert_eq!(p.peak(), 900);
    }

    #[test]
    fn oom_reports_requested_and_available() {
        let mut p = MemoryPool::new(100);
        p.alloc("x", 80).unwrap();
        match p.alloc("big", 50) {
            Err(GpuError::OutOfMemory {
                requested,
                available,
                ..
            }) => {
                assert_eq!(requested, 50);
                assert_eq!(available, 20);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
        // A failed allocation must not change usage.
        assert_eq!(p.used(), 80);
    }

    #[test]
    fn double_free_is_an_error() {
        let mut p = MemoryPool::new(100);
        let a = p.alloc("a", 10).unwrap();
        p.free(a).unwrap();
        assert!(p.free(a).is_err());
    }

    #[test]
    fn peak_reset_tracks_current() {
        let mut p = MemoryPool::new(1000);
        let a = p.alloc("a", 600).unwrap();
        p.free(a).unwrap();
        assert_eq!(p.peak(), 600);
        p.reset_peak();
        assert_eq!(p.peak(), 0);
    }

    #[test]
    fn alloc_time_accumulates() {
        let mut p = MemoryPool::new(1000);
        p.alloc("a", 1).unwrap();
        p.alloc("b", 1).unwrap();
        assert_eq!(p.alloc_time_us(), 200.0);
    }
}
