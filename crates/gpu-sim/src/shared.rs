//! Block-shared memory.
//!
//! On real hardware shared memory is an SM-local scratchpad an order of
//! magnitude faster than global memory; the PROCLUS kernels stage medoid
//! rows, per-point minima (Alg. 5) and per-cluster centroids (Alg. 6) there.
//! In the simulator a [`Shared`] allocation lives for the duration of one
//! block's execution; accesses are counted separately from global traffic so
//! the performance model can price them accordingly, and its size feeds the
//! occupancy calculation.

use std::cell::Cell;
use std::marker::PhantomData;

use crate::atomic::{AtomicNum, Scalar};
use crate::kernel::ThreadCtx;
use crate::sanitizer::AccessKind;

/// A block-shared memory array of `T`.
///
/// Created with [`crate::BlockCtx::shared`]. A block executes its threads
/// sequentially between barriers, so interior mutability via `Cell` is
/// sufficient; *semantically* the accesses behave like CUDA shared memory
/// including atomics (which here are trivially linearizable).
pub struct Shared<T: Scalar> {
    words: Box<[Cell<u64>]>,
    /// Allocation order within the block (`shared#<id>` in sanitizer
    /// findings).
    id: u32,
    _marker: PhantomData<T>,
}

impl<T: Scalar> Shared<T> {
    pub(crate) fn new(len: usize, id: u32) -> Self {
        Self {
            words: (0..len).map(|_| Cell::new(T::ZERO.to_word())).collect(),
            id,
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if zero-length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Shared-memory load.
    #[inline(always)]
    pub fn ld(&self, t: &mut ThreadCtx<'_>, i: usize) -> T {
        t.count_shared_access();
        t.san_shared(self.id, i, AccessKind::Read);
        T::from_word(self.words[i].get())
    }

    /// Shared-memory store.
    #[inline(always)]
    pub fn st(&self, t: &mut ThreadCtx<'_>, i: usize, v: T) {
        t.count_shared_access();
        t.san_shared(self.id, i, AccessKind::Write);
        self.words[i].set(v.to_word());
    }

    /// Fills the array with `v`, charged to the calling thread.
    pub fn fill(&self, t: &mut ThreadCtx<'_>, v: T) {
        for i in 0..self.len() {
            self.st(t, i, v);
        }
    }
}

impl<T: AtomicNum> Shared<T> {
    #[inline(always)]
    fn rmw(&self, t: &mut ThreadCtx<'_>, i: usize, f: impl FnOnce(T) -> T) -> T {
        t.count_shared_atomic();
        t.san_shared(self.id, i, AccessKind::Atomic);
        let old = T::from_word(self.words[i].get());
        self.words[i].set(f(old).to_word());
        old
    }

    /// Shared `atomicAdd`, returning the previous value.
    #[inline(always)]
    pub fn atomic_add(&self, t: &mut ThreadCtx<'_>, i: usize, v: T) -> T {
        self.rmw(t, i, |x| x.add(v))
    }

    /// Shared `atomicMin`, returning the previous value.
    #[inline(always)]
    pub fn atomic_min(&self, t: &mut ThreadCtx<'_>, i: usize, v: T) -> T {
        self.rmw(t, i, |x| x.min_v(v))
    }

    /// Shared `atomicMax`, returning the previous value.
    #[inline(always)]
    pub fn atomic_max(&self, t: &mut ThreadCtx<'_>, i: usize, v: T) -> T {
        self.rmw(t, i, |x| x.max_v(v))
    }
}

#[cfg(test)]
mod tests {
    use crate::{Device, DeviceConfig, Dim3};

    #[test]
    fn shared_min_then_compare_pattern() {
        // The AssignPoints idiom: atomicMin into shared, barrier, compare.
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let winner = dev.alloc_zeroed::<u32>("winner", 1).unwrap();
        dev.launch("argmin", Dim3::x(1), Dim3::x(64), |blk| {
            let dist = blk.shared::<f32>(1);
            let mine = blk.regs::<f32>();
            blk.thread0(|t| {
                dist.st(t, 0, f32::INFINITY);
            });
            blk.threads(|t| {
                let v = ((t.tid as i32 - 17).abs()) as f32;
                mine.set(t, v);
                dist.atomic_min(t, 0, v);
            });
            blk.threads(|t| {
                if dist.ld(t, 0) == mine.get(t) {
                    winner.st(t, 0, t.tid);
                }
            });
        });
        assert_eq!(winner.peek(0), 17);
    }

    #[test]
    fn shared_accesses_are_counted_separately() {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.launch("sh", Dim3::x(2), Dim3::x(32), |blk| {
            let s = blk.shared::<f64>(4);
            blk.threads(|t| {
                s.st(t, (t.tid % 4) as usize, 1.0);
                s.atomic_add(t, 0, 1.0);
            });
        });
        let rep = dev.report();
        let w = &rep.kernels["sh"].work;
        assert_eq!(w.shared_accesses, 2 * 32);
        assert_eq!(w.shared_atomics, 2 * 32);
        assert_eq!(w.global_loads + w.global_stores, 0);
    }

    #[test]
    fn shared_allocation_feeds_occupancy() {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.launch("big-shared", Dim3::x(100), Dim3::x(64), |blk| {
            // 32 KiB/block halves the blocks/SM vs. unlimited.
            let s = blk.shared::<f64>(4096);
            blk.threads(|t| {
                s.st(t, t.tid as usize % 4096, 0.0);
            });
        });
        let rep = dev.report();
        let t = rep.kernels["big-shared"].representative.as_ref().unwrap();
        assert!(t.timing.theoretical_occupancy <= 0.51);
    }
}
