//! Kernel sanitizer: race/hazard and uninitialized-read detection.
//!
//! The simulator's analogue of `compute-sanitizer --tool racecheck` and
//! `--tool initcheck`. Because every device-side memory access flows through
//! a [`crate::ThreadCtx`] (see [`crate::DeviceBuffer`] and [`crate::Shared`]),
//! the simulator can record, per kernel launch, *which* thread touched
//! *which* element in *which* barrier phase — and from those access sets
//! prove (or refute) that a kernel is hazard-free:
//!
//! * **Shared-memory races** — two threads of one block touching the same
//!   [`crate::Shared`] slot in the same phase (between two barriers) with at
//!   least one non-atomic write. On hardware the outcome depends on warp
//!   scheduling; the simulator's sequential thread loop would silently hide
//!   it.
//! * **Global-memory races** — conflicting non-atomic accesses to the same
//!   [`crate::DeviceBuffer`] element from *different blocks* of one launch
//!   (blocks are unordered, so no phase structure can save this; only
//!   atomics or disjoint indices can).
//! * **Mixed atomic/non-atomic hazards** — one side atomic, the other a
//!   plain load/store, to the same location, unordered (same phase within a
//!   block, or cross-block within a launch). Atomicity only protects
//!   accesses that are *all* atomic.
//! * **Uninitialized reads** — a read (or atomic read-modify-write) of an
//!   element never initialized by `htod`/`alloc`/`alloc_zeroed`/`memset`/
//!   `upload`/a prior `st`. Shared memory has block lifetime, so a shared
//!   slot must be written *in this block* before it is read — exactly the
//!   CUDA rule (`__shared__` arrays are never zeroed).
//!
//! Enable with [`crate::Device::set_sanitizer`]. In
//! [`SanitizerMode::Report`] findings accumulate on the device (see
//! [`crate::Device::hazards`] and [`crate::DeviceReport`]); in
//! [`SanitizerMode::Abort`] the offending launch panics with the first
//! finding, like `compute-sanitizer --error-exitcode`. Expect roughly a
//! 2–5× functional-execution slowdown while enabled: every access appends
//! to per-location hash-map state. The mode is intended for tests and CI,
//! not for timing runs (modeled kernel timings are unaffected either way).

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::buffer::BufInner;
use crate::error::GpuError;

/// How the sanitizer reacts to detected hazards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanitizerMode {
    /// No recording, no overhead (default).
    #[default]
    Off,
    /// Record findings on the device; execution continues.
    Report,
    /// Record findings and panic at the end of the offending launch.
    Abort,
}

/// The kind of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Non-atomic load (`ld`).
    Read,
    /// Non-atomic store (`st`, `fill`).
    Write,
    /// Atomic read-modify-write (`atomic_add`, `atomic_min`, CAS, …).
    Atomic,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Atomic => "atomic",
        })
    }
}

/// Coordinates of one recorded access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSite {
    /// Linear block index within the grid.
    pub block: u64,
    /// Thread index within the block.
    pub thread: u32,
    /// Barrier phase within the block (1-based; each
    /// [`crate::BlockCtx::threads`] / [`crate::BlockCtx::thread0`] call is
    /// one phase).
    pub phase: u32,
    /// What the access did.
    pub kind: AccessKind,
}

impl fmt::Display for AccessSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block {} thread {} phase {} ({})",
            self.block, self.thread, self.phase, self.kind
        )
    }
}

/// The class of a detected hazard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardKind {
    /// Intra-block shared-memory race (same slot, same phase, different
    /// threads, at least one non-atomic write).
    SharedRace,
    /// Cross-block global-memory race (same element, different blocks, at
    /// least one non-atomic write).
    GlobalRace,
    /// Atomic and non-atomic access to the same unordered location.
    MixedAtomic,
    /// Read of a never-initialized element.
    UninitRead,
}

impl fmt::Display for HazardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HazardKind::SharedRace => "shared-memory race",
            HazardKind::GlobalRace => "global-memory race",
            HazardKind::MixedAtomic => "mixed atomic/non-atomic access",
            HazardKind::UninitRead => "uninitialized read",
        })
    }
}

/// One detected hazard.
#[derive(Debug, Clone, PartialEq)]
pub struct HazardFinding {
    /// Kernel name as given to [`crate::Device::launch`].
    pub kernel: String,
    /// What went wrong.
    pub kind: HazardKind,
    /// Label of the buffer (allocation label, or `shared#N` for the N-th
    /// shared array of the block).
    pub buffer: String,
    /// Element index (absolute within the allocation; accesses through
    /// [`crate::DeviceBuffer::slice`] views report the parent index).
    pub index: usize,
    /// The earlier of the two conflicting accesses (for
    /// [`HazardKind::UninitRead`], the reading access itself).
    pub first: AccessSite,
    /// The later conflicting access.
    pub second: AccessSite,
}

impl HazardFinding {
    /// Converts the finding into the structured error variant.
    pub fn to_error(&self) -> GpuError {
        GpuError::Hazard {
            kernel: self.kernel.clone(),
            buffer: self.buffer.clone(),
            index: self.index,
            threads: if self.first == self.second {
                self.first.to_string()
            } else {
                format!("{} vs {}", self.first, self.second)
            },
        }
    }
}

impl fmt::Display for HazardFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in kernel `{}` on `{}`[{}]: {}",
            self.kind, self.kernel, self.buffer, self.index, self.first
        )?;
        if self.first != self.second {
            write!(f, " vs {}", self.second)?;
        }
        Ok(())
    }
}

/// Upper bound on distinct findings kept per launch; further hazards only
/// bump [`LaunchSanitizer::truncated`]. One finding per (kind, buffer,
/// element) is kept, so real kernels rarely approach this.
const MAX_FINDINGS_PER_LAUNCH: usize = 256;

// ------------------------------------------------------------- block level

#[derive(Default)]
struct SharedLoc {
    /// Phase the `read`/`write`/`atomic` sites belong to (state resets at
    /// each barrier — barriers order accesses, so only same-phase accesses
    /// can race).
    phase: u32,
    read: Option<AccessSite>,
    write: Option<AccessSite>,
    atomic: Option<AccessSite>,
    /// A store or atomic has landed at any point in this block's lifetime.
    ever_written: bool,
    uninit_reported: bool,
    race_reported: bool,
}

#[derive(Default)]
struct GlobalLoc {
    read: Option<AccessSite>,
    write: Option<AccessSite>,
    atomic: Option<AccessSite>,
    uninit_reported: bool,
}

/// Per-block access recorder. Lives inside a [`crate::BlockCtx`] while the
/// block executes (single host thread, so no synchronization needed) and is
/// merged into the launch-level [`LaunchSanitizer`] when the block retires.
pub(crate) struct BlockSanitizer {
    shared: HashMap<(u32, usize), SharedLoc>,
    global: HashMap<(u64, usize), GlobalLoc>,
    labels: HashMap<u64, String>,
    findings: Vec<HazardFinding>,
}

impl BlockSanitizer {
    pub(crate) fn new() -> Self {
        Self {
            shared: HashMap::new(),
            global: HashMap::new(),
            labels: HashMap::new(),
            findings: Vec::new(),
        }
    }

    /// Records one shared-memory access and checks the intra-block rules.
    pub(crate) fn shared_access(&mut self, id: u32, index: usize, site: AccessSite) {
        let loc = self.shared.entry((id, index)).or_default();
        if loc.phase != site.phase {
            // A barrier separates this access from everything recorded so
            // far: only same-phase accesses can race.
            loc.phase = site.phase;
            loc.read = None;
            loc.write = None;
            loc.atomic = None;
        }

        let mut found: [Option<(HazardKind, AccessSite, AccessSite)>; 2] = [None, None];
        if !loc.ever_written
            && !loc.uninit_reported
            && matches!(site.kind, AccessKind::Read | AccessKind::Atomic)
        {
            loc.uninit_reported = true;
            found[0] = Some((HazardKind::UninitRead, site, site));
        }

        if !loc.race_reported {
            let other = |s: Option<AccessSite>| s.filter(|p| p.thread != site.thread);
            let conflict = match site.kind {
                AccessKind::Write => other(loc.write)
                    .or(other(loc.read))
                    .map(|p| (p, HazardKind::SharedRace))
                    .or_else(|| other(loc.atomic).map(|p| (p, HazardKind::MixedAtomic))),
                AccessKind::Read => other(loc.write)
                    .map(|p| (p, HazardKind::SharedRace))
                    .or_else(|| other(loc.atomic).map(|p| (p, HazardKind::MixedAtomic))),
                AccessKind::Atomic => other(loc.write)
                    .or(other(loc.read))
                    .map(|p| (p, HazardKind::MixedAtomic)),
            };
            if let Some((prior, kind)) = conflict {
                loc.race_reported = true;
                found[1] = Some((kind, prior, site));
            }
        }

        match site.kind {
            AccessKind::Read => {
                loc.read.get_or_insert(site);
            }
            AccessKind::Write => {
                loc.write.get_or_insert(site);
                loc.ever_written = true;
            }
            AccessKind::Atomic => {
                loc.atomic.get_or_insert(site);
                loc.ever_written = true;
            }
        }

        for (kind, first, second) in found.into_iter().flatten() {
            self.findings.push(HazardFinding {
                kernel: String::new(), // filled in by the launch merge
                kind,
                buffer: format!("shared#{id}"),
                index,
                first,
                second,
            });
        }
    }

    /// Records one global-memory access; cross-block conflicts are found
    /// when this block's summary merges into the [`LaunchSanitizer`].
    /// `index` is absolute within the allocation, so views alias correctly.
    pub(crate) fn global_access(&mut self, inner: &BufInner, index: usize, site: AccessSite) {
        // The init bit must be tested before the caller performs the access
        // (an atomic marks its element initialized as a side effect).
        let uninit =
            matches!(site.kind, AccessKind::Read | AccessKind::Atomic) && !inner.is_init(index);
        self.labels
            .entry(inner.pool_id)
            .or_insert_with(|| inner.label.clone());
        let loc = self.global.entry((inner.pool_id, index)).or_default();
        let report_uninit = uninit && !loc.uninit_reported;
        if report_uninit {
            loc.uninit_reported = true;
        }
        let slot = match site.kind {
            AccessKind::Read => &mut loc.read,
            AccessKind::Write => &mut loc.write,
            AccessKind::Atomic => &mut loc.atomic,
        };
        slot.get_or_insert(site);
        if report_uninit {
            self.findings.push(HazardFinding {
                kernel: String::new(),
                kind: HazardKind::UninitRead,
                buffer: inner.label.clone(),
                index,
                first: site,
                second: site,
            });
        }
    }
}

// ------------------------------------------------------------ launch level

#[derive(Default)]
struct MergedLoc {
    read: Option<AccessSite>,
    write: Option<AccessSite>,
    atomic: Option<AccessSite>,
    reported: bool,
}

/// Launch-level aggregation: blocks merge their summaries here (under the
/// launch's statistics mutex) and cross-block conflicts fall out of the
/// merge. Every entry already present when a block merges is guaranteed to
/// come from a *different* block, because each block merges exactly once.
pub(crate) struct LaunchSanitizer {
    global: HashMap<(u64, usize), MergedLoc>,
    labels: HashMap<u64, String>,
    findings: Vec<HazardFinding>,
    /// Dedup key: one finding per (kind, buffer, element).
    seen: HashSet<(u8, String, usize)>,
    /// Findings dropped by dedup or the launch cap.
    truncated: u64,
}

impl LaunchSanitizer {
    pub(crate) fn new() -> Self {
        Self {
            global: HashMap::new(),
            labels: HashMap::new(),
            findings: Vec::new(),
            seen: HashSet::new(),
            truncated: 0,
        }
    }

    fn push(&mut self, finding: HazardFinding) {
        let kind_tag = match finding.kind {
            HazardKind::SharedRace => 0u8,
            HazardKind::GlobalRace => 1,
            HazardKind::MixedAtomic => 2,
            HazardKind::UninitRead => 3,
        };
        let key = (kind_tag, finding.buffer.clone(), finding.index);
        if !self.seen.insert(key) || self.findings.len() >= MAX_FINDINGS_PER_LAUNCH {
            self.truncated += 1;
            return;
        }
        self.findings.push(finding);
    }

    /// Folds one retired block's recorder into the launch state.
    pub(crate) fn merge_block(&mut self, block: BlockSanitizer) {
        for finding in block.findings {
            self.push(finding);
        }
        for (pool, label) in block.labels {
            self.labels.entry(pool).or_insert(label);
        }
        for ((pool, index), loc) in block.global {
            let merged = self.global.entry((pool, index)).or_default();
            if !merged.reported {
                // (mine, prior-from-another-block, verdict) — races first so
                // a location that is both racy and mixed reads as a race.
                let conflict = [
                    (loc.write, merged.write, HazardKind::GlobalRace),
                    (loc.write, merged.read, HazardKind::GlobalRace),
                    (loc.read, merged.write, HazardKind::GlobalRace),
                    (loc.write, merged.atomic, HazardKind::MixedAtomic),
                    (loc.atomic, merged.write, HazardKind::MixedAtomic),
                    (loc.read, merged.atomic, HazardKind::MixedAtomic),
                    (loc.atomic, merged.read, HazardKind::MixedAtomic),
                ]
                .into_iter()
                .find_map(|(mine, prior, kind)| Some((prior?, mine?, kind)));
                if let Some((first, second, kind)) = conflict {
                    merged.reported = true;
                    let buffer = self
                        .labels
                        .get(&pool)
                        .cloned()
                        .unwrap_or_else(|| format!("pool#{pool}"));
                    self.push(HazardFinding {
                        kernel: String::new(),
                        kind,
                        buffer,
                        index,
                        first,
                        second,
                    });
                }
            }
            let merged = self.global.entry((pool, index)).or_default();
            if merged.read.is_none() {
                merged.read = loc.read;
            }
            if merged.write.is_none() {
                merged.write = loc.write;
            }
            if merged.atomic.is_none() {
                merged.atomic = loc.atomic;
            }
        }
    }

    /// Finalizes the launch: stamps the kernel name onto every finding.
    pub(crate) fn finish(mut self, kernel: &str) -> (Vec<HazardFinding>, u64) {
        for f in &mut self.findings {
            f.kernel = kernel.to_string();
        }
        (self.findings, self.truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(block: u64, thread: u32, phase: u32, kind: AccessKind) -> AccessSite {
        AccessSite {
            block,
            thread,
            phase,
            kind,
        }
    }

    #[test]
    fn shared_same_thread_rmw_is_clean() {
        let mut bs = BlockSanitizer::new();
        bs.shared_access(0, 3, site(0, 5, 1, AccessKind::Write));
        bs.shared_access(0, 3, site(0, 5, 1, AccessKind::Read));
        bs.shared_access(0, 3, site(0, 5, 1, AccessKind::Write));
        assert!(bs.findings.is_empty());
    }

    #[test]
    fn shared_cross_thread_same_phase_write_read_races() {
        let mut bs = BlockSanitizer::new();
        bs.shared_access(0, 0, site(0, 0, 1, AccessKind::Write));
        bs.shared_access(0, 0, site(0, 1, 1, AccessKind::Read));
        assert_eq!(bs.findings.len(), 1);
        assert_eq!(bs.findings[0].kind, HazardKind::SharedRace);
    }

    #[test]
    fn shared_cross_thread_different_phase_is_clean() {
        let mut bs = BlockSanitizer::new();
        bs.shared_access(0, 0, site(0, 0, 1, AccessKind::Write));
        bs.shared_access(0, 0, site(0, 1, 2, AccessKind::Read));
        assert!(bs.findings.is_empty());
    }

    #[test]
    fn shared_atomic_only_is_clean_but_mixed_is_not() {
        let mut bs = BlockSanitizer::new();
        bs.shared_access(0, 0, site(0, 9, 1, AccessKind::Write)); // init by one thread
        bs.shared_access(0, 0, site(0, 0, 2, AccessKind::Atomic));
        bs.shared_access(0, 0, site(0, 1, 2, AccessKind::Atomic));
        assert!(bs.findings.is_empty());
        bs.shared_access(0, 0, site(0, 2, 2, AccessKind::Read));
        assert_eq!(bs.findings.len(), 1);
        assert_eq!(bs.findings[0].kind, HazardKind::MixedAtomic);
    }

    #[test]
    fn shared_uninit_read_is_flagged_once() {
        let mut bs = BlockSanitizer::new();
        bs.shared_access(2, 7, site(0, 0, 1, AccessKind::Read));
        bs.shared_access(2, 7, site(0, 1, 1, AccessKind::Read));
        let uninit: Vec<_> = bs
            .findings
            .iter()
            .filter(|f| f.kind == HazardKind::UninitRead)
            .collect();
        assert_eq!(uninit.len(), 1);
        assert_eq!(uninit[0].buffer, "shared#2");
        assert_eq!(uninit[0].index, 7);
    }

    #[test]
    fn launch_dedups_and_caps() {
        let mut ls = LaunchSanitizer::new();
        for _ in 0..3 {
            ls.push(HazardFinding {
                kernel: String::new(),
                kind: HazardKind::GlobalRace,
                buffer: "b".into(),
                index: 0,
                first: site(0, 0, 1, AccessKind::Write),
                second: site(1, 0, 1, AccessKind::Write),
            });
        }
        let (findings, truncated) = ls.finish("k");
        assert_eq!(findings.len(), 1);
        assert_eq!(truncated, 2);
        assert_eq!(findings[0].kernel, "k");
    }
}
