//! Integration tests for the kernel sanitizer: seeded racy/uninit fixture
//! kernels must be detected (with the correct kernel name, buffer label and
//! element index), and clean barrier-separated kernels must produce zero
//! findings under both deterministic and parallel block execution.

use gpu_sim::{Device, DeviceConfig, Dim3, GpuError, HazardKind, SanitizerMode};

fn device(mode: SanitizerMode) -> Device {
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
    dev.set_deterministic(true);
    dev.set_sanitizer(mode);
    dev
}

// ----------------------------------------------------------- true positives

#[test]
fn racy_shared_reduction_is_detected() {
    // The classic broken reduction: every thread does a non-atomic
    // read-modify-write of the same shared slot in one phase.
    let mut dev = device(SanitizerMode::Report);
    let out = dev.alloc_zeroed::<f32>("out", 1).unwrap();
    dev.launch("racy_reduce", Dim3::x(1), Dim3::x(32), |blk| {
        let acc = blk.shared::<f32>(1);
        blk.thread0(|t| acc.st(t, 0, 0.0));
        blk.threads(|t| {
            let v = acc.ld(t, 0); // racy: no barrier, no atomic
            acc.st(t, 0, v + 1.0);
        });
        blk.thread0(|t| {
            let v = acc.ld(t, 0);
            out.st(t, 0, v);
        });
    });
    let hazards = dev.hazards();
    assert!(!hazards.is_empty(), "the racy reduction must be flagged");
    let h = &hazards[0];
    assert_eq!(h.kind, HazardKind::SharedRace);
    assert_eq!(h.kernel, "racy_reduce");
    assert_eq!(h.buffer, "shared#0");
    assert_eq!(h.index, 0);
    assert_ne!(
        h.first.thread, h.second.thread,
        "a race needs two distinct threads"
    );
    assert_eq!(h.first.phase, h.second.phase);
}

#[test]
fn racy_cross_block_scatter_is_detected() {
    // Every block non-atomically stores to the same global element.
    let mut dev = device(SanitizerMode::Report);
    let sum = dev.alloc_zeroed::<u32>("sum", 4).unwrap();
    dev.launch("racy_scatter", Dim3::x(8), Dim3::x(16), |blk| {
        let b = blk.block.x;
        blk.thread0(|t| {
            let old = sum.ld(t, 2);
            sum.st(t, 2, old + b);
        });
    });
    let hazards = dev.hazards();
    assert!(
        !hazards.is_empty(),
        "the cross-block scatter must be flagged"
    );
    let h = &hazards[0];
    assert_eq!(h.kind, HazardKind::GlobalRace);
    assert_eq!(h.kernel, "racy_scatter");
    assert_eq!(h.buffer, "sum");
    assert_eq!(h.index, 2);
    assert_ne!(
        h.first.block, h.second.block,
        "a global race needs two distinct blocks"
    );
}

#[test]
fn mixed_atomic_and_plain_store_is_detected() {
    // One block updates a counter atomically while another stores to it.
    let mut dev = device(SanitizerMode::Report);
    let c = dev.alloc_zeroed::<u32>("counter", 1).unwrap();
    dev.launch("mixed", Dim3::x(4), Dim3::x(8), |blk| {
        let b = blk.block.x;
        blk.thread0(|t| {
            if b == 0 {
                c.st(t, 0, 7); // non-atomic "reset" racing the atomics
            } else {
                c.atomic_inc(t, 0);
            }
        });
    });
    let kinds: Vec<HazardKind> = dev.hazards().iter().map(|h| h.kind).collect();
    assert!(
        kinds.contains(&HazardKind::MixedAtomic),
        "expected a mixed-atomic finding, got {kinds:?}"
    );
}

#[test]
fn shared_mixed_atomic_same_phase_is_detected() {
    let mut dev = device(SanitizerMode::Report);
    dev.launch("shared_mixed", Dim3::x(1), Dim3::x(16), |blk| {
        let s = blk.shared::<u32>(1);
        blk.thread0(|t| s.st(t, 0, 0));
        blk.threads(|t| {
            if t.tid == 3 {
                s.st(t, 0, 1); // plain store racing the atomics below
            } else {
                s.atomic_add(t, 0, 1);
            }
        });
    });
    let h = dev
        .hazards()
        .iter()
        .find(|h| h.kind == HazardKind::MixedAtomic)
        .expect("mixed shared access must be flagged");
    assert_eq!(h.kernel, "shared_mixed");
    assert_eq!(h.buffer, "shared#0");
}

#[test]
fn uninitialized_global_read_is_detected() {
    let mut dev = device(SanitizerMode::Report);
    let scratch = dev.alloc_uninit::<f32>("scratch", 8).unwrap();
    let out = dev.alloc_zeroed::<f32>("out", 1).unwrap();
    dev.launch("uninit_read", Dim3::x(1), Dim3::x(1), |blk| {
        blk.thread0(|t| {
            let v = scratch.ld(t, 3); // never written
            out.st(t, 0, v);
        });
    });
    let hazards = dev.hazards();
    assert_eq!(hazards.len(), 1);
    let h = &hazards[0];
    assert_eq!(h.kind, HazardKind::UninitRead);
    assert_eq!(h.kernel, "uninit_read");
    assert_eq!(h.buffer, "scratch");
    assert_eq!(h.index, 3);
}

#[test]
fn uninitialized_shared_read_is_detected() {
    // CUDA `__shared__` memory is garbage until written; reading (or
    // atomically accumulating into) it before any store is a bug even
    // though the simulator backs it with zeros.
    let mut dev = device(SanitizerMode::Report);
    dev.launch("uninit_shared", Dim3::x(1), Dim3::x(4), |blk| {
        let acc = blk.shared::<f64>(2);
        blk.threads(|t| {
            acc.atomic_add(t, 1, 1.0); // no prior init
        });
    });
    let hazards = dev.hazards();
    assert!(!hazards.is_empty());
    let h = &hazards[0];
    assert_eq!(h.kind, HazardKind::UninitRead);
    assert_eq!(h.buffer, "shared#0");
    assert_eq!(h.index, 1);
}

#[test]
fn overlapping_views_race_at_the_parent_index() {
    // Two views of one slab alias the same underlying element; conflicting
    // block writes through them must be reported against the allocation.
    let mut dev = device(SanitizerMode::Report);
    let slab = dev.alloc_zeroed::<u32>("slab", 16).unwrap();
    let a = slab.slice(0, 12);
    let b = slab.slice(8, 8);
    dev.launch("view_race", Dim3::x(2), Dim3::x(1), |blk| {
        let which = blk.block.x;
        blk.thread0(|t| {
            if which == 0 {
                a.st(t, 10, 1); // slab[10]
            } else {
                b.st(t, 2, 2); // also slab[10]
            }
        });
    });
    let hazards = dev.hazards();
    assert_eq!(hazards.len(), 1);
    assert_eq!(hazards[0].kind, HazardKind::GlobalRace);
    assert_eq!(hazards[0].buffer, "slab");
    assert_eq!(hazards[0].index, 10);
}

// ---------------------------------------------------------- false positives

/// A representative well-synchronized kernel: staged shared loads, a
/// barrier, an atomic reduction, a barrier, a single-thread read-back and
/// disjoint global stores.
fn clean_kernel(dev: &mut Device) {
    let input = dev
        .htod("input", &(0..1024).map(|i| i as f32).collect::<Vec<_>>())
        .unwrap();
    let out = dev.alloc_zeroed::<f32>("out", 64).unwrap();
    dev.launch("clean", Dim3::x(64), Dim3::x(16), |blk| {
        let stage = blk.shared::<f32>(16);
        let acc = blk.shared::<f32>(1);
        let b = blk.block.x as usize;
        blk.thread0(|t| acc.st(t, 0, 0.0));
        blk.threads(|t| {
            let v = input.ld(t, b * 16 + t.tid as usize);
            stage.st(t, t.tid as usize, v);
        });
        blk.threads(|t| {
            // Post-barrier read of a *different* thread's slot, then an
            // atomic accumulation — all ordered or atomic, never racy.
            let peer = (t.tid as usize + 1) % 16;
            let v = stage.ld(t, peer);
            acc.atomic_add(t, 0, v);
        });
        blk.thread0(|t| {
            let v = acc.ld(t, 0);
            out.st(t, b, v);
        });
    });
}

#[test]
fn clean_kernel_has_zero_findings_deterministic() {
    let mut dev = device(SanitizerMode::Abort);
    clean_kernel(&mut dev);
    assert!(dev.hazards().is_empty());
    dev.check_hazards().unwrap();
}

#[test]
fn clean_kernel_has_zero_findings_parallel() {
    // Detection is access-set based, so it must not depend on block timing:
    // repeat under parallel block execution.
    for _ in 0..4 {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.set_deterministic(false);
        dev.set_sanitizer(SanitizerMode::Abort);
        clean_kernel(&mut dev);
        assert!(dev.hazards().is_empty());
    }
}

#[test]
fn racy_kernel_detected_under_parallel_execution_too() {
    for _ in 0..4 {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.set_deterministic(false);
        dev.set_sanitizer(SanitizerMode::Report);
        let target = dev.alloc_zeroed::<u32>("target", 1).unwrap();
        dev.launch("par_racy", Dim3::x(16), Dim3::x(8), |blk| {
            let b = blk.block.x;
            blk.thread0(|t| {
                target.st(t, 0, b);
            });
        });
        assert!(
            dev.hazards()
                .iter()
                .any(|h| h.kind == HazardKind::GlobalRace && h.buffer == "target"),
            "parallel execution must not hide the race"
        );
    }
}

#[test]
fn same_phase_distinct_elements_are_clean() {
    let mut dev = device(SanitizerMode::Abort);
    let buf = dev.alloc_zeroed::<u64>("buf", 2048).unwrap();
    dev.launch("disjoint", Dim3::x(16), Dim3::x(128), |blk| {
        blk.threads(|t| {
            let g = t.global_id_x();
            buf.st(t, g, g as u64);
        });
    });
    assert!(dev.hazards().is_empty());
}

#[test]
fn atomics_from_all_blocks_are_clean() {
    let mut dev = device(SanitizerMode::Abort);
    let acc = dev.alloc_zeroed::<u64>("acc", 1).unwrap();
    dev.launch("atomic_sum", Dim3::x(32), Dim3::x(64), |blk| {
        blk.threads(|t| {
            acc.atomic_add(t, 0, 1u64);
        });
    });
    assert_eq!(acc.peek(0), 32 * 64);
    assert!(dev.hazards().is_empty());
}

#[test]
fn initialized_uninit_allocation_is_clean() {
    // memset / upload / kernel stores all count as initialization.
    let mut dev = device(SanitizerMode::Abort);
    let a = dev.alloc_uninit::<f32>("a", 16).unwrap();
    let b = dev.alloc_uninit::<f32>("b", 16).unwrap();
    dev.memset(&a, 1.0);
    dev.upload(&b, &[2.0; 16]);
    let out = dev.alloc_zeroed::<f32>("out", 16).unwrap();
    dev.launch("consume", Dim3::x(1), Dim3::x(16), |blk| {
        blk.threads(|t| {
            let i = t.tid as usize;
            let va = a.ld(t, i);
            let vb = b.ld(t, i);
            out.st(t, i, va + vb);
        });
    });
    assert!(dev.hazards().is_empty());
    assert_eq!(out.peek(5), 3.0);
}

#[test]
fn write_then_read_same_launch_marks_initialized() {
    let mut dev = device(SanitizerMode::Abort);
    let scratch = dev.alloc_uninit::<u32>("scratch", 64).unwrap();
    dev.launch("fill", Dim3::x(1), Dim3::x(64), |blk| {
        blk.threads(|t| scratch.st(t, t.tid as usize, t.tid));
        blk.threads(|t| {
            let peer = (t.tid as usize + 1) % 64;
            let _ = scratch.ld(t, peer);
        });
    });
    assert!(dev.hazards().is_empty());
}

// -------------------------------------------------------------------- modes

#[test]
fn off_mode_records_nothing() {
    let mut dev = device(SanitizerMode::Off);
    let x = dev.alloc_zeroed::<u32>("x", 1).unwrap();
    dev.launch("racy_off", Dim3::x(4), Dim3::x(4), |blk| {
        let b = blk.block.x;
        blk.thread0(|t| x.st(t, 0, b));
    });
    assert!(dev.hazards().is_empty());
    dev.check_hazards().unwrap();
}

#[test]
#[should_panic(expected = "kernel sanitizer")]
fn abort_mode_panics_on_hazard() {
    let mut dev = device(SanitizerMode::Abort);
    let x = dev.alloc_zeroed::<u32>("x", 1).unwrap();
    dev.launch("racy_abort", Dim3::x(4), Dim3::x(4), |blk| {
        let b = blk.block.x;
        blk.thread0(|t| x.st(t, 0, b));
    });
}

#[test]
fn check_hazards_returns_structured_error() {
    let mut dev = device(SanitizerMode::Report);
    let x = dev.alloc_zeroed::<u32>("unlucky", 4).unwrap();
    dev.launch("racy_err", Dim3::x(4), Dim3::x(4), |blk| {
        let b = blk.block.x;
        blk.thread0(|t| x.st(t, 1, b));
    });
    match dev.check_hazards() {
        Err(GpuError::Hazard {
            kernel,
            buffer,
            index,
            threads,
        }) => {
            assert_eq!(kernel, "racy_err");
            assert_eq!(buffer, "unlucky");
            assert_eq!(index, 1);
            assert!(threads.contains("block"), "coordinates in {threads:?}");
        }
        other => panic!("expected a hazard error, got {other:?}"),
    }
    // take_hazards drains the accumulator.
    assert!(!dev.take_hazards().is_empty());
    assert!(dev.hazards().is_empty());
    dev.check_hazards().unwrap();
}

#[test]
fn report_mode_surfaces_hazards_in_device_report() {
    let mut dev = device(SanitizerMode::Report);
    let x = dev.alloc_zeroed::<u32>("x", 1).unwrap();
    dev.launch("racy_rep", Dim3::x(2), Dim3::x(2), |blk| {
        let b = blk.block.x;
        blk.thread0(|t| x.st(t, 0, b));
    });
    let rep = dev.report();
    assert_eq!(rep.hazards.len(), dev.hazards().len());
    assert!(!rep.hazards.is_empty());
    let text = rep.hazards[0].to_string();
    assert!(text.contains("racy_rep") && text.contains("x"), "{text}");
}

#[test]
fn findings_are_deduplicated_per_location() {
    // Every one of 16 blocks hits the same shared-memory race; the launch
    // must keep one finding per (kind, buffer, element) and count the rest
    // as truncated rather than producing a finding per block.
    let mut dev = device(SanitizerMode::Report);
    dev.launch("racy_many", Dim3::x(16), Dim3::x(64), |blk| {
        let s = blk.shared::<u32>(1);
        blk.thread0(|t| s.st(t, 0, 0));
        blk.threads(|t| s.st(t, 0, t.tid)); // WAW race in every block
    });
    let races = dev
        .hazards()
        .iter()
        .filter(|h| h.kind == HazardKind::SharedRace && h.buffer == "shared#0")
        .count();
    assert_eq!(races, 1, "deduplicated to one finding per element");
    assert!(dev.hazards_truncated() > 0, "drops are counted");
}

#[test]
fn uninit_sentinel_is_visible_from_host() {
    // alloc_uninit contents are a recognizable garbage pattern, not zeros.
    let mut dev = device(SanitizerMode::Off);
    let buf = dev.alloc_uninit::<u32>("garbage", 4).unwrap();
    assert!(buf.peek_all().iter().all(|&v| v == 0xA5A5_A5A5));
    buf.poke(2, 9);
    assert_eq!(buf.peek(2), 9);
}
