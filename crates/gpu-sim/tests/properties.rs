//! Property-based tests of the simulator substrate: atomics behave
//! linearizably under arbitrary workloads, launch geometry enumerates
//! exactly, the memory pool never mis-accounts, and the performance model
//! stays within physical bounds.

use proptest::prelude::*;

use gpu_sim::memory::MemoryPool;
use gpu_sim::perf::{model_kernel, occupancy};
use gpu_sim::{Device, DeviceConfig, Dim3, WorkCounters};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Atomic adds from arbitrary grid shapes are exact: the final value
    /// equals the sequential sum no matter how blocks interleave.
    #[test]
    fn atomic_adds_are_linearizable(
        blocks in 1u32..40,
        threads in 1u32..257,
        cells in 1usize..8,
    ) {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let acc = dev.alloc_zeroed::<u64>("acc", cells).unwrap();
        dev.launch("adds", Dim3::x(blocks), Dim3::x(threads), |blk| {
            blk.threads(|t| {
                let g = t.global_id_x() as u64;
                acc.atomic_add(t, (g as usize) % cells, g + 1);
            });
        });
        let total_threads = blocks as u64 * threads as u64;
        let want_total: u64 = (1..=total_threads).sum();
        let got_total: u64 = acc.peek_all().iter().sum();
        prop_assert_eq!(got_total, want_total);
    }

    /// Float atomic min over arbitrary values finds the true minimum.
    #[test]
    fn atomic_min_finds_global_minimum(vals in proptest::collection::vec(-1e6f32..1e6, 1..500)) {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let buf = dev.htod("vals", &vals).unwrap();
        let m = dev.alloc::<f32>("m", 1, f32::INFINITY).unwrap();
        let n = vals.len();
        dev.launch("min", Dim3::blocks_for(n, 64), Dim3::x(64), |blk| {
            blk.threads(|t| {
                let g = t.global_id_x();
                if g < n {
                    let v = buf.ld(t, g);
                    m.atomic_min(t, 0, v);
                }
            });
        });
        let want = vals.iter().copied().fold(f32::INFINITY, f32::min);
        prop_assert_eq!(m.peek(0), want);
    }

    /// `atomic_inc` slot claiming is a bijection: every thread gets a
    /// distinct slot and all slots in `0..total` are used.
    #[test]
    fn atomic_inc_claims_are_a_bijection(blocks in 1u32..20, threads in 1u32..129) {
        let total = (blocks * threads) as usize;
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let counter = dev.alloc_zeroed::<u32>("c", 1).unwrap();
        let slots = dev.alloc::<u32>("s", total, u32::MAX).unwrap();
        dev.launch("claim", Dim3::x(blocks), Dim3::x(threads), |blk| {
            blk.threads(|t| {
                let pos = counter.atomic_inc(t, 0) as usize;
                slots.st(t, pos, t.global_id_x() as u32);
            });
        });
        let mut got = slots.peek_all();
        got.sort_unstable();
        let want: Vec<u32> = (0..total as u32).collect();
        prop_assert_eq!(got, want);
    }

    /// Grid linearization visits each coordinate exactly once.
    #[test]
    fn dim3_linearization_is_a_bijection(x in 1u32..12, y in 1u32..12, z in 1u32..6) {
        let g = Dim3::xyz(x, y, z);
        let mut seen = std::collections::HashSet::new();
        for i in 0..g.volume() {
            let c = g.from_linear(i);
            prop_assert!(c.x < x && c.y < y && c.z < z);
            prop_assert!(seen.insert((c.x, c.y, c.z)));
        }
        prop_assert_eq!(seen.len() as u64, g.volume());
    }

    /// Pool accounting: after an arbitrary interleaving of allocs and
    /// frees, `used` equals the live total and `peak >= used` always.
    #[test]
    fn pool_accounting_is_exact(ops in proptest::collection::vec((1usize..10_000, any::<bool>()), 1..60)) {
        let mut pool = MemoryPool::new(1 << 20);
        let mut live: Vec<(u64, usize)> = Vec::new();
        let mut peak_seen = 0usize;
        for (bytes, free_first) in ops {
            if free_first && !live.is_empty() {
                let (id, _) = live.remove(live.len() / 2);
                pool.free(id).unwrap();
            }
            if let Ok(id) = pool.alloc("x", bytes) {
                live.push((id, bytes));
            }
            let live_total: usize = live.iter().map(|&(_, b)| b).sum();
            prop_assert_eq!(pool.used(), live_total);
            peak_seen = peak_seen.max(live_total);
            prop_assert_eq!(pool.peak(), peak_seen);
        }
    }

    /// Occupancy is a valid fraction and never increases when a block
    /// demands more shared memory.
    #[test]
    fn occupancy_bounds_and_shared_monotonicity(
        blocks in 1u32..2000,
        tpb_pow in 5u32..11,
        shared in 0usize..48_000,
    ) {
        let cfg = DeviceConfig::gtx_1660_ti();
        let tpb = 1u32 << tpb_pow;
        let o1 = occupancy(&cfg, Dim3::x(blocks), Dim3::x(tpb), shared);
        let o2 = occupancy(&cfg, Dim3::x(blocks), Dim3::x(tpb), shared + 8_000);
        prop_assert!((0.0..=1.0).contains(&o1.theoretical));
        prop_assert!((0.0..=1.0).contains(&o1.achieved));
        prop_assert!(o1.achieved <= o1.theoretical + 1e-12);
        prop_assert!(o2.theoretical <= o1.theoretical + 1e-12);
    }

    /// Modeled kernel time is positive, at least the launch overhead, and
    /// monotone in added work.
    #[test]
    fn model_time_positive_and_monotone(
        blocks in 1u32..500,
        flops in 0u64..10_000_000,
        bytes in 0u64..50_000_000,
    ) {
        let cfg = DeviceConfig::gtx_1660_ti();
        let w1 = WorkCounters { flops, bytes_loaded: bytes, global_loads: bytes / 4, ..Default::default() };
        let w2 = WorkCounters { flops: flops * 2 + 1, bytes_loaded: bytes * 2 + 4, global_loads: bytes / 2 + 1, ..Default::default() };
        let t1 = model_kernel(&cfg, Dim3::x(blocks), Dim3::x(256), 0, &w1);
        let t2 = model_kernel(&cfg, Dim3::x(blocks), Dim3::x(256), 0, &w2);
        prop_assert!(t1.time_us >= cfg.kernel_launch_us);
        prop_assert!(t2.time_us >= t1.time_us);
        prop_assert!((0.0..=1.0).contains(&t1.mem_throughput_frac));
    }

    /// Deterministic and parallel block execution agree exactly on
    /// integer-only workloads.
    #[test]
    fn deterministic_matches_parallel_for_integer_work(
        blocks in 4u32..64,
        threads in 1u32..128,
    ) {
        let run = |det: bool| {
            let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
            dev.set_deterministic(det);
            let acc = dev.alloc_zeroed::<u64>("acc", 7).unwrap();
            dev.launch("w", Dim3::x(blocks), Dim3::x(threads), |blk| {
                blk.threads(|t| {
                    let g = t.global_id_x() as u64;
                    acc.atomic_add(t, (g % 7) as usize, g * g);
                });
            });
            acc.peek_all()
        };
        prop_assert_eq!(run(true), run(false));
    }
}
