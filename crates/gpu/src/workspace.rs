//! Up-front device memory for a GPU-PROCLUS run.
//!
//! "Since it is time-consuming to allocate and free memory on the GPUs, we
//! allocate all required memory at the beginning of GPU-PROCLUS and reuse
//! the same allocated memory for all of the iterations" (§4.1). The
//! [`Workspace`] holds everything whose size is known up front; the
//! variant-specific `Dist`/`H` rows live in [`crate::rows::RowCache`]
//! because GPU-FAST-PROCLUS grows them on demand (its space advantage over
//! a full `B·k × n` allocation is what Fig. 3f measures).

use gpu_sim::{Device, DeviceBuffer};
use proclus::DataMatrix;

use crate::error::Result;

/// All fixed-size device allocations of one run.
pub struct Workspace {
    /// Number of points.
    pub n: usize,
    /// Number of dimensions.
    pub d: usize,
    /// Number of clusters.
    pub k: usize,
    /// The dataset, row-major `n × d` (uploaded once).
    pub data: DeviceBuffer<f32>,
    /// Sphere radii `δ_i` (k).
    pub deltas: DeviceBuffer<f32>,
    /// Point lists `L_i` (or `ΔL_i`), worst-case `k × n` (paper §4.1:
    /// "we allocate memory for the worst-case size of `L_i`").
    pub l_list: DeviceBuffer<u32>,
    /// Sizes of the `L` lists (k).
    pub l_count: DeviceBuffer<u32>,
    /// Cluster member lists `C_i`, worst-case `k × n`.
    pub c_list: DeviceBuffer<u32>,
    /// Cluster sizes (k).
    pub c_count: DeviceBuffer<u32>,
    /// Current assignment (n).
    pub labels: DeviceBuffer<i32>,
    /// Best assignment so far (n).
    pub labels_best: DeviceBuffer<i32>,
    /// Averaged per-dimension distances `X` (k × d, f64 accumulators).
    pub x: DeviceBuffer<f64>,
    /// Relative spread `Z` (k × d).
    pub z: DeviceBuffer<f64>,
    /// The scalar clustering cost.
    pub cost: DeviceBuffer<f64>,
    /// Flattened subspace dimensions (capacity k × d).
    pub dims_flat: DeviceBuffer<u32>,
    /// Outlier sphere radii `Δ_i` (k, f64 segmental distances).
    pub outlier_deltas: DeviceBuffer<f64>,
    // --- greedy scratch (sized by the sample) ---
    /// Sample indices `Data'` (A·k).
    pub sample_idx: DeviceBuffer<u32>,
    /// Greedy min-distances over the sample.
    pub greedy_dist: DeviceBuffer<f32>,
    /// Greedy running maximum distance (1).
    pub greedy_max: DeviceBuffer<f32>,
    /// Greedy argmax claim slot (1).
    pub greedy_claim: DeviceBuffer<u32>,
    /// Selected potential medoids `M` (B·k).
    pub m_list: DeviceBuffer<u32>,
}

impl Workspace {
    /// Allocates the workspace and uploads the dataset.
    pub fn new(
        dev: &mut Device,
        data: &DataMatrix,
        k: usize,
        sample_size: usize,
        m_size: usize,
    ) -> Result<Self> {
        let (n, d) = (data.n(), data.d());
        let ws = Self {
            n,
            d,
            k,
            data: dev.htod("data", data.flat())?,
            deltas: dev.alloc_zeroed("deltas", k)?,
            l_list: dev.alloc_zeroed("l_list", k * n)?,
            l_count: dev.alloc_zeroed("l_count", k)?,
            c_list: dev.alloc_zeroed("c_list", k * n)?,
            c_count: dev.alloc_zeroed("c_count", k)?,
            labels: dev.alloc_zeroed("labels", n)?,
            labels_best: dev.alloc_zeroed("labels_best", n)?,
            x: dev.alloc_zeroed("x", k * d)?,
            z: dev.alloc_zeroed("z", k * d)?,
            cost: dev.alloc_zeroed("cost", 1)?,
            dims_flat: dev.alloc_zeroed("dims_flat", k * d)?,
            outlier_deltas: dev.alloc_zeroed("outlier_deltas", k)?,
            sample_idx: dev.alloc_zeroed("sample_idx", sample_size)?,
            greedy_dist: dev.alloc_zeroed("greedy_dist", sample_size)?,
            greedy_max: dev.alloc_zeroed("greedy_max", 1)?,
            greedy_claim: dev.alloc_zeroed("greedy_claim", 1)?,
            m_list: dev.alloc_zeroed("m_list", m_size)?,
        };
        Ok(ws)
    }

    /// Frees every buffer back to the device pool.
    pub fn free(self, dev: &mut Device) -> Result<()> {
        dev.free(&self.data)?;
        dev.free(&self.deltas)?;
        dev.free(&self.l_list)?;
        dev.free(&self.l_count)?;
        dev.free(&self.c_list)?;
        dev.free(&self.c_count)?;
        dev.free(&self.labels)?;
        dev.free(&self.labels_best)?;
        dev.free(&self.x)?;
        dev.free(&self.z)?;
        dev.free(&self.cost)?;
        dev.free(&self.dims_flat)?;
        dev.free(&self.outlier_deltas)?;
        dev.free(&self.sample_idx)?;
        dev.free(&self.greedy_dist)?;
        dev.free(&self.greedy_max)?;
        dev.free(&self.greedy_claim)?;
        dev.free(&self.m_list)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;

    fn small_data() -> DataMatrix {
        DataMatrix::from_flat(vec![0.5; 100 * 4], 100, 4).unwrap()
    }

    #[test]
    fn allocates_and_frees_cleanly() {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let ws = Workspace::new(&mut dev, &small_data(), 3, 50, 15).unwrap();
        assert!(dev.mem_used() > 0);
        assert_eq!(ws.data.len(), 400);
        assert_eq!(ws.l_list.len(), 300);
        ws.free(&mut dev).unwrap();
        assert_eq!(dev.mem_used(), 0);
    }

    #[test]
    fn oom_on_tiny_device_is_an_error() {
        let mut dev = Device::new(DeviceConfig::tiny_test_device());
        let big = DataMatrix::from_flat(vec![0.0; 50_000 * 8], 50_000, 8).unwrap();
        assert!(Workspace::new(&mut dev, &big, 10, 1000, 100).is_err());
    }
}
