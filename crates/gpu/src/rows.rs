//! Variant-specific `Dist`/`H` row storage on the device.
//!
//! * GPU-PROCLUS keeps `k` distance rows and recomputes all of them every
//!   iteration.
//! * GPU-FAST-PROCLUS keeps one row (plus an `H` row) per *distinct* medoid
//!   ever used — presence of a row is the paper's `DistFound` flag, the map
//!   is `MIdx`. Rows are bump-allocated as zero-copy views out of slabs of
//!   `k` rows at a time, so growth costs one `cudaMalloc` per slab instead
//!   of one per row (the paper's "allocate all required memory at the
//!   beginning" principle, §4.1, adapted to on-demand growth — the pool's
//!   peak then reflects the *actual* row usage, which is what Fig. 3f
//!   measures: roughly twice FAST*'s `k` rows rather than the worst-case
//!   `B·k`).
//! * GPU-FAST*-PROCLUS keeps exactly `k` slot rows and resets a slot when
//!   its medoid changes (§3.2).
//!
//! Host-side bookkeeping (previous radius `δ'`, `|L|`) mirrors the CPU
//! engines exactly so both families follow the same search path.

use std::collections::HashMap;

use gpu_sim::{Device, DeviceBuffer};

use crate::error::Result;
use crate::kernels::dist::dist_row_kernel;

/// One cached medoid: a distance row and (for FAST variants) an `H` row.
/// Rows are views into slab allocations owned by the [`RowCache`].
pub struct MedoidRow {
    /// Distances from this medoid to all points (n, f32).
    pub dist: DeviceBuffer<f32>,
    /// Per-dimension Manhattan sums over the sphere (d, f64); unused by
    /// plain GPU-PROCLUS.
    pub h: Option<DeviceBuffer<f64>>,
    /// Radius at the last usage `t'` (−1 sentinel: nothing accumulated yet).
    pub prev_delta: f32,
    /// `|L|` at the last usage.
    pub lsize: usize,
}

/// A slab of `rows_per_slab` distance rows (+ optional `H` rows).
pub(crate) struct Slab {
    dist: DeviceBuffer<f32>,
    h: Option<DeviceBuffer<f64>>,
}

/// Slab-backed row arena.
pub struct RowArena {
    slabs: Vec<Slab>,
    rows: Vec<MedoidRow>,
    rows_per_slab: usize,
    n: usize,
    d: usize,
    with_h: bool,
}

impl RowArena {
    fn new(n: usize, d: usize, rows_per_slab: usize, with_h: bool) -> Self {
        Self {
            slabs: Vec::new(),
            rows: Vec::new(),
            rows_per_slab: rows_per_slab.max(1),
            n,
            d,
            with_h,
        }
    }

    /// Bump-allocates the next row, adding a slab when needed.
    fn push_row(&mut self, dev: &mut Device) -> Result<usize> {
        let idx = self.rows.len();
        let within = idx % self.rows_per_slab;
        if within == 0 {
            let slab_no = self.slabs.len();
            self.slabs.push(Slab {
                dist: dev
                    .alloc_zeroed(&format!("dist_slab_{slab_no}"), self.rows_per_slab * self.n)?,
                h: if self.with_h {
                    Some(
                        dev.alloc_zeroed(
                            &format!("h_slab_{slab_no}"),
                            self.rows_per_slab * self.d,
                        )?,
                    )
                } else {
                    None
                },
            });
        }
        let slab = self.slabs.last().expect("just ensured");
        self.rows.push(MedoidRow {
            dist: slab.dist.slice(within * self.n, self.n),
            h: slab.h.as_ref().map(|h| h.slice(within * self.d, self.d)),
            prev_delta: -1.0,
            lsize: 0,
        });
        Ok(idx)
    }

    fn free(self, dev: &mut Device) -> Result<()> {
        for slab in &self.slabs {
            dev.free(&slab.dist)?;
            if let Some(h) = &slab.h {
                dev.free(h)?;
            }
        }
        Ok(())
    }
}

/// The three storage policies.
pub enum RowCache {
    /// GPU-PROCLUS: `k` rows, all recomputed every iteration.
    Plain {
        /// Fixed arena of k rows.
        arena: RowArena,
    },
    /// GPU-FAST-PROCLUS: lazy per-medoid rows keyed by data index.
    Fast {
        /// Row index per medoid data-index (`MIdx` + `DistFound`).
        slot_of: HashMap<usize, usize>,
        /// Grow-on-demand arena.
        arena: RowArena,
    },
    /// GPU-FAST*-PROCLUS: `k` slot rows, reset on medoid change.
    FastStar {
        /// Medoid (as index into `M`) each slot currently caches.
        slot_medoid: Vec<Option<usize>>,
        /// Fixed arena of k rows.
        arena: RowArena,
    },
}

impl RowCache {
    /// Pre-allocates the plain variant's `k` rows (one slab).
    pub fn new_plain(dev: &mut Device, n: usize, k: usize) -> Result<Self> {
        let mut arena = RowArena::new(n, 0, k, false);
        for _ in 0..k {
            arena.push_row(dev)?;
        }
        Ok(RowCache::Plain { arena })
    }

    /// Creates the FAST variant's lazy cache growing in slabs of `k` rows.
    pub fn new_fast(n: usize, d: usize, k: usize) -> Self {
        RowCache::Fast {
            slot_of: HashMap::new(),
            arena: RowArena::new(n, d, k, true),
        }
    }

    /// Pre-allocates the FAST* variant's `k` slot rows (with `H`).
    pub fn new_fast_star(dev: &mut Device, n: usize, d: usize, k: usize) -> Result<Self> {
        let mut arena = RowArena::new(n, d, k, true);
        for _ in 0..k {
            arena.push_row(dev)?;
        }
        Ok(RowCache::FastStar {
            slot_medoid: vec![None; k],
            arena,
        })
    }

    /// Ensures the distance rows for the current medoids exist and are up
    /// to date. `mcur` are indices into `m_data`; `m_data` are data indices.
    /// Returns, per slot, the row index to use.
    pub fn prepare(
        &mut self,
        dev: &mut Device,
        data: &DeviceBuffer<f32>,
        n: usize,
        d: usize,
        m_data: &[usize],
        mcur: &[usize],
    ) -> Result<Vec<usize>> {
        match self {
            RowCache::Plain { arena } => {
                // Recompute every slot, every iteration (Alg. 3 lines 1–3).
                for (i, &mi) in mcur.iter().enumerate() {
                    dist_row_kernel(dev, data, d, n, m_data[mi], &arena.rows[i].dist);
                    arena.rows[i].prev_delta = -1.0;
                    arena.rows[i].lsize = 0;
                }
                Ok((0..mcur.len()).collect())
            }
            RowCache::Fast { slot_of, arena } => {
                let mut out = Vec::with_capacity(mcur.len());
                for &mi in mcur {
                    let m_point = m_data[mi];
                    let row = match slot_of.get(&m_point) {
                        Some(&r) => r, // DistFound: reuse.
                        None => {
                            let r = arena.push_row(dev)?;
                            dist_row_kernel(dev, data, d, n, m_point, &arena.rows[r].dist);
                            slot_of.insert(m_point, r);
                            r
                        }
                    };
                    out.push(row);
                }
                Ok(out)
            }
            RowCache::FastStar { slot_medoid, arena } => {
                for (i, &mi) in mcur.iter().enumerate() {
                    if slot_medoid[i] != Some(mi) {
                        // Slot replaced (i ∈ MBad, §3.2): recompute + reset.
                        slot_medoid[i] = Some(mi);
                        dist_row_kernel(dev, data, d, n, m_data[mi], &arena.rows[i].dist);
                        arena.rows[i].prev_delta = -1.0;
                        arena.rows[i].lsize = 0;
                        if let Some(h) = &arena.rows[i].h {
                            dev.memset(h, 0.0);
                        }
                    }
                }
                Ok((0..mcur.len()).collect())
            }
        }
    }

    /// How many of `mcur`'s slots [`RowCache::prepare`] would recompute
    /// from scratch — the telemetry `DistFound` miss count. The plain
    /// variant recomputes every slot by design.
    pub fn misses(&self, m_data: &[usize], mcur: &[usize]) -> usize {
        match self {
            RowCache::Plain { .. } => mcur.len(),
            RowCache::Fast { slot_of, .. } => mcur
                .iter()
                .filter(|&&mi| !slot_of.contains_key(&m_data[mi]))
                .count(),
            RowCache::FastStar { slot_medoid, .. } => mcur
                .iter()
                .enumerate()
                .filter(|&(i, &mi)| slot_medoid[i] != Some(mi))
                .count(),
        }
    }

    /// The rows slice.
    pub fn rows(&self) -> &[MedoidRow] {
        match self {
            RowCache::Plain { arena }
            | RowCache::Fast { arena, .. }
            | RowCache::FastStar { arena, .. } => &arena.rows,
        }
    }

    /// Mutable rows slice.
    pub fn rows_mut(&mut self) -> &mut [MedoidRow] {
        match self {
            RowCache::Plain { arena }
            | RowCache::Fast { arena, .. }
            | RowCache::FastStar { arena, .. } => &mut arena.rows,
        }
    }

    /// Frees all slabs back to the pool.
    pub fn free(self, dev: &mut Device) -> Result<()> {
        match self {
            RowCache::Plain { arena }
            | RowCache::Fast { arena, .. }
            | RowCache::FastStar { arena, .. } => arena.free(dev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use proclus::DataMatrix;

    fn setup() -> (Device, DeviceBuffer<f32>) {
        let host = DataMatrix::from_rows(
            &(0..50)
                .map(|i| vec![i as f32, (i % 7) as f32])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let data = dev.htod("data", host.flat()).unwrap();
        (dev, data)
    }

    #[test]
    fn fast_cache_reuses_rows_and_grows_by_slabs() {
        let (mut dev, data) = setup();
        let mut cache = RowCache::new_fast(50, 2, 3);
        let m_data: Vec<usize> = (0..12).collect();
        let r1 = cache
            .prepare(&mut dev, &data, 50, 2, &m_data, &[0, 1, 2])
            .unwrap();
        let used_after_first = dev.mem_used();
        // Same medoids: no new rows, no new memory.
        let r2 = cache
            .prepare(&mut dev, &data, 50, 2, &m_data, &[0, 1, 2])
            .unwrap();
        assert_eq!(r1, r2);
        assert_eq!(dev.mem_used(), used_after_first);
        // A fourth distinct medoid triggers exactly one more slab.
        cache
            .prepare(&mut dev, &data, 50, 2, &m_data, &[0, 1, 3])
            .unwrap();
        assert!(dev.mem_used() > used_after_first);
        assert_eq!(cache.rows().len(), 4);
        cache.free(&mut dev).unwrap();
        let base = dev.mem_used();
        dev.free(&data).unwrap();
        assert_eq!(base, data.bytes());
    }

    #[test]
    fn plain_cache_has_exactly_k_rows() {
        let (mut dev, data) = setup();
        let mut cache = RowCache::new_plain(&mut dev, 50, 4).unwrap();
        let rows = cache
            .prepare(&mut dev, &data, 50, 2, &[5, 6, 7, 8], &[0, 1, 2, 3])
            .unwrap();
        assert_eq!(rows, vec![0, 1, 2, 3]);
        assert_eq!(cache.rows().len(), 4);
        cache.free(&mut dev).unwrap();
    }

    #[test]
    fn fast_star_resets_only_changed_slots() {
        let (mut dev, data) = setup();
        let mut cache = RowCache::new_fast_star(&mut dev, 50, 2, 2).unwrap();
        let m_data: Vec<usize> = (0..10).collect();
        cache
            .prepare(&mut dev, &data, 50, 2, &m_data, &[0, 1])
            .unwrap();
        cache.rows_mut()[0].prev_delta = 0.7;
        cache.rows_mut()[1].prev_delta = 0.9;
        // Slot 1 changes; slot 0 keeps its state.
        cache
            .prepare(&mut dev, &data, 50, 2, &m_data, &[0, 5])
            .unwrap();
        assert_eq!(cache.rows()[0].prev_delta, 0.7);
        assert_eq!(cache.rows()[1].prev_delta, -1.0);
        cache.free(&mut dev).unwrap();
    }
}
