//! # proclus-gpu — GPU-PROCLUS, GPU-FAST-PROCLUS and GPU-FAST\*-PROCLUS
//!
//! The GPU-parallelized projected-clustering algorithms of *GPU-FAST-
//! PROCLUS* (Jørgensen et al., EDBT '22), implemented as CUDA-style kernels
//! on the [`gpu_sim`] SIMT device simulator:
//!
//! * Greedy medoid-candidate selection (paper Alg. 2),
//! * ComputeL: distance rows, sphere radii `δ`, point lists (Alg. 3),
//! * FindDimensions: `X`/`H`/`Z` with shared-memory staging (Alg. 4),
//! * AssignPoints with per-point shared-memory minima (Alg. 5),
//! * EvaluateCluster with fused on-chip centroids (Alg. 6, Eq. 9),
//! * RemoveOutliers, and the `Dist`/`H` reuse machinery of FAST/FAST\*.
//!
//! Data, distance rows, `H`, point lists and labels stay device-resident;
//! the host sees only `Z` (`k × d`), cluster sizes, and the cost scalar per
//! iteration — the transfer-avoidance structure of §4.1. All memory is
//! pooled up-front, so the peak-device-memory experiment (paper Fig. 3f)
//! and the 8 M-point out-of-memory wall (§5.3) are reproducible through
//! [`gpu_sim::Device::mem_peak`].
//!
//! For equal seeds the GPU variants return the same clustering as their CPU
//! counterparts in the `proclus` crate (asserted by the cross integration
//! tests), and the device's analytic performance model provides the
//! simulated kernel timings the benchmark harnesses report.
//!
//! ## Example
//!
//! All variants are reached through [`run`] / [`run_on`], which accept the
//! CPU crate's `Config` — the same call dispatches to either backend, and a
//! telemetry report (phase spans annotated with simulated device time,
//! bridged `kernel:<name>` spans) is available on request:
//!
//! ```
//! use gpu_sim::{Device, DeviceConfig};
//! use proclus::{Backend, Config, DataMatrix, Params};
//!
//! let rows: Vec<Vec<f32>> = (0..400)
//!     .map(|i| {
//!         let c = (i % 2) as f32 * 30.0;
//!         vec![c + (i % 7) as f32 * 0.1, (i % 11) as f32, c + (i % 5) as f32 * 0.1]
//!     })
//!     .collect();
//! let data = DataMatrix::from_rows(&rows).unwrap();
//! let config = Config::new(Params::new(2, 2).with_a(40).with_b(5))
//!     .with_backend(Backend::Gpu)
//!     .with_telemetry(true);
//!
//! let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
//! let output = proclus_gpu::run_on(&mut dev, &data, &config).unwrap();
//! assert_eq!(output.clustering().k(), 2);
//! let report = output.telemetry.unwrap();
//! assert!(report.find_span("assign_points").is_some());
//! println!("simulated device time: {:.2} ms", dev.elapsed_ms());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod api;
pub mod backend;
pub mod error;
pub mod kernels;
pub mod multi_param;
pub mod rows;
pub mod shard;
pub mod workspace;

#[allow(deprecated)]
pub use api::{gpu_fast_proclus, gpu_fast_star_proclus, gpu_proclus};
pub use api::{run, run_on, run_on_with_cancel};
pub use backend::{GpuBackend, GpuVariant};
pub use error::{GpuProclusError, Result};
pub use multi_param::{
    gpu_fast_proclus_multi, gpu_fast_proclus_multi_outcomes, gpu_proclus_multi,
    gpu_proclus_multi_outcomes,
};
pub use shard::{
    sharded_fast_proclus_multi_outcomes, sharded_proclus_multi_outcomes, ShardedBackend,
};
