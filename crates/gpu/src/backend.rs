//! The simulated-GPU [`Backend`]: every phase primitive of the shared
//! driver (`proclus::backend`) executed as device kernels.
//!
//! The decision logic — dimension picking, bad-medoid selection,
//! replacement draws, cost comparison — stays in the backend-generic
//! driver, which reuses the CPU crate's functions on tiny arrays read back
//! from the device (`Z`: `k × d` floats, cluster sizes and cost: scalars),
//! so for equal seeds the GPU variants visit the same medoid sequence as
//! the CPU variants. Everything large (data, distance rows, `H`, lists,
//! labels) stays device-resident, as in the paper (§4.1: "to avoid costly
//! memory transfers between the CPU and the GPU, all other computations are
//! also performed on the GPU").

use gpu_sim::Device;
use proclus::backend::Backend;
use proclus::phases::find_dimensions::pick_dimensions;
use proclus::{ProclusError, ProclusRng, Result};
use proclus_telemetry::{counters, Recorder};

use crate::kernels::assign::{assign_kernel, assign_subset_kernel};
use crate::kernels::delta::deltas_kernel;
use crate::kernels::dist::dist_subset_kernel;
use crate::kernels::evaluate::evaluate_kernel;
use crate::kernels::find_dims::{h_update_kernel, x_from_h_kernel, x_from_lists_kernel, z_kernel};
use crate::kernels::greedy::greedy_gpu;
use crate::kernels::lsets::{build_lists_kernel, SphereCond};
use crate::kernels::outliers::{outlier_deltas_kernel, remove_outliers_kernel};
use crate::kernels::util::{copy_labels_kernel, lists_from_labels_kernel};
use crate::rows::RowCache;
use crate::workspace::Workspace;

/// Which algorithm the GPU backend runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuVariant {
    /// GPU-PROCLUS: recompute everything each iteration.
    Plain,
    /// GPU-FAST-PROCLUS: `Dist`/`DistFound` + incremental `H` (§4.2).
    Fast,
    /// GPU-FAST*-PROCLUS: slot-local caches (§3.2 on the GPU).
    FastStar,
}

/// Flattens subspaces for upload; returns the offsets (host side).
pub(crate) fn upload_dims(dev: &mut Device, ws: &Workspace, dims: &[Vec<usize>]) -> Vec<usize> {
    let mut flat = Vec::new();
    let mut offsets = vec![0usize];
    for s in dims {
        flat.extend(s.iter().map(|&j| j as u32));
        offsets.push(flat.len());
    }
    dev.upload(&ws.dims_flat, &flat);
    offsets
}

/// One device, one workspace: the single-GPU execution backend.
///
/// Borrows the device, workspace, and row cache so grid runners can keep
/// them alive across settings (the persistent `Dist` cache of §3.1) while
/// each setting drives its own backend value through the shared driver.
/// The subspace offsets of the latest [`Backend::find_dims`] call are kept
/// here between phases — the flattened dims live in device memory.
pub struct GpuBackend<'a> {
    dev: &'a mut Device,
    ws: &'a Workspace,
    cache: &'a mut RowCache,
    variant: GpuVariant,
    offsets: Vec<usize>,
}

impl<'a> GpuBackend<'a> {
    /// A backend over an allocated workspace and row cache.
    pub fn new(
        dev: &'a mut Device,
        ws: &'a Workspace,
        cache: &'a mut RowCache,
        variant: GpuVariant,
    ) -> Self {
        Self {
            dev,
            ws,
            cache,
            variant,
            offsets: Vec::new(),
        }
    }
}

impl Backend for GpuBackend<'_> {
    fn name(&self) -> &'static str {
        "gpu"
    }

    fn n(&self) -> usize {
        self.ws.n
    }

    fn clock_us(&self) -> Option<f64> {
        Some(self.dev.elapsed_us())
    }

    fn greedy(
        &mut self,
        sample: &[usize],
        count: usize,
        rng: &mut ProclusRng,
        _rec: &dyn Recorder,
    ) -> Result<Vec<usize>> {
        Ok(greedy_gpu(self.dev, self.ws, sample, count, rng))
    }

    fn compute_x(&mut self, m_data: &[usize], mcur: &[usize], rec: &dyn Recorder) -> Result<()> {
        let (n, d) = (self.ws.n, self.ws.d);
        let medoids: Vec<usize> = mcur.iter().map(|&mi| m_data[mi]).collect();
        // `DistFound` hits/misses, observed before `prepare` consumes them.
        // A miss costs one `dist_row_kernel` launch = n full-dimensional
        // distances; the plain variant recomputes every slot and has no
        // cache to hit.
        if rec.enabled() {
            let misses = self.cache.misses(m_data, mcur);
            rec.add(counters::DISTANCES_COMPUTED, (misses * n) as u64);
            if self.variant != GpuVariant::Plain {
                rec.add(counters::DIST_CACHE_MISSES, misses as u64);
                rec.add(counters::DIST_CACHE_HITS, (mcur.len() - misses) as u64);
            }
        }
        let row_of_slot = self
            .cache
            .prepare(self.dev, &self.ws.data, n, d, m_data, mcur)
            .map_err(ProclusError::from)?;

        deltas_kernel(
            self.dev,
            self.cache.rows(),
            &row_of_slot,
            &medoids,
            &self.ws.deltas,
        );
        let deltas = self.dev.dtoh(&self.ws.deltas);

        match self.variant {
            GpuVariant::Plain => {
                build_lists_kernel(
                    self.dev,
                    self.cache.rows(),
                    &row_of_slot,
                    &SphereCond::Within(deltas),
                    n,
                    &self.ws.l_list,
                    &self.ws.l_count,
                );
                let counts: Vec<usize> = self
                    .dev
                    .dtoh(&self.ws.l_count)
                    .iter()
                    .map(|&c| c as usize)
                    .collect();
                x_from_lists_kernel(
                    self.dev,
                    &self.ws.data,
                    d,
                    n,
                    &medoids,
                    &self.ws.l_list,
                    &counts,
                    &self.ws.x,
                );
            }
            GpuVariant::Fast | GpuVariant::FastStar => {
                // ΔL bounds per slot (Theorem 3.1) from the host-mirrored
                // previous radii.
                let mut bounds = Vec::with_capacity(mcur.len());
                let mut lambda = Vec::with_capacity(mcur.len());
                for (slot, &row) in row_of_slot.iter().enumerate() {
                    let prev = self.cache.rows()[row].prev_delta;
                    let cur = deltas[slot];
                    if cur >= prev {
                        bounds.push((prev, cur));
                        lambda.push(1.0);
                    } else {
                        bounds.push((cur, prev));
                        lambda.push(-1.0);
                    }
                }
                build_lists_kernel(
                    self.dev,
                    self.cache.rows(),
                    &row_of_slot,
                    &SphereCond::Between(bounds),
                    n,
                    &self.ws.l_list,
                    &self.ws.l_count,
                );
                let dl_counts: Vec<usize> = self
                    .dev
                    .dtoh(&self.ws.l_count)
                    .iter()
                    .map(|&c| c as usize)
                    .collect();
                rec.add(
                    counters::DELTA_L_POINTS,
                    dl_counts.iter().map(|&c| c as u64).sum(),
                );
                h_update_kernel(
                    self.dev,
                    &self.ws.data,
                    d,
                    n,
                    &medoids,
                    self.cache.rows(),
                    &row_of_slot,
                    &self.ws.l_list,
                    &dl_counts,
                    &lambda,
                );
                // Mirror the bookkeeping the CPU engines do.
                let mut lsizes = Vec::with_capacity(mcur.len());
                for (slot, &row) in row_of_slot.iter().enumerate() {
                    let r = &mut self.cache.rows_mut()[row];
                    if lambda[slot] > 0.0 {
                        r.lsize += dl_counts[slot];
                    } else {
                        r.lsize -= dl_counts[slot];
                    }
                    r.prev_delta = deltas[slot];
                    lsizes.push(r.lsize);
                }
                x_from_h_kernel(
                    self.dev,
                    d,
                    self.cache.rows(),
                    &row_of_slot,
                    &lsizes,
                    &self.ws.x,
                );
            }
        }
        Ok(())
    }

    fn find_dims(&mut self, k: usize, l: usize, _rec: &dyn Recorder) -> Result<Vec<Vec<usize>>> {
        let d = self.ws.d;
        z_kernel(self.dev, &self.ws.x, &self.ws.z, k, d);
        let z = self.dev.dtoh(&self.ws.z);
        let dims = pick_dimensions(&z[..k * d], k, d, l);
        self.offsets = upload_dims(self.dev, self.ws, &dims);
        Ok(dims)
    }

    fn assign(
        &mut self,
        medoids: &[usize],
        _dims: &[Vec<usize>],
        _rec: &dyn Recorder,
    ) -> Result<Vec<usize>> {
        assign_kernel(
            self.dev,
            &self.ws.data,
            self.ws.d,
            self.ws.n,
            medoids,
            &self.ws.dims_flat,
            &self.offsets,
            &self.ws.labels,
            &self.ws.c_list,
            &self.ws.c_count,
        );
        let mut sizes: Vec<usize> = self
            .dev
            .dtoh(&self.ws.c_count)
            .iter()
            .map(|&c| c as usize)
            .collect();
        sizes.truncate(medoids.len()); // the workspace is sized for the largest k
        Ok(sizes)
    }

    fn labels(&mut self) -> Result<Vec<i32>> {
        Ok(self.dev.dtoh(&self.ws.labels))
    }

    fn evaluate(
        &mut self,
        _dims: &[Vec<usize>],
        sizes: &[usize],
        _rec: &dyn Recorder,
    ) -> Result<f64> {
        Ok(evaluate_kernel(
            self.dev,
            &self.ws.data,
            self.ws.d,
            self.ws.n,
            &self.ws.dims_flat,
            &self.offsets,
            &self.ws.c_list,
            sizes,
            &self.ws.cost,
        ))
    }

    fn save_best(&mut self) -> Result<()> {
        copy_labels_kernel(self.dev, &self.ws.labels, &self.ws.labels_best, self.ws.n);
        Ok(())
    }

    fn x_from_best(&mut self, medoids: &[usize], _rec: &dyn Recorder) -> Result<()> {
        let (n, d) = (self.ws.n, self.ws.d);
        lists_from_labels_kernel(
            self.dev,
            &self.ws.labels_best,
            n,
            &self.ws.c_list,
            &self.ws.c_count,
        );
        let mut counts: Vec<usize> = self
            .dev
            .dtoh(&self.ws.c_count)
            .iter()
            .map(|&c| c as usize)
            .collect();
        counts.truncate(medoids.len());
        x_from_lists_kernel(
            self.dev,
            &self.ws.data,
            d,
            n,
            medoids,
            &self.ws.c_list,
            &counts,
            &self.ws.x,
        );
        Ok(())
    }

    fn dist_subset(
        &mut self,
        medoid: usize,
        points: &[usize],
        _rec: &dyn Recorder,
    ) -> Result<Vec<f32>> {
        if points.is_empty() {
            return Ok(Vec::new());
        }
        let todo_host: Vec<u32> = points.iter().map(|&p| p as u32).collect();
        let todo = self
            .dev
            .htod("stream.todo", &todo_host)
            .map_err(|e| ProclusError::Device {
                reason: e.to_string(),
            })?;
        let out = self
            .dev
            .alloc_zeroed::<f32>("stream.dist_out", points.len())
            .map_err(|e| ProclusError::Device {
                reason: e.to_string(),
            })?;
        dist_subset_kernel(
            self.dev,
            &self.ws.data,
            self.ws.d,
            medoid,
            &todo,
            points.len(),
            &out,
        );
        let host = self.dev.dtoh(&out);
        self.dev.free(&todo).map_err(|e| ProclusError::Device {
            reason: e.to_string(),
        })?;
        self.dev.free(&out).map_err(|e| ProclusError::Device {
            reason: e.to_string(),
        })?;
        Ok(host)
    }

    fn assign_seeded(
        &mut self,
        medoids: &[usize],
        dims: &[Vec<usize>],
        seed_labels: &[i32],
        todo: &[usize],
        _rec: &dyn Recorder,
    ) -> Result<Vec<usize>> {
        let n = self.ws.n;
        if seed_labels.len() != n {
            return Err(ProclusError::InvalidData {
                reason: format!(
                    "assign_seeded: {} seed labels for {} points",
                    seed_labels.len(),
                    n
                ),
            });
        }
        // The streaming driver picks subspaces on the host, so the flat
        // dims reach the device here rather than through `find_dims`.
        self.offsets = upload_dims(self.dev, self.ws, dims);
        self.dev.upload(&self.ws.labels, seed_labels);
        if !todo.is_empty() {
            let todo_host: Vec<u32> = todo.iter().map(|&p| p as u32).collect();
            let todo_buf = self
                .dev
                .htod("stream.assign_todo", &todo_host)
                .map_err(|e| ProclusError::Device {
                    reason: e.to_string(),
                })?;
            assign_subset_kernel(
                self.dev,
                &self.ws.data,
                self.ws.d,
                medoids,
                &self.ws.dims_flat,
                &self.offsets,
                &todo_buf,
                todo.len(),
                &self.ws.labels,
            );
            self.dev.free(&todo_buf).map_err(|e| ProclusError::Device {
                reason: e.to_string(),
            })?;
        }
        // Rebuild the member lists so evaluate/remove_outliers see a
        // partition consistent with the seeded labels.
        lists_from_labels_kernel(
            self.dev,
            &self.ws.labels,
            n,
            &self.ws.c_list,
            &self.ws.c_count,
        );
        let mut sizes: Vec<usize> = self
            .dev
            .dtoh(&self.ws.c_count)
            .iter()
            .map(|&c| c as usize)
            .collect();
        sizes.truncate(medoids.len());
        Ok(sizes)
    }

    fn remove_outliers(
        &mut self,
        medoids: &[usize],
        _dims: &[Vec<usize>],
        _rec: &dyn Recorder,
    ) -> Result<()> {
        outlier_deltas_kernel(
            self.dev,
            &self.ws.data,
            self.ws.d,
            medoids,
            &self.ws.dims_flat,
            &self.offsets,
            &self.ws.outlier_deltas,
        );
        remove_outliers_kernel(
            self.dev,
            &self.ws.data,
            self.ws.d,
            self.ws.n,
            medoids,
            &self.ws.dims_flat,
            &self.offsets,
            &self.ws.outlier_deltas,
            &self.ws.labels,
        );
        Ok(())
    }
}
