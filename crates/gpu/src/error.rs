//! Error type for the GPU algorithm family.

use std::fmt;

/// Result alias for GPU-PROCLUS operations.
pub type Result<T> = std::result::Result<T, GpuProclusError>;

/// Errors raised when configuring or running the GPU variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuProclusError {
    /// Parameter or data validation failed (propagated from the CPU crate).
    Algorithm(proclus::ProclusError),
    /// A device operation failed (allocation, launch configuration).
    Device(gpu_sim::GpuError),
    /// The configuration exceeds what the GPU kernels support.
    Unsupported {
        /// What is unsupported and why.
        reason: String,
    },
}

impl fmt::Display for GpuProclusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuProclusError::Algorithm(e) => write!(f, "{e}"),
            GpuProclusError::Device(e) => write!(f, "{e}"),
            GpuProclusError::Unsupported { reason } => {
                write!(f, "unsupported on this device: {reason}")
            }
        }
    }
}

impl std::error::Error for GpuProclusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GpuProclusError::Algorithm(e) => Some(e),
            GpuProclusError::Device(e) => Some(e),
            GpuProclusError::Unsupported { .. } => None,
        }
    }
}

impl From<proclus::ProclusError> for GpuProclusError {
    fn from(e: proclus::ProclusError) -> Self {
        GpuProclusError::Algorithm(e)
    }
}

impl From<gpu_sim::GpuError> for GpuProclusError {
    fn from(e: gpu_sim::GpuError) -> Self {
        GpuProclusError::Device(e)
    }
}

impl From<GpuProclusError> for proclus::ProclusError {
    fn from(e: GpuProclusError) -> Self {
        match e {
            GpuProclusError::Algorithm(e) => e,
            GpuProclusError::Device(e) => proclus::ProclusError::Device {
                reason: e.to_string(),
            },
            GpuProclusError::Unsupported { reason } => {
                proclus::ProclusError::Unsupported { reason }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_message() {
        let e: GpuProclusError = gpu_sim::GpuError::InvalidBuffer { label: "x".into() }.into();
        assert!(e.to_string().contains('x'));
        let e: GpuProclusError = proclus::ProclusError::InvalidParams { reason: "k".into() }.into();
        assert!(e.to_string().contains('k'));
    }

    #[test]
    fn converts_back_to_the_core_error() {
        // Algorithm errors unwrap to the original core error.
        let core = proclus::ProclusError::InvalidParams { reason: "k".into() };
        let back: proclus::ProclusError = GpuProclusError::Algorithm(core.clone()).into();
        assert_eq!(back.to_string(), core.to_string());
        // Device and Unsupported map onto the core's counterparts.
        let dev: proclus::ProclusError = GpuProclusError::from(gpu_sim::GpuError::InvalidBuffer {
            label: "buf".into(),
        })
        .into();
        assert!(matches!(dev, proclus::ProclusError::Device { .. }));
        let uns: proclus::ProclusError = GpuProclusError::Unsupported {
            reason: "d too large".into(),
        }
        .into();
        assert!(matches!(uns, proclus::ProclusError::Unsupported { .. }));
    }
}
