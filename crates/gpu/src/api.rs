//! Public entry points for the GPU algorithms: the unified [`run`] /
//! [`run_on`] pair consuming the CPU crate's `Config`, plus the deprecated
//! per-variant shims.

use std::time::Instant;

use gpu_sim::{Device, DeviceConfig, DeviceReport};
use proclus::backend::{initialization_phase, run_core};
use proclus::multi_param::ReuseLevel;
use proclus::params::Params;
use proclus::result::Clustering;
use proclus::{
    Algo, Backend, CancelToken, Config, DataMatrix, ProclusError, ProclusRng, RunOutput,
};
use proclus_telemetry::{attrs, counters, span, NullRecorder, Recorder, Telemetry};

use crate::backend::{GpuBackend, GpuVariant};
use crate::error::{GpuProclusError, Result};
use crate::kernels::ASSIGN_BLOCK;
use crate::multi_param::{gpu_fast_proclus_multi_outcomes, gpu_proclus_multi_outcomes};
use crate::rows::RowCache;
use crate::workspace::Workspace;

pub(crate) fn validate_gpu(dev: &Device, data: &DataMatrix, params: &Params) -> Result<()> {
    params.validate(data)?;
    if params.k as u32 > ASSIGN_BLOCK {
        return Err(GpuProclusError::Unsupported {
            reason: format!(
                "AssignPoints uses {ASSIGN_BLOCK}-thread blocks covering all k medoids; \
                 k = {} exceeds that",
                params.k
            ),
        });
    }
    let max_t = dev.config().max_threads_per_block as usize;
    if data.d() > max_t {
        return Err(GpuProclusError::Unsupported {
            reason: format!(
                "FindDimensions launches one thread per dimension; d = {} exceeds \
                 the device's {max_t} threads/block",
                data.d()
            ),
        });
    }
    Ok(())
}

pub(crate) fn run_variant(
    dev: &mut Device,
    data: &DataMatrix,
    params: &Params,
    variant: GpuVariant,
    rec: &dyn Recorder,
    cancel: &CancelToken,
) -> Result<Clustering> {
    validate_gpu(dev, data, params)?;
    cancel.check()?;
    let run_span = span(rec, "run");
    let run_t = dev.elapsed_us();
    let n = data.n();
    let sample_size = params.sample_size(n);
    let m_size = params.num_potential_medoids(n);
    let ws = Workspace::new(dev, data, params.k, sample_size, m_size)?;
    let mut cache = match variant {
        GpuVariant::Plain => RowCache::new_plain(dev, n, params.k)?,
        GpuVariant::Fast => RowCache::new_fast(n, data.d(), params.k),
        GpuVariant::FastStar => RowCache::new_fast_star(dev, n, data.d(), params.k)?,
    };

    let mut rng = ProclusRng::new(params.seed);
    let result = {
        let mut backend = GpuBackend::new(dev, &ws, &mut cache, variant);
        initialization_phase(&mut backend, params, &mut rng, rec)
            .and_then(|m_data| run_core(&mut backend, params, &mut rng, &m_data, None, rec, cancel))
    };
    // Free device memory whether or not the run succeeded.
    cache.free(dev)?;
    ws.free(dev)?;
    rec.annotate(run_span.id(), attrs::SIM_US, dev.elapsed_us() - run_t);
    result.map(|(c, _)| c).map_err(GpuProclusError::from)
}

pub(crate) fn variant_for(algo: Algo) -> GpuVariant {
    match algo {
        Algo::Baseline => GpuVariant::Plain,
        Algo::Fast => GpuVariant::Fast,
        Algo::FastStar => GpuVariant::FastStar,
    }
}

fn run_gpu_with(
    dev: &mut Device,
    data: &DataMatrix,
    config: &Config,
    rec: &dyn Recorder,
    cancel: &CancelToken,
) -> Result<proclus::PartitionedOutcomes> {
    match &config.grid {
        None => {
            let c = run_variant(
                dev,
                data,
                &config.params,
                variant_for(config.algo),
                rec,
                cancel,
            )?;
            Ok((vec![c], Vec::new()))
        }
        Some(grid) => {
            let cancels = vec![cancel.clone(); grid.settings.len()];
            let outcomes = match config.algo {
                Algo::Baseline => {
                    if grid.reuse != ReuseLevel::Independent {
                        return Err(GpuProclusError::Unsupported {
                            reason: "the baseline cannot share computation across settings; \
                                     use ReuseLevel::Independent or Algo::Fast"
                                .into(),
                        });
                    }
                    gpu_proclus_multi_outcomes(
                        dev,
                        data,
                        &config.params,
                        &grid.settings,
                        rec,
                        &cancels,
                    )?
                }
                Algo::Fast => gpu_fast_proclus_multi_outcomes(
                    dev,
                    data,
                    &config.params,
                    &grid.settings,
                    grid.reuse,
                    rec,
                    &cancels,
                )?,
                Algo::FastStar => {
                    return Err(GpuProclusError::Unsupported {
                        reason: "multi-parameter grids are defined for Algo::Fast (the \
                                 Dist/H cache is what settings share, §3.1) and \
                                 Algo::Baseline (independent runs); FAST* keeps no \
                                 cross-setting state"
                            .into(),
                    })
                }
            };
            Ok(proclus::partition_outcomes(outcomes))
        }
    }
}

/// Emits one instantaneous `kernel:<name>` span per kernel family the
/// device launched between the two snapshots, bridging gpu-sim's aggregated
/// statistics (launch counts, modeled kernel time) into the span tree.
fn bridge_kernels(rec: &dyn Recorder, before: &DeviceReport, after: &DeviceReport) {
    for (name, agg) in &after.kernels {
        let (launches, time_us) = match before.kernels.get(name) {
            Some(b) => (
                agg.launches - b.launches,
                agg.total_time_us - b.total_time_us,
            ),
            None => (agg.launches, agg.total_time_us),
        };
        if launches == 0 {
            continue;
        }
        rec.emit(
            &format!("kernel:{name}"),
            &[(counters::KERNEL_LAUNCHES, launches)],
            &[(attrs::KERNEL_TIME_US, time_us)],
        );
    }
}

/// Runs the configured algorithm on an existing device.
///
/// The device half of the unified entry point: accepts the same
/// [`Config`] as [`proclus::run`], executes [`Backend::Gpu`] configs on
/// `dev`, runs [`Backend::Sharded`] configs across
/// [`proclus::Params::devices`] fresh shard devices cloned from `dev`'s
/// configuration, and delegates [`Backend::Cpu`] configs to the CPU crate —
/// so one call site serves every backend and produces one report format.
/// Telemetry reports carry the same phase spans as the CPU backend, each
/// annotated with simulated device microseconds, plus one bridged
/// `kernel:<name>` span per kernel family with its launch count and modeled
/// kernel time.
pub fn run_on(dev: &mut Device, data: &DataMatrix, config: &Config) -> proclus::Result<RunOutput> {
    run_on_with_cancel(dev, data, config, &CancelToken::new())
}

/// [`run_on`] with cooperative cancellation: `cancel` is checked at phase
/// boundaries inside the GPU driver, and grid runs treat it as a
/// per-setting token (a cancelled token skips the remaining settings,
/// reporting them in [`RunOutput::setting_errors`]). Device memory is
/// released before returning, cancelled or not.
pub fn run_on_with_cancel(
    dev: &mut Device,
    data: &DataMatrix,
    config: &Config,
    cancel: &CancelToken,
) -> proclus::Result<RunOutput> {
    if config.backend == Backend::Cpu {
        return proclus::run_with_cancel(data, config, cancel);
    }
    let t0 = Instant::now();
    let tel = config.telemetry.then(|| {
        let t = Telemetry::new();
        proclus::stamp_meta(&t, data, config);
        t.set_meta("device", &dev.config().name);
        if config.backend == Backend::Sharded {
            t.set_meta("devices", config.params.devices.to_string());
        }
        t
    });
    let null = NullRecorder;
    let rec: &dyn Recorder = tel.as_ref().map_or(&null as &dyn Recorder, |t| t);

    let before = rec.enabled().then(|| dev.report());
    let (clusterings, setting_errors) = match config.backend {
        Backend::Cpu => unreachable!("delegated above"),
        Backend::Gpu => run_gpu_with(dev, data, config, rec, cancel).map_err(ProclusError::from)?,
        Backend::Sharded => crate::shard::run_sharded_with(dev, data, config, rec, cancel)?,
    };
    if let Some(before) = &before {
        bridge_kernels(rec, before, &dev.report());
    }

    Ok(RunOutput {
        clusterings,
        setting_errors,
        telemetry: tel.map(Telemetry::finish),
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    })
}

/// Runs the configured algorithm, creating a fresh simulated device
/// (the paper's GTX 1660 Ti) for [`Backend::Gpu`] configs — and one per
/// [`proclus::Params::devices`] shard for [`Backend::Sharded`] configs.
///
/// Use [`run_on`] to keep the device (its clock, statistics and memory
/// pool) across runs.
pub fn run(data: &DataMatrix, config: &Config) -> proclus::Result<RunOutput> {
    if config.backend == Backend::Cpu {
        return proclus::run(data, config);
    }
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
    run_on(&mut dev, data, config)
}

/// Runs GPU-PROCLUS (§4.1) on the simulated device. Produces the same
/// clustering as the CPU baseline for the same seed.
///
/// Deprecated shim: use [`run_on`] with
/// [`Algo::Baseline`](proclus::Algo::Baseline) and [`Backend::Gpu`].
#[deprecated(since = "0.1.0", note = "use proclus_gpu::run_on with Algo::Baseline")]
pub fn gpu_proclus(dev: &mut Device, data: &DataMatrix, params: &Params) -> Result<Clustering> {
    run_variant(
        dev,
        data,
        params,
        GpuVariant::Plain,
        &NullRecorder,
        &CancelToken::new(),
    )
}

/// Runs GPU-FAST-PROCLUS (§4.2): cached distance rows + incremental `H`.
///
/// Deprecated shim: use [`run_on`] with
/// [`Algo::Fast`](proclus::Algo::Fast) and [`Backend::Gpu`].
#[deprecated(since = "0.1.0", note = "use proclus_gpu::run_on with Algo::Fast")]
pub fn gpu_fast_proclus(
    dev: &mut Device,
    data: &DataMatrix,
    params: &Params,
) -> Result<Clustering> {
    run_variant(
        dev,
        data,
        params,
        GpuVariant::Fast,
        &NullRecorder,
        &CancelToken::new(),
    )
}

/// Runs GPU-FAST*-PROCLUS (§3.2 + §4.2): the space-reduced variant.
///
/// Deprecated shim: use [`run_on`] with
/// [`Algo::FastStar`](proclus::Algo::FastStar) and [`Backend::Gpu`].
#[deprecated(since = "0.1.0", note = "use proclus_gpu::run_on with Algo::FastStar")]
pub fn gpu_fast_star_proclus(
    dev: &mut Device,
    data: &DataMatrix,
    params: &Params,
) -> Result<Clustering> {
    run_variant(
        dev,
        data,
        params,
        GpuVariant::FastStar,
        &NullRecorder,
        &CancelToken::new(),
    )
}

#[cfg(test)]
#[allow(deprecated)] // the shims must keep working until removed
mod tests {
    use super::*;
    use proclus::multi_param::Setting;
    use proclus::Grid;

    fn blob_data(n: usize) -> DataMatrix {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let c = if i % 2 == 0 { 0.0f32 } else { 50.0 };
                let noise = |s: usize| ((i * s) % 17) as f32 * 0.05;
                vec![
                    c + noise(3),
                    c + noise(5),
                    ((i * 7) % 100) as f32,
                    ((i * 11) % 100) as f32,
                ]
            })
            .collect();
        DataMatrix::from_rows(&rows).unwrap()
    }

    fn small_params() -> Params {
        Params::new(2, 2).with_a(30).with_b(5).with_seed(7)
    }

    fn gpu_config() -> Config {
        Config::new(small_params()).with_backend(Backend::Gpu)
    }

    #[test]
    fn run_matches_the_deprecated_entry_points() {
        let data = blob_data(400);
        let p = small_params();
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());

        let via_run = run(&data, &gpu_config().with_algo(Algo::Baseline)).unwrap();
        let via_shim = gpu_proclus(&mut dev, &data, &p).unwrap();
        assert_eq!(via_run.clustering(), &via_shim);

        let fast_run = run(&data, &gpu_config()).unwrap();
        let fast_shim = gpu_fast_proclus(&mut dev, &data, &p).unwrap();
        assert_eq!(fast_run.clustering(), &fast_shim);

        let star_run = run(&data, &gpu_config().with_algo(Algo::FastStar)).unwrap();
        let star_shim = gpu_fast_star_proclus(&mut dev, &data, &p).unwrap();
        assert_eq!(star_run.clustering(), &star_shim);
    }

    #[test]
    fn telemetry_covers_every_phase_and_kernel_family() {
        let data = blob_data(400);
        let out = run(&data, &gpu_config().with_telemetry(true)).unwrap();
        let report = out.telemetry.unwrap();
        assert_eq!(report.meta.get("backend").map(String::as_str), Some("gpu"));
        assert!(report.meta.contains_key("device"));
        for phase in [
            "run",
            "initialization",
            "iteration",
            "compute_l",
            "find_dimensions",
            "assign_points",
            "evaluate_clusters",
            "refinement",
            "remove_outliers",
        ] {
            assert!(report.find_span(phase).is_some(), "missing span {phase}");
        }
        // Every kernel family the device launched is bridged into the tree.
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        gpu_fast_proclus(&mut dev, &data, &small_params()).unwrap();
        for name in dev.report().kernels.keys() {
            let bridged = format!("kernel:{name}");
            let s = report
                .find_span(&bridged)
                .unwrap_or_else(|| panic!("kernel family {name} not bridged into the span tree"));
            assert!(s.counters.get(counters::KERNEL_LAUNCHES).copied() > Some(0));
        }
        assert!(report.total(counters::DIST_CACHE_HITS) > 0);
        assert!(report.total(counters::POINTS_REASSIGNED) >= data.n() as u64);
    }

    #[test]
    fn gpu_fast_computes_fewer_distances_than_gpu_baseline() {
        let data = blob_data(400);
        let base = run(
            &data,
            &gpu_config().with_algo(Algo::Baseline).with_telemetry(true),
        )
        .unwrap();
        let fast = run(&data, &gpu_config().with_telemetry(true)).unwrap();
        assert_eq!(base.clusterings, fast.clusterings);
        let db = base.telemetry.unwrap().total(counters::DISTANCES_COMPUTED);
        let df = fast.telemetry.unwrap().total(counters::DISTANCES_COMPUTED);
        assert!(df < db, "gpu fast {df} must be < gpu baseline {db}");
    }

    #[test]
    fn telemetry_does_not_change_the_result() {
        let data = blob_data(300);
        let quiet = run(&data, &gpu_config()).unwrap();
        let loud = run(&data, &gpu_config().with_telemetry(true)).unwrap();
        assert_eq!(quiet.clusterings, loud.clusterings);
    }

    #[test]
    fn cpu_configs_are_delegated() {
        let data = blob_data(300);
        let cpu = run(&data, &Config::new(small_params()).with_telemetry(true)).unwrap();
        assert_eq!(
            cpu.telemetry
                .unwrap()
                .meta
                .get("backend")
                .map(String::as_str),
            Some("cpu")
        );
    }

    #[test]
    fn grid_runs_every_setting_on_the_gpu() {
        let data = blob_data(500);
        let grid = Grid::new(
            vec![Setting::new(3, 2), Setting::new(4, 3)],
            ReuseLevel::SharedCache,
        );
        let out = run(
            &data,
            &Config::new(Params::new(4, 2).with_a(20).with_b(4).with_seed(5))
                .with_backend(Backend::Gpu)
                .with_grid(grid)
                .with_telemetry(true),
        )
        .unwrap();
        assert_eq!(out.clusterings.len(), 2);
        let report = out.telemetry.unwrap();
        assert_eq!(report.spans.iter().filter(|s| s.name == "run").count(), 2);
    }

    #[test]
    fn unsupported_combinations_are_reported_not_panicked() {
        let data = blob_data(300);
        let star_grid = gpu_config()
            .with_algo(Algo::FastStar)
            .with_grid(Grid::new(vec![Setting::new(2, 2)], ReuseLevel::Independent));
        assert!(matches!(
            run(&data, &star_grid),
            Err(ProclusError::Unsupported { .. })
        ));
        let tall = Config::new(Params::new(2000, 2)).with_backend(Backend::Gpu);
        assert!(run(&data, &tall).is_err());
    }
}
