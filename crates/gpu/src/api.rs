//! Public entry points for the single-parameter GPU algorithms.

use gpu_sim::Device;
use proclus::params::Params;
use proclus::phases::initialization::sample_data_prime;
use proclus::result::Clustering;
use proclus::{DataMatrix, ProclusRng};

use crate::driver::{run_core_gpu, GpuVariant};
use crate::error::{GpuProclusError, Result};
use crate::kernels::greedy::greedy_gpu;
use crate::kernels::ASSIGN_BLOCK;
use crate::rows::RowCache;
use crate::workspace::Workspace;

pub(crate) fn validate_gpu(dev: &Device, data: &DataMatrix, params: &Params) -> Result<()> {
    params.validate(data)?;
    if params.k as u32 > ASSIGN_BLOCK {
        return Err(GpuProclusError::Unsupported {
            reason: format!(
                "AssignPoints uses {ASSIGN_BLOCK}-thread blocks covering all k medoids; \
                 k = {} exceeds that",
                params.k
            ),
        });
    }
    let max_t = dev.config().max_threads_per_block as usize;
    if data.d() > max_t {
        return Err(GpuProclusError::Unsupported {
            reason: format!(
                "FindDimensions launches one thread per dimension; d = {} exceeds \
                 the device's {max_t} threads/block",
                data.d()
            ),
        });
    }
    Ok(())
}

fn run_variant(
    dev: &mut Device,
    data: &DataMatrix,
    params: &Params,
    variant: GpuVariant,
) -> Result<Clustering> {
    validate_gpu(dev, data, params)?;
    let n = data.n();
    let sample_size = params.sample_size(n);
    let m_size = params.num_potential_medoids(n);
    let ws = Workspace::new(dev, data, params.k, sample_size, m_size)?;
    let mut cache = match variant {
        GpuVariant::Plain => RowCache::new_plain(dev, n, params.k)?,
        GpuVariant::Fast => RowCache::new_fast(n, data.d(), params.k),
        GpuVariant::FastStar => RowCache::new_fast_star(dev, n, data.d(), params.k)?,
    };

    let mut rng = ProclusRng::new(params.seed);
    let sample = sample_data_prime(&mut rng, n, sample_size);
    let m_data = greedy_gpu(dev, &ws, &sample, m_size, &mut rng);

    let result = run_core_gpu(
        dev, &ws, &mut cache, variant, params, &mut rng, &m_data, None,
    );
    // Free device memory whether or not the run succeeded.
    cache.free(dev)?;
    ws.free(dev)?;
    result.map(|(c, _)| c)
}

/// Runs GPU-PROCLUS (§4.1) on the simulated device. Produces the same
/// clustering as [`proclus::proclus`] for the same seed.
pub fn gpu_proclus(dev: &mut Device, data: &DataMatrix, params: &Params) -> Result<Clustering> {
    run_variant(dev, data, params, GpuVariant::Plain)
}

/// Runs GPU-FAST-PROCLUS (§4.2): cached distance rows + incremental `H`.
pub fn gpu_fast_proclus(
    dev: &mut Device,
    data: &DataMatrix,
    params: &Params,
) -> Result<Clustering> {
    run_variant(dev, data, params, GpuVariant::Fast)
}

/// Runs GPU-FAST*-PROCLUS (§3.2 + §4.2): the space-reduced variant.
pub fn gpu_fast_star_proclus(
    dev: &mut Device,
    data: &DataMatrix,
    params: &Params,
) -> Result<Clustering> {
    run_variant(dev, data, params, GpuVariant::FastStar)
}
