//! Multiple parameter settings on the GPU (§3.1 + §5.3).
//!
//! Mirrors `proclus::multi_param` with device-resident state: the workspace
//! is sized once for the largest `k`, and at reuse level ≥ 1 the lazy
//! `Dist`/`H` row cache persists across settings, so a setting whose
//! medoids were already seen performs no distance computations at all —
//! the effect behind GPU-FAST-PROCLUS's ~7000× speedup in Fig. 3a–e.
//! The per-setting loop itself is the backend-generic
//! [`proclus::backend::grid_core_shared`] driven through a [`GpuBackend`];
//! this module only owns device allocation and the independent-level loop.
//!
//! The preferred route here is `proclus_gpu::run` / `run_on` with
//! [`proclus::Config::with_grid`]; the free functions below remain as the
//! direct API.

use gpu_sim::Device;
use proclus::backend::{grid_core_shared, initialization_phase, run_core};
use proclus::multi_param::{ReuseLevel, Setting};
use proclus::params::Params;
use proclus::result::Clustering;
use proclus::{CancelToken, DataMatrix, ProclusError, ProclusRng};
use proclus_telemetry::{attrs, span, NullRecorder, Recorder};

use crate::api::validate_gpu;
use crate::backend::{GpuBackend, GpuVariant};
use crate::error::Result;
use crate::rows::RowCache;
use crate::workspace::Workspace;

pub(crate) fn derive(base: &Params, s: Setting) -> Params {
    let mut p = base.clone();
    p.k = s.k;
    p.l = s.l;
    p
}

/// Returns the cancel token for setting `i`: `cancels` is either empty (no
/// per-setting cancellation) or one token per setting.
pub(crate) fn cancel_for(cancels: &[CancelToken], i: usize) -> CancelToken {
    cancels.get(i).cloned().unwrap_or_default()
}

/// GPU mirror of `proclus::fast_proclus_multi_outcomes`: per-setting
/// skip-and-report outcomes with optional per-setting cancellation.
///
/// The outer `Err` is reserved for shared infrastructure failures (the
/// batch workspace could not be allocated or freed); everything that
/// concerns a single setting — invalid parameters, kernel-shape limits,
/// cancellation, a device failure mid-run — lands as `Err` in that
/// setting's slot while the remaining settings still run. Every setting
/// gets a root `run` span (failed ones included) and skipped settings
/// consume no RNG, matching the CPU contract.
#[allow(clippy::too_many_arguments)]
pub fn gpu_fast_proclus_multi_outcomes(
    dev: &mut Device,
    data: &DataMatrix,
    base: &Params,
    settings: &[Setting],
    level: ReuseLevel,
    rec: &dyn Recorder,
    cancels: &[CancelToken],
) -> Result<Vec<proclus::Result<Clustering>>> {
    debug_assert!(cancels.is_empty() || cancels.len() == settings.len());
    let validity: Vec<proclus::Result<()>> = settings
        .iter()
        .map(|&s| validate_gpu(dev, data, &derive(base, s)).map_err(ProclusError::from))
        .collect();
    let n = data.n();
    let mut rng = ProclusRng::new(base.seed);
    let mut results: Vec<proclus::Result<Clustering>> = Vec::with_capacity(settings.len());

    if level == ReuseLevel::Independent {
        // Truly independent executions, as in "GPU-FAST-PROCLUS executed
        // with one parameter setting at a time" (§5.3): every setting
        // allocates its own workspace and uploads the data itself.
        for (i, &s) in settings.iter().enumerate() {
            let run_span = span(rec, "run");
            if let Err(e) = &validity[i] {
                results.push(Err(e.clone()));
                continue;
            }
            let cancel = cancel_for(cancels, i);
            if let Err(e) = cancel.check() {
                results.push(Err(e));
                continue;
            }
            let params = derive(base, s);
            let run_t = dev.elapsed_us();
            let sample_size = params.sample_size(n);
            let m_count = params.num_potential_medoids(n);
            let ws_s = Workspace::new(dev, data, params.k, sample_size, m_count)?;
            let mut cache = RowCache::new_fast(n, data.d(), params.k);
            let r = {
                let mut backend = GpuBackend::new(dev, &ws_s, &mut cache, GpuVariant::Fast);
                initialization_phase(&mut backend, &params, &mut rng, rec).and_then(|m_data| {
                    run_core(&mut backend, &params, &mut rng, &m_data, None, rec, &cancel)
                })
            };
            cache.free(dev)?;
            ws_s.free(dev)?;
            rec.annotate(run_span.id(), attrs::SIM_US, dev.elapsed_us() - run_t);
            results.push(r.map(|(c, _)| c));
        }
        return Ok(results);
    }

    // The shared workspace needs the largest valid k before anything runs;
    // an all-invalid grid reports per-setting errors and allocates nothing.
    let k_max = settings
        .iter()
        .zip(&validity)
        .filter(|(_, v)| v.is_ok())
        .map(|(s, _)| s.k)
        .max();
    let Some(k_max) = k_max else {
        for v in &validity {
            let _run = span(rec, "run");
            results.push(Err(v.as_ref().unwrap_err().clone()));
        }
        return Ok(results);
    };
    let sample_size = (base.a * k_max).min(n);
    let m_max = (base.b * k_max).min(sample_size);

    // Level ≥ 1: one workspace, one sample; persistent cache. The shared
    // per-setting loop (sample, optional shared greedy, warm starts) is the
    // backend-generic grid driver.
    let ws = Workspace::new(dev, data, k_max, sample_size, m_max)?;
    let mut cache = RowCache::new_fast(n, data.d(), k_max);
    let results = {
        let mut backend = GpuBackend::new(dev, &ws, &mut cache, GpuVariant::Fast);
        grid_core_shared(
            &mut backend,
            base,
            settings,
            level,
            &validity,
            &mut rng,
            rec,
            cancels,
        )
    };
    cache.free(dev)?;
    ws.free(dev)?;
    Ok(results)
}

/// Runs GPU-FAST-PROCLUS over a grid of `(k, l)` settings with the chosen
/// reuse level, returning one clustering per setting.
///
/// Any invalid setting fails the whole call (the historical contract); use
/// [`gpu_fast_proclus_multi_outcomes`] for per-setting skip-and-report.
pub fn gpu_fast_proclus_multi(
    dev: &mut Device,
    data: &DataMatrix,
    base: &Params,
    settings: &[Setting],
    level: ReuseLevel,
) -> Result<Vec<Clustering>> {
    for &s in settings {
        validate_gpu(dev, data, &derive(base, s))?;
    }
    gpu_fast_proclus_multi_outcomes(dev, data, base, settings, level, &NullRecorder, &[])?
        .into_iter()
        .map(|r| r.map_err(crate::error::GpuProclusError::from))
        .collect()
}

/// GPU mirror of `proclus::proclus_multi_outcomes`: plain GPU-PROCLUS per
/// setting, with per-setting skip-and-report outcomes and cancellation.
/// See [`gpu_fast_proclus_multi_outcomes`] for the contract.
pub fn gpu_proclus_multi_outcomes(
    dev: &mut Device,
    data: &DataMatrix,
    base: &Params,
    settings: &[Setting],
    rec: &dyn Recorder,
    cancels: &[CancelToken],
) -> Result<Vec<proclus::Result<Clustering>>> {
    debug_assert!(cancels.is_empty() || cancels.len() == settings.len());
    let validity: Vec<proclus::Result<()>> = settings
        .iter()
        .map(|&s| validate_gpu(dev, data, &derive(base, s)).map_err(ProclusError::from))
        .collect();
    let n = data.n();
    let k_max = settings
        .iter()
        .zip(&validity)
        .filter(|(_, v)| v.is_ok())
        .map(|(s, _)| s.k)
        .max();
    let mut results: Vec<proclus::Result<Clustering>> = Vec::with_capacity(settings.len());
    let Some(k_max) = k_max else {
        for v in &validity {
            let _run = span(rec, "run");
            results.push(Err(v.as_ref().unwrap_err().clone()));
        }
        return Ok(results);
    };
    let sample_size = (base.a * k_max).min(n);
    let m_max = (base.b * k_max).min(sample_size);
    let ws = Workspace::new(dev, data, k_max, sample_size, m_max)?;
    let mut rng = ProclusRng::new(base.seed);
    for (i, &s) in settings.iter().enumerate() {
        let run_span = span(rec, "run");
        if let Err(e) = &validity[i] {
            results.push(Err(e.clone()));
            continue;
        }
        let cancel = cancel_for(cancels, i);
        if let Err(e) = cancel.check() {
            results.push(Err(e));
            continue;
        }
        let params = derive(base, s);
        let run_t = dev.elapsed_us();
        let mut cache = RowCache::new_plain(dev, n, params.k)?;
        let r = {
            let mut backend = GpuBackend::new(dev, &ws, &mut cache, GpuVariant::Plain);
            initialization_phase(&mut backend, &params, &mut rng, rec).and_then(|m_data| {
                run_core(&mut backend, &params, &mut rng, &m_data, None, rec, &cancel)
            })
        };
        cache.free(dev)?;
        rec.annotate(run_span.id(), attrs::SIM_US, dev.elapsed_us() - run_t);
        results.push(r.map(|(c, _)| c));
    }
    ws.free(dev)?;
    Ok(results)
}

/// Runs plain GPU-PROCLUS independently for every setting (the comparison
/// baseline of Fig. 3a–e).
///
/// Any invalid setting fails the whole call (the historical contract); use
/// [`gpu_proclus_multi_outcomes`] for per-setting skip-and-report.
pub fn gpu_proclus_multi(
    dev: &mut Device,
    data: &DataMatrix,
    base: &Params,
    settings: &[Setting],
) -> Result<Vec<Clustering>> {
    for &s in settings {
        validate_gpu(dev, data, &derive(base, s))?;
    }
    gpu_proclus_multi_outcomes(dev, data, base, settings, &NullRecorder, &[])?
        .into_iter()
        .map(|r| r.map_err(crate::error::GpuProclusError::from))
        .collect()
}
