//! The sharded multi-device [`Backend`]: points partitioned across `D`
//! simulated devices, medoids broadcast, per-phase partials reduced at the
//! phase barriers of the shared driver.
//!
//! Layout: the dataset is split into `D` contiguous shards (empty shards
//! for `D > n` are dropped at construction). Each shard device holds its
//! own rows plus an **annex** — a broadcast copy of every potential-medoid
//! row, appended after the shard rows in the same device buffer. Kernels
//! address medoids by their annex row index, so every single-device kernel
//! (`dist_row`, `build_lists`, `h_update`, `assign`, outlier removal) runs
//! unchanged on shard-local data even when the medoid lives on another
//! shard. The per-shard `Dist`/`H` caches are keyed by annex slot, which is
//! stable for the lifetime of the backend, so the FAST reuse behavior of
//! §3.1/§4.2 is hit-for-hit identical to the single-device backend.
//!
//! Per phase, each [`Backend`] primitive is one bulk-synchronous step: the
//! shards run the phase kernels on their own rows, then the host reduces
//! the small cross-shard state — `ΔL` counts and `|L|` sizes (ComputeL),
//! the `k × d` partial `X` sums, cluster sizes (AssignPoints), partial
//! centroids and cost terms (EvaluateClusters, via the two partial kernels
//! in `kernels::evaluate`). Decision logic then proceeds exactly as on one
//! device, so seeds produce the same medoid path; only the f64 summation
//! order differs (cross-shard partial sums), which the equivalence tests
//! bound at `1e-9` on the cost — labels, medoids and subspaces are asserted
//! equal.
//!
//! The simulated clock of the whole ensemble advances by the *maximum*
//! per-shard device delta of each step (the barrier) plus a modeled
//! tree-reduction cost per reduced element — that is what
//! [`Backend::clock_us`] reports and what the speedup benchmark measures.

use std::collections::HashMap;

use gpu_sim::{Device, DeviceBuffer, DeviceConfig, GpuError};
use proclus::backend::{grid_core_shared, initialization_phase, run_core, run_full, Backend};
use proclus::multi_param::{ReuseLevel, Setting};
use proclus::params::Params;
use proclus::phases::compute_l::medoid_deltas;
use proclus::phases::find_dimensions::find_dimensions;
use proclus::phases::initialization::greedy_select;
use proclus::result::Clustering;
use proclus::{CancelToken, Config, DataMatrix, ProclusError, ProclusRng};
use proclus_telemetry::{attrs, counters, span, Recorder};

use crate::api::{validate_gpu, variant_for};
use crate::backend::GpuVariant;
use crate::error::{GpuProclusError, Result};
use crate::kernels::assign::{assign_kernel, assign_subset_kernel};
use crate::kernels::dist::dist_subset_kernel;
use crate::kernels::evaluate::{centroid_partial_kernel, cost_partial_kernel};
use crate::kernels::find_dims::{h_update_kernel, x_from_h_kernel, x_from_lists_partial_kernel};
use crate::kernels::lsets::{build_lists_kernel, SphereCond};
use crate::kernels::outliers::{outlier_deltas_kernel, remove_outliers_kernel};
use crate::kernels::util::{copy_labels_kernel, lists_from_labels_kernel};
use crate::multi_param::{cancel_for, derive};
use crate::rows::RowCache;

/// Modeled one-hop interconnect latency for a phase-barrier reduction, µs.
const LINK_LATENCY_US: f64 = 8.0;
/// Modeled interconnect bandwidth for reduced scalars, bytes per µs.
const LINK_BYTES_PER_US: f64 = 12_000.0;

/// Converts a device error into the core error type at a shard boundary.
fn dev_err(e: GpuError) -> ProclusError {
    ProclusError::Device {
        reason: e.to_string(),
    }
}

/// Cost of tree-reducing `elems` f64 scalars across `d_count` devices.
fn reduce_cost_us(d_count: usize, elems: usize) -> f64 {
    if d_count <= 1 {
        return 0.0;
    }
    let hops = (d_count as f64).log2().ceil();
    hops * (LINK_LATENCY_US + (elems * 8) as f64 / LINK_BYTES_PER_US)
}

/// One device's slice of the problem: its rows, the medoid annex, and the
/// shard-local mirrors of every workspace buffer the kernels touch.
struct Shard {
    dev: Device,
    /// Rows resident on this shard.
    n_local: usize,
    /// `(n_local + annex_cap) × d`: shard rows then broadcast medoid rows.
    data: DeviceBuffer<f32>,
    l_list: DeviceBuffer<u32>,
    l_count: DeviceBuffer<u32>,
    c_list: DeviceBuffer<u32>,
    c_count: DeviceBuffer<u32>,
    labels: DeviceBuffer<i32>,
    labels_best: DeviceBuffer<i32>,
    x: DeviceBuffer<f64>,
    mu: DeviceBuffer<f64>,
    cost: DeviceBuffer<f64>,
    dims_flat: DeviceBuffer<u32>,
    outlier_deltas: DeviceBuffer<f64>,
    cache: RowCache,
    /// Shard-local cluster sizes from the latest assign.
    sizes: Vec<usize>,
    /// Telemetry watermarks for the per-shard summary spans.
    last_emit_us: f64,
    last_emit_launches: u64,
}

impl Shard {
    fn free(self) -> Result<()> {
        let mut dev = self.dev;
        self.cache.free(&mut dev)?;
        for b in [&self.l_list, &self.c_list, &self.dims_flat] {
            dev.free(b)?;
        }
        dev.free(&self.data)?;
        dev.free(&self.l_count)?;
        dev.free(&self.c_count)?;
        dev.free(&self.labels)?;
        dev.free(&self.labels_best)?;
        dev.free(&self.x)?;
        dev.free(&self.mu)?;
        dev.free(&self.cost)?;
        dev.free(&self.outlier_deltas)?;
        Ok(())
    }
}

/// The sharded multi-device execution backend (see the module docs).
pub struct ShardedBackend<'a> {
    data: &'a DataMatrix,
    shards: Vec<Shard>,
    variant: GpuVariant,
    /// Annex rows reserved per shard (every greedy pick fits: `|S|`).
    annex_cap: usize,
    /// Broadcast medoid bookkeeping: global data index → annex slot.
    annex_of: HashMap<usize, usize>,
    next_annex: usize,
    /// Host-reduced `X` of the latest ComputeL step (`k × d`).
    x: Vec<f64>,
    /// Subspace offsets of the latest FindDimensions step.
    offsets: Vec<usize>,
    /// The ensemble clock: max-per-shard phase deltas + reduction costs.
    sim_us: f64,
    /// Polled between per-shard steps so a cancel lands mid-phase.
    cancel: CancelToken,
}

impl<'a> ShardedBackend<'a> {
    /// Partitions `data` across `devices` fresh deterministic devices built
    /// from `cfg`. `k_cap` sizes the per-cluster buffers (the largest `k`
    /// of a grid); `annex_cap` sizes the medoid annex (the sample size —
    /// every greedy pick comes from the sample). Empty shards (`devices >
    /// n`) are dropped, so degenerate device counts degrade gracefully.
    pub fn new(
        cfg: &DeviceConfig,
        data: &'a DataMatrix,
        devices: usize,
        k_cap: usize,
        annex_cap: usize,
        variant: GpuVariant,
        cancel: CancelToken,
    ) -> Result<Self> {
        let (n, d) = (data.n(), data.d());
        let d_count = devices.max(1);
        let base = n / d_count;
        let rem = n % d_count;
        let mut shards = Vec::new();
        let mut start = 0usize;
        for i in 0..d_count {
            let n_local = base + usize::from(i < rem);
            if n_local == 0 {
                continue; // more devices than points: drop the empty shard
            }
            let mut dev = Device::new(cfg.clone());
            dev.set_deterministic(true);
            let data_buf = dev.alloc_zeroed::<f32>("shard.data", (n_local + annex_cap) * d)?;
            dev.upload(
                &data_buf.slice(0, n_local * d),
                &data.flat()[start * d..(start + n_local) * d],
            );
            let cache = match variant {
                GpuVariant::Plain => RowCache::new_plain(&mut dev, n_local, k_cap)?,
                GpuVariant::Fast => RowCache::new_fast(n_local, d, k_cap),
                GpuVariant::FastStar => RowCache::new_fast_star(&mut dev, n_local, d, k_cap)?,
            };
            let shard = Shard {
                n_local,
                data: data_buf,
                l_list: dev.alloc_zeroed("shard.l_list", k_cap * n_local)?,
                l_count: dev.alloc_zeroed("shard.l_count", k_cap)?,
                c_list: dev.alloc_zeroed("shard.c_list", k_cap * n_local)?,
                c_count: dev.alloc_zeroed("shard.c_count", k_cap)?,
                labels: dev.alloc_zeroed("shard.labels", n_local)?,
                labels_best: dev.alloc_zeroed("shard.labels_best", n_local)?,
                x: dev.alloc_zeroed("shard.x", k_cap * d)?,
                mu: dev.alloc_zeroed("shard.mu", k_cap * d)?,
                cost: dev.alloc_zeroed("shard.cost", 1)?,
                dims_flat: dev.alloc_zeroed("shard.dims", k_cap * d)?,
                outlier_deltas: dev.alloc_zeroed("shard.outlier_deltas", k_cap)?,
                cache,
                sizes: Vec::new(),
                last_emit_us: 0.0,
                last_emit_launches: 0,
                dev,
            };
            shards.push(shard);
            start += n_local;
        }
        Ok(Self {
            data,
            shards,
            variant,
            annex_cap,
            annex_of: HashMap::new(),
            next_annex: 0,
            x: Vec::new(),
            offsets: Vec::new(),
            sim_us: 0.0,
            cancel,
        })
    }

    /// Number of shards actually holding points.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Releases every shard's device memory. Like the single-GPU runners,
    /// callers free explicitly so leaks are observable in tests.
    pub fn free(self) -> Result<()> {
        for shard in self.shards {
            shard.free()?;
        }
        Ok(())
    }

    /// Snapshot of every shard clock at the start of a barrier step.
    fn begin_step(&self) -> Vec<f64> {
        self.shards.iter().map(|s| s.dev.elapsed_us()).collect()
    }

    /// Ends a barrier step: the ensemble waited for the slowest shard, then
    /// reduced `reduced_elems` scalars across devices.
    fn end_step(&mut self, starts: &[f64], reduced_elems: usize) {
        let mut max_delta = 0.0f64;
        for (shard, &t0) in self.shards.iter().zip(starts) {
            let dt = shard.dev.elapsed_us() - t0;
            if dt > max_delta {
                max_delta = dt;
            }
        }
        self.sim_us += max_delta + reduce_cost_us(self.shards.len(), reduced_elems);
    }

    /// Annex slot of a broadcast medoid row.
    fn annex_slot(&self, global: usize) -> proclus::Result<usize> {
        self.annex_of
            .get(&global)
            .copied()
            .ok_or_else(|| ProclusError::Device {
                reason: format!("medoid {global} was never broadcast to the shards"),
            })
    }

    /// Annex slots for a set of global medoid indices.
    fn annex_slots(&self, medoids: &[usize]) -> proclus::Result<Vec<usize>> {
        medoids.iter().map(|&g| self.annex_slot(g)).collect()
    }

    /// Broadcasts any not-yet-resident medoid rows to every shard's annex.
    fn broadcast_medoids(&mut self, picks: &[usize]) -> proclus::Result<()> {
        let d = self.data.d();
        let fresh: Vec<usize> = picks
            .iter()
            .copied()
            .filter(|g| !self.annex_of.contains_key(g))
            .collect();
        if fresh.is_empty() {
            return Ok(());
        }
        if self.next_annex + fresh.len() > self.annex_cap {
            return Err(ProclusError::Device {
                reason: format!(
                    "medoid annex overflow: {} broadcast rows exceed the reserved {}",
                    self.next_annex + fresh.len(),
                    self.annex_cap
                ),
            });
        }
        let first = self.next_annex;
        let mut flat = Vec::with_capacity(fresh.len() * d);
        for &g in &fresh {
            self.annex_of.insert(g, self.next_annex);
            self.next_annex += 1;
            flat.extend_from_slice(&self.data.flat()[g * d..(g + 1) * d]);
        }
        for shard in &mut self.shards {
            let annex = shard.data.slice((shard.n_local + first) * d, flat.len());
            shard.dev.upload(&annex, &flat);
        }
        Ok(())
    }

    /// One `shard:<i>` summary span per device: simulated busy time and
    /// kernel launches since the previous emission.
    fn emit_shard_spans(&mut self, rec: &dyn Recorder) {
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let launches: u64 = shard
                .dev
                .report()
                .kernels
                .values()
                .map(|a| a.launches)
                .sum();
            let now = shard.dev.elapsed_us();
            rec.emit(
                &format!("shard:{i}"),
                &[(
                    counters::KERNEL_LAUNCHES,
                    launches - shard.last_emit_launches,
                )],
                &[(attrs::SIM_US, now - shard.last_emit_us)],
            );
            shard.last_emit_us = now;
            shard.last_emit_launches = launches;
        }
    }
}

impl Backend for ShardedBackend<'_> {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn n(&self) -> usize {
        self.data.n()
    }

    fn clock_us(&self) -> Option<f64> {
        Some(self.sim_us)
    }

    fn greedy(
        &mut self,
        sample: &[usize],
        count: usize,
        rng: &mut ProclusRng,
        _rec: &dyn Recorder,
    ) -> proclus::Result<Vec<usize>> {
        // Host-side farthest-point selection (seed-identical to the device
        // kernel — asserted by the greedy kernel tests), then one broadcast
        // of the chosen rows into every shard's annex. The shard caches key
        // rows by annex slot, which `broadcast_medoids` keeps stable.
        // The host-side scan shares the process-wide work-stealing pool;
        // grain decomposition is a pure function of the sample size, so
        // the selection stays bitwise-identical to a sequential scan.
        let picks = greedy_select(
            self.data,
            sample,
            count,
            rng,
            &proclus::par::Executor::all_cores(),
        );
        let starts = self.begin_step();
        self.broadcast_medoids(&picks)?;
        self.end_step(&starts, 0);
        Ok(picks)
    }

    fn compute_x(
        &mut self,
        m_data: &[usize],
        mcur: &[usize],
        rec: &dyn Recorder,
    ) -> proclus::Result<()> {
        let (n, d) = (self.data.n(), self.data.d());
        let k = mcur.len();
        let cancel = self.cancel.clone();
        let medoids: Vec<usize> = mcur.iter().map(|&mi| m_data[mi]).collect();
        let m_slots = self.annex_slots(m_data)?;
        // Sphere radii δ on the host: each shard's distance rows only cover
        // its own points, so the medoid-to-medoid minima are formed from
        // the full data (bitwise-identical to the δ kernel).
        let deltas = medoid_deltas(self.data, &medoids);
        let starts = self.begin_step();

        // Hit/miss accounting is identical on every shard (the caches see
        // the same annex-slot sequence); count it once, over the global n.
        if rec.enabled() {
            if let Some(first) = self.shards.first() {
                let m_dev: Vec<usize> = m_slots.iter().map(|&s| first.n_local + s).collect();
                let misses = first.cache.misses(&m_dev, mcur);
                rec.add(counters::DISTANCES_COMPUTED, (misses * n) as u64);
                if self.variant != GpuVariant::Plain {
                    rec.add(counters::DIST_CACHE_MISSES, misses as u64);
                    rec.add(counters::DIST_CACHE_HITS, (mcur.len() - misses) as u64);
                }
            }
        }

        // Annex slots of the *current* medoids (a subset of m_data).
        let med_slots: Vec<usize> = mcur.iter().map(|&mi| m_slots[mi]).collect();

        match self.variant {
            GpuVariant::Plain => {
                // Pass 1: shard-local sphere lists and counts.
                let mut global_counts = vec![0usize; k];
                let mut local_counts_of: Vec<Vec<usize>> = Vec::with_capacity(self.shards.len());
                for shard in &mut self.shards {
                    cancel.check()?;
                    let n_l = shard.n_local;
                    let m_dev: Vec<usize> = m_slots.iter().map(|&s| n_l + s).collect();
                    let row_of_slot = shard
                        .cache
                        .prepare(&mut shard.dev, &shard.data, n_l, d, &m_dev, mcur)
                        .map_err(ProclusError::from)?;
                    build_lists_kernel(
                        &mut shard.dev,
                        shard.cache.rows(),
                        &row_of_slot,
                        &SphereCond::Within(deltas.clone()),
                        n_l,
                        &shard.l_list,
                        &shard.l_count,
                    );
                    let mut counts: Vec<usize> = shard
                        .dev
                        .dtoh(&shard.l_count)
                        .iter()
                        .map(|&c| c as usize)
                        .collect();
                    counts.truncate(k);
                    for (g, &c) in global_counts.iter_mut().zip(&counts) {
                        *g += c;
                    }
                    local_counts_of.push(counts);
                }
                // Pass 2: partial X — this shard's list entries divided by
                // the *global* sphere sizes; the host sum of the k×d
                // readbacks is then exactly X.
                let mut x = vec![0.0f64; k * d];
                for (shard, local_counts) in self.shards.iter_mut().zip(&local_counts_of) {
                    cancel.check()?;
                    let n_l = shard.n_local;
                    let m_dev: Vec<usize> = med_slots.iter().map(|&s| n_l + s).collect();
                    x_from_lists_partial_kernel(
                        &mut shard.dev,
                        &shard.data,
                        d,
                        n_l,
                        &m_dev,
                        &shard.l_list,
                        local_counts,
                        &global_counts,
                        &shard.x,
                    );
                    for (g, v) in x.iter_mut().zip(shard.dev.dtoh(&shard.x)) {
                        *g += v;
                    }
                }
                self.x = x;
            }
            GpuVariant::Fast | GpuVariant::FastStar => {
                // Pass 1: ΔL lists + incremental H per shard (Theorem 3.1
                // applies shard-locally: each shard's H covers its rows).
                let mut global_lsizes = vec![0usize; k];
                let mut dl_total = 0u64;
                let mut rows_of: Vec<Vec<usize>> = Vec::with_capacity(self.shards.len());
                for shard in &mut self.shards {
                    cancel.check()?;
                    let n_l = shard.n_local;
                    let m_dev: Vec<usize> = m_slots.iter().map(|&s| n_l + s).collect();
                    let medoids_dev: Vec<usize> = mcur.iter().map(|&mi| m_dev[mi]).collect();
                    let row_of_slot = shard
                        .cache
                        .prepare(&mut shard.dev, &shard.data, n_l, d, &m_dev, mcur)
                        .map_err(ProclusError::from)?;
                    let mut bounds = Vec::with_capacity(k);
                    let mut lambda = Vec::with_capacity(k);
                    for (slot, &row) in row_of_slot.iter().enumerate() {
                        let prev = shard.cache.rows()[row].prev_delta;
                        let cur = deltas[slot];
                        if cur >= prev {
                            bounds.push((prev, cur));
                            lambda.push(1.0);
                        } else {
                            bounds.push((cur, prev));
                            lambda.push(-1.0);
                        }
                    }
                    build_lists_kernel(
                        &mut shard.dev,
                        shard.cache.rows(),
                        &row_of_slot,
                        &SphereCond::Between(bounds),
                        n_l,
                        &shard.l_list,
                        &shard.l_count,
                    );
                    let dl_counts: Vec<usize> = shard
                        .dev
                        .dtoh(&shard.l_count)
                        .iter()
                        .map(|&c| c as usize)
                        .collect();
                    dl_total += dl_counts.iter().take(k).map(|&c| c as u64).sum::<u64>();
                    h_update_kernel(
                        &mut shard.dev,
                        &shard.data,
                        d,
                        n_l,
                        &medoids_dev,
                        shard.cache.rows(),
                        &row_of_slot,
                        &shard.l_list,
                        &dl_counts,
                        &lambda,
                    );
                    for (slot, &row) in row_of_slot.iter().enumerate() {
                        let r = &mut shard.cache.rows_mut()[row];
                        if lambda[slot] > 0.0 {
                            r.lsize += dl_counts[slot];
                        } else {
                            r.lsize -= dl_counts[slot];
                        }
                        r.prev_delta = deltas[slot];
                        global_lsizes[slot] += r.lsize;
                    }
                    rows_of.push(row_of_slot);
                }
                rec.add(counters::DELTA_L_POINTS, dl_total);
                // Pass 2: partial X = H_shard / |L|_global, host-summed.
                let mut x = vec![0.0f64; k * d];
                for (shard, row_of_slot) in self.shards.iter_mut().zip(&rows_of) {
                    cancel.check()?;
                    x_from_h_kernel(
                        &mut shard.dev,
                        d,
                        shard.cache.rows(),
                        row_of_slot,
                        &global_lsizes,
                        &shard.x,
                    );
                    for (g, v) in x.iter_mut().zip(shard.dev.dtoh(&shard.x)) {
                        *g += v;
                    }
                }
                self.x = x;
            }
        }
        self.end_step(&starts, k * d);
        Ok(())
    }

    fn find_dims(
        &mut self,
        k: usize,
        l: usize,
        _rec: &dyn Recorder,
    ) -> proclus::Result<Vec<Vec<usize>>> {
        // Z and the greedy dimension pick run on the host from the reduced
        // X (k×d scalars — the same decision data the single-GPU backend
        // reads back); the chosen subspaces are then broadcast.
        let d = self.data.d();
        let dims = find_dimensions(&self.x[..k * d], k, d, l);
        let mut flat = Vec::new();
        let mut offsets = vec![0usize];
        for s in &dims {
            flat.extend(s.iter().map(|&j| j as u32));
            offsets.push(flat.len());
        }
        let starts = self.begin_step();
        for shard in &mut self.shards {
            shard.dev.upload(&shard.dims_flat, &flat);
        }
        self.end_step(&starts, flat.len());
        self.offsets = offsets;
        Ok(dims)
    }

    fn assign(
        &mut self,
        medoids: &[usize],
        _dims: &[Vec<usize>],
        _rec: &dyn Recorder,
    ) -> proclus::Result<Vec<usize>> {
        let d = self.data.d();
        let k = medoids.len();
        let cancel = self.cancel.clone();
        let slots = self.annex_slots(medoids)?;
        let mut global = vec![0usize; k];
        let starts = self.begin_step();
        for shard in &mut self.shards {
            cancel.check()?;
            let n_l = shard.n_local;
            let m_dev: Vec<usize> = slots.iter().map(|&s| n_l + s).collect();
            assign_kernel(
                &mut shard.dev,
                &shard.data,
                d,
                n_l,
                &m_dev,
                &shard.dims_flat,
                &self.offsets,
                &shard.labels,
                &shard.c_list,
                &shard.c_count,
            );
            let mut sizes: Vec<usize> = shard
                .dev
                .dtoh(&shard.c_count)
                .iter()
                .map(|&c| c as usize)
                .collect();
            sizes.truncate(k);
            for (g, &s) in global.iter_mut().zip(&sizes) {
                *g += s;
            }
            shard.sizes = sizes;
        }
        self.end_step(&starts, k);
        Ok(global)
    }

    fn dist_subset(
        &mut self,
        medoid: usize,
        points: &[usize],
        _rec: &dyn Recorder,
    ) -> proclus::Result<Vec<f32>> {
        if points.is_empty() {
            return Ok(Vec::new());
        }
        let d = self.data.d();
        let cancel = self.cancel.clone();
        // The medoid row reaches every annex on demand (idempotent), so the
        // streaming driver may ask about any sample point, broadcast or not.
        self.broadcast_medoids(&[medoid])?;
        let slot = self.annex_slot(medoid)?;
        let mut out = vec![0.0f32; points.len()];
        let starts = self.begin_step();
        let mut shard_lo = 0usize;
        for shard in &mut self.shards {
            cancel.check()?;
            let lo = shard_lo;
            let hi = lo + shard.n_local;
            shard_lo = hi;
            // This shard's slice of the request, in request order.
            let local: Vec<(usize, u32)> = points
                .iter()
                .enumerate()
                .filter(|&(_, &p)| p >= lo && p < hi)
                .map(|(i, &p)| (i, (p - lo) as u32))
                .collect();
            if local.is_empty() {
                continue;
            }
            let todo_host: Vec<u32> = local.iter().map(|&(_, l)| l).collect();
            let todo = shard.dev.htod("stream.todo", &todo_host).map_err(dev_err)?;
            let res = shard
                .dev
                .alloc_zeroed::<f32>("stream.dist_out", todo_host.len())
                .map_err(dev_err)?;
            dist_subset_kernel(
                &mut shard.dev,
                &shard.data,
                d,
                shard.n_local + slot,
                &todo,
                todo_host.len(),
                &res,
            );
            let host = shard.dev.dtoh(&res);
            shard.dev.free(&todo).map_err(dev_err)?;
            shard.dev.free(&res).map_err(dev_err)?;
            for (&(i, _), v) in local.iter().zip(host) {
                out[i] = v;
            }
        }
        self.end_step(&starts, points.len());
        Ok(out)
    }

    fn assign_seeded(
        &mut self,
        medoids: &[usize],
        dims: &[Vec<usize>],
        seed_labels: &[i32],
        todo: &[usize],
        _rec: &dyn Recorder,
    ) -> proclus::Result<Vec<usize>> {
        let n = self.data.n();
        if seed_labels.len() != n {
            return Err(ProclusError::InvalidData {
                reason: format!(
                    "assign_seeded: {} seed labels for {n} points",
                    seed_labels.len()
                ),
            });
        }
        let d = self.data.d();
        let k = medoids.len();
        let cancel = self.cancel.clone();
        self.broadcast_medoids(medoids)?;
        let slots = self.annex_slots(medoids)?;
        // Host-picked subspaces are scattered here instead of `find_dims`.
        let mut flat = Vec::new();
        let mut offsets = vec![0usize];
        for s in dims {
            flat.extend(s.iter().map(|&j| j as u32));
            offsets.push(flat.len());
        }
        let starts = self.begin_step();
        let mut global = vec![0usize; k];
        let mut shard_lo = 0usize;
        for shard in &mut self.shards {
            cancel.check()?;
            let n_l = shard.n_local;
            let lo = shard_lo;
            let hi = lo + n_l;
            shard_lo = hi;
            shard.dev.upload(&shard.dims_flat, &flat);
            shard.dev.upload(&shard.labels, &seed_labels[lo..hi]);
            let local_todo: Vec<u32> = todo
                .iter()
                .filter(|&&p| p >= lo && p < hi)
                .map(|&p| (p - lo) as u32)
                .collect();
            if !local_todo.is_empty() {
                let m_dev: Vec<usize> = slots.iter().map(|&s| n_l + s).collect();
                let todo_buf = shard
                    .dev
                    .htod("stream.assign_todo", &local_todo)
                    .map_err(dev_err)?;
                assign_subset_kernel(
                    &mut shard.dev,
                    &shard.data,
                    d,
                    &m_dev,
                    &shard.dims_flat,
                    &offsets,
                    &todo_buf,
                    local_todo.len(),
                    &shard.labels,
                );
                shard.dev.free(&todo_buf).map_err(dev_err)?;
            }
            // Rebuild the member lists so evaluate sees a partition
            // consistent with the seeded labels.
            lists_from_labels_kernel(
                &mut shard.dev,
                &shard.labels,
                n_l,
                &shard.c_list,
                &shard.c_count,
            );
            let mut sizes: Vec<usize> = shard
                .dev
                .dtoh(&shard.c_count)
                .iter()
                .map(|&c| c as usize)
                .collect();
            sizes.truncate(k);
            for (g, &s) in global.iter_mut().zip(&sizes) {
                *g += s;
            }
            shard.sizes = sizes;
        }
        self.offsets = offsets;
        self.end_step(&starts, k);
        Ok(global)
    }

    fn labels(&mut self) -> proclus::Result<Vec<i32>> {
        let starts = self.begin_step();
        let mut out = Vec::with_capacity(self.data.n());
        for shard in &mut self.shards {
            out.extend(shard.dev.dtoh(&shard.labels));
        }
        self.end_step(&starts, 0);
        Ok(out)
    }

    fn evaluate(
        &mut self,
        _dims: &[Vec<usize>],
        sizes: &[usize],
        rec: &dyn Recorder,
    ) -> proclus::Result<f64> {
        let (n, d) = (self.data.n(), self.data.d());
        let k = sizes.len();
        let cancel = self.cancel.clone();
        let starts = self.begin_step();
        // Phase 1: partial centroid components per shard, pre-divided by
        // the global cluster sizes; the host sum is the global µ.
        let mut mu = vec![0.0f64; k * d];
        for shard in &mut self.shards {
            cancel.check()?;
            centroid_partial_kernel(
                &mut shard.dev,
                &shard.data,
                d,
                shard.n_local,
                &shard.dims_flat,
                &self.offsets,
                &shard.c_list,
                &shard.sizes,
                sizes,
                &shard.mu,
            );
            for (g, v) in mu.iter_mut().zip(shard.dev.dtoh(&shard.mu)) {
                *g += v;
            }
        }
        // Phase 2: broadcast µ back, accumulate each shard's cost terms
        // against the global point count, and sum the scalars.
        let mut cost = 0.0f64;
        for shard in &mut self.shards {
            cancel.check()?;
            shard.dev.upload(&shard.mu, &mu);
            cost += cost_partial_kernel(
                &mut shard.dev,
                &shard.data,
                d,
                shard.n_local,
                &shard.dims_flat,
                &self.offsets,
                &shard.c_list,
                &shard.sizes,
                &shard.mu,
                n,
                &shard.cost,
            );
        }
        self.end_step(&starts, 2 * k * d + 1);
        let _ = rec;
        Ok(cost)
    }

    fn save_best(&mut self) -> proclus::Result<()> {
        let starts = self.begin_step();
        for shard in &mut self.shards {
            copy_labels_kernel(
                &mut shard.dev,
                &shard.labels,
                &shard.labels_best,
                shard.n_local,
            );
        }
        self.end_step(&starts, 0);
        Ok(())
    }

    fn x_from_best(&mut self, medoids: &[usize], _rec: &dyn Recorder) -> proclus::Result<()> {
        let d = self.data.d();
        let k = medoids.len();
        let cancel = self.cancel.clone();
        let slots = self.annex_slots(medoids)?;
        let starts = self.begin_step();
        // Pass 1: rebuild shard-local cluster lists from the best labels.
        let mut global_counts = vec![0usize; k];
        let mut local_counts_of: Vec<Vec<usize>> = Vec::with_capacity(self.shards.len());
        for shard in &mut self.shards {
            cancel.check()?;
            lists_from_labels_kernel(
                &mut shard.dev,
                &shard.labels_best,
                shard.n_local,
                &shard.c_list,
                &shard.c_count,
            );
            let mut counts: Vec<usize> = shard
                .dev
                .dtoh(&shard.c_count)
                .iter()
                .map(|&c| c as usize)
                .collect();
            counts.truncate(k);
            for (g, &c) in global_counts.iter_mut().zip(&counts) {
                *g += c;
            }
            local_counts_of.push(counts);
        }
        // Pass 2: partial X over CBest with the global cluster sizes.
        let mut x = vec![0.0f64; k * d];
        for (shard, local_counts) in self.shards.iter_mut().zip(&local_counts_of) {
            cancel.check()?;
            let n_l = shard.n_local;
            let m_dev: Vec<usize> = slots.iter().map(|&s| n_l + s).collect();
            x_from_lists_partial_kernel(
                &mut shard.dev,
                &shard.data,
                d,
                n_l,
                &m_dev,
                &shard.c_list,
                local_counts,
                &global_counts,
                &shard.x,
            );
            for (g, v) in x.iter_mut().zip(shard.dev.dtoh(&shard.x)) {
                *g += v;
            }
        }
        self.x = x;
        self.end_step(&starts, k + k * d);
        Ok(())
    }

    fn remove_outliers(
        &mut self,
        medoids: &[usize],
        _dims: &[Vec<usize>],
        rec: &dyn Recorder,
    ) -> proclus::Result<()> {
        let d = self.data.d();
        let cancel = self.cancel.clone();
        let slots = self.annex_slots(medoids)?;
        let starts = self.begin_step();
        for shard in &mut self.shards {
            cancel.check()?;
            let n_l = shard.n_local;
            let m_dev: Vec<usize> = slots.iter().map(|&s| n_l + s).collect();
            // The medoid rows live in every annex, so the medoid-only δ
            // pass runs on each shard (identical results, balanced clocks).
            outlier_deltas_kernel(
                &mut shard.dev,
                &shard.data,
                d,
                &m_dev,
                &shard.dims_flat,
                &self.offsets,
                &shard.outlier_deltas,
            );
            remove_outliers_kernel(
                &mut shard.dev,
                &shard.data,
                d,
                n_l,
                &m_dev,
                &shard.dims_flat,
                &self.offsets,
                &shard.outlier_deltas,
                &shard.labels,
            );
        }
        self.end_step(&starts, 0);
        if rec.enabled() {
            self.emit_shard_spans(rec);
        }
        Ok(())
    }
}

/// Single sharded run: validate, build the ensemble, drive the shared
/// full-run driver, free. The `dev` argument supplies the device
/// configuration template (each shard gets a fresh deterministic clone)
/// and the kernel-shape validation limits.
pub(crate) fn run_sharded_variant(
    dev: &mut Device,
    data: &DataMatrix,
    params: &Params,
    variant: GpuVariant,
    rec: &dyn Recorder,
    cancel: &CancelToken,
) -> Result<Clustering> {
    validate_gpu(dev, data, params)?;
    let n = data.n();
    let mut backend = ShardedBackend::new(
        dev.config(),
        data,
        params.devices.get(),
        params.k,
        params.sample_size(n),
        variant,
        cancel.clone(),
    )?;
    let result = run_full(&mut backend, params, rec, cancel);
    dev.advance_clock_us(backend.sim_us);
    backend.free()?;
    result.map_err(GpuProclusError::from)
}

/// Sharded mirror of `gpu_fast_proclus_multi_outcomes`: FAST over a grid
/// of settings at any reuse level, every setting executing across
/// [`proclus::Params::devices`] shards. Shared levels keep one ensemble
/// (persistent per-shard `Dist`/`H` caches) across settings.
#[allow(clippy::too_many_arguments)]
pub fn sharded_fast_proclus_multi_outcomes(
    dev: &mut Device,
    data: &DataMatrix,
    base: &Params,
    settings: &[Setting],
    level: ReuseLevel,
    rec: &dyn Recorder,
    cancels: &[CancelToken],
) -> Result<Vec<proclus::Result<Clustering>>> {
    debug_assert!(cancels.is_empty() || cancels.len() == settings.len());
    let validity: Vec<proclus::Result<()>> = settings
        .iter()
        .map(|&s| validate_gpu(dev, data, &derive(base, s)).map_err(ProclusError::from))
        .collect();
    let n = data.n();
    let d_count = base.devices.get();
    let mut rng = ProclusRng::new(base.seed);
    let mut results: Vec<proclus::Result<Clustering>> = Vec::with_capacity(settings.len());

    if level == ReuseLevel::Independent {
        for (i, &s) in settings.iter().enumerate() {
            let run_span = span(rec, "run");
            if let Err(e) = &validity[i] {
                results.push(Err(e.clone()));
                continue;
            }
            let cancel = cancel_for(cancels, i);
            if let Err(e) = cancel.check() {
                results.push(Err(e));
                continue;
            }
            let params = derive(base, s);
            let mut backend = ShardedBackend::new(
                dev.config(),
                data,
                d_count,
                params.k,
                params.sample_size(n),
                GpuVariant::Fast,
                cancel.clone(),
            )?;
            let t0 = backend.sim_us;
            let r = initialization_phase(&mut backend, &params, &mut rng, rec).and_then(|m_data| {
                run_core(&mut backend, &params, &mut rng, &m_data, None, rec, &cancel)
            });
            let t1 = backend.sim_us;
            dev.advance_clock_us(t1 - t0);
            backend.free()?;
            rec.annotate(run_span.id(), attrs::SIM_US, t1 - t0);
            results.push(r.map(|(c, _)| c));
        }
        return Ok(results);
    }

    let k_max = settings
        .iter()
        .zip(&validity)
        .filter(|(_, v)| v.is_ok())
        .map(|(s, _)| s.k)
        .max();
    let Some(k_max) = k_max else {
        for v in &validity {
            let _run = span(rec, "run");
            results.push(Err(v.as_ref().unwrap_err().clone()));
        }
        return Ok(results);
    };
    let sample_size = (base.a * k_max).min(n);
    let mut backend = ShardedBackend::new(
        dev.config(),
        data,
        d_count,
        k_max,
        sample_size,
        GpuVariant::Fast,
        cancel_for(cancels, 0),
    )?;
    let results = grid_core_shared(
        &mut backend,
        base,
        settings,
        level,
        &validity,
        &mut rng,
        rec,
        cancels,
    );
    dev.advance_clock_us(backend.sim_us);
    backend.free()?;
    Ok(results)
}

/// Sharded mirror of `gpu_proclus_multi_outcomes`: the plain baseline per
/// setting, each run across the configured shard count.
pub fn sharded_proclus_multi_outcomes(
    dev: &mut Device,
    data: &DataMatrix,
    base: &Params,
    settings: &[Setting],
    rec: &dyn Recorder,
    cancels: &[CancelToken],
) -> Result<Vec<proclus::Result<Clustering>>> {
    debug_assert!(cancels.is_empty() || cancels.len() == settings.len());
    let validity: Vec<proclus::Result<()>> = settings
        .iter()
        .map(|&s| validate_gpu(dev, data, &derive(base, s)).map_err(ProclusError::from))
        .collect();
    let n = data.n();
    let d_count = base.devices.get();
    let mut rng = ProclusRng::new(base.seed);
    let mut results: Vec<proclus::Result<Clustering>> = Vec::with_capacity(settings.len());
    for (i, &s) in settings.iter().enumerate() {
        let run_span = span(rec, "run");
        if let Err(e) = &validity[i] {
            results.push(Err(e.clone()));
            continue;
        }
        let cancel = cancel_for(cancels, i);
        if let Err(e) = cancel.check() {
            results.push(Err(e));
            continue;
        }
        let params = derive(base, s);
        let mut backend = ShardedBackend::new(
            dev.config(),
            data,
            d_count,
            params.k,
            params.sample_size(n),
            GpuVariant::Plain,
            cancel.clone(),
        )?;
        let t0 = backend.sim_us;
        let r = initialization_phase(&mut backend, &params, &mut rng, rec).and_then(|m_data| {
            run_core(&mut backend, &params, &mut rng, &m_data, None, rec, &cancel)
        });
        let t1 = backend.sim_us;
        dev.advance_clock_us(t1 - t0);
        backend.free()?;
        rec.annotate(run_span.id(), attrs::SIM_US, t1 - t0);
        results.push(r.map(|(c, _)| c));
    }
    Ok(results)
}

/// The sharded arm of `run_on`: dispatches single runs and grids the same
/// way the single-GPU arm does (baseline grids are independent-only; FAST*
/// keeps no cross-setting state, so its grids stay unsupported).
pub(crate) fn run_sharded_with(
    dev: &mut Device,
    data: &DataMatrix,
    config: &Config,
    rec: &dyn Recorder,
    cancel: &CancelToken,
) -> proclus::Result<proclus::PartitionedOutcomes> {
    match &config.grid {
        None => {
            let c = run_sharded_variant(
                dev,
                data,
                &config.params,
                variant_for(config.algo),
                rec,
                cancel,
            )
            .map_err(ProclusError::from)?;
            Ok((vec![c], Vec::new()))
        }
        Some(grid) => {
            let cancels = vec![cancel.clone(); grid.settings.len()];
            let outcomes = match config.algo {
                proclus::Algo::Baseline => {
                    if grid.reuse != ReuseLevel::Independent {
                        return Err(ProclusError::Unsupported {
                            reason: "the baseline cannot share computation across settings; \
                                     use ReuseLevel::Independent or Algo::Fast"
                                .into(),
                        });
                    }
                    sharded_proclus_multi_outcomes(
                        dev,
                        data,
                        &config.params,
                        &grid.settings,
                        rec,
                        &cancels,
                    )
                    .map_err(ProclusError::from)?
                }
                proclus::Algo::Fast => sharded_fast_proclus_multi_outcomes(
                    dev,
                    data,
                    &config.params,
                    &grid.settings,
                    grid.reuse,
                    rec,
                    &cancels,
                )
                .map_err(ProclusError::from)?,
                proclus::Algo::FastStar => {
                    return Err(ProclusError::Unsupported {
                        reason: "multi-parameter grids are defined for Algo::Fast (the \
                                 Dist/H cache is what settings share, §3.1) and \
                                 Algo::Baseline (independent runs); FAST* keeps no \
                                 cross-setting state"
                            .into(),
                    })
                }
            };
            Ok(proclus::partition_outcomes(outcomes))
        }
    }
}
