//! The GPU medoid-search driver: the exact control flow of the CPU driver
//! (`proclus::driver`), with every numeric phase replaced by device
//! kernels. Decision logic — dimension picking, bad-medoid selection,
//! replacement draws, cost comparison — reuses the CPU crate's functions on
//! tiny arrays read back from the device (`Z`: `k × d` floats, cluster
//! sizes and cost: scalars), so for equal seeds the GPU variants visit the
//! same medoid sequence as the CPU variants. Everything large (data,
//! distance rows, `H`, lists, labels) stays device-resident, as in the
//! paper (§4.1: "to avoid costly memory transfers between the CPU and the
//! GPU, all other computations are also performed on the GPU").

use gpu_sim::Device;
use proclus::params::Params;
use proclus::phases::bad_medoids::{compute_bad_medoids, replace_bad_medoids};
use proclus::phases::find_dimensions::pick_dimensions;
use proclus::result::Clustering;
use proclus::CancelToken;
use proclus::ProclusRng;
use proclus_telemetry::{attrs, counters, span, Recorder};

use crate::error::{GpuProclusError, Result};
use crate::kernels::assign::assign_kernel;
use crate::kernels::delta::deltas_kernel;
use crate::kernels::evaluate::evaluate_kernel;
use crate::kernels::find_dims::{h_update_kernel, x_from_h_kernel, x_from_lists_kernel, z_kernel};
use crate::kernels::lsets::{build_lists_kernel, SphereCond};
use crate::kernels::outliers::{outlier_deltas_kernel, remove_outliers_kernel};
use crate::kernels::util::{copy_labels_kernel, lists_from_labels_kernel};
use crate::rows::RowCache;
use crate::workspace::Workspace;

/// Which algorithm the driver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuVariant {
    /// GPU-PROCLUS: recompute everything each iteration.
    Plain,
    /// GPU-FAST-PROCLUS: `Dist`/`DistFound` + incremental `H` (§4.2).
    Fast,
    /// GPU-FAST*-PROCLUS: slot-local caches (§3.2 on the GPU).
    FastStar,
}

/// Flattens subspaces for upload; returns the offsets (host side).
fn upload_dims(dev: &mut Device, ws: &Workspace, dims: &[Vec<usize>]) -> Vec<usize> {
    let mut flat = Vec::new();
    let mut offsets = vec![0usize];
    for s in dims {
        flat.extend(s.iter().map(|&j| j as u32));
        offsets.push(flat.len());
    }
    dev.upload(&ws.dims_flat, &flat);
    offsets
}

/// One iteration's `X` (left on device) and the per-slot `|L|` sizes.
fn x_phase(
    dev: &mut Device,
    ws: &Workspace,
    cache: &mut RowCache,
    variant: GpuVariant,
    m_data: &[usize],
    mcur: &[usize],
    rec: &dyn Recorder,
) -> Result<Vec<usize>> {
    let (n, d) = (ws.n, ws.d);
    let medoids: Vec<usize> = mcur.iter().map(|&mi| m_data[mi]).collect();
    // `DistFound` hits/misses, observed before `prepare` consumes them.
    // A miss costs one `dist_row_kernel` launch = n full-dimensional
    // distances; the plain variant recomputes every slot and has no cache
    // to hit.
    if rec.enabled() {
        let misses = cache.misses(m_data, mcur);
        rec.add(counters::DISTANCES_COMPUTED, (misses * n) as u64);
        if variant != GpuVariant::Plain {
            rec.add(counters::DIST_CACHE_MISSES, misses as u64);
            rec.add(counters::DIST_CACHE_HITS, (mcur.len() - misses) as u64);
        }
    }
    let row_of_slot = cache.prepare(dev, &ws.data, n, d, m_data, mcur)?;

    deltas_kernel(dev, cache.rows(), &row_of_slot, &medoids, &ws.deltas);
    let deltas = dev.dtoh(&ws.deltas);

    match variant {
        GpuVariant::Plain => {
            build_lists_kernel(
                dev,
                cache.rows(),
                &row_of_slot,
                &SphereCond::Within(deltas),
                n,
                &ws.l_list,
                &ws.l_count,
            );
            let counts: Vec<usize> = dev.dtoh(&ws.l_count).iter().map(|&c| c as usize).collect();
            x_from_lists_kernel(dev, &ws.data, d, n, &medoids, &ws.l_list, &counts, &ws.x);
            Ok(counts)
        }
        GpuVariant::Fast | GpuVariant::FastStar => {
            // ΔL bounds per slot (Theorem 3.1) from the host-mirrored
            // previous radii.
            let mut bounds = Vec::with_capacity(mcur.len());
            let mut lambda = Vec::with_capacity(mcur.len());
            for (slot, &row) in row_of_slot.iter().enumerate() {
                let prev = cache.rows()[row].prev_delta;
                let cur = deltas[slot];
                if cur >= prev {
                    bounds.push((prev, cur));
                    lambda.push(1.0);
                } else {
                    bounds.push((cur, prev));
                    lambda.push(-1.0);
                }
            }
            build_lists_kernel(
                dev,
                cache.rows(),
                &row_of_slot,
                &SphereCond::Between(bounds),
                n,
                &ws.l_list,
                &ws.l_count,
            );
            let dl_counts: Vec<usize> = dev.dtoh(&ws.l_count).iter().map(|&c| c as usize).collect();
            rec.add(
                counters::DELTA_L_POINTS,
                dl_counts.iter().map(|&c| c as u64).sum(),
            );
            h_update_kernel(
                dev,
                &ws.data,
                d,
                n,
                &medoids,
                cache.rows(),
                &row_of_slot,
                &ws.l_list,
                &dl_counts,
                &lambda,
            );
            // Mirror the bookkeeping the CPU engines do.
            let mut lsizes = Vec::with_capacity(mcur.len());
            for (slot, &row) in row_of_slot.iter().enumerate() {
                let r = &mut cache.rows_mut()[row];
                if lambda[slot] > 0.0 {
                    r.lsize += dl_counts[slot];
                } else {
                    r.lsize -= dl_counts[slot];
                }
                r.prev_delta = deltas[slot];
                lsizes.push(r.lsize);
            }
            x_from_h_kernel(dev, d, cache.rows(), &row_of_slot, &lsizes, &ws.x);
            Ok(lsizes)
        }
    }
}

/// Runs the iterative + refinement phases on the device. `m_data` are the
/// potential medoids (data indices); `init_mcur` optionally warm-starts
/// the search (multi-param level 3). Returns the clustering and the best
/// medoids as indices into `m_data`.
///
/// Records the same phase spans as the CPU driver (`iteration`,
/// `compute_l`, `find_dimensions`, `assign_points`, `evaluate_clusters`,
/// `bad_medoids`, `refinement`, `remove_outliers`), each annotated with the
/// simulated device microseconds it consumed.
///
/// `cancel` is checked at the same phase boundaries as the CPU driver (top
/// of every iteration, before refinement); callers free the workspace and
/// caches whether the run completed or was cancelled, so a cancelled job
/// leaks no device memory.
#[allow(clippy::too_many_arguments)]
pub fn run_core_gpu(
    dev: &mut Device,
    ws: &Workspace,
    cache: &mut RowCache,
    variant: GpuVariant,
    params: &Params,
    rng: &mut ProclusRng,
    m_data: &[usize],
    init_mcur: Option<Vec<usize>>,
    rec: &dyn Recorder,
    cancel: &CancelToken,
) -> Result<(Clustering, Vec<usize>)> {
    let k = params.k;
    let (n, d) = (ws.n, ws.d);
    let m_len = m_data.len();

    let mut mcur = match init_mcur {
        Some(m) => m,
        None => rng.sample_distinct(m_len, k),
    };

    let mut best_cost = f64::INFINITY;
    let mut best_mcur = mcur.clone();
    let mut best_sizes: Vec<usize> = Vec::new();
    let mut itr = 0usize;
    let mut total = 0usize;
    let mut converged = false;
    let mut prev_labels: Option<Vec<i32>> = None;

    loop {
        cancel.check().map_err(GpuProclusError::from)?;
        let iter_span = span(rec, "iteration");
        let medoids: Vec<usize> = mcur.iter().map(|&mi| m_data[mi]).collect();

        let g = span(rec, "compute_l");
        let t = dev.elapsed_us();
        let _lsizes = x_phase(dev, ws, cache, variant, m_data, &mcur, rec)?;
        rec.annotate(g.id(), attrs::SIM_US, dev.elapsed_us() - t);
        drop(g);

        let g = span(rec, "find_dimensions");
        let t = dev.elapsed_us();
        z_kernel(dev, &ws.x, &ws.z, k, d);
        let z = dev.dtoh(&ws.z);
        let dims = pick_dimensions(&z[..k * d], k, d, params.l);
        let offsets = upload_dims(dev, ws, &dims);
        rec.annotate(g.id(), attrs::SIM_US, dev.elapsed_us() - t);
        drop(g);

        let g = span(rec, "assign_points");
        let t = dev.elapsed_us();
        assign_kernel(
            dev,
            &ws.data,
            d,
            n,
            &medoids,
            &ws.dims_flat,
            &offsets,
            &ws.labels,
            &ws.c_list,
            &ws.c_count,
        );
        rec.add(counters::SEGMENTAL_DISTANCES, (n * k) as u64);
        rec.annotate(g.id(), attrs::SIM_US, dev.elapsed_us() - t);
        drop(g);
        let mut sizes: Vec<usize> = dev.dtoh(&ws.c_count).iter().map(|&c| c as usize).collect();
        sizes.truncate(k); // the workspace is sized for the largest k

        let g = span(rec, "evaluate_clusters");
        let t = dev.elapsed_us();
        let cost = evaluate_kernel(
            dev,
            &ws.data,
            d,
            n,
            &ws.dims_flat,
            &offsets,
            &ws.c_list,
            &sizes,
            &ws.cost,
        );
        rec.annotate(g.id(), attrs::SIM_US, dev.elapsed_us() - t);
        drop(g);
        total += 1;
        rec.add(counters::ITERATIONS, 1);

        // Label churn, mirrored from the CPU driver: a device readback only
        // happens when telemetry is on (the first iteration assigns all n).
        if rec.enabled() {
            let labels: Vec<i32> = dev.dtoh(&ws.labels);
            let changed = match &prev_labels {
                None => n as u64,
                Some(prev) => prev.iter().zip(&labels).filter(|(a, b)| a != b).count() as u64,
            };
            rec.add(counters::POINTS_REASSIGNED, changed);
            prev_labels = Some(labels);
        }

        if cost < best_cost {
            best_cost = cost;
            best_mcur = mcur.clone();
            best_sizes = sizes;
            copy_labels_kernel(dev, &ws.labels, &ws.labels_best, n);
            itr = 0;
        } else {
            itr += 1;
        }

        if itr >= params.itr_pat {
            converged = true;
            break;
        }
        if total >= params.max_total_iterations {
            break;
        }

        let g = span(rec, "bad_medoids");
        let bad = compute_bad_medoids(&best_sizes, n, params.min_dev, params.bad_medoid_rule);
        rec.add(counters::MEDOIDS_REPLACED, bad.len() as u64);
        mcur = replace_bad_medoids(&best_mcur, &bad, m_len, rng);
        drop(g);
        drop(iter_span);
    }

    // Refinement phase: L ← CBest (rebuilt on-device from the best labels).
    cancel.check().map_err(GpuProclusError::from)?;
    let refine_span = span(rec, "refinement");
    let medoids: Vec<usize> = best_mcur.iter().map(|&mi| m_data[mi]).collect();

    let g = span(rec, "compute_l");
    let t = dev.elapsed_us();
    lists_from_labels_kernel(dev, &ws.labels_best, n, &ws.c_list, &ws.c_count);
    let mut counts: Vec<usize> = dev.dtoh(&ws.c_count).iter().map(|&c| c as usize).collect();
    counts.truncate(k);
    x_from_lists_kernel(dev, &ws.data, d, n, &medoids, &ws.c_list, &counts, &ws.x);
    rec.annotate(g.id(), attrs::SIM_US, dev.elapsed_us() - t);
    drop(g);

    let g = span(rec, "find_dimensions");
    let t = dev.elapsed_us();
    z_kernel(dev, &ws.x, &ws.z, k, d);
    let z = dev.dtoh(&ws.z);
    let dims = pick_dimensions(&z[..k * d], k, d, params.l);
    let offsets = upload_dims(dev, ws, &dims);
    rec.annotate(g.id(), attrs::SIM_US, dev.elapsed_us() - t);
    drop(g);

    let g = span(rec, "assign_points");
    let t = dev.elapsed_us();
    assign_kernel(
        dev,
        &ws.data,
        d,
        n,
        &medoids,
        &ws.dims_flat,
        &offsets,
        &ws.labels,
        &ws.c_list,
        &ws.c_count,
    );
    rec.add(counters::SEGMENTAL_DISTANCES, (n * k) as u64);
    rec.annotate(g.id(), attrs::SIM_US, dev.elapsed_us() - t);
    drop(g);
    let mut sizes: Vec<usize> = dev.dtoh(&ws.c_count).iter().map(|&c| c as usize).collect();
    sizes.truncate(k);

    let g = span(rec, "evaluate_clusters");
    let t = dev.elapsed_us();
    let refined_cost = evaluate_kernel(
        dev,
        &ws.data,
        d,
        n,
        &ws.dims_flat,
        &offsets,
        &ws.c_list,
        &sizes,
        &ws.cost,
    );
    rec.annotate(g.id(), attrs::SIM_US, dev.elapsed_us() - t);
    drop(g);

    let g = span(rec, "remove_outliers");
    let t = dev.elapsed_us();
    outlier_deltas_kernel(
        dev,
        &ws.data,
        d,
        &medoids,
        &ws.dims_flat,
        &offsets,
        &ws.outlier_deltas,
    );
    remove_outliers_kernel(
        dev,
        &ws.data,
        d,
        n,
        &medoids,
        &ws.dims_flat,
        &offsets,
        &ws.outlier_deltas,
        &ws.labels,
    );
    rec.add(counters::SEGMENTAL_DISTANCES, (n * k) as u64);
    rec.annotate(g.id(), attrs::SIM_US, dev.elapsed_us() - t);
    drop(g);
    let labels = dev.dtoh(&ws.labels);
    drop(refine_span);

    Ok((
        Clustering {
            medoids,
            subspaces: dims,
            labels,
            cost: best_cost,
            refined_cost,
            iterations: total,
            converged,
        },
        best_mcur,
    ))
}
