//! Sphere radii `δ_i` (GPU Alg. 3 lines 4–7): one block per medoid, one
//! thread per other medoid, an atomic min in shared memory.
//!
//! This is the deliberately tiny `k × k` kernel the paper's utilization
//! study singles out (§5.4): with `k < 32` it cannot even fill a warp, so
//! its achieved occupancy is a few percent — harmless, because it is also
//! nowhere near time-consuming.

use gpu_sim::{Device, Dim3};

use crate::rows::MedoidRow;

/// Computes `δ_i = min_{j≠i} Dist_{m_i, m_j}` from the cached distance
/// rows, writing into `deltas` (k × f32).
pub fn deltas_kernel(
    dev: &mut Device,
    rows: &[MedoidRow],
    row_of_slot: &[usize],
    medoid_data_idx: &[usize],
    deltas: &gpu_sim::DeviceBuffer<f32>,
) {
    let k = medoid_data_idx.len();
    let dist_rows: Vec<_> = row_of_slot.iter().map(|&r| rows[r].dist.clone()).collect();
    let medoids = medoid_data_idx.to_vec();
    let deltas = deltas.clone();
    dev.launch(
        "compute_l.delta",
        Dim3::x(k as u32),
        Dim3::x(k as u32),
        move |blk| {
            let i = blk.block.x as usize;
            let dmin = blk.shared::<f32>(1);
            blk.thread0(|t| dmin.st(t, 0, f32::INFINITY));
            blk.threads(|t| {
                let j = t.tid as usize;
                if j != i {
                    let dist = dist_rows[i].ld(t, medoids[j]);
                    dmin.atomic_min(t, 0, dist);
                }
            });
            blk.thread0(|t| {
                let v = dmin.ld(t, 0);
                deltas.st(t, i, v);
            });
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::dist::dist_row_kernel;
    use crate::rows::RowCache;
    use gpu_sim::{Device, DeviceConfig};
    use proclus::phases::compute_l::medoid_deltas;
    use proclus::DataMatrix;

    #[test]
    fn matches_cpu_deltas_bitwise() {
        let rows_host: Vec<Vec<f32>> = (0..200)
            .map(|i| vec![(i % 19) as f32, (i % 11) as f32 * 0.3])
            .collect();
        let host = DataMatrix::from_rows(&rows_host).unwrap();
        let medoids = vec![3usize, 77, 150, 199];

        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.set_deterministic(true);
        let data = dev.htod("data", host.flat()).unwrap();
        let mut cache = RowCache::new_plain(&mut dev, 200, 4).unwrap();
        for (i, &m) in medoids.iter().enumerate() {
            dist_row_kernel(&mut dev, &data, 2, 200, m, &cache.rows()[i].dist);
        }
        let deltas_buf = dev.alloc_zeroed::<f32>("deltas", 4).unwrap();
        deltas_kernel(&mut dev, cache.rows(), &[0, 1, 2, 3], &medoids, &deltas_buf);
        let got = deltas_buf.peek_all();
        let want = medoid_deltas(&host, &medoids);
        assert_eq!(got, want);
        let _ = cache.rows_mut();
    }

    #[test]
    fn low_occupancy_is_reported() {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let host = DataMatrix::from_flat(vec![0.0; 50 * 2], 50, 2).unwrap();
        let data = dev.htod("data", host.flat()).unwrap();
        let cache = RowCache::new_plain(&mut dev, 50, 5).unwrap();
        for (i, m) in [0usize, 10, 20, 30, 40].iter().enumerate() {
            dist_row_kernel(&mut dev, &data, 2, 50, *m, &cache.rows()[i].dist);
        }
        let deltas_buf = dev.alloc_zeroed::<f32>("deltas", 5).unwrap();
        deltas_kernel(
            &mut dev,
            cache.rows(),
            &[0, 1, 2, 3, 4],
            &[0, 10, 20, 30, 40],
            &deltas_buf,
        );
        let rep = dev.report();
        let t = rep.kernels["compute_l.delta"]
            .representative
            .as_ref()
            .unwrap();
        assert!(
            t.timing.achieved_occupancy < 0.05,
            "k x k kernel should be idle-ish, got {}",
            t.timing.achieved_occupancy
        );
    }
}
