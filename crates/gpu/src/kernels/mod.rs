//! The CUDA-style kernels of GPU-PROCLUS (paper Algorithms 2–6 plus
//! RemoveOutliers), expressed on the `gpu-sim` SIMT device.
//!
//! Kernel structure follows the paper: data-parallel grids over points,
//! atomics for shared results, per-thread local partials to minimize atomic
//! traffic, shared-memory staging for values reused within a block, and
//! `__syncthreads()` barriers expressed as consecutive `BlockCtx::threads`
//! phases. All reductions that feed *decisions* (X, Z, cost, centroids)
//! accumulate in `f64` so the GPU variants follow the exact search path of
//! the CPU variants for the same seed (see DESIGN.md §4).

pub mod assign;
pub mod delta;
pub mod dist;
pub mod evaluate;
pub mod find_dims;
pub mod greedy;
pub mod lsets;
pub mod outliers;
pub mod util;

/// Threads per block for wide data-parallel kernels (paper §5: 1024).
pub const WIDE_BLOCK: u32 = 1024;

/// Threads per block for AssignPoints (paper §5: 128, "to reduce
/// unnecessary synchronizations").
pub const ASSIGN_BLOCK: u32 = 128;
