//! FindDimensions on the device (GPU Alg. 4).
//!
//! Three kernels:
//!
//! * [`x_from_lists_kernel`] — `X_{i,j}` summed over a point list (the plain
//!   variant's spheres, or the refinement phase's clusters): one block per
//!   `(i, j)` pair, threads stride the list with per-thread local partials
//!   and a single atomic each (Alg. 4 lines 1–6).
//! * [`h_update_kernel`] + [`x_from_h_kernel`] — the FAST variants:
//!   fold `ΔL_i` into the persistent `H` rows with sign `λ` (Theorem 3.2),
//!   then derive `X = H / |L|` in a separate kernel, "since we must ensure
//!   that H is updated by all threads before computing X" (§4.2).
//! * [`z_kernel`] — `Y`, `σ`, `Z` fused into one launch with the shared-
//!   memory staging the paper describes, with barriers separating the `Y`,
//!   `σ` and `Z` phases.

use gpu_sim::{Device, DeviceBuffer, Dim3};

use crate::rows::MedoidRow;

/// Threads per `(i, j)` block for the X/H sums.
const SUM_BLOCK: u32 = 256;

/// Accumulates `X_{i,j} = Σ_{p ∈ list_i} |p_j − m_{i,j}| / count_i` into
/// the zeroed `x` buffer (k × d, f64).
#[allow(clippy::too_many_arguments)]
pub fn x_from_lists_kernel(
    dev: &mut Device,
    data: &DeviceBuffer<f32>,
    d: usize,
    n: usize,
    medoid_data_idx: &[usize],
    list: &DeviceBuffer<u32>,
    counts: &[usize],
    x: &DeviceBuffer<f64>,
) {
    let k = medoid_data_idx.len();
    dev.memset(x, 0.0);
    let data = data.clone();
    let list = list.clone();
    let x = x.clone();
    let medoids = medoid_data_idx.to_vec();
    let counts = counts.to_vec();
    let grid = Dim3::xy(d as u32, k as u32);
    dev.launch("find_dims.x", grid, Dim3::x(SUM_BLOCK), move |blk| {
        let i = blk.block.y as usize;
        let j = blk.block.x as usize;
        let cnt = counts[i];
        if cnt == 0 {
            return;
        }
        let m_j = blk.shared::<f32>(1);
        blk.thread0(|t| {
            let v = data.ld(t, medoids[i] * d + j);
            m_j.st(t, 0, v);
        });
        blk.threads(|t| {
            let m = m_j.ld(t, 0);
            let mut sum = 0.0f64; // local variable (Alg. 4 line 3)
            let mut s = t.tid as usize;
            while s < cnt {
                let p = list.ld(t, i * n + s) as usize;
                sum += ((data.ld(t, p * d + j) - m) as f64).abs();
                s += t.block_dim.x as usize;
            }
            t.flops(2 * (cnt / t.block_dim.x as usize + 1) as u64);
            x.atomic_add(t, i * d + j, sum / cnt as f64); // Alg. 4 line 6
        });
    });
}

/// Shard variant of [`x_from_lists_kernel`]: iterates this device's
/// `local_counts[i]` list entries but divides by the cross-device
/// `global_counts[i]`, so summing the `k × d` partial `X` buffers over all
/// shards at the phase barrier reproduces the single-device `X` exactly.
#[allow(clippy::too_many_arguments)]
pub fn x_from_lists_partial_kernel(
    dev: &mut Device,
    data: &DeviceBuffer<f32>,
    d: usize,
    n: usize,
    medoid_data_idx: &[usize],
    list: &DeviceBuffer<u32>,
    local_counts: &[usize],
    global_counts: &[usize],
    x: &DeviceBuffer<f64>,
) {
    let k = medoid_data_idx.len();
    dev.memset(x, 0.0);
    let data = data.clone();
    let list = list.clone();
    let x = x.clone();
    let medoids = medoid_data_idx.to_vec();
    let counts = local_counts.to_vec();
    let totals = global_counts.to_vec();
    let grid = Dim3::xy(d as u32, k as u32);
    dev.launch(
        "find_dims.x_partial",
        grid,
        Dim3::x(SUM_BLOCK),
        move |blk| {
            let i = blk.block.y as usize;
            let j = blk.block.x as usize;
            let cnt = counts[i];
            let total = totals[i];
            if cnt == 0 || total == 0 {
                return; // nothing on this shard, or an empty cluster overall
            }
            let m_j = blk.shared::<f32>(1);
            blk.thread0(|t| {
                let v = data.ld(t, medoids[i] * d + j);
                m_j.st(t, 0, v);
            });
            blk.threads(|t| {
                let m = m_j.ld(t, 0);
                let mut sum = 0.0f64;
                let mut s = t.tid as usize;
                while s < cnt {
                    let p = list.ld(t, i * n + s) as usize;
                    sum += ((data.ld(t, p * d + j) - m) as f64).abs();
                    s += t.block_dim.x as usize;
                }
                t.flops(2 * (cnt / t.block_dim.x as usize + 1) as u64);
                x.atomic_add(t, i * d + j, sum / total as f64);
            });
        },
    );
}

/// Folds the `ΔL_i` lists into the persistent `H` rows with sign `λ_i`
/// (Theorem 3.2). `lambda[i]` is `+1.0` when the sphere grew, `−1.0` when
/// it shrank.
#[allow(clippy::too_many_arguments)]
pub fn h_update_kernel(
    dev: &mut Device,
    data: &DeviceBuffer<f32>,
    d: usize,
    n: usize,
    medoid_data_idx: &[usize],
    rows: &[MedoidRow],
    row_of_slot: &[usize],
    dl_list: &DeviceBuffer<u32>,
    dl_counts: &[usize],
    lambda: &[f64],
) {
    let k = medoid_data_idx.len();
    let data = data.clone();
    let dl_list = dl_list.clone();
    let h_rows: Vec<DeviceBuffer<f64>> = row_of_slot
        .iter()
        .map(|&r| rows[r].h.as_ref().expect("FAST rows carry H").clone())
        .collect();
    let medoids = medoid_data_idx.to_vec();
    let counts = dl_counts.to_vec();
    let lambda = lambda.to_vec();
    let grid = Dim3::xy(d as u32, k as u32);
    dev.launch("find_dims.h_update", grid, Dim3::x(SUM_BLOCK), move |blk| {
        let i = blk.block.y as usize;
        let j = blk.block.x as usize;
        let cnt = counts[i];
        if cnt == 0 {
            return;
        }
        let m_j = blk.shared::<f32>(1);
        blk.thread0(|t| {
            let v = data.ld(t, medoids[i] * d + j);
            m_j.st(t, 0, v);
        });
        blk.threads(|t| {
            let m = m_j.ld(t, 0);
            let mut sum = 0.0f64;
            let mut s = t.tid as usize;
            while s < cnt {
                let p = dl_list.ld(t, i * n + s) as usize;
                sum += ((data.ld(t, p * d + j) - m) as f64).abs();
                s += t.block_dim.x as usize;
            }
            t.flops(2 * (cnt / t.block_dim.x as usize + 1) as u64);
            h_rows[i].atomic_add(t, j, lambda[i] * sum);
        });
    });
}

/// Derives `X_{i,j} = H_{i,j} / |L_i|` — a separate kernel call so every
/// `H` update has landed first (§4.2).
pub fn x_from_h_kernel(
    dev: &mut Device,
    d: usize,
    rows: &[MedoidRow],
    row_of_slot: &[usize],
    lsizes: &[usize],
    x: &DeviceBuffer<f64>,
) {
    let k = row_of_slot.len();
    let h_rows: Vec<DeviceBuffer<f64>> = row_of_slot
        .iter()
        .map(|&r| rows[r].h.as_ref().expect("FAST rows carry H").clone())
        .collect();
    let lsizes = lsizes.to_vec();
    let x = x.clone();
    let grid = Dim3::x(k as u32);
    dev.launch("find_dims.x_from_h", grid, Dim3::x(d as u32), move |blk| {
        let i = blk.block.x as usize;
        blk.threads(|t| {
            let j = t.tid as usize;
            let v = if lsizes[i] > 0 {
                h_rows[i].ld(t, j) / lsizes[i] as f64
            } else {
                0.0
            };
            t.flops(1);
            x.st(t, i * d + j, v);
        });
    });
}

/// Computes `Z` from `X` in one launch (Alg. 4 lines 7–14): one block per
/// medoid, one thread per dimension, with `Y` and `σ` kept in shared memory
/// and barriers between the phases (the paper's combined kernel, corrected
/// so `σ` only reads the *finished* `Y`).
pub fn z_kernel(
    dev: &mut Device,
    x: &DeviceBuffer<f64>,
    z: &DeviceBuffer<f64>,
    k: usize,
    d: usize,
) {
    let x = x.clone();
    let z = z.clone();
    dev.launch(
        "find_dims.z",
        Dim3::x(k as u32),
        Dim3::x(d as u32),
        move |blk| {
            let i = blk.block.x as usize;
            let stats = blk.shared::<f64>(2); // [0] = Y_i, [1] = σ_i
            let xi = blk.regs::<f64>();
            // Shared memory starts as garbage on hardware: zero the
            // accumulators before any atomicAdd lands (sanitizer initcheck).
            blk.thread0(|t| {
                stats.st(t, 0, 0.0);
                stats.st(t, 1, 0.0);
            });
            blk.threads(|t| {
                let v = x.ld(t, i * d + t.tid as usize);
                xi.set(t, v);
                stats.atomic_add(t, 0, v / d as f64);
                t.flops(2);
            });
            blk.threads(|t| {
                let y = stats.ld(t, 0);
                let diff = xi.get(t) - y;
                stats.atomic_add(t, 1, diff * diff);
                t.flops(3);
            });
            blk.thread0(|t| {
                let ss = stats.ld(t, 1);
                stats.st(t, 1, (ss / (d - 1) as f64).sqrt());
                t.flops(2);
            });
            blk.threads(|t| {
                let y = stats.ld(t, 0);
                let sigma = stats.ld(t, 1);
                let zv = if sigma > 0.0 {
                    (xi.get(t) - y) / sigma
                } else {
                    0.0
                };
                t.flops(2);
                z.st(t, i * d + t.tid as usize, zv);
            });
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use proclus::phases::find_dimensions::spread_stats;
    use proclus::DataMatrix;

    #[test]
    fn x_from_lists_matches_direct_sum() {
        let n = 1000;
        let d = 3;
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| vec![(i % 10) as f32, (i % 4) as f32, 0.5])
            .collect();
        let host = DataMatrix::from_rows(&rows).unwrap();
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.set_deterministic(true);
        let data = dev.htod("data", host.flat()).unwrap();
        // List: first 100 even points belong to medoid 0, odd to medoid 1.
        let members0: Vec<u32> = (0..100).map(|s| s * 2).collect();
        let members1: Vec<u32> = (0..50).map(|s| s * 2 + 1).collect();
        let mut flat = vec![0u32; 2 * n];
        flat[..100].copy_from_slice(&members0);
        flat[n..n + 50].copy_from_slice(&members1);
        let list = dev.htod("list", &flat).unwrap();
        let x = dev.alloc_zeroed::<f64>("x", 2 * d).unwrap();
        let medoids = [5usize, 6];
        x_from_lists_kernel(&mut dev, &data, d, n, &medoids, &list, &[100, 50], &x);
        let got = x.peek_all();
        for (i, members) in [&members0, &members1].iter().enumerate() {
            for j in 0..d {
                let want: f64 = members
                    .iter()
                    .map(|&p| (host.get(p as usize, j) - host.get(medoids[i], j)).abs() as f64)
                    .sum::<f64>()
                    / members.len() as f64;
                assert!(
                    (got[i * d + j] - want).abs() < 1e-9,
                    "X[{i}][{j}] = {} want {want}",
                    got[i * d + j]
                );
            }
        }
    }

    #[test]
    fn z_kernel_matches_cpu_spread_stats() {
        let (k, d) = (3, 6);
        let x_host: Vec<f64> = (0..k * d).map(|e| ((e * 31) % 17) as f64 * 0.25).collect();
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.set_deterministic(true);
        let x = dev.htod("x", &x_host).unwrap();
        let z = dev.alloc_zeroed::<f64>("z", k * d).unwrap();
        z_kernel(&mut dev, &x, &z, k, d);
        let got = z.peek_all();
        let want = spread_stats(&x_host, k, d).z;
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn z_kernel_zero_sigma_row_is_zero() {
        let (k, d) = (1, 4);
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let x = dev.htod("x", &[2.0f64, 2.0, 2.0, 2.0]).unwrap();
        let z = dev.alloc_zeroed::<f64>("z", k * d).unwrap();
        z_kernel(&mut dev, &x, &z, k, d);
        assert!(z.peek_all().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn h_update_then_x_equals_direct_x() {
        // Build H in two increments (two ΔL batches) and compare X with a
        // single direct sum over the union.
        let n = 400;
        let d = 2;
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| vec![i as f32 * 0.1, (i % 3) as f32])
            .collect();
        let host = DataMatrix::from_rows(&rows).unwrap();
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.set_deterministic(true);
        let data = dev.htod("data", host.flat()).unwrap();
        let h = dev.alloc_zeroed::<f64>("h", d).unwrap();
        let row = crate::rows::MedoidRow {
            dist: dev.alloc_zeroed("dist", n).unwrap(),
            h: Some(h),
            prev_delta: -1.0,
            lsize: 0,
        };
        let rows_arr = [row];

        // Batch 1: points 0..100; batch 2: points 100..250.
        let mut flat = vec![0u32; n];
        for (s, item) in flat.iter_mut().enumerate().take(100) {
            *item = s as u32;
        }
        let list = dev.htod("dl", &flat).unwrap();
        let medoids = [7usize];
        h_update_kernel(
            &mut dev,
            &data,
            d,
            n,
            &medoids,
            &rows_arr,
            &[0],
            &list,
            &[100],
            &[1.0],
        );
        for s in 0..150 {
            list.poke(s, (100 + s) as u32);
        }
        h_update_kernel(
            &mut dev,
            &data,
            d,
            n,
            &medoids,
            &rows_arr,
            &[0],
            &list,
            &[150],
            &[1.0],
        );

        let x = dev.alloc_zeroed::<f64>("x", d).unwrap();
        x_from_h_kernel(&mut dev, d, &rows_arr, &[0], &[250], &x);
        let got = x.peek_all();
        for (j, g) in got.iter().enumerate() {
            let want: f64 = (0..250)
                .map(|p| (host.get(p, j) - host.get(7, j)).abs() as f64)
                .sum::<f64>()
                / 250.0;
            assert!((g - want).abs() < 1e-9, "dim {j}: {g} vs {want}");
        }
    }
}
