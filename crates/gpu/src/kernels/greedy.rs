//! Greedy selection of the potential medoids on the device (GPU Alg. 2).
//!
//! The host draws the first medoid (one RNG draw, same as the CPU); every
//! further pick runs three launches per round:
//!
//! 1. a one-thread reset of the shared `maxDist` and the claim slot,
//! 2. the distance/update kernel (Alg. 2 lines 10–13): fold the latest pick
//!    into the per-candidate minimum distances and `atomicMax` the global
//!    maximum,
//! 3. the claim kernel (Alg. 2 lines 7–9): the candidate whose distance
//!    equals `maxDist` claims the next slot of `M` — split into its own
//!    launch because "we must ensure that all blocks have finished before
//!    using the global maximum" (§4.1).
//!
//! `M` stays on the device throughout and is read back once at the end.

use gpu_sim::{Device, Dim3};
use proclus::ProclusRng;

use super::WIDE_BLOCK;
use crate::workspace::Workspace;

/// Runs the greedy selection over the uploaded sample, returning the
/// selected potential medoids as data indices (read back once).
pub fn greedy_gpu(
    dev: &mut Device,
    ws: &Workspace,
    sample: &[usize],
    count: usize,
    rng: &mut ProclusRng,
) -> Vec<usize> {
    let s = sample.len();
    assert!(count >= 1 && count <= s);
    let d = ws.d;

    let sample_u32: Vec<u32> = sample.iter().map(|&p| p as u32).collect();
    dev.upload(&ws.sample_idx, &sample_u32);
    dev.memset(&ws.greedy_dist, f32::INFINITY);

    // First medoid: uniform from the sample (host RNG, same draw order as
    // the CPU variants).
    let mut latest = rng.below(s);
    ws.m_list.poke(0, sample[latest] as u32);

    let grid = Dim3::blocks_for(s, WIDE_BLOCK);
    for round in 1..count {
        // Kernel 1: reset the shared maximum and the claim slot.
        {
            let gmax = ws.greedy_max.clone();
            let claim = ws.greedy_claim.clone();
            dev.launch("greedy.reset", Dim3::x(1), Dim3::x(1), move |blk| {
                blk.thread0(|t| {
                    gmax.st(t, 0, f32::NEG_INFINITY);
                    claim.st(t, 0, u32::MAX);
                });
            });
        }
        // Kernel 2: fold the latest pick in and find the max distance.
        {
            let data = ws.data.clone();
            let sample_idx = ws.sample_idx.clone();
            let dist = ws.greedy_dist.clone();
            let gmax = ws.greedy_max.clone();
            let latest_point = sample[latest];
            dev.launch("greedy.dist", grid, Dim3::x(WIDE_BLOCK), move |blk| {
                let m_sh = blk.shared::<f32>(d);
                blk.threads(|t| {
                    let mut j = t.tid as usize;
                    while j < d {
                        let v = data.ld(t, latest_point * d + j);
                        m_sh.st(t, j, v);
                        j += t.block_dim.x as usize;
                    }
                });
                blk.threads(|t| {
                    let c = t.global_id_x();
                    if c < s {
                        let p = sample_idx.ld(t, c) as usize;
                        let mut acc = 0.0f64;
                        for j in 0..d {
                            let diff = (data.ld(t, p * d + j) - m_sh.ld(t, j)) as f64;
                            acc += diff * diff;
                        }
                        t.flops(3 * d as u64 + 2);
                        let new = (acc.sqrt() as f32).min(dist.ld(t, c));
                        dist.st(t, c, new);
                        gmax.atomic_max(t, 0, new);
                    }
                });
            });
        }
        // Kernel 3: claim the argmax into M (ties: first claimant wins; in
        // deterministic mode that is the lowest candidate index, matching
        // the CPU tie-break).
        {
            let sample_idx = ws.sample_idx.clone();
            let dist = ws.greedy_dist.clone();
            let gmax = ws.greedy_max.clone();
            let claim = ws.greedy_claim.clone();
            let m_list = ws.m_list.clone();
            dev.launch("greedy.claim", grid, Dim3::x(WIDE_BLOCK), move |blk| {
                blk.threads(|t| {
                    let c = t.global_id_x();
                    if c < s
                        && dist.ld(t, c) == gmax.ld(t, 0)
                        && claim.atomic_cas(t, 0, u32::MAX, c as u32) == u32::MAX
                    {
                        let p = sample_idx.ld(t, c);
                        m_list.st(t, round, p);
                    }
                });
            });
        }
        latest = dev.dtoh(&ws.greedy_claim)[0] as usize;
    }

    dev.dtoh(&ws.m_list)[..count]
        .iter()
        .map(|&p| p as usize)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use proclus::par::Executor;
    use proclus::phases::initialization::greedy_select;
    use proclus::DataMatrix;

    #[test]
    fn matches_cpu_greedy_seed_for_seed() {
        let rows: Vec<Vec<f32>> = (0..300)
            .map(|i| vec![(i as f32 * 37.0) % 101.0, (i as f32 * 17.0) % 89.0])
            .collect();
        let host = DataMatrix::from_rows(&rows).unwrap();
        let sample: Vec<usize> = (0..300).step_by(2).collect();

        let want = greedy_select(
            &host,
            &sample,
            20,
            &mut ProclusRng::new(123),
            &Executor::Sequential,
        );

        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.set_deterministic(true);
        let ws = Workspace::new(&mut dev, &host, 4, sample.len(), 20).unwrap();
        let got = greedy_gpu(&mut dev, &ws, &sample, 20, &mut ProclusRng::new(123));
        assert_eq!(got, want);
    }

    #[test]
    fn single_pick_consumes_one_draw() {
        let host = DataMatrix::from_rows(&[vec![0.0], vec![1.0], vec![5.0]]).unwrap();
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let ws = Workspace::new(&mut dev, &host, 2, 3, 2).unwrap();
        let mut rng = ProclusRng::new(7);
        let got = greedy_gpu(&mut dev, &ws, &[0, 1, 2], 1, &mut rng);
        assert_eq!(got.len(), 1);
        let mut reference = ProclusRng::new(7);
        let _ = reference.below(3);
        assert_eq!(rng.below(1000), reference.below(1000));
    }
}
