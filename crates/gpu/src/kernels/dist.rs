//! Point-to-medoid distance rows (GPU Alg. 3 lines 1–3).

use gpu_sim::{Device, DeviceBuffer, Dim3, StreamId};

use super::WIDE_BLOCK;

/// Fills `out[p] = ‖data_p − data_m‖₂` for all `n` points.
///
/// The medoid's coordinates are staged into shared memory once per block
/// (one global load per dimension per block instead of per thread), then
/// each thread computes one point's distance — fully independent, so the
/// kernel parallelizes over threads *and* blocks exactly as the paper
/// describes.
pub fn dist_row_kernel(
    dev: &mut Device,
    data: &DeviceBuffer<f32>,
    d: usize,
    n: usize,
    medoid: usize,
    out: &DeviceBuffer<f32>,
) {
    let grid = Dim3::blocks_for(n, WIDE_BLOCK);
    let data = data.clone();
    let out = out.clone();
    dev.launch("compute_l.dist", grid, Dim3::x(WIDE_BLOCK), move |blk| {
        let m_sh = blk.shared::<f32>(d);
        blk.threads(|t| {
            let mut j = t.tid as usize;
            while j < d {
                let v = data.ld(t, medoid * d + j);
                m_sh.st(t, j, v);
                j += t.block_dim.x as usize;
            }
        });
        blk.threads(|t| {
            let p = t.global_id_x();
            if p < n {
                let mut acc = 0.0f64;
                for j in 0..d {
                    let diff = (data.ld(t, p * d + j) - m_sh.ld(t, j)) as f64;
                    acc += diff * diff;
                }
                t.flops(3 * d as u64 + 1);
                out.st(t, p, acc.sqrt() as f32);
            }
        });
    });
}

/// Untiled *reference* variant of [`dist_row_kernel`], kept for the model's
/// tiling-term demonstration and the distance bench — production code paths
/// never call it.
///
/// Two deliberate pessimizations relative to the tiled kernel: the medoid
/// row is re-read from global memory by every thread (no shared-memory
/// staging, so `n × d` medoid loads instead of `blocks × d`), and the
/// point sweep is charged at the strided price
/// ([`DeviceBuffer::ld_strided`]) — without a tile there is no reuse to
/// amortize the mostly-wasted sectors of the row-major stride-`d` warp
/// pattern. The arithmetic itself (f32 subtract, f64 accumulate over
/// ascending dimensions, `sqrt` narrowed to f32) is exactly
/// [`dist_row_kernel`]'s, so outputs stay bitwise-identical; only counted
/// work and modeled time differ.
pub fn dist_row_kernel_untiled(
    dev: &mut Device,
    data: &DeviceBuffer<f32>,
    d: usize,
    n: usize,
    medoid: usize,
    out: &DeviceBuffer<f32>,
) {
    let grid = Dim3::blocks_for(n, WIDE_BLOCK);
    let data = data.clone();
    let out = out.clone();
    dev.launch(
        "compute_l.dist_untiled",
        grid,
        Dim3::x(WIDE_BLOCK),
        move |blk| {
            blk.threads(|t| {
                let p = t.global_id_x();
                if p < n {
                    let mut acc = 0.0f64;
                    for j in 0..d {
                        let diff =
                            (data.ld_strided(t, p * d + j) - data.ld(t, medoid * d + j)) as f64;
                        acc += diff * diff;
                    }
                    t.flops(3 * d as u64 + 1);
                    out.st(t, p, acc.sqrt() as f32);
                }
            });
        },
    );
}

/// [`dist_row_kernel`] launched asynchronously on `stream` — the §5.4
/// future-work idea: independent per-medoid distance rows can overlap, so
/// small datasets (whose individual launches underutilize the device)
/// compute all `k` rows in roughly the time of the slowest one. Call
/// [`Device::sync_streams`] before consuming the rows.
#[allow(clippy::too_many_arguments)]
pub fn dist_row_kernel_on(
    dev: &mut Device,
    stream: StreamId,
    data: &DeviceBuffer<f32>,
    d: usize,
    n: usize,
    medoid: usize,
    out: &DeviceBuffer<f32>,
) {
    let grid = Dim3::blocks_for(n, WIDE_BLOCK);
    let data = data.clone();
    let out = out.clone();
    dev.launch_on(
        stream,
        "compute_l.dist",
        grid,
        Dim3::x(WIDE_BLOCK),
        move |blk| {
            let m_sh = blk.shared::<f32>(d);
            blk.threads(|t| {
                let mut j = t.tid as usize;
                while j < d {
                    let v = data.ld(t, medoid * d + j);
                    m_sh.st(t, j, v);
                    j += t.block_dim.x as usize;
                }
            });
            blk.threads(|t| {
                let p = t.global_id_x();
                if p < n {
                    let mut acc = 0.0f64;
                    for j in 0..d {
                        let diff = (data.ld(t, p * d + j) - m_sh.ld(t, j)) as f64;
                        acc += diff * diff;
                    }
                    t.flops(3 * d as u64 + 1);
                    out.st(t, p, acc.sqrt() as f32);
                }
            });
        },
    );
}

/// Fills `out[i] = ‖data_{todo[i]} − data_m‖₂` for the `t_len` points
/// listed in `todo` — the streaming partial-row patch: after an append
/// only the new points need distances against a cached medoid row, so the
/// kernel reads the target positions through an index buffer instead of
/// sweeping all `n`. Per listed point the arithmetic (f64 accumulate over
/// ascending dimensions, `sqrt` narrowed to f32) is exactly
/// [`dist_row_kernel`]'s, so patched rows are bitwise-identical to fully
/// recomputed ones.
pub fn dist_subset_kernel(
    dev: &mut Device,
    data: &DeviceBuffer<f32>,
    d: usize,
    medoid: usize,
    todo: &DeviceBuffer<u32>,
    t_len: usize,
    out: &DeviceBuffer<f32>,
) {
    if t_len == 0 {
        return;
    }
    let grid = Dim3::blocks_for(t_len, WIDE_BLOCK);
    let data = data.clone();
    let todo = todo.clone();
    let out = out.clone();
    dev.launch(
        "stream.dist_subset",
        grid,
        Dim3::x(WIDE_BLOCK),
        move |blk| {
            let m_sh = blk.shared::<f32>(d);
            blk.threads(|t| {
                let mut j = t.tid as usize;
                while j < d {
                    let v = data.ld(t, medoid * d + j);
                    m_sh.st(t, j, v);
                    j += t.block_dim.x as usize;
                }
            });
            blk.threads(|t| {
                let i = t.global_id_x();
                if i < t_len {
                    let p = todo.ld(t, i) as usize;
                    let mut acc = 0.0f64;
                    for j in 0..d {
                        let diff = (data.ld(t, p * d + j) - m_sh.ld(t, j)) as f64;
                        acc += diff * diff;
                    }
                    t.flops(3 * d as u64 + 1);
                    out.st(t, i, acc.sqrt() as f32);
                }
            });
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use proclus::distance::euclidean;
    use proclus::DataMatrix;

    #[test]
    fn matches_cpu_euclidean_bitwise() {
        let rows: Vec<Vec<f32>> = (0..500)
            .map(|i| vec![(i % 13) as f32 * 0.7, (i % 7) as f32, i as f32 * 0.01])
            .collect();
        let host = DataMatrix::from_rows(&rows).unwrap();
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.set_deterministic(true);
        let data = dev.htod("data", host.flat()).unwrap();
        let out = dev.alloc_zeroed::<f32>("row", 500).unwrap();
        dist_row_kernel(&mut dev, &data, 3, 500, 42, &out);
        let got = out.peek_all();
        for (p, g) in got.iter().enumerate() {
            let want = euclidean(host.row(p), host.row(42));
            assert_eq!(g.to_bits(), want.to_bits(), "point {p}");
        }
    }

    #[test]
    fn subset_rows_match_full_rows_bitwise() {
        let rows: Vec<Vec<f32>> = (0..600)
            .map(|i| vec![(i % 19) as f32 * 0.3, (i % 11) as f32, i as f32 * 0.02])
            .collect();
        let host = DataMatrix::from_rows(&rows).unwrap();
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.set_deterministic(true);
        let data = dev.htod("data", host.flat()).unwrap();
        let full = dev.alloc_zeroed::<f32>("full", 600).unwrap();
        dist_row_kernel(&mut dev, &data, 3, 600, 17, &full);
        let todo_host: Vec<u32> = (0..600u32).filter(|p| p % 3 == 1).collect();
        let todo = dev.htod("todo", &todo_host).unwrap();
        let out = dev.alloc_zeroed::<f32>("out", todo_host.len()).unwrap();
        dist_subset_kernel(&mut dev, &data, 3, 17, &todo, todo_host.len(), &out);
        let full_host = full.peek_all();
        for (i, g) in out.peek_all().iter().enumerate() {
            let p = todo_host[i] as usize;
            assert_eq!(g.to_bits(), full_host[p].to_bits(), "todo entry {i}");
            assert_eq!(g.to_bits(), euclidean(host.row(p), host.row(17)).to_bits());
        }
    }

    #[test]
    fn streamed_rows_match_sequential_rows_and_overlap() {
        let rows: Vec<Vec<f32>> = (0..2000)
            .map(|i| vec![(i % 31) as f32, (i % 13) as f32])
            .collect();
        let host = DataMatrix::from_rows(&rows).unwrap();
        let medoids = [3usize, 700, 1500, 1999];

        // Sequential launches.
        let mut dev_a = Device::new(DeviceConfig::gtx_1660_ti());
        let data_a = dev_a.htod("data", host.flat()).unwrap();
        let outs_a: Vec<_> = (0..4)
            .map(|i| dev_a.alloc_zeroed::<f32>(&format!("r{i}"), 2000).unwrap())
            .collect();
        let t0 = dev_a.elapsed_us();
        for (i, &m) in medoids.iter().enumerate() {
            dist_row_kernel(&mut dev_a, &data_a, 2, 2000, m, &outs_a[i]);
        }
        let sequential = dev_a.elapsed_us() - t0;

        // Overlapped on streams.
        let mut dev_b = Device::new(DeviceConfig::gtx_1660_ti());
        let data_b = dev_b.htod("data", host.flat()).unwrap();
        let outs_b: Vec<_> = (0..4)
            .map(|i| dev_b.alloc_zeroed::<f32>(&format!("r{i}"), 2000).unwrap())
            .collect();
        let t0 = dev_b.elapsed_us();
        for (i, &m) in medoids.iter().enumerate() {
            let s = dev_b.create_stream();
            dist_row_kernel_on(&mut dev_b, s, &data_b, 2, 2000, m, &outs_b[i]);
        }
        dev_b.sync_streams();
        let overlapped = dev_b.elapsed_us() - t0;

        for i in 0..4 {
            assert_eq!(outs_a[i].peek_all(), outs_b[i].peek_all(), "row {i}");
        }
        // Launch overhead serializes on the host even with streams, so on
        // a tiny dataset the win is real but modest: bodies overlap,
        // launches do not.
        assert!(
            overlapped < sequential,
            "streamed rows should be no slower: {overlapped} vs {sequential}"
        );
    }

    #[test]
    fn untiled_reference_matches_tiled_bitwise_but_models_slower() {
        let n = 8192;
        let d = 16;
        let flat: Vec<f32> = (0..n * d)
            .map(|i| ((i * 37) % 1009) as f32 * 0.13)
            .collect();

        let mut tiled = Device::new(DeviceConfig::gtx_1660_ti());
        let data_t = tiled.htod("data", &flat).unwrap();
        let out_t = tiled.alloc_zeroed::<f32>("row", n).unwrap();
        let t0 = tiled.elapsed_us();
        dist_row_kernel(&mut tiled, &data_t, d, n, 5, &out_t);
        let tiled_us = tiled.elapsed_us() - t0;

        let mut untiled = Device::new(DeviceConfig::gtx_1660_ti());
        let data_u = untiled.htod("data", &flat).unwrap();
        let out_u = untiled.alloc_zeroed::<f32>("row", n).unwrap();
        let t0 = untiled.elapsed_us();
        dist_row_kernel_untiled(&mut untiled, &data_u, d, n, 5, &out_u);
        let untiled_us = untiled.elapsed_us() - t0;

        // Identical results: blocking is a pure access-pattern change.
        let a = out_t.peek_all();
        let b = out_u.peek_all();
        for p in 0..n {
            assert_eq!(a[p].to_bits(), b[p].to_bits(), "point {p}");
        }

        // The tiled kernel charges nothing strided; the untiled one charges
        // every point-sweep byte, which the model amplifies.
        let w_t = &tiled.report().kernels["compute_l.dist"].work;
        let w_u = &untiled.report().kernels["compute_l.dist_untiled"].work;
        assert_eq!(w_t.strided_bytes, 0);
        assert_eq!(w_u.strided_bytes, 4 * (n * d) as u64);
        assert!(
            untiled_us > 2.0 * tiled_us,
            "untiled {untiled_us} us should model well slower than tiled {tiled_us} us"
        );
    }

    #[test]
    fn counts_one_medoid_load_per_dim_per_block() {
        let n = 4096;
        let d = 8;
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let data = dev.htod("data", &vec![1.0f32; n * d]).unwrap();
        let out = dev.alloc_zeroed::<f32>("row", n).unwrap();
        dist_row_kernel(&mut dev, &data, d, n, 0, &out);
        let rep = dev.report();
        let w = &rep.kernels["compute_l.dist"].work;
        let blocks = n.div_ceil(WIDE_BLOCK as usize) as u64;
        // n point loads per dim + d medoid loads per block.
        assert_eq!(w.global_loads, (n * d) as u64 + blocks * d as u64);
        assert_eq!(w.global_stores, n as u64);
    }
}
