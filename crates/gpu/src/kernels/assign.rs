//! AssignPoints on the device (GPU Alg. 5).
//!
//! Each block handles a chunk of points with `128 / k`-ish points per block
//! and one thread per (point, medoid) pair: threads race their Manhattan
//! segmental distances into a shared per-point minimum (`atomicMin`),
//! synchronize, and the matching thread claims the point for its cluster —
//! "we must compute the distances from each point to all medoids in the
//! same thread block" (§4.1). A CAS claim resolves exact-distance ties to
//! the lowest medoid index, matching the CPU tie-break.

use gpu_sim::{Device, DeviceBuffer, Dim3};

use super::ASSIGN_BLOCK;

/// Assigns every point to the nearest medoid in that medoid's subspace.
/// Writes `labels` (n, i32), appends members to `c_list` (k × n) and counts
/// into `c_count` (k) — "adding the points to set `C_i` is done the same
/// way as for `L_i`".
#[allow(clippy::too_many_arguments)]
pub fn assign_kernel(
    dev: &mut Device,
    data: &DeviceBuffer<f32>,
    d: usize,
    n: usize,
    medoid_data_idx: &[usize],
    dims_flat: &DeviceBuffer<u32>,
    dims_offsets: &[usize],
    labels: &DeviceBuffer<i32>,
    c_list: &DeviceBuffer<u32>,
    c_count: &DeviceBuffer<u32>,
) {
    let k = medoid_data_idx.len();
    assert!(
        k as u32 <= ASSIGN_BLOCK,
        "AssignPoints supports k <= {ASSIGN_BLOCK}"
    );
    dev.memset(c_count, 0);
    let ppb = (ASSIGN_BLOCK as usize / k).max(1); // points per block
    let threads = (ppb * k) as u32;
    let grid = Dim3::x(n.div_ceil(ppb).max(1) as u32);

    let data = data.clone();
    let dims_flat = dims_flat.clone();
    let labels = labels.clone();
    let c_list = c_list.clone();
    let c_count = c_count.clone();
    let medoids = medoid_data_idx.to_vec();
    let offsets = dims_offsets.to_vec();

    dev.launch("assign.points", grid, Dim3::x(threads), move |blk| {
        let base = blk.block.x as usize * ppb;
        let min_dist = blk.shared::<f64>(ppb);
        let claimed = blk.shared::<u32>(ppb);
        let my_dist = blk.regs::<f64>();

        blk.threads(|t| {
            let pl = t.tid as usize / k;
            if (t.tid as usize).is_multiple_of(k) {
                min_dist.st(t, pl, f64::INFINITY);
                claimed.st(t, pl, 0);
            }
        });
        blk.threads(|t| {
            let pl = t.tid as usize / k;
            let i = t.tid as usize % k;
            let p = base + pl;
            if p < n {
                let (lo, hi) = (offsets[i], offsets[i + 1]);
                let mut acc = 0.0f64;
                for s in lo..hi {
                    let j = dims_flat.ld(t, s) as usize;
                    let a = data.ld(t, p * d + j);
                    let b = data.ld(t, medoids[i] * d + j);
                    acc += ((a - b) as f64).abs();
                }
                let dist = acc / (hi - lo) as f64;
                t.flops(2 * (hi - lo) as u64 + 1);
                my_dist.set(t, dist);
                min_dist.atomic_min(t, pl, dist);
            }
        });
        // Threads iterate in (point, medoid-ascending) order, so on exact
        // ties the lowest medoid index claims first — same as the CPU.
        blk.threads(|t| {
            let pl = t.tid as usize / k;
            let i = t.tid as usize % k;
            let p = base + pl;
            if p < n && min_dist.ld(t, pl) == my_dist.get(t) && claimed.atomic_add(t, pl, 1) == 0 {
                labels.st(t, p, i as i32);
                let pos = c_count.atomic_inc(t, i) as usize;
                c_list.st(t, i * n + pos, p as u32);
            }
        });
    });
}

/// Re-assigns only the `t_len` points listed in `todo`, leaving every other
/// label untouched — the streaming seeded-assignment path: after an append
/// the surviving points keep their memoized labels and only new points scan
/// the medoids. One thread per listed point; each thread walks all `k`
/// medoids in ascending order keeping a strict-`<` running minimum, so
/// exact-distance ties go to the lowest medoid index — the same rule as
/// [`assign_kernel`] and the CPU assignment, making a seeded pass bitwise
/// equal to a full one.
#[allow(clippy::too_many_arguments)]
pub fn assign_subset_kernel(
    dev: &mut Device,
    data: &DeviceBuffer<f32>,
    d: usize,
    medoid_data_idx: &[usize],
    dims_flat: &DeviceBuffer<u32>,
    dims_offsets: &[usize],
    todo: &DeviceBuffer<u32>,
    t_len: usize,
    labels: &DeviceBuffer<i32>,
) {
    if t_len == 0 {
        return;
    }
    let k = medoid_data_idx.len();
    let grid = Dim3::blocks_for(t_len, ASSIGN_BLOCK);
    let data = data.clone();
    let dims_flat = dims_flat.clone();
    let todo = todo.clone();
    let labels = labels.clone();
    let medoids = medoid_data_idx.to_vec();
    let offsets = dims_offsets.to_vec();
    dev.launch("assign.subset", grid, Dim3::x(ASSIGN_BLOCK), move |blk| {
        blk.threads(|t| {
            let i = t.global_id_x();
            if i < t_len {
                let p = todo.ld(t, i) as usize;
                let mut best = f64::INFINITY;
                let mut best_i = 0i32;
                for ci in 0..k {
                    let (lo, hi) = (offsets[ci], offsets[ci + 1]);
                    let mut acc = 0.0f64;
                    for s in lo..hi {
                        let j = dims_flat.ld(t, s) as usize;
                        let a = data.ld(t, p * d + j);
                        let b = data.ld(t, medoids[ci] * d + j);
                        acc += ((a - b) as f64).abs();
                    }
                    let dist = acc / (hi - lo) as f64;
                    t.flops(2 * (hi - lo) as u64 + 1);
                    if dist < best {
                        best = dist;
                        best_i = ci as i32;
                    }
                }
                labels.st(t, p, best_i);
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use proclus::par::Executor;
    use proclus::phases::assign::assign_points;
    use proclus::DataMatrix;

    fn upload_dims(dev: &mut Device, subspaces: &[Vec<usize>]) -> (DeviceBuffer<u32>, Vec<usize>) {
        let mut flat = Vec::new();
        let mut offsets = vec![0usize];
        for s in subspaces {
            flat.extend(s.iter().map(|&j| j as u32));
            offsets.push(flat.len());
        }
        (dev.htod("dims_flat", &flat).unwrap(), offsets)
    }

    #[test]
    fn matches_cpu_assignment_exactly() {
        let n = 997;
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| vec![(i % 23) as f32, (i % 7) as f32 * 1.3, (i % 3) as f32])
            .collect();
        let host = DataMatrix::from_rows(&rows).unwrap();
        let medoids = vec![0usize, 499, 996];
        let subspaces = vec![vec![0, 1], vec![1, 2], vec![0, 2]];

        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.set_deterministic(true);
        let data = dev.htod("data", host.flat()).unwrap();
        let (dims_flat, offsets) = upload_dims(&mut dev, &subspaces);
        let labels = dev.alloc_zeroed::<i32>("labels", n).unwrap();
        let c_list = dev.alloc_zeroed::<u32>("c_list", 3 * n).unwrap();
        let c_count = dev.alloc_zeroed::<u32>("c_count", 3).unwrap();
        assign_kernel(
            &mut dev, &data, 3, n, &medoids, &dims_flat, &offsets, &labels, &c_list, &c_count,
        );

        let want = assign_points(&host, &medoids, &subspaces, &Executor::Sequential);
        assert_eq!(labels.peek_all(), want);

        // The c_lists partition the points consistently with the labels.
        let mut total = 0;
        for i in 0..3 {
            let c = c_count.peek(i) as usize;
            total += c;
            for s in 0..c {
                let p = c_list.peek(i * n + s) as usize;
                assert_eq!(want[p], i as i32);
            }
        }
        assert_eq!(total, n, "every point lands in exactly one cluster");
    }

    #[test]
    fn seeded_subset_matches_full_assignment() {
        let n = 503;
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| vec![(i % 17) as f32, (i % 5) as f32 * 0.9, (i % 11) as f32])
            .collect();
        let host = DataMatrix::from_rows(&rows).unwrap();
        let medoids = vec![2usize, 250, 499];
        let subspaces = vec![vec![0, 2], vec![1], vec![0, 1, 2]];
        let want = assign_points(&host, &medoids, &subspaces, &Executor::Sequential);

        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.set_deterministic(true);
        let data = dev.htod("data", host.flat()).unwrap();
        let (dims_flat, offsets) = upload_dims(&mut dev, &subspaces);
        // Seed even positions from the full pass, poison the odd ones and
        // let the subset kernel recompute them.
        let seeded: Vec<i32> = want
            .iter()
            .enumerate()
            .map(|(p, &l)| if p % 2 == 0 { l } else { -2 })
            .collect();
        let labels = dev.htod("labels", &seeded).unwrap();
        let todo_host: Vec<u32> = (0..n as u32).filter(|p| p % 2 == 1).collect();
        let todo = dev.htod("todo", &todo_host).unwrap();
        assign_subset_kernel(
            &mut dev,
            &data,
            3,
            &medoids,
            &dims_flat,
            &offsets,
            &todo,
            todo_host.len(),
            &labels,
        );
        assert_eq!(labels.peek_all(), want);
    }

    #[test]
    fn tie_breaks_to_lowest_medoid_index() {
        // Point 2 is equidistant from both medoids in the shared subspace.
        let host = DataMatrix::from_rows(&[vec![0.0], vec![2.0], vec![1.0]]).unwrap();
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.set_deterministic(true);
        let data = dev.htod("data", host.flat()).unwrap();
        let (dims_flat, offsets) = upload_dims(&mut dev, &[vec![0], vec![0]]);
        let labels = dev.alloc_zeroed::<i32>("labels", 3).unwrap();
        let c_list = dev.alloc_zeroed::<u32>("c_list", 6).unwrap();
        let c_count = dev.alloc_zeroed::<u32>("c_count", 2).unwrap();
        assign_kernel(
            &mut dev,
            &data,
            1,
            3,
            &[0, 1],
            &dims_flat,
            &offsets,
            &labels,
            &c_list,
            &c_count,
        );
        assert_eq!(labels.peek(2), 0);
    }

    #[test]
    #[should_panic(expected = "AssignPoints supports k")]
    fn rejects_k_larger_than_block() {
        let host = DataMatrix::from_rows(&vec![vec![0.0f32]; 10]).unwrap();
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let data = dev.htod("data", host.flat()).unwrap();
        let dims_flat = dev.alloc_zeroed::<u32>("dims", 300).unwrap();
        let labels = dev.alloc_zeroed::<i32>("labels", 10).unwrap();
        let c_list = dev.alloc_zeroed::<u32>("c_list", 10).unwrap();
        let c_count = dev.alloc_zeroed::<u32>("c_count", 300).unwrap();
        let medoids: Vec<usize> = (0..200).map(|i| i % 10).collect();
        let offsets: Vec<usize> = (0..=200).collect();
        assign_kernel(
            &mut dev, &data, 1, 10, &medoids, &dims_flat, &offsets, &labels, &c_list, &c_count,
        );
    }
}
