//! Small maintenance kernels: device-to-device label copies (keeping the
//! best assignment resident, §4.1 "Updated and iterations" — not
//! time-consuming but still on-device to avoid transfers) and rebuilding
//! cluster member lists from a label array for the refinement phase.

use gpu_sim::{Device, DeviceBuffer, Dim3};

use super::WIDE_BLOCK;

/// Copies `src` into `dst` on the device (labels of the best iteration).
pub fn copy_labels_kernel(
    dev: &mut Device,
    src: &DeviceBuffer<i32>,
    dst: &DeviceBuffer<i32>,
    n: usize,
) {
    let src = src.clone();
    let dst = dst.clone();
    let grid = Dim3::blocks_for(n, WIDE_BLOCK);
    dev.launch("util.copy_labels", grid, Dim3::x(WIDE_BLOCK), move |blk| {
        blk.threads(|t| {
            let p = t.global_id_x();
            if p < n {
                let v = src.ld(t, p);
                dst.st(t, p, v);
            }
        });
    });
}

/// Rebuilds the per-cluster member lists from a label array (used by the
/// refinement phase, which needs `L ← CBest`, Alg. 1 line 16). Negative
/// labels are skipped.
pub fn lists_from_labels_kernel(
    dev: &mut Device,
    labels: &DeviceBuffer<i32>,
    n: usize,
    list: &DeviceBuffer<u32>,
    count: &DeviceBuffer<u32>,
) {
    dev.memset(count, 0);
    let labels = labels.clone();
    let list = list.clone();
    let count = count.clone();
    let grid = Dim3::blocks_for(n, WIDE_BLOCK);
    dev.launch(
        "util.lists_from_labels",
        grid,
        Dim3::x(WIDE_BLOCK),
        move |blk| {
            blk.threads(|t| {
                let p = t.global_id_x();
                if p < n {
                    let c = labels.ld(t, p);
                    if c >= 0 {
                        let i = c as usize;
                        let pos = count.atomic_inc(t, i) as usize;
                        list.st(t, i * n + pos, p as u32);
                    }
                }
            });
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;

    #[test]
    fn copy_preserves_all_labels() {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let n = 5000;
        let vals: Vec<i32> = (0..n as i32).map(|i| i % 7 - 1).collect();
        let src = dev.htod("src", &vals).unwrap();
        let dst = dev.alloc_zeroed::<i32>("dst", n).unwrap();
        copy_labels_kernel(&mut dev, &src, &dst, n);
        assert_eq!(dst.peek_all(), vals);
    }

    #[test]
    fn lists_partition_non_negative_labels() {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let n = 1000;
        let labels_host: Vec<i32> = (0..n as i32)
            .map(|i| if i % 10 == 0 { -1 } else { i % 3 })
            .collect();
        let labels = dev.htod("labels", &labels_host).unwrap();
        let list = dev.alloc_zeroed::<u32>("list", 3 * n).unwrap();
        let count = dev.alloc_zeroed::<u32>("count", 3).unwrap();
        lists_from_labels_kernel(&mut dev, &labels, n, &list, &count);
        let mut seen = 0usize;
        for i in 0..3 {
            let c = count.peek(i) as usize;
            for s in 0..c {
                let p = list.peek(i * n + s) as usize;
                assert_eq!(labels_host[p], i as i32);
            }
            seen += c;
        }
        let expected = labels_host.iter().filter(|&&l| l >= 0).count();
        assert_eq!(seen, expected);
    }
}
