//! RemoveOutliers on the device (paper §4.1, last paragraph).
//!
//! Kernel 1 computes the outlier sphere radii `Δ_i = min_{j≠i}
//! ‖m_i − m_j‖₁^{D_i} / |D_i|` — one block per medoid, threads over the
//! other medoids, atomic min in shared memory. Kernel 2 checks every point
//! against every medoid's sphere in parallel and reports the points outside
//! all of them as outliers.

use gpu_sim::{Device, DeviceBuffer, Dim3};

use super::WIDE_BLOCK;

/// Computes `Δ_i` into `out_deltas` (k, f64).
pub fn outlier_deltas_kernel(
    dev: &mut Device,
    data: &DeviceBuffer<f32>,
    d: usize,
    medoid_data_idx: &[usize],
    dims_flat: &DeviceBuffer<u32>,
    dims_offsets: &[usize],
    out_deltas: &DeviceBuffer<f64>,
) {
    let k = medoid_data_idx.len();
    let data = data.clone();
    let dims_flat = dims_flat.clone();
    let out = out_deltas.clone();
    let medoids = medoid_data_idx.to_vec();
    let offsets = dims_offsets.to_vec();
    dev.launch(
        "outliers.delta",
        Dim3::x(k as u32),
        Dim3::x(k as u32),
        move |blk| {
            let i = blk.block.x as usize;
            let dmin = blk.shared::<f64>(1);
            blk.thread0(|t| dmin.st(t, 0, f64::INFINITY));
            blk.threads(|t| {
                let j = t.tid as usize;
                if j != i {
                    let (lo, hi) = (offsets[i], offsets[i + 1]);
                    let mut acc = 0.0f64;
                    for s in lo..hi {
                        let dim = dims_flat.ld(t, s) as usize;
                        let a = data.ld(t, medoids[i] * d + dim);
                        let b = data.ld(t, medoids[j] * d + dim);
                        acc += ((a - b) as f64).abs();
                    }
                    t.flops(2 * (hi - lo) as u64 + 1);
                    dmin.atomic_min(t, 0, acc / (hi - lo) as f64);
                }
            });
            blk.thread0(|t| {
                let v = dmin.ld(t, 0);
                out.st(t, i, v);
            });
        },
    );
}

/// Marks points outside every medoid's `Δ_i` sphere as outliers
/// (`labels[p] ← −1`); all other labels pass through.
#[allow(clippy::too_many_arguments)]
pub fn remove_outliers_kernel(
    dev: &mut Device,
    data: &DeviceBuffer<f32>,
    d: usize,
    n: usize,
    medoid_data_idx: &[usize],
    dims_flat: &DeviceBuffer<u32>,
    dims_offsets: &[usize],
    out_deltas: &DeviceBuffer<f64>,
    labels: &DeviceBuffer<i32>,
) {
    let k = medoid_data_idx.len();
    let data = data.clone();
    let dims_flat = dims_flat.clone();
    let deltas = out_deltas.clone();
    let labels = labels.clone();
    let medoids = medoid_data_idx.to_vec();
    let offsets = dims_offsets.to_vec();
    let grid = Dim3::blocks_for(n, WIDE_BLOCK);
    dev.launch("outliers.scan", grid, Dim3::x(WIDE_BLOCK), move |blk| {
        blk.threads(|t| {
            let p = t.global_id_x();
            if p >= n {
                return;
            }
            let mut inside_any = false;
            for i in 0..k {
                let (lo, hi) = (offsets[i], offsets[i + 1]);
                let mut acc = 0.0f64;
                for s in lo..hi {
                    let dim = dims_flat.ld(t, s) as usize;
                    let a = data.ld(t, p * d + dim);
                    let b = data.ld(t, medoids[i] * d + dim);
                    acc += ((a - b) as f64).abs();
                }
                t.flops(2 * (hi - lo) as u64 + 1);
                if acc / (hi - lo) as f64 <= deltas.ld(t, i) {
                    inside_any = true;
                    break;
                }
            }
            if !inside_any {
                labels.st(t, p, -1);
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use proclus::par::Executor;
    use proclus::phases::refinement::{outlier_deltas, remove_outliers};
    use proclus::DataMatrix;

    fn upload_dims(dev: &mut Device, subspaces: &[Vec<usize>]) -> (DeviceBuffer<u32>, Vec<usize>) {
        let mut flat = Vec::new();
        let mut offsets = vec![0usize];
        for s in subspaces {
            flat.extend(s.iter().map(|&j| j as u32));
            offsets.push(flat.len());
        }
        (dev.htod("dims", &flat).unwrap(), offsets)
    }

    #[test]
    fn matches_cpu_outlier_detection() {
        let n = 500;
        let mut rows: Vec<Vec<f32>> = (0..n - 1)
            .map(|i| {
                let c = (i % 2) as f32 * 20.0;
                vec![c + (i % 5) as f32 * 0.2, c + (i % 3) as f32 * 0.2]
            })
            .collect();
        rows.push(vec![500.0, -500.0]); // wild outlier
        let host = DataMatrix::from_rows(&rows).unwrap();
        let medoids = vec![0usize, 1];
        let subspaces = vec![vec![0, 1], vec![0, 1]];
        let labels_host: Vec<i32> = (0..n).map(|i| (i % 2) as i32).collect();

        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.set_deterministic(true);
        let data = dev.htod("data", host.flat()).unwrap();
        let (dims_flat, offsets) = upload_dims(&mut dev, &subspaces);
        let deltas = dev.alloc_zeroed::<f64>("odeltas", 2).unwrap();
        outlier_deltas_kernel(&mut dev, &data, 2, &medoids, &dims_flat, &offsets, &deltas);

        let want_deltas = outlier_deltas(&host, &medoids, &subspaces);
        for (a, b) in deltas.peek_all().iter().zip(&want_deltas) {
            assert!((a - b).abs() < 1e-9);
        }

        let labels = dev.htod("labels", &labels_host).unwrap();
        remove_outliers_kernel(
            &mut dev, &data, 2, n, &medoids, &dims_flat, &offsets, &deltas, &labels,
        );
        let want = remove_outliers(
            &host,
            &labels_host,
            &medoids,
            &subspaces,
            &Executor::Sequential,
        );
        assert_eq!(labels.peek_all(), want);
        assert_eq!(labels.peek(n - 1), -1, "the wild point must be an outlier");
    }
}
