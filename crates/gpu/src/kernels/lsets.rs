//! Building the point lists `L_i` / `ΔL_i` (GPU Alg. 3 lines 8–12).
//!
//! Points are appended into pre-allocated worst-case arrays using
//! `atomicInc` on the per-medoid counter, exactly as the paper describes —
//! the member *order* inside a list is therefore nondeterministic under
//! parallel block execution, but every consumer only reduces over the list,
//! so order never affects results.

use gpu_sim::{Device, DeviceBuffer, Dim3};

use super::WIDE_BLOCK;
use crate::rows::MedoidRow;

/// Membership condition for list building.
pub enum SphereCond {
    /// `dist ≤ δ_i` — the full sphere `L_i` (plain GPU-PROCLUS).
    Within(Vec<f32>),
    /// `lo_i < dist ≤ hi_i` — the delta `ΔL_i` between the previous and
    /// current radius (Theorem 3.1; GPU-FAST variants).
    Between(Vec<(f32, f32)>),
}

/// Fills `list` (`k × n`, row per medoid) and `count` (k) with the points
/// satisfying the condition against each medoid's distance row. Counts are
/// reset on-device first.
pub fn build_lists_kernel(
    dev: &mut Device,
    rows: &[MedoidRow],
    row_of_slot: &[usize],
    cond: &SphereCond,
    n: usize,
    list: &DeviceBuffer<u32>,
    count: &DeviceBuffer<u32>,
) {
    let k = row_of_slot.len();
    dev.memset(count, 0);
    let dist_rows: Vec<_> = row_of_slot.iter().map(|&r| rows[r].dist.clone()).collect();
    let bounds: Vec<(f32, f32)> = match cond {
        SphereCond::Within(deltas) => deltas.iter().map(|&d| (f32::NEG_INFINITY, d)).collect(),
        SphereCond::Between(b) => b.clone(),
    };
    let list = list.clone();
    let count = count.clone();
    let grid = Dim3::xy(Dim3::blocks_for(n, WIDE_BLOCK).x, k as u32);
    dev.launch("compute_l.build", grid, Dim3::x(WIDE_BLOCK), move |blk| {
        let i = blk.block.y as usize;
        let (lo, hi) = bounds[i];
        blk.threads(|t| {
            let p = t.block.x as usize * t.block_dim.x as usize + t.tid as usize;
            if p < n {
                let dist = dist_rows[i].ld(t, p);
                t.ops(2);
                if dist > lo && dist <= hi {
                    let pos = count.atomic_inc(t, i) as usize;
                    list.st(t, i * n + pos, p as u32);
                }
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::dist::dist_row_kernel;
    use crate::rows::RowCache;
    use gpu_sim::DeviceConfig;
    use proclus::distance::euclidean;
    use proclus::DataMatrix;

    fn setup(n: usize) -> (Device, DataMatrix, DeviceBuffer<f32>) {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| vec![(i % 29) as f32, (i % 7) as f32])
            .collect();
        let host = DataMatrix::from_rows(&rows).unwrap();
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        let data = dev.htod("data", host.flat()).unwrap();
        (dev, host, data)
    }

    #[test]
    fn within_matches_cpu_sphere_membership() {
        let n = 3000;
        let (mut dev, host, data) = setup(n);
        let medoids = [10usize, 500];
        let cache = RowCache::new_plain(&mut dev, n, 2).unwrap();
        for (i, &m) in medoids.iter().enumerate() {
            dist_row_kernel(&mut dev, &data, 2, n, m, &cache.rows()[i].dist);
        }
        let list = dev.alloc_zeroed::<u32>("list", 2 * n).unwrap();
        let count = dev.alloc_zeroed::<u32>("count", 2).unwrap();
        let deltas = vec![5.0f32, 9.0];
        build_lists_kernel(
            &mut dev,
            cache.rows(),
            &[0, 1],
            &SphereCond::Within(deltas.clone()),
            n,
            &list,
            &count,
        );
        for i in 0..2 {
            let c = count.peek(i) as usize;
            let mut got: Vec<u32> = (0..c).map(|s| list.peek(i * n + s)).collect();
            got.sort_unstable();
            let want: Vec<u32> = (0..n)
                .filter(|&p| euclidean(host.row(p), host.row(medoids[i])) <= deltas[i])
                .map(|p| p as u32)
                .collect();
            assert_eq!(got, want, "medoid {i}");
            assert!(c >= 1, "sphere must contain the medoid");
        }
    }

    #[test]
    fn between_is_the_set_difference_of_two_spheres() {
        let n = 2000;
        let (mut dev, host, data) = setup(n);
        let cache = RowCache::new_plain(&mut dev, n, 1).unwrap();
        dist_row_kernel(&mut dev, &data, 2, n, 7, &cache.rows()[0].dist);
        let list = dev.alloc_zeroed::<u32>("list", n).unwrap();
        let count = dev.alloc_zeroed::<u32>("count", 1).unwrap();
        build_lists_kernel(
            &mut dev,
            cache.rows(),
            &[0],
            &SphereCond::Between(vec![(4.0, 11.0)]),
            n,
            &list,
            &count,
        );
        let c = count.peek(0) as usize;
        let mut got: Vec<u32> = (0..c).map(|s| list.peek(s)).collect();
        got.sort_unstable();
        let want: Vec<u32> = (0..n)
            .filter(|&p| {
                let dist = euclidean(host.row(p), host.row(7));
                dist > 4.0 && dist <= 11.0
            })
            .map(|p| p as u32)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_band_yields_empty_list() {
        let n = 100;
        let (mut dev, _, data) = setup(n);
        let cache = RowCache::new_plain(&mut dev, n, 1).unwrap();
        dist_row_kernel(&mut dev, &data, 2, n, 0, &cache.rows()[0].dist);
        let list = dev.alloc_zeroed::<u32>("list", n).unwrap();
        let count = dev.alloc_zeroed::<u32>("count", 1).unwrap();
        build_lists_kernel(
            &mut dev,
            cache.rows(),
            &[0],
            &SphereCond::Between(vec![(5.0, 5.0)]),
            n,
            &list,
            &count,
        );
        assert_eq!(count.peek(0), 0);
    }
}
