//! EvaluateCluster on the device (GPU Alg. 6, Eq. 9).
//!
//! One block per `(cluster i, subspace-dimension j)` pair; threads stride
//! the cluster member list. Phase 1 accumulates the centroid component
//! `µ_{i,j}` in shared memory (per-thread local partial, then one shared
//! atomic each); after the barrier, phase 2 accumulates
//! `|p_j − µ_{i,j}| / (|D_i| · n)` into the global cost scalar — "only the
//! final cost must be written to global memory".

use gpu_sim::{Device, DeviceBuffer, Dim3};

/// Threads per (i, j) block.
const EVAL_BLOCK: u32 = 256;

/// Computes the clustering cost (Eq. 9) from the device-resident cluster
/// lists. Returns the cost read back from the device (one scalar dtoh,
/// which the host needs for the `cost < costBest` decision).
#[allow(clippy::too_many_arguments)]
pub fn evaluate_kernel(
    dev: &mut Device,
    data: &DeviceBuffer<f32>,
    d: usize,
    n: usize,
    dims_flat: &DeviceBuffer<u32>,
    dims_offsets: &[usize],
    c_list: &DeviceBuffer<u32>,
    c_counts: &[usize],
    cost: &DeviceBuffer<f64>,
) -> f64 {
    let k = c_counts.len();
    let max_dims = (0..k)
        .map(|i| dims_offsets[i + 1] - dims_offsets[i])
        .max()
        .unwrap_or(0);
    dev.memset(cost, 0.0);

    let data = data.clone();
    let dims_flat = dims_flat.clone();
    let c_list = c_list.clone();
    let cost_buf = cost.clone();
    let offsets = dims_offsets.to_vec();
    let counts = c_counts.to_vec();

    let grid = Dim3::xy(max_dims as u32, k as u32);
    dev.launch("evaluate.cost", grid, Dim3::x(EVAL_BLOCK), move |blk| {
        let i = blk.block.y as usize;
        let jj = blk.block.x as usize;
        let (lo, hi) = (offsets[i], offsets[i + 1]);
        let cnt = counts[i];
        if jj >= hi - lo || cnt == 0 {
            return; // guard block: this cluster has fewer dims / is empty
        }
        let num_dims = hi - lo;
        let mu = blk.shared::<f64>(1);
        let j_sh = blk.shared::<u32>(1);
        blk.thread0(|t| {
            let j = dims_flat.ld(t, lo + jj);
            j_sh.st(t, 0, j);
            // µ accumulates via atomicAdd below; shared memory is garbage
            // until written on hardware, so zero it first.
            mu.st(t, 0, 0.0);
        });
        // Phase 1: centroid component µ_{i,j} (Alg. 6 lines 3–8).
        blk.threads(|t| {
            let j = j_sh.ld(t, 0) as usize;
            let mut tmp = 0.0f64; // local variable (Alg. 6 line 4)
            let mut s = t.tid as usize;
            while s < cnt {
                let p = c_list.ld(t, i * n + s) as usize;
                tmp += data.ld(t, p * d + j) as f64;
                s += t.block_dim.x as usize;
            }
            t.flops((cnt / t.block_dim.x as usize + 1) as u64);
            mu.atomic_add(t, 0, tmp / cnt as f64);
        });
        // Phase 2: cost contribution (Alg. 6 lines 9–13).
        blk.threads(|t| {
            let j = j_sh.ld(t, 0) as usize;
            let mu_v = mu.ld(t, 0);
            let mut tmp = 0.0f64;
            let mut s = t.tid as usize;
            while s < cnt {
                let p = c_list.ld(t, i * n + s) as usize;
                tmp += (data.ld(t, p * d + j) as f64 - mu_v).abs();
                s += t.block_dim.x as usize;
            }
            t.flops(2 * (cnt / t.block_dim.x as usize + 1) as u64);
            cost_buf.atomic_add(t, 0, tmp / (num_dims as f64 * n as f64));
        });
    });

    dev.dtoh(cost)[0]
}

/// Shard phase 1 of Eq. 9: per-`(cluster, subspace-dim)` centroid partial
/// sums over this shard's member lists, each pre-divided by the *global*
/// cluster size, accumulated into the `k × d` buffer `mu` (zeroed here,
/// indexed `i·d + jj` by subspace position). Host-summing the `mu`
/// readbacks across shards yields the same centroid components `µ_{i,j}`
/// the single-device [`evaluate_kernel`] forms in shared memory — the
/// cross-device reduction happens at the phase barrier, on `k × d` scalars
/// instead of `n` points.
#[allow(clippy::too_many_arguments)]
pub fn centroid_partial_kernel(
    dev: &mut Device,
    data: &DeviceBuffer<f32>,
    d: usize,
    n: usize,
    dims_flat: &DeviceBuffer<u32>,
    dims_offsets: &[usize],
    c_list: &DeviceBuffer<u32>,
    local_counts: &[usize],
    global_counts: &[usize],
    mu: &DeviceBuffer<f64>,
) {
    let k = local_counts.len();
    let max_dims = (0..k)
        .map(|i| dims_offsets[i + 1] - dims_offsets[i])
        .max()
        .unwrap_or(0);
    dev.memset(mu, 0.0);

    let data = data.clone();
    let dims_flat = dims_flat.clone();
    let c_list = c_list.clone();
    let mu_buf = mu.clone();
    let offsets = dims_offsets.to_vec();
    let counts = local_counts.to_vec();
    let totals = global_counts.to_vec();

    let grid = Dim3::xy(max_dims as u32, k as u32);
    dev.launch(
        "evaluate.mu_partial",
        grid,
        Dim3::x(EVAL_BLOCK),
        move |blk| {
            let i = blk.block.y as usize;
            let jj = blk.block.x as usize;
            let (lo, hi) = (offsets[i], offsets[i + 1]);
            let cnt = counts[i];
            if jj >= hi - lo || cnt == 0 || totals[i] == 0 {
                return; // guard block: fewer dims / empty on this shard
            }
            let j_sh = blk.shared::<u32>(1);
            blk.thread0(|t| {
                let j = dims_flat.ld(t, lo + jj);
                j_sh.st(t, 0, j);
            });
            blk.threads(|t| {
                let j = j_sh.ld(t, 0) as usize;
                let mut tmp = 0.0f64;
                let mut s = t.tid as usize;
                while s < cnt {
                    let p = c_list.ld(t, i * n + s) as usize;
                    tmp += data.ld(t, p * d + j) as f64;
                    s += t.block_dim.x as usize;
                }
                t.flops((cnt / t.block_dim.x as usize + 1) as u64);
                mu_buf.atomic_add(t, i * d + jj, tmp / totals[i] as f64);
            });
        },
    );
}

/// Shard phase 2 of Eq. 9: this shard's cost contribution given the
/// already-reduced global centroids `mu` (uploaded `k × d`, indexed
/// `i·d + jj` as written by [`centroid_partial_kernel`]). Every term is
/// divided by `|D_i| · n_total` (the *global* point count), so the host sum
/// of the per-shard scalars equals the single-device cost.
#[allow(clippy::too_many_arguments)]
pub fn cost_partial_kernel(
    dev: &mut Device,
    data: &DeviceBuffer<f32>,
    d: usize,
    n: usize,
    dims_flat: &DeviceBuffer<u32>,
    dims_offsets: &[usize],
    c_list: &DeviceBuffer<u32>,
    local_counts: &[usize],
    mu: &DeviceBuffer<f64>,
    n_total: usize,
    cost: &DeviceBuffer<f64>,
) -> f64 {
    let k = local_counts.len();
    let max_dims = (0..k)
        .map(|i| dims_offsets[i + 1] - dims_offsets[i])
        .max()
        .unwrap_or(0);
    dev.memset(cost, 0.0);

    let data = data.clone();
    let dims_flat = dims_flat.clone();
    let c_list = c_list.clone();
    let mu_buf = mu.clone();
    let cost_buf = cost.clone();
    let offsets = dims_offsets.to_vec();
    let counts = local_counts.to_vec();

    let grid = Dim3::xy(max_dims as u32, k as u32);
    dev.launch(
        "evaluate.cost_partial",
        grid,
        Dim3::x(EVAL_BLOCK),
        move |blk| {
            let i = blk.block.y as usize;
            let jj = blk.block.x as usize;
            let (lo, hi) = (offsets[i], offsets[i + 1]);
            let cnt = counts[i];
            if jj >= hi - lo || cnt == 0 {
                return;
            }
            let num_dims = hi - lo;
            let j_sh = blk.shared::<u32>(1);
            blk.thread0(|t| {
                let j = dims_flat.ld(t, lo + jj);
                j_sh.st(t, 0, j);
            });
            blk.threads(|t| {
                let j = j_sh.ld(t, 0) as usize;
                let mu_v = mu_buf.ld(t, i * d + jj);
                let mut tmp = 0.0f64;
                let mut s = t.tid as usize;
                while s < cnt {
                    let p = c_list.ld(t, i * n + s) as usize;
                    tmp += (data.ld(t, p * d + j) as f64 - mu_v).abs();
                    s += t.block_dim.x as usize;
                }
                t.flops(2 * (cnt / t.block_dim.x as usize + 1) as u64);
                cost_buf.atomic_add(t, 0, tmp / (num_dims as f64 * n_total as f64));
            });
        },
    );

    dev.dtoh(cost)[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use proclus::par::Executor;
    use proclus::phases::evaluate::evaluate_clusters;
    use proclus::DataMatrix;

    fn device() -> Device {
        let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
        dev.set_deterministic(true);
        dev
    }

    #[allow(clippy::type_complexity)]
    fn upload(
        dev: &mut Device,
        host: &DataMatrix,
        labels: &[i32],
        subspaces: &[Vec<usize>],
    ) -> (
        DeviceBuffer<f32>,
        DeviceBuffer<u32>,
        Vec<usize>,
        DeviceBuffer<u32>,
        Vec<usize>,
        DeviceBuffer<f64>,
    ) {
        let k = subspaces.len();
        let n = host.n();
        let data = dev.htod("data", host.flat()).unwrap();
        let mut flat = Vec::new();
        let mut offsets = vec![0usize];
        for s in subspaces {
            flat.extend(s.iter().map(|&j| j as u32));
            offsets.push(flat.len());
        }
        let dims_flat = dev.htod("dims", &flat).unwrap();
        let c_list = dev.alloc_zeroed::<u32>("c_list", k * n).unwrap();
        let mut counts = vec![0usize; k];
        for (p, &c) in labels.iter().enumerate() {
            if c >= 0 {
                let i = c as usize;
                c_list.poke(i * n + counts[i], p as u32);
                counts[i] += 1;
            }
        }
        let cost = dev.alloc_zeroed::<f64>("cost", 1).unwrap();
        (data, dims_flat, offsets, c_list, counts, cost)
    }

    #[test]
    fn matches_cpu_cost() {
        let n = 600;
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| vec![(i % 17) as f32, (i % 5) as f32, (i % 2) as f32 * 7.0])
            .collect();
        let host = DataMatrix::from_rows(&rows).unwrap();
        let labels: Vec<i32> = (0..n).map(|i| (i % 3) as i32).collect();
        let subspaces = vec![vec![0, 1], vec![1], vec![0, 2]];

        let mut dev = device();
        let (data, dims_flat, offsets, c_list, counts, cost) =
            upload(&mut dev, &host, &labels, &subspaces);
        let got = evaluate_kernel(
            &mut dev, &data, 3, n, &dims_flat, &offsets, &c_list, &counts, &cost,
        );
        let want = evaluate_clusters(&host, &labels, &subspaces, &Executor::Sequential);
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn empty_cluster_contributes_zero() {
        let host = DataMatrix::from_rows(&[vec![0.0, 1.0], vec![4.0, 1.0]]).unwrap();
        let labels = vec![0, 0];
        let subspaces = vec![vec![0], vec![0, 1]];
        let mut dev = device();
        let (data, dims_flat, offsets, c_list, counts, cost) =
            upload(&mut dev, &host, &labels, &subspaces);
        let got = evaluate_kernel(
            &mut dev, &data, 2, 2, &dims_flat, &offsets, &c_list, &counts, &cost,
        );
        assert!((got - 2.0).abs() < 1e-12);
    }

    #[test]
    fn partial_kernels_reduce_to_the_single_device_cost() {
        let n = 600;
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| vec![(i % 17) as f32, (i % 5) as f32, (i % 2) as f32 * 7.0])
            .collect();
        let host = DataMatrix::from_rows(&rows).unwrap();
        let labels: Vec<i32> = (0..n).map(|i| (i % 3) as i32).collect();
        let subspaces = vec![vec![0, 1], vec![1], vec![0, 2]];
        let (k, d) = (3usize, 3usize);

        let mut dev = device();
        let (data, dims_flat, offsets, c_list, counts, cost) =
            upload(&mut dev, &host, &labels, &subspaces);
        let want = evaluate_kernel(
            &mut dev, &data, d, n, &dims_flat, &offsets, &c_list, &counts, &cost,
        );

        // Two shards over a contiguous split of the points; each shard sees
        // only its own rows and member lists but the global sizes.
        let cut = 250usize;
        let mut mu_global = vec![0.0f64; k * d];
        let mut shard_state = Vec::new();
        for (lo, hi) in [(0usize, cut), (cut, n)] {
            let mut sdev = device();
            let n_s = hi - lo;
            let srows: Vec<Vec<f32>> = (lo..hi).map(|i| rows[i].clone()).collect();
            let shost = DataMatrix::from_rows(&srows).unwrap();
            let slabels: Vec<i32> = labels[lo..hi].to_vec();
            let (sdata, sdims, soffsets, sc_list, scounts, scost) =
                upload(&mut sdev, &shost, &slabels, &subspaces);
            let mu = sdev.alloc_zeroed::<f64>("mu", k * d).unwrap();
            centroid_partial_kernel(
                &mut sdev, &sdata, d, n_s, &sdims, &soffsets, &sc_list, &scounts, &counts, &mu,
            );
            for (g, v) in mu_global.iter_mut().zip(sdev.dtoh(&mu)) {
                *g += v;
            }
            shard_state.push((
                sdev, sdata, sdims, soffsets, sc_list, scounts, scost, n_s, mu,
            ));
        }
        let mut got = 0.0f64;
        for (sdev, sdata, sdims, soffsets, sc_list, scounts, scost, n_s, mu) in &mut shard_state {
            sdev.upload(mu, &mu_global);
            got += cost_partial_kernel(
                sdev, sdata, d, *n_s, sdims, soffsets, sc_list, scounts, mu, n, scost,
            );
        }
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn perfect_clustering_costs_zero() {
        let host = DataMatrix::from_rows(&[vec![3.0], vec![3.0], vec![9.0]]).unwrap();
        let labels = vec![0, 0, 1];
        let subspaces = vec![vec![0], vec![0]];
        let mut dev = device();
        let (data, dims_flat, offsets, c_list, counts, cost) =
            upload(&mut dev, &host, &labels, &subspaces);
        let got = evaluate_kernel(
            &mut dev, &data, 1, 3, &dims_flat, &offsets, &c_list, &counts, &cost,
        );
        assert_eq!(got, 0.0);
    }
}
