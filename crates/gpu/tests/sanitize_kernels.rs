//! Race-clean guarantee: every PROCLUS kernel and all three pipeline entry
//! points run under `SanitizerMode::Abort`, so any shared-memory race,
//! cross-block global race, mixed atomic/plain access or uninitialized
//! read in the shipped kernels fails these tests.

// The per-variant entry points stay under test until they are removed.
#![allow(deprecated)]

use gpu_sim::{Device, DeviceBuffer, DeviceConfig, SanitizerMode};
use proclus::{DataMatrix, Params, ProclusRng};
use proclus_gpu::kernels::assign::assign_kernel;
use proclus_gpu::kernels::delta::deltas_kernel;
use proclus_gpu::kernels::dist::dist_row_kernel;
use proclus_gpu::kernels::evaluate::evaluate_kernel;
use proclus_gpu::kernels::find_dims::{
    h_update_kernel, x_from_h_kernel, x_from_lists_kernel, z_kernel,
};
use proclus_gpu::kernels::greedy::greedy_gpu;
use proclus_gpu::kernels::lsets::{build_lists_kernel, SphereCond};
use proclus_gpu::kernels::outliers::{outlier_deltas_kernel, remove_outliers_kernel};
use proclus_gpu::rows::MedoidRow;
use proclus_gpu::workspace::Workspace;
use proclus_gpu::{gpu_fast_proclus, gpu_fast_star_proclus, gpu_proclus};

fn device() -> Device {
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
    dev.set_deterministic(true);
    dev.set_sanitizer(SanitizerMode::Abort);
    dev
}

fn host_data(n: usize, d: usize) -> DataMatrix {
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            let c = (i % 2) as f32 * 30.0;
            (0..d)
                .map(|j| c + ((i * 7 + j * 13) % 23) as f32 * 0.3)
                .collect()
        })
        .collect();
    DataMatrix::from_rows(&rows).unwrap()
}

fn upload_dims(dev: &mut Device, subspaces: &[Vec<usize>]) -> (DeviceBuffer<u32>, Vec<usize>) {
    let mut flat = Vec::new();
    let mut offsets = vec![0usize];
    for s in subspaces {
        flat.extend(s.iter().map(|&j| j as u32));
        offsets.push(flat.len());
    }
    (dev.htod("dims", &flat).unwrap(), offsets)
}

/// Distance rows for `medoids`, wrapped as cache entries (with `H` rows
/// when `with_h`) so the ComputeL/FindDimensions kernels can be driven
/// directly.
fn medoid_rows(
    dev: &mut Device,
    data: &DeviceBuffer<f32>,
    d: usize,
    n: usize,
    medoids: &[usize],
    with_h: bool,
) -> Vec<MedoidRow> {
    medoids
        .iter()
        .enumerate()
        .map(|(slot, &m)| {
            let dist = dev.alloc_zeroed::<f32>(&format!("dist_{slot}"), n).unwrap();
            dist_row_kernel(dev, data, d, n, m, &dist);
            MedoidRow {
                dist,
                h: with_h.then(|| dev.alloc_zeroed::<f64>(&format!("h_{slot}"), d).unwrap()),
                prev_delta: -1.0,
                lsize: 0,
            }
        })
        .collect()
}

// -------------------------------------------------------- kernel by kernel

#[test]
fn dist_kernel_is_race_clean() {
    let (n, d) = (2_500usize, 5usize);
    let host = host_data(n, d);
    let mut dev = device();
    let data = dev.htod("data", host.flat()).unwrap();
    let out = dev.alloc_zeroed::<f32>("row", n).unwrap();
    dist_row_kernel(&mut dev, &data, d, n, 3, &out);
    assert!(dev.hazards().is_empty());
}

#[test]
fn greedy_kernels_are_race_clean() {
    let (n, d, k) = (1_200usize, 4usize, 4usize);
    let host = host_data(n, d);
    let mut dev = device();
    let params = Params::new(k, 2).with_a(30).with_b(5).with_seed(11);
    let sample_size = params.sample_size(n);
    let m_size = params.num_potential_medoids(n);
    let ws = Workspace::new(&mut dev, &host, k, sample_size, m_size).unwrap();
    let mut rng = ProclusRng::new(params.seed);
    let sample: Vec<usize> = (0..sample_size).map(|i| i * (n / sample_size)).collect();
    let m = greedy_gpu(&mut dev, &ws, &sample, m_size, &mut rng);
    assert_eq!(m.len(), m_size);
    assert!(dev.hazards().is_empty());
}

#[test]
fn lsets_and_delta_kernels_are_race_clean() {
    let (n, d, k) = (2_000usize, 4usize, 3usize);
    let host = host_data(n, d);
    let mut dev = device();
    let data = dev.htod("data", host.flat()).unwrap();
    let medoids = [10usize, 700, 1_500];
    let rows = medoid_rows(&mut dev, &data, d, n, &medoids, false);
    let row_of_slot: Vec<usize> = (0..k).collect();

    let deltas = dev.alloc_zeroed::<f32>("deltas", k).unwrap();
    deltas_kernel(&mut dev, &rows, &row_of_slot, &medoids, &deltas);

    let list = dev.alloc_zeroed::<u32>("l_list", k * n).unwrap();
    let count = dev.alloc_zeroed::<u32>("l_count", k).unwrap();
    let host_deltas = dev.dtoh(&deltas);
    build_lists_kernel(
        &mut dev,
        &rows,
        &row_of_slot,
        &SphereCond::Within(host_deltas),
        n,
        &list,
        &count,
    );
    assert!(dev.dtoh(&count).iter().any(|&c| c > 0));
    assert!(dev.hazards().is_empty());
}

#[test]
fn find_dims_kernels_are_race_clean() {
    let (n, d, k) = (2_000usize, 6usize, 3usize);
    let host = host_data(n, d);
    let mut dev = device();
    let data = dev.htod("data", host.flat()).unwrap();
    let medoids = [5usize, 900, 1_800];
    let rows = medoid_rows(&mut dev, &data, d, n, &medoids, true);
    let row_of_slot: Vec<usize> = (0..k).collect();

    // Sphere lists feeding the X sums.
    let deltas = dev.alloc_zeroed::<f32>("deltas", k).unwrap();
    deltas_kernel(&mut dev, &rows, &row_of_slot, &medoids, &deltas);
    let list = dev.alloc_zeroed::<u32>("l_list", k * n).unwrap();
    let count = dev.alloc_zeroed::<u32>("l_count", k).unwrap();
    let host_deltas = dev.dtoh(&deltas);
    build_lists_kernel(
        &mut dev,
        &rows,
        &row_of_slot,
        &SphereCond::Within(host_deltas.clone()),
        n,
        &list,
        &count,
    );
    let counts: Vec<usize> = dev.dtoh(&count).iter().map(|&c| c as usize).collect();

    // Plain path: X straight from the lists, then Z.
    let x = dev.alloc_zeroed::<f64>("x", k * d).unwrap();
    let z = dev.alloc_zeroed::<f64>("z", k * d).unwrap();
    x_from_lists_kernel(&mut dev, &data, d, n, &medoids, &list, &counts, &x);
    z_kernel(&mut dev, &x, &z, k, d);

    // FAST path: fold the same lists into H, then X = H / |L|, then Z.
    h_update_kernel(
        &mut dev,
        &data,
        d,
        n,
        &medoids,
        &rows,
        &row_of_slot,
        &list,
        &counts,
        &[1.0; 3],
    );
    x_from_h_kernel(&mut dev, d, &rows, &row_of_slot, &counts, &x);
    z_kernel(&mut dev, &x, &z, k, d);

    assert!(dev.hazards().is_empty());
}

#[test]
fn assign_kernel_is_race_clean() {
    let (n, d, k) = (3_000usize, 5usize, 4usize);
    let host = host_data(n, d);
    let mut dev = device();
    let data = dev.htod("data", host.flat()).unwrap();
    let subspaces: Vec<Vec<usize>> = (0..k).map(|i| vec![i % d, (i + 2) % d]).collect();
    let (dims_flat, offsets) = upload_dims(&mut dev, &subspaces);
    let medoids: Vec<usize> = (0..k).map(|i| i * (n / k)).collect();
    let labels = dev.alloc_zeroed::<i32>("labels", n).unwrap();
    let c_list = dev.alloc_zeroed::<u32>("c_list", k * n).unwrap();
    let c_count = dev.alloc_zeroed::<u32>("c_count", k).unwrap();
    assign_kernel(
        &mut dev, &data, d, n, &medoids, &dims_flat, &offsets, &labels, &c_list, &c_count,
    );
    assert_eq!(
        dev.dtoh(&c_count)
            .iter()
            .map(|&c| c as usize)
            .sum::<usize>(),
        n
    );
    assert!(dev.hazards().is_empty());
}

#[test]
fn evaluate_kernel_is_race_clean() {
    let (n, d, k) = (2_400usize, 4usize, 3usize);
    let host = host_data(n, d);
    let mut dev = device();
    let data = dev.htod("data", host.flat()).unwrap();
    let subspaces = vec![vec![0, 1], vec![1, 2, 3], vec![2]];
    let (dims_flat, offsets) = upload_dims(&mut dev, &subspaces);
    let c_list = dev.alloc_zeroed::<u32>("c_list", k * n).unwrap();
    let mut counts = vec![0usize; k];
    for p in 0..n {
        let c = p % k;
        c_list.poke(c * n + counts[c], p as u32);
        counts[c] += 1;
    }
    let cost = dev.alloc_zeroed::<f64>("cost", 1).unwrap();
    let got = evaluate_kernel(
        &mut dev, &data, d, n, &dims_flat, &offsets, &c_list, &counts, &cost,
    );
    assert!(got.is_finite());
    assert!(dev.hazards().is_empty());
}

#[test]
fn outlier_kernels_are_race_clean() {
    let (n, d, k) = (2_000usize, 4usize, 3usize);
    let host = host_data(n, d);
    let mut dev = device();
    let data = dev.htod("data", host.flat()).unwrap();
    let subspaces = vec![vec![0, 1], vec![1, 3], vec![0, 2]];
    let (dims_flat, offsets) = upload_dims(&mut dev, &subspaces);
    let medoids = [0usize, 666, 1_333];
    let out_deltas = dev.alloc_zeroed::<f64>("out_deltas", k).unwrap();
    outlier_deltas_kernel(
        &mut dev,
        &data,
        d,
        &medoids,
        &dims_flat,
        &offsets,
        &out_deltas,
    );
    let labels = dev.alloc_zeroed::<i32>("labels", n).unwrap();
    remove_outliers_kernel(
        &mut dev,
        &data,
        d,
        n,
        &medoids,
        &dims_flat,
        &offsets,
        &out_deltas,
        &labels,
    );
    assert!(dev.hazards().is_empty());
}

// ------------------------------------------------------------- pipelines

fn pipeline_data() -> (DataMatrix, Params) {
    let rows: Vec<Vec<f32>> = (0..400)
        .map(|i| {
            let c = (i % 2) as f32 * 30.0;
            vec![
                c + (i % 7) as f32 * 0.1,
                (i % 11) as f32,
                c + (i % 5) as f32 * 0.1,
            ]
        })
        .collect();
    let data = DataMatrix::from_rows(&rows).unwrap();
    let params = Params::new(2, 2).with_a(40).with_b(5).with_seed(3);
    (data, params)
}

fn assert_kernels_ran(dev: &mut Device, expect: &[&str]) {
    let rep = dev.report();
    for name in expect {
        assert!(
            rep.kernels.contains_key(*name),
            "kernel `{name}` never launched; ran: {:?}",
            rep.kernels.keys().collect::<Vec<_>>()
        );
    }
}

#[test]
fn gpu_proclus_pipeline_is_race_clean() {
    let (data, params) = pipeline_data();
    let mut dev = device();
    let clustering = gpu_proclus(&mut dev, &data, &params).unwrap();
    assert_eq!(clustering.k(), 2);
    assert!(dev.hazards().is_empty());
    assert_kernels_ran(
        &mut dev,
        &[
            "greedy.dist",
            "greedy.claim",
            "compute_l.dist",
            "compute_l.delta",
            "compute_l.build",
            "find_dims.x",
            "find_dims.z",
            "assign.points",
            "evaluate.cost",
            "outliers.delta",
            "outliers.scan",
        ],
    );
}

#[test]
fn gpu_fast_proclus_pipeline_is_race_clean() {
    let (data, params) = pipeline_data();
    let mut dev = device();
    let clustering = gpu_fast_proclus(&mut dev, &data, &params).unwrap();
    assert_eq!(clustering.k(), 2);
    assert!(dev.hazards().is_empty());
    assert_kernels_ran(
        &mut dev,
        &[
            "compute_l.dist",
            "compute_l.build",
            "find_dims.h_update",
            "find_dims.x_from_h",
            "find_dims.z",
            "assign.points",
            "evaluate.cost",
        ],
    );
}

#[test]
fn gpu_fast_star_proclus_pipeline_is_race_clean() {
    let (data, params) = pipeline_data();
    let mut dev = device();
    let clustering = gpu_fast_star_proclus(&mut dev, &data, &params).unwrap();
    assert_eq!(clustering.k(), 2);
    assert!(dev.hazards().is_empty());
}

#[test]
fn fast_pipeline_is_race_clean_under_parallel_blocks() {
    // The sanitizer is access-set based, so parallel block scheduling must
    // not change the (empty) verdict.
    let (data, params) = pipeline_data();
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
    dev.set_deterministic(false);
    dev.set_sanitizer(SanitizerMode::Abort);
    gpu_fast_proclus(&mut dev, &data, &params).unwrap();
    assert!(dev.hazards().is_empty());
}
