//! Work-counter exactness: the performance model is only as good as the
//! counted work feeding it, so these tests pin the exact global-memory
//! traffic of the main kernels against hand-derived formulas.

use gpu_sim::{Device, DeviceConfig};
use proclus::DataMatrix;
use proclus_gpu::kernels::assign::assign_kernel;
use proclus_gpu::kernels::dist::dist_row_kernel;
use proclus_gpu::kernels::evaluate::evaluate_kernel;

fn host_data(n: usize, d: usize) -> DataMatrix {
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| (0..d).map(|j| ((i * 7 + j * 13) % 29) as f32).collect())
        .collect();
    DataMatrix::from_rows(&rows).unwrap()
}

fn upload_dims(
    dev: &mut Device,
    subspaces: &[Vec<usize>],
) -> (gpu_sim::DeviceBuffer<u32>, Vec<usize>) {
    let mut flat = Vec::new();
    let mut offsets = vec![0usize];
    for s in subspaces {
        flat.extend(s.iter().map(|&j| j as u32));
        offsets.push(flat.len());
    }
    (dev.htod("dims", &flat).unwrap(), offsets)
}

#[test]
fn assign_kernel_traffic_matches_formula() {
    let (n, d, k) = (5_000usize, 6usize, 4usize);
    let host = host_data(n, d);
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
    let data = dev.htod("data", host.flat()).unwrap();
    let subspaces: Vec<Vec<usize>> = (0..k).map(|i| vec![i % d, (i + 2) % d]).collect();
    let (dims_flat, offsets) = upload_dims(&mut dev, &subspaces);
    let medoids: Vec<usize> = (0..k).map(|i| i * (n / k)).collect();
    let labels = dev.alloc_zeroed::<i32>("labels", n).unwrap();
    let c_list = dev.alloc_zeroed::<u32>("c_list", k * n).unwrap();
    let c_count = dev.alloc_zeroed::<u32>("c_count", k).unwrap();
    assign_kernel(
        &mut dev, &data, d, n, &medoids, &dims_flat, &offsets, &labels, &c_list, &c_count,
    );
    let rep = dev.report();
    let w = &rep.kernels["assign.points"].work;

    // Loads per real (point, medoid) pair: |D_i| dim indices + 2·|D_i|
    // data values. Every subspace here has 2 dims.
    let dims_per = 2u64;
    let pair_loads = (n * k) as u64 * (dims_per + 2 * dims_per);
    assert_eq!(w.global_loads, pair_loads, "loads");
    // Stores: one label + one c_list slot per point.
    assert_eq!(w.global_stores, 2 * n as u64, "stores");
    // Global atomics: one c_count bump per point.
    assert_eq!(w.global_atomics, n as u64, "atomics");
    // Shared: at least one atomic min per (point, medoid) pair.
    assert!(w.shared_atomics >= (n * k) as u64);
}

#[test]
fn dist_row_traffic_is_exact_for_uneven_tail_block() {
    // n deliberately NOT a multiple of the block size: tail threads must
    // not touch memory.
    let (n, d) = (2_500usize, 5usize);
    let host = host_data(n, d);
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
    let data = dev.htod("data", host.flat()).unwrap();
    let out = dev.alloc_zeroed::<f32>("row", n).unwrap();
    dist_row_kernel(&mut dev, &data, d, n, 3, &out);
    let rep = dev.report();
    let w = &rep.kernels["compute_l.dist"].work;
    let blocks = n.div_ceil(1024) as u64;
    assert_eq!(w.global_loads, (n * d) as u64 + blocks * d as u64);
    assert_eq!(w.global_stores, n as u64);
    assert_eq!(w.bytes_loaded, 4 * ((n * d) as u64 + blocks * d as u64));
}

#[test]
fn evaluate_kernel_scans_each_member_twice_per_dim() {
    let (n, d, k) = (3_000usize, 4usize, 3usize);
    let host = host_data(n, d);
    let mut dev = Device::new(DeviceConfig::gtx_1660_ti());
    let data = dev.htod("data", host.flat()).unwrap();
    let subspaces: Vec<Vec<usize>> = vec![vec![0, 1], vec![1, 2, 3], vec![2]];
    let (dims_flat, offsets) = upload_dims(&mut dev, &subspaces);
    // Balanced membership 0,1,2,0,1,2,...
    let c_list = dev.alloc_zeroed::<u32>("c_list", k * n).unwrap();
    let mut counts = vec![0usize; k];
    for p in 0..n {
        let c = p % k;
        c_list.poke(c * n + counts[c], p as u32);
        counts[c] += 1;
    }
    let cost = dev.alloc_zeroed::<f64>("cost", 1).unwrap();
    evaluate_kernel(
        &mut dev, &data, d, n, &dims_flat, &offsets, &c_list, &counts, &cost,
    );
    let rep = dev.report();
    let w = &rep.kernels["evaluate.cost"].work;
    // Per (cluster i, dim j): phase 1 reads |C_i| list entries + |C_i|
    // data values; phase 2 the same — the dominant term.
    let member_dim_pairs: u64 = (0..k)
        .map(|i| (counts[i] * subspaces[i].len()) as u64)
        .sum();
    let expected_min = 4 * member_dim_pairs;
    assert!(
        w.global_loads >= expected_min && w.global_loads <= expected_min + 10_000,
        "loads {} vs expected ~{}",
        w.global_loads,
        expected_min
    );
    // Only the cost scalar is written to global memory (Eq. 9's point) —
    // and only via atomics, not plain stores.
    assert_eq!(w.global_stores, 0, "stores {}", w.global_stores);
    assert!(w.global_atomics > 0);
}
