//! The mutable dataset behind a [`crate::StreamingClusterer`]: append,
//! retire, and sliding-window eviction over points addressed by stable
//! point ids (pids).
//!
//! Positions (row indices into the flat matrix) shift as points come and
//! go — retirement swap-removes, so the last row moves into the hole —
//! but pids never do, so every cross-epoch cache in this crate is keyed by
//! pid and re-anchored to positions through [`StreamDataset::pos_of`].
//!
//! The medoid sample `Data'` is *append-stable priority sampling*: each
//! point carries a priority drawn from a seeded hash of its pid, and the
//! sample is the `|S|` smallest `(priority, pid)` pairs. An append only
//! enters the sample if its priority beats the current threshold, and a
//! retire only removes one member — so a small batch of deltas perturbs
//! the sample by at most the batch size, which is what keeps the greedy
//! medoid candidates (and with them every downstream cache) stable across
//! re-clusterings. The sample consumes no RNG draws, so the seeded
//! replacement sequence of the decision loop is identical whether a
//! re-clustering starts warm or cold.

use std::collections::{BTreeSet, HashMap};

use proclus::{DataMatrix, ProclusError, Result};

/// SplitMix64 finalizer: the stateless hash behind the sampling priorities.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sampling priority of a pid: the sample is the `|S|` smallest.
pub(crate) fn sample_priority(seed: u64, pid: u64) -> u64 {
    splitmix64(pid ^ splitmix64(seed ^ 0xA076_1D64_78BD_642F))
}

/// Independent second priority deciding the greedy pass's first pick
/// (lowest wins). Indexing into the priority-ordered sample with an RNG
/// draw would shift under insertions; an argmin over per-pid hashes only
/// changes when the winning point itself enters or leaves the sample.
pub(crate) fn first_pick_priority(seed: u64, pid: u64) -> u64 {
    splitmix64(pid ^ splitmix64(seed ^ 0xE703_7ED1_A0B4_28DB))
}

/// A mutable row store with stable pids, priority sampling, and an
/// optional sliding window.
pub struct StreamDataset {
    d: usize,
    seed: u64,
    flat: Vec<f32>,
    /// pid of the point at each position.
    pids: Vec<u64>,
    pos_of: HashMap<u64, usize>,
    /// Live points ordered by `(sample_priority, pid)`.
    order: BTreeSet<(u64, u64)>,
    /// Live pids in age order (pids are assigned monotonically).
    live: BTreeSet<u64>,
    next_pid: u64,
    window: Option<usize>,
}

impl StreamDataset {
    /// An empty dataset of dimensionality `d`; `seed` fixes the sampling
    /// priorities (use the clustering seed so runs are reproducible).
    pub fn new(d: usize, seed: u64) -> Result<Self> {
        if d == 0 {
            return Err(ProclusError::InvalidData {
                reason: "zero-dimensional stream dataset".into(),
            });
        }
        Ok(Self {
            d,
            seed,
            flat: Vec::new(),
            pids: Vec::new(),
            pos_of: HashMap::new(),
            order: BTreeSet::new(),
            live: BTreeSet::new(),
            next_pid: 0,
            window: None,
        })
    }

    /// A dataset seeded from an initial batch of rows.
    pub fn from_rows(rows: &[Vec<f32>], seed: u64) -> Result<Self> {
        let d = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut ds = Self::new(d, seed)?;
        for row in rows {
            ds.append(row)?;
        }
        Ok(ds)
    }

    /// Number of live points.
    pub fn n(&self) -> usize {
        self.pids.len()
    }

    /// Dimensionality.
    pub fn d(&self) -> usize {
        self.d
    }

    /// pid of the point at `pos`.
    pub fn pid_at(&self, pos: usize) -> u64 {
        self.pids[pos]
    }

    /// pids by position (the column key of every cross-epoch row cache).
    pub fn pids(&self) -> &[u64] {
        &self.pids
    }

    /// Current position of a live pid.
    pub fn pos_of(&self, pid: u64) -> Option<usize> {
        self.pos_of.get(&pid).copied()
    }

    /// Coordinates of the point at `pos`.
    pub fn row(&self, pos: usize) -> &[f32] {
        &self.flat[pos * self.d..(pos + 1) * self.d]
    }

    /// The sliding-window capacity, if set.
    pub fn window(&self) -> Option<usize> {
        self.window
    }

    /// Appends a point, returning its pid. If a window is set, the oldest
    /// points are evicted to fit and their pids are returned.
    pub fn append(&mut self, row: &[f32]) -> Result<(u64, Vec<u64>)> {
        if row.len() != self.d {
            return Err(ProclusError::InvalidData {
                reason: format!("appended row has {} values, expected {}", row.len(), self.d),
            });
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(ProclusError::InvalidData {
                reason: "appended row contains a non-finite value".into(),
            });
        }
        let pid = self.next_pid;
        self.next_pid += 1;
        let pos = self.pids.len();
        self.flat.extend_from_slice(row);
        self.pids.push(pid);
        self.pos_of.insert(pid, pos);
        self.order.insert((sample_priority(self.seed, pid), pid));
        self.live.insert(pid);
        let evicted = self.enforce_window();
        Ok((pid, evicted))
    }

    /// Removes a live point by pid. The last row swaps into the hole, so
    /// only one position changes.
    pub fn retire(&mut self, pid: u64) -> Result<()> {
        let pos = self.pos_of.remove(&pid).ok_or(ProclusError::InvalidData {
            reason: format!("pid {pid} is not live"),
        })?;
        self.order.remove(&(sample_priority(self.seed, pid), pid));
        self.live.remove(&pid);
        let last = self.pids.len() - 1;
        if pos != last {
            let moved = self.pids[last];
            let (head, tail) = self.flat.split_at_mut(last * self.d);
            head[pos * self.d..(pos + 1) * self.d].copy_from_slice(&tail[..self.d]);
            self.pids[pos] = moved;
            self.pos_of.insert(moved, pos);
        }
        self.pids.pop();
        self.flat.truncate(last * self.d);
        Ok(())
    }

    /// Sets (or clears) the sliding-window capacity and evicts the oldest
    /// points down to it. Returns the evicted pids.
    pub fn set_window(&mut self, cap: Option<usize>) -> Result<Vec<u64>> {
        if cap == Some(0) {
            return Err(ProclusError::InvalidData {
                reason: "window capacity must be at least 1".into(),
            });
        }
        self.window = cap;
        Ok(self.enforce_window())
    }

    fn enforce_window(&mut self) -> Vec<u64> {
        let mut evicted = Vec::new();
        if let Some(cap) = self.window {
            while self.pids.len() > cap {
                let Some(&oldest) = self.live.iter().next() else {
                    break;
                };
                match self.retire(oldest) {
                    Ok(()) => evicted.push(oldest),
                    Err(_) => break,
                }
            }
        }
        evicted
    }

    /// The `size` sample members in priority order (smallest first).
    pub fn sample(&self, size: usize) -> Vec<u64> {
        self.order.iter().take(size).map(|&(_, pid)| pid).collect()
    }

    /// An immutable snapshot for one re-clustering epoch.
    pub fn snapshot(&self) -> Result<DataMatrix> {
        DataMatrix::from_flat(self.flat.clone(), self.pids.len(), self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| vec![(i % 13) as f32, (i % 7) as f32 * 0.5])
            .collect()
    }

    #[test]
    fn retire_swaps_last_row_into_hole() {
        let mut ds = StreamDataset::from_rows(&grid(5), 7).unwrap();
        let last_row = ds.row(4).to_vec();
        ds.retire(1).unwrap();
        assert_eq!(ds.n(), 4);
        assert_eq!(ds.pid_at(1), 4);
        assert_eq!(ds.row(1), &last_row[..]);
        assert_eq!(ds.pos_of(4), Some(1));
        assert_eq!(ds.pos_of(1), None);
        assert!(ds.retire(1).is_err(), "double retire is rejected");
    }

    #[test]
    fn sample_is_append_stable() {
        let mut ds = StreamDataset::from_rows(&grid(200), 42).unwrap();
        let before = ds.sample(20);
        for row in grid(2) {
            ds.append(&row).unwrap();
        }
        let after = ds.sample(20);
        let before_set: BTreeSet<u64> = before.iter().copied().collect();
        let after_set: BTreeSet<u64> = after.iter().copied().collect();
        let changed = before_set.symmetric_difference(&after_set).count();
        assert!(
            changed <= 4,
            "2 appends shifted {changed} of 20 sample slots"
        );
    }

    #[test]
    fn window_evicts_oldest_pids() {
        let mut ds = StreamDataset::from_rows(&grid(10), 3).unwrap();
        let evicted = ds.set_window(Some(8)).unwrap();
        assert_eq!(evicted, vec![0, 1]);
        let (pid, evicted) = ds.append(&[1.0, 2.0]).unwrap();
        assert_eq!(pid, 10);
        assert_eq!(evicted, vec![2]);
        assert_eq!(ds.n(), 8);
    }

    #[test]
    fn rejects_ragged_and_non_finite_rows() {
        let mut ds = StreamDataset::new(2, 0).unwrap();
        assert!(ds.append(&[1.0]).is_err());
        assert!(ds.append(&[1.0, f32::NAN]).is_err());
        assert!(ds.append(&[1.0, 2.0]).is_ok());
    }

    #[test]
    fn snapshot_matches_rows() {
        let rows = grid(6);
        let ds = StreamDataset::from_rows(&rows, 1).unwrap();
        let snap = ds.snapshot().unwrap();
        assert_eq!(snap.n(), 6);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(snap.row(i), &row[..]);
        }
    }
}
