//! Incremental append/retire projected clustering over a live dataset.
//!
//! PROCLUS is a batch algorithm: the FAST/FAST* engines of the companion
//! crates take a frozen matrix and pay `O(B·k·n)` distances per run. This
//! crate keeps a clustering *alive* next to a mutable dataset: points are
//! appended, retired, or evicted by a sliding window, and a re-clustering
//! after a small delta batch costs a small fraction of a from-scratch run
//! while producing the **exact same result** — same labels, medoids,
//! subspaces, and costs, bitwise.
//!
//! Three mechanisms make that possible (DESIGN.md §13):
//!
//! - **Delta-patched distance rows** ([`cache::RowStore`]): per-medoid
//!   euclidean rows are cached across epochs keyed by pid, permuted to the
//!   new position order at epoch start, and appended points are patched in
//!   as lazily-filled holes. The `H` sums behind the decision matrix `X`
//!   are folded fresh each epoch from those rows by `ΔL` shells (the
//!   point-delta generalization of the paper's Theorems 3.1/3.2), so no
//!   accumulated float state ever crosses an epoch.
//! - **Seeded assignment** ([`cache::AssignMemo`] +
//!   `Backend::assign_seeded`): labels are a pure per-point function of
//!   (medoid pids, subspaces), so a memo hit re-scans only new points.
//! - **Append-stable initialization** ([`dataset::StreamDataset`]):
//!   priority sampling and a hash-argmin first greedy pick keep the
//!   candidate set — and with it every downstream cache key — stable under
//!   small deltas, without consuming RNG draws.
//!
//! All three execution backends (CPU, single simulated GPU, sharded
//! multi-device) serve streaming through the same `Backend` trait;
//! shards patch their partitions locally and reduce at phase barriers.
//! When churn exceeds a staleness threshold the epoch escalates to a cold
//! pass — full price, identical result.

pub mod cache;
pub mod clusterer;
pub mod dataset;
mod driver;

pub use cache::{AssignMemo, RowStore};
pub use clusterer::{
    ReclusterMode, ReclusterReport, StreamBackendSpec, StreamState, StreamingClusterer,
};
pub use dataset::StreamDataset;
pub use driver::Costs;
