//! [`StreamingClusterer`]: the live-dataset front door of this crate.
//!
//! Owns a [`StreamDataset`], the cross-epoch caches, and the last
//! converged state. Mutations (`append` / `retire` / `set_window`) are
//! O(batch); [`StreamingClusterer::recluster`] replays the full PROCLUS
//! decision loop against the caches and returns a result bitwise equal to
//! a from-scratch run over the same live points — the caches only shrink
//! the number of distances recomputed. When accumulated churn exceeds the
//! staleness threshold (or no converged state exists yet) the epoch
//! escalates to a cold pass: caches are dropped and rebuilt, costing full
//! price but changing nothing about the result.
//!
//! [`StreamingClusterer::recluster_warm`] is the documented *approximate*
//! fast path: medoids and subspaces stay frozen and only assignment runs.

use std::collections::HashMap;

use gpu_sim::{Device, DeviceConfig};
use proclus::backend::{Backend, CpuBackend};
use proclus::par::Executor;
use proclus::{CancelToken, Clustering, DataMatrix, Params, ProclusError, Result};
use proclus_gpu::rows::RowCache;
use proclus_gpu::workspace::Workspace;
use proclus_gpu::{GpuBackend, GpuVariant, ShardedBackend};
use proclus_telemetry::{span, Recorder};

use crate::cache::{AssignMemo, RowStore};
use crate::dataset::StreamDataset;
use crate::driver::{assign_stream, run_stream_core, Costs};

/// How re-clusterings execute. GPU specs own their simulated device so the
/// device clock and allocator pool persist across epochs.
pub enum StreamBackendSpec {
    /// Host reference backend.
    Cpu {
        /// Thread pool for the host phases.
        exec: Executor,
    },
    /// Single simulated GPU; one workspace is allocated per epoch (n
    /// changes between epochs) and freed before the epoch returns.
    Gpu {
        /// The persistent simulated device.
        dev: Box<Device>,
    },
    /// Data-parallel shards over fresh deterministic devices built per
    /// epoch from `config`.
    Sharded {
        /// Device model for every shard.
        config: DeviceConfig,
        /// Number of shard devices.
        devices: usize,
    },
}

impl StreamBackendSpec {
    /// A single-GPU spec over a fresh deterministic device.
    pub fn gpu(config: DeviceConfig) -> Self {
        let mut dev = Device::new(config);
        dev.set_deterministic(true);
        Self::Gpu { dev: Box::new(dev) }
    }

    /// Backend name for telemetry and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Cpu { .. } => "cpu",
            Self::Gpu { .. } => "gpu",
            Self::Sharded { .. } => "sharded",
        }
    }
}

/// Which path a re-clustering took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReclusterMode {
    /// Caches were live: rows patched, assignments seeded.
    Incremental,
    /// Cold or escalated: caches dropped and rebuilt at full price.
    Full,
    /// Approximate refresh: frozen medoids/subspaces, assignment only.
    Warm,
}

impl ReclusterMode {
    /// Stable lowercase name (serve protocol, bench JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Incremental => "incremental",
            Self::Full => "full",
            Self::Warm => "warm",
        }
    }
}

/// Work and outcome accounting for one re-clustering.
#[derive(Debug, Clone)]
pub struct ReclusterReport {
    /// Which path the epoch took.
    pub mode: ReclusterMode,
    /// Live points at epoch start.
    pub n: usize,
    /// Full-dimensional euclidean distances computed.
    pub distances: u64,
    /// Manhattan segmental distances computed.
    pub segmental: u64,
    /// Medoid distance rows served from cache.
    pub dist_cache_hits: u64,
    /// Medoid distance rows built from scratch.
    pub dist_cache_misses: u64,
    /// Points folded through `ΔL` updates.
    pub delta_l_points: u64,
    /// Iterative-phase iterations.
    pub iterations: u64,
    /// Bad medoids replaced during the search.
    pub medoids_replaced: u64,
    /// Best pre-refinement cost.
    pub cost: f64,
    /// Cost after refinement.
    pub refined_cost: f64,
    /// Simulated device time consumed, when the backend has a clock.
    pub sim_us: Option<f64>,
}

/// The last converged clustering, addressed by pid so it stays meaningful
/// as positions shift under later mutations.
#[derive(Debug, Clone)]
pub struct StreamState {
    /// Medoid pids in slot order.
    pub medoid_pids: Vec<u64>,
    /// Chosen subspace per cluster.
    pub subspaces: Vec<Vec<usize>>,
    /// Label per live pid (`OUTLIER` for outliers).
    pub labels: HashMap<u64, i32>,
    /// Best pre-refinement cost.
    pub cost: f64,
    /// Cost after refinement.
    pub refined_cost: f64,
}

/// Builds the epoch's backend from the spec and hands it to `f`, freeing
/// device memory before returning. The second return value is the
/// simulated device time the epoch consumed.
fn with_backend<R>(
    spec: &mut StreamBackendSpec,
    snap: &DataMatrix,
    params: &Params,
    cancel: &CancelToken,
    f: impl FnOnce(&mut dyn Backend) -> Result<R>,
) -> Result<(R, Option<f64>)> {
    match spec {
        StreamBackendSpec::Cpu { exec } => {
            let mut b = CpuBackend::new(snap, *exec);
            Ok((f(&mut b)?, None))
        }
        StreamBackendSpec::Gpu { dev } => {
            let n = snap.n();
            let ws = Workspace::new(
                dev,
                snap,
                params.k,
                params.sample_size(n),
                params.num_potential_medoids(n),
            )?;
            let mut cache = RowCache::new_fast(n, snap.d(), params.k);
            let t0 = dev.elapsed_us();
            let out = {
                let mut b = GpuBackend::new(dev, &ws, &mut cache, GpuVariant::Fast);
                f(&mut b)
            };
            let sim = dev.elapsed_us() - t0;
            let freed = cache.free(dev).and_then(|()| ws.free(dev));
            let out = out?;
            freed?;
            Ok((out, Some(sim)))
        }
        StreamBackendSpec::Sharded { config, devices } => {
            let mut b = ShardedBackend::new(
                config,
                snap,
                *devices,
                params.k,
                params.sample_size(snap.n()),
                GpuVariant::Fast,
                cancel.clone(),
            )?;
            let out = f(&mut b);
            let sim = b.clock_us();
            let freed = b.free();
            let out = out?;
            freed?;
            Ok((out, sim))
        }
    }
}

/// A clustering that lives alongside its dataset. See the module docs.
pub struct StreamingClusterer {
    ds: StreamDataset,
    params: Params,
    spec: StreamBackendSpec,
    store: RowStore,
    memo: AssignMemo,
    state: Option<StreamState>,
    dirty: bool,
    /// Mutations (appends + retires + evictions) since the last epoch.
    churn: u64,
    /// Escalate to a cold epoch when `churn / n` exceeds this.
    staleness_threshold: f64,
}

impl StreamingClusterer {
    /// An empty clusterer of dimensionality `d`.
    pub fn new(d: usize, params: Params, spec: StreamBackendSpec) -> Result<Self> {
        params.validate_basic()?;
        let ds = StreamDataset::new(d, params.seed)?;
        Ok(Self {
            ds,
            params,
            spec,
            store: RowStore::new(),
            memo: AssignMemo::new(8),
            state: None,
            dirty: false,
            churn: 0,
            staleness_threshold: 0.5,
        })
    }

    /// A clusterer seeded from an initial batch of rows.
    pub fn from_rows(rows: &[Vec<f32>], params: Params, spec: StreamBackendSpec) -> Result<Self> {
        params.validate_basic()?;
        let seed = params.seed;
        Ok(Self {
            ds: StreamDataset::from_rows(rows, seed)?,
            params,
            spec,
            store: RowStore::new(),
            memo: AssignMemo::new(8),
            state: None,
            dirty: true,
            churn: 0,
            staleness_threshold: 0.5,
        })
    }

    /// Live point count.
    pub fn n(&self) -> usize {
        self.ds.n()
    }

    /// Dimensionality.
    pub fn d(&self) -> usize {
        self.ds.d()
    }

    /// The live dataset (read-only; mutate through the clusterer so churn
    /// is tracked).
    pub fn dataset(&self) -> &StreamDataset {
        &self.ds
    }

    /// The clustering parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// True when the dataset changed since the last re-clustering.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// The last converged state, if any epoch has run.
    pub fn state(&self) -> Option<&StreamState> {
        self.state.as_ref()
    }

    /// Sets the churn fraction beyond which epochs escalate to cold.
    pub fn set_staleness_threshold(&mut self, t: f64) {
        self.staleness_threshold = t.max(0.0);
    }

    /// Appends a point; returns its pid and any window-evicted pids.
    pub fn append(&mut self, row: &[f32]) -> Result<(u64, Vec<u64>)> {
        let (pid, evicted) = self.ds.append(row)?;
        self.dirty = true;
        self.churn += 1 + evicted.len() as u64;
        Ok((pid, evicted))
    }

    /// Retires a live point by pid.
    pub fn retire(&mut self, pid: u64) -> Result<()> {
        self.ds.retire(pid)?;
        self.dirty = true;
        self.churn += 1;
        Ok(())
    }

    /// Sets or clears the sliding window; returns evicted pids.
    pub fn set_window(&mut self, cap: Option<usize>) -> Result<Vec<u64>> {
        let evicted = self.ds.set_window(cap)?;
        if !evicted.is_empty() {
            self.dirty = true;
            self.churn += evicted.len() as u64;
        }
        Ok(evicted)
    }

    /// Re-runs the full decision loop over the live points, incrementally
    /// where the caches allow. The result is exactly the clustering a
    /// from-scratch run with the same params and seed would produce.
    pub fn recluster(
        &mut self,
        rec: &dyn Recorder,
        cancel: &CancelToken,
    ) -> Result<ReclusterReport> {
        let g = span(rec, "stream.recluster");
        let n = self.ds.n();
        let snap = self.ds.snapshot()?;
        self.params.validate(&snap)?;

        let stale = self.churn as f64 / n.max(1) as f64 > self.staleness_threshold;
        let mode = if self.state.is_none() || stale {
            self.store.clear();
            self.memo.clear();
            ReclusterMode::Full
        } else {
            ReclusterMode::Incremental
        };

        let ds = &self.ds;
        let store = &mut self.store;
        let memo = &mut self.memo;
        let params = &self.params;
        let ((clustering, medoid_pids, costs), sim_us) =
            with_backend(&mut self.spec, &snap, params, cancel, |b| {
                run_stream_core(ds, store, memo, b, params, rec, cancel)
            })?;

        self.install_state(&clustering, medoid_pids);
        self.dirty = false;
        self.churn = 0;
        drop(g);
        Ok(report(mode, n, &costs, &clustering, sim_us))
    }

    /// Approximate refresh: keeps the converged medoids and subspaces
    /// frozen and re-assigns the live points to them. Errors if no state
    /// exists or a medoid was retired — escalate to [`Self::recluster`].
    /// Unlike `recluster`, the result is *not* equal to a from-scratch
    /// run; churn keeps accumulating toward the staleness threshold.
    pub fn recluster_warm(
        &mut self,
        rec: &dyn Recorder,
        cancel: &CancelToken,
    ) -> Result<ReclusterReport> {
        let g = span(rec, "stream.recluster");
        let state = self.state.as_ref().ok_or(ProclusError::InvalidData {
            reason: "warm recluster needs a converged state".into(),
        })?;
        let medoid_pids = state.medoid_pids.clone();
        let dims = state.subspaces.clone();
        if let Some(&gone) = medoid_pids.iter().find(|&&p| self.ds.pos_of(p).is_none()) {
            return Err(ProclusError::InvalidData {
                reason: format!("medoid pid {gone} was retired; run a full recluster"),
            });
        }
        let n = self.ds.n();
        let snap = self.ds.snapshot()?;
        self.params.validate(&snap)?;

        let ds = &self.ds;
        let memo = &mut self.memo;
        let params = &self.params;
        let mut costs = Costs::default();
        let ((cost, labels), sim_us) = with_backend(&mut self.spec, &snap, params, cancel, |b| {
            cancel.check()?;
            let (sizes, labels) = assign_stream(ds, memo, b, &medoid_pids, &dims, &mut costs, rec)?;
            let cost = b.evaluate(&dims, &sizes, rec)?;
            Ok((cost, labels))
        })?;

        let labels_by_pid: HashMap<u64, i32> = labels
            .iter()
            .enumerate()
            .map(|(q, &l)| (self.ds.pid_at(q), l))
            .collect();
        let refined_cost = cost;
        self.state = Some(StreamState {
            medoid_pids,
            subspaces: dims,
            labels: labels_by_pid,
            cost,
            refined_cost,
        });
        self.dirty = false;
        drop(g);
        Ok(ReclusterReport {
            mode: ReclusterMode::Warm,
            n,
            distances: costs.distances,
            segmental: costs.segmental,
            dist_cache_hits: costs.dist_cache_hits,
            dist_cache_misses: costs.dist_cache_misses,
            delta_l_points: costs.delta_l_points,
            iterations: 0,
            medoids_replaced: 0,
            cost,
            refined_cost,
            sim_us,
        })
    }

    /// Label of a live pid from the last epoch, if both exist.
    pub fn label_of(&self, pid: u64) -> Option<i32> {
        self.state
            .as_ref()
            .and_then(|s| s.labels.get(&pid).copied())
    }

    fn install_state(&mut self, clustering: &Clustering, medoid_pids: Vec<u64>) {
        let labels = clustering
            .labels
            .iter()
            .enumerate()
            .map(|(q, &l)| (self.ds.pid_at(q), l))
            .collect();
        self.state = Some(StreamState {
            medoid_pids,
            subspaces: clustering.subspaces.clone(),
            labels,
            cost: clustering.cost,
            refined_cost: clustering.refined_cost,
        });
    }
}

fn report(
    mode: ReclusterMode,
    n: usize,
    costs: &Costs,
    clustering: &Clustering,
    sim_us: Option<f64>,
) -> ReclusterReport {
    ReclusterReport {
        mode,
        n,
        distances: costs.distances,
        segmental: costs.segmental,
        dist_cache_hits: costs.dist_cache_hits,
        dist_cache_misses: costs.dist_cache_misses,
        delta_l_points: costs.delta_l_points,
        iterations: costs.iterations,
        medoids_replaced: costs.medoids_replaced,
        cost: clustering.cost,
        refined_cost: clustering.refined_cost,
        sim_us,
    }
}
