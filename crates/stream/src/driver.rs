//! The streaming re-clustering driver: the medoid-search loop of Alg. 1
//! executed against the cross-epoch caches of [`crate::cache`].
//!
//! Structure mirrors `proclus::backend::run_core` phase for phase —
//! iterate (ComputeL → FindDimensions → AssignPoints → EvaluateClusters →
//! bad-medoid replacement) then refine — with three substitutions that
//! exploit the live dataset:
//!
//! 1. **ComputeL** folds the epoch-local `H` sums forward from cached
//!    per-medoid distance rows (the point-delta generalization of
//!    Theorems 3.1/3.2: `ΔL_i` between consecutive radii is found by
//!    scanning the cached row, and appended points are patched into the
//!    row first). A cached row costs only its holes; only genuinely new
//!    medoids pay a full `n`-distance row.
//! 2. **AssignPoints** seeds labels from the assignment memo — labels are
//!    a pure per-point function of (medoid pids, subspaces), so on a hit
//!    only new points rescan the medoids ([`Backend::assign_seeded`]).
//! 3. **Initialization** replaces the seeded random sample and RNG-driven
//!    first pick with append-stable hashes (see [`crate::dataset`]), so
//!    the greedy candidates barely move under small delta batches. The
//!    RNG is consumed only by the medoid draws (`MCur`, replacements),
//!    whose sequence is therefore identical between an incremental and a
//!    from-scratch run.
//!
//! Every value that feeds a decision — distance rows, `H`, `X`, `Z`,
//! cost — is either a cached pure per-point value or folded fresh this
//! epoch in canonical position order, so the driver's output is a pure
//! function of (live points, params, seed): an incremental re-clustering
//! is *bitwise equal* to a from-scratch one, and the caches only decide
//! how many distances are recomputed.

use std::collections::HashMap;

use proclus::backend::Backend;
use proclus::params::Params;
use proclus::phases::bad_medoids::{compute_bad_medoids, replace_bad_medoids};
use proclus::phases::find_dimensions::find_dimensions;
use proclus::result::Clustering;
use proclus::{CancelToken, ProclusError, ProclusRng, Result};
use proclus_telemetry::{attrs, counters, span, Recorder};

use crate::cache::{AssignMemo, RowStore};
use crate::dataset::{first_pick_priority, StreamDataset};

/// Work accounted by one re-clustering, mirrored into the telemetry
/// counters and reported back for the bench-gate ratio.
#[derive(Debug, Default, Clone, Copy)]
pub struct Costs {
    /// Full-dimensional euclidean distances computed (greedy + row fills).
    pub distances: u64,
    /// Manhattan segmental distances computed (assignment + outliers).
    pub segmental: u64,
    /// Medoid rows served from the cross-epoch cache.
    pub dist_cache_hits: u64,
    /// Medoid rows built from scratch.
    pub dist_cache_misses: u64,
    /// Points folded through `ΔL` updates.
    pub delta_l_points: u64,
    /// Iterative-phase iterations executed.
    pub iterations: u64,
    /// Bad medoids replaced.
    pub medoids_replaced: u64,
}

/// Epoch-local `H` state for one medoid: per-dimension Manhattan sums over
/// the sphere, advanced between radii by `ΔL` folds over the cached row.
struct EpochH {
    h: Vec<f64>,
    lsize: usize,
    /// Radius at the last fold (−1 sentinel: nothing accumulated yet).
    prev_delta: f32,
}

/// Advances `eh` from its previous radius to `cur` by folding the points
/// whose cached distance falls in the delta shell — the same membership
/// rule and `λ = ±1` signing as the FAST engines' `update_h_row`, executed
/// in ascending position order so every run folds identically.
fn advance_h(ds: &StreamDataset, row: &[f32], m_pos: usize, eh: &mut EpochH, cur: f32) -> u64 {
    if cur == eh.prev_delta {
        return 0;
    }
    let (lo, hi, lambda) = if cur > eh.prev_delta {
        (eh.prev_delta, cur, 1.0f64)
    } else {
        (cur, eh.prev_delta, -1.0f64)
    };
    // A leftover NaN hole would fail both shell comparisons and silently
    // drop its point from the sphere forever.
    proclus::distance_simd::debug_assert_finite(row, "advance_h: cached row");
    let d = ds.d();
    let m_row = ds.row(m_pos).to_vec();
    let mut dh = vec![0.0f64; d];
    let mut cnt = 0u64;
    for (q, &dist) in row.iter().enumerate() {
        if dist > lo && dist <= hi {
            cnt += 1;
            // Unrolled per-dimension fold; each dh[j] chain keeps ascending
            // position order, bitwise-equal to the scalar loop.
            proclus::distance_simd::fold_abs_diff(&mut dh, ds.row(q), &m_row);
        }
    }
    for (acc, v) in eh.h.iter_mut().zip(&dh) {
        *acc += lambda * v;
    }
    if lambda > 0.0 {
        eh.lsize += cnt as usize;
    } else {
        eh.lsize = eh.lsize.saturating_sub(cnt as usize);
    }
    eh.prev_delta = cur;
    cnt
}

/// Position of a live pid, as a driver-level invariant.
fn pos_of(ds: &StreamDataset, pid: u64) -> Result<usize> {
    ds.pos_of(pid).ok_or(ProclusError::InvalidData {
        reason: format!("pid {pid} vanished mid-epoch"),
    })
}

/// Opens a phase span and annotates it with the simulated device time the
/// phase consumed (backends without a clock get no annotation).
fn phase<T, B: Backend + ?Sized>(
    backend: &mut B,
    rec: &dyn Recorder,
    name: &'static str,
    f: impl FnOnce(&mut B) -> Result<T>,
) -> Result<T> {
    let g = span(rec, name);
    let t0 = backend.clock_us();
    let out = f(backend)?;
    if let (Some(a), Some(b)) = (t0, backend.clock_us()) {
        rec.annotate(g.id(), attrs::SIM_US, b - a);
    }
    Ok(out)
}

/// The greedy farthest-point pass over the priority sample, driven through
/// [`Backend::dist_subset`] so each step costs exactly `|S|` distances.
/// The first pick is the sample member with the smallest
/// [`first_pick_priority`]; every later pick maximizes the min-distance to
/// the picked set, ties to the lowest pid — both rules are stable under
/// small delta batches, unlike index-based draws.
fn greedy_stream<B: Backend + ?Sized>(
    ds: &StreamDataset,
    backend: &mut B,
    sample: &[u64],
    count: usize,
    seed: u64,
    costs: &mut Costs,
    rec: &dyn Recorder,
) -> Result<Vec<u64>> {
    let g = span(rec, "stream.greedy");
    let t0 = backend.clock_us();
    let sample_pos: Vec<usize> = sample
        .iter()
        .map(|&pid| pos_of(ds, pid))
        .collect::<Result<_>>()?;

    let mut first = 0usize;
    for (c, &pid) in sample.iter().enumerate() {
        let key = (first_pick_priority(seed, pid), pid);
        if c == 0 || key < (first_pick_priority(seed, sample[first]), sample[first]) {
            first = c;
        }
    }
    let mut picked: Vec<u64> = Vec::with_capacity(count);
    let mut mind = vec![f32::INFINITY; sample.len()];
    picked.push(sample[first]);
    mind[first] = f32::NEG_INFINITY;

    for _ in 1..count {
        let last = picked[picked.len() - 1];
        let dists = backend.dist_subset(pos_of(ds, last)?, &sample_pos, rec)?;
        // A NaN from the backend would fail `<` below and freeze `mind`.
        proclus::distance_simd::debug_assert_finite(&dists, "stream greedy: dist_subset");
        costs.distances += sample.len() as u64;
        rec.add(counters::DISTANCES_COMPUTED, sample.len() as u64);
        let mut best = 0usize;
        let mut have = false;
        for (c, &pid) in sample.iter().enumerate() {
            if dists[c] < mind[c] {
                mind[c] = dists[c];
            }
            if mind[c] == f32::NEG_INFINITY {
                continue;
            }
            if !have || mind[c] > mind[best] || (mind[c] == mind[best] && pid < sample[best]) {
                best = c;
                have = true;
            }
        }
        if !have {
            break; // sample exhausted: |S| < count
        }
        picked.push(sample[best]);
        mind[best] = f32::NEG_INFINITY;
    }
    if let (Some(a), Some(b)) = (t0, backend.clock_us()) {
        rec.annotate(g.id(), attrs::SIM_US, b - a);
    }
    Ok(picked)
}

/// ComputeL over the row store: ensures each current medoid's distance row
/// (cache hit + hole patch, or full build), derives the sphere radii from
/// the rows themselves, folds the epoch-local `H` forward, and assembles
/// the `k × d` decision matrix `X`.
#[allow(clippy::too_many_arguments)]
fn compute_x_stream<B: Backend + ?Sized>(
    ds: &StreamDataset,
    store: &mut RowStore,
    epoch_h: &mut HashMap<u64, EpochH>,
    backend: &mut B,
    medoid_pids: &[u64],
    costs: &mut Costs,
    rec: &dyn Recorder,
) -> Result<Vec<f64>> {
    let (n, d, k) = (ds.n(), ds.d(), medoid_pids.len());
    let med_pos: Vec<usize> = medoid_pids
        .iter()
        .map(|&pid| pos_of(ds, pid))
        .collect::<Result<_>>()?;
    let mut x = vec![0.0f64; k * d];
    for i in 0..k {
        let pid = medoid_pids[i];
        let m_pos = med_pos[i];
        let (row, fill) = store.ensure_row(pid, n, |positions| {
            backend.dist_subset(m_pos, positions, rec)
        })?;
        costs.distances += fill.computed;
        rec.add(counters::DISTANCES_COMPUTED, fill.computed);
        if fill.miss {
            costs.dist_cache_misses += 1;
            rec.add(counters::DIST_CACHE_MISSES, 1);
        } else {
            costs.dist_cache_hits += 1;
            rec.add(counters::DIST_CACHE_HITS, 1);
        }
        // δ_i: nearest other medoid, read straight off this medoid's row.
        proclus::distance_simd::debug_assert_finite(row, "compute_x_stream δ-scan");
        let mut delta = f32::INFINITY;
        for (j, &p) in med_pos.iter().enumerate() {
            if j != i && row[p] < delta {
                delta = row[p];
            }
        }
        let eh = epoch_h.entry(pid).or_insert_with(|| EpochH {
            h: vec![0.0f64; d],
            lsize: 0,
            prev_delta: -1.0,
        });
        let cnt = advance_h(ds, row, m_pos, eh, delta);
        costs.delta_l_points += cnt;
        rec.add(counters::DELTA_L_POINTS, cnt);
        if eh.lsize > 0 {
            for j in 0..d {
                x[i * d + j] = eh.h[j] / eh.lsize as f64;
            }
        }
    }
    Ok(x)
}

/// AssignPoints through the memo: seed surviving labels, rescan only the
/// rest, then refresh the memo from the complete assignment.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assign_stream<B: Backend + ?Sized>(
    ds: &StreamDataset,
    memo: &mut AssignMemo,
    backend: &mut B,
    medoid_pids: &[u64],
    dims: &[Vec<usize>],
    costs: &mut Costs,
    rec: &dyn Recorder,
) -> Result<(Vec<usize>, Vec<i32>)> {
    let n = ds.n();
    let k = medoid_pids.len();
    let med_pos: Vec<usize> = medoid_pids
        .iter()
        .map(|&pid| pos_of(ds, pid))
        .collect::<Result<_>>()?;
    let mut seed_labels = vec![0i32; n];
    let mut todo: Vec<usize> = Vec::new();
    match memo.lookup(medoid_pids, dims) {
        Some(known) => {
            for (q, lab) in seed_labels.iter_mut().enumerate() {
                match known.get(&ds.pid_at(q)) {
                    Some(&l) => *lab = l,
                    None => todo.push(q),
                }
            }
        }
        None => todo = (0..n).collect(),
    }
    costs.segmental += (todo.len() * k) as u64;
    rec.add(counters::SEGMENTAL_DISTANCES, (todo.len() * k) as u64);
    let sizes = backend.assign_seeded(&med_pos, dims, &seed_labels, &todo, rec)?;
    let labels = backend.labels()?;
    let by_pid: HashMap<u64, i32> = labels
        .iter()
        .enumerate()
        .map(|(q, &l)| (ds.pid_at(q), l))
        .collect();
    memo.insert(medoid_pids.to_vec(), dims.to_vec(), by_pid);
    Ok((sizes, labels))
}

/// One full streaming re-clustering epoch: greedy candidates over the
/// priority sample, the iterative medoid search, then refinement. Returns
/// the clustering (addressed by current positions), the medoid pids, and
/// the work accounting. The result is a pure function of (live points,
/// `params`, seed) — see the module docs.
pub(crate) fn run_stream_core<B: Backend + ?Sized>(
    ds: &StreamDataset,
    store: &mut RowStore,
    memo: &mut AssignMemo,
    backend: &mut B,
    params: &Params,
    rec: &dyn Recorder,
    cancel: &CancelToken,
) -> Result<(Clustering, Vec<u64>, Costs)> {
    let mut costs = Costs::default();
    let n = ds.n();
    let d = ds.d();
    let k = params.k;

    {
        let _g = span(rec, "stream.reconcile");
        store.reconcile(ds.pids());
    }

    let mut rng = ProclusRng::new(params.seed);
    let sample = ds.sample(params.sample_size(n));
    let m_pids = greedy_stream(
        ds,
        backend,
        &sample,
        params.num_potential_medoids(n),
        params.seed,
        &mut costs,
        rec,
    )?;
    let m_len = m_pids.len();

    let mut epoch_h: HashMap<u64, EpochH> = HashMap::new();
    let mut mcur = rng.sample_distinct(m_len, k);
    let mut best_cost = f64::INFINITY;
    let mut best_mcur = mcur.clone();
    let mut best_sizes: Vec<usize> = Vec::new();
    let mut itr = 0usize;
    let mut total = 0usize;
    let mut converged = false;
    let mut prev_labels: Option<Vec<i32>> = None;

    loop {
        cancel.check()?;
        let iter_span = span(rec, "stream.iteration");
        let medoid_pids: Vec<u64> = mcur.iter().map(|&mi| m_pids[mi]).collect();

        let x = {
            let _g = span(rec, "stream.compute_l");
            compute_x_stream(
                ds,
                store,
                &mut epoch_h,
                backend,
                &medoid_pids,
                &mut costs,
                rec,
            )?
        };
        let dims = {
            let _g = span(rec, "stream.find_dimensions");
            find_dimensions(&x[..k * d], k, d, params.l)
        };
        let (sizes, labels) = {
            let _g = span(rec, "stream.assign");
            assign_stream(ds, memo, backend, &medoid_pids, &dims, &mut costs, rec)?
        };
        let cost = phase(backend, rec, "stream.evaluate", |b| {
            b.evaluate(&dims, &sizes, rec)
        })?;
        total += 1;
        costs.iterations += 1;
        rec.add(counters::ITERATIONS, 1);

        if rec.enabled() {
            let changed = match &prev_labels {
                None => n as u64,
                Some(prev) => prev.iter().zip(&labels).filter(|(a, b)| a != b).count() as u64,
            };
            rec.add(counters::POINTS_REASSIGNED, changed);
        }
        prev_labels = Some(labels);

        if cost < best_cost {
            best_cost = cost;
            best_mcur = mcur.clone();
            best_sizes = sizes;
            backend.save_best()?;
            itr = 0;
        } else {
            itr += 1;
        }

        if itr >= params.itr_pat {
            converged = true;
            break;
        }
        if total >= params.max_total_iterations {
            break;
        }

        let g = span(rec, "stream.bad_medoids");
        let bad = compute_bad_medoids(&best_sizes, n, params.min_dev, params.bad_medoid_rule);
        costs.medoids_replaced += bad.len() as u64;
        rec.add(counters::MEDOIDS_REPLACED, bad.len() as u64);
        mcur = replace_bad_medoids(&best_mcur, &bad, m_len, &mut rng);
        drop(g);
        drop(iter_span);
    }

    // Refinement (Alg. 1 lines 15–19): L ← CBest, through the backend's
    // own best-label path exactly as the batch driver does.
    cancel.check()?;
    let refine_span = span(rec, "stream.refinement");
    let best_pids: Vec<u64> = best_mcur.iter().map(|&mi| m_pids[mi]).collect();
    let med_pos: Vec<usize> = best_pids
        .iter()
        .map(|&pid| pos_of(ds, pid))
        .collect::<Result<_>>()?;

    phase(backend, rec, "stream.compute_l", |b| {
        b.x_from_best(&med_pos, rec)
    })?;
    let dims = phase(backend, rec, "stream.find_dimensions", |b| {
        b.find_dims(k, params.l, rec)
    })?;
    let (sizes, _labels) = {
        let _g = span(rec, "stream.assign");
        assign_stream(ds, memo, backend, &best_pids, &dims, &mut costs, rec)?
    };
    let refined_cost = phase(backend, rec, "stream.evaluate", |b| {
        b.evaluate(&dims, &sizes, rec)
    })?;
    phase(backend, rec, "stream.remove_outliers", |b| {
        costs.segmental += (n * k) as u64;
        rec.add(counters::SEGMENTAL_DISTANCES, (n * k) as u64);
        b.remove_outliers(&med_pos, &dims, rec)
    })?;
    let labels = backend.labels()?;
    drop(refine_span);

    Ok((
        Clustering {
            medoids: med_pos,
            subspaces: dims,
            labels,
            cost: best_cost,
            refined_cost,
            iterations: total,
            converged,
        },
        best_pids,
        costs,
    ))
}
