//! Cross-epoch caches: per-medoid distance rows and memoized assignments.
//!
//! The only values this crate carries across re-clusterings are *per-point
//! euclidean distances* (one f32 per (medoid, point) pair) and *labels* —
//! both pure functions of individual points, never running sums. Sums
//! (`H`, `X`, cost) are folded fresh each epoch from the cached rows in
//! canonical position order, so an incremental re-clustering and a
//! from-scratch one execute bit-identical arithmetic; the caches only
//! change *which distances are recomputed*, not any float's value. That is
//! the exactness argument of DESIGN.md §13.
//!
//! Rows are keyed by pid and re-anchored to positions at the start of each
//! epoch by [`RowStore::reconcile`]: a pure permutation computed from the
//! stored column pids versus the dataset's current pid-by-position map.
//! Columns of appended points become NaN holes that are filled lazily —
//! paying `O(batch)` distances per *used* row instead of `O(n)` per medoid.

use std::collections::HashMap;

/// One cached medoid row: euclidean distances to every point, in position
/// order. `NaN` marks a hole (a point appended after the row was filled).
struct RowEntry {
    dist: Vec<f32>,
    last_used_epoch: u64,
}

/// Per-medoid distance rows carried across re-clusterings.
pub struct RowStore {
    rows: HashMap<u64, RowEntry>,
    /// pid of the point each column currently refers to.
    cache_pids: Vec<u64>,
    epoch: u64,
    /// Rows untouched for this many epochs are dropped at reconcile.
    max_idle_epochs: u64,
}

/// What [`RowStore::ensure_row`] had to do for a medoid row this epoch.
pub struct RowFill {
    /// Euclidean distances actually computed (0 on a clean hit).
    pub computed: u64,
    /// True if the row had to be built from scratch.
    pub miss: bool,
}

impl RowStore {
    /// An empty store.
    pub fn new() -> Self {
        Self {
            rows: HashMap::new(),
            cache_pids: Vec::new(),
            epoch: 0,
            max_idle_epochs: 3,
        }
    }

    /// Number of cached rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows are cached.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Drops every cached row (escalation to a cold re-clustering).
    pub fn clear(&mut self) {
        self.rows.clear();
        self.cache_pids.clear();
    }

    /// Starts an epoch: permutes every surviving row's columns from the
    /// stored pid order to `pids_now`, drops rows of retired medoids and
    /// rows idle past the retention horizon, and marks columns of appended
    /// points as holes.
    pub fn reconcile(&mut self, pids_now: &[u64]) {
        self.epoch += 1;
        let epoch = self.epoch;
        let idle = self.max_idle_epochs;
        let mut pos_now: HashMap<u64, usize> = HashMap::with_capacity(pids_now.len());
        for (q, &pid) in pids_now.iter().enumerate() {
            pos_now.insert(pid, q);
        }
        self.rows
            .retain(|pid, row| pos_now.contains_key(pid) && epoch - row.last_used_epoch <= idle);
        if self.cache_pids != pids_now {
            let old_pids = std::mem::take(&mut self.cache_pids);
            let mut old_pos: HashMap<u64, usize> = HashMap::with_capacity(old_pids.len());
            for (q, &pid) in old_pids.iter().enumerate() {
                old_pos.insert(pid, q);
            }
            for row in self.rows.values_mut() {
                let old = std::mem::take(&mut row.dist);
                row.dist = pids_now
                    .iter()
                    .map(|pid| match old_pos.get(pid) {
                        Some(&q) => old[q],
                        None => f32::NAN,
                    })
                    .collect();
            }
        }
        self.cache_pids = pids_now.to_vec();
    }

    /// Returns the complete distance row for medoid `pid`, computing what
    /// is missing through `compute(positions) -> distances`: the whole row
    /// on a miss, only the hole positions on a partial hit. The closure
    /// receives positions in ascending order and must return one euclidean
    /// distance per position.
    pub fn ensure_row<E>(
        &mut self,
        pid: u64,
        n: usize,
        mut compute: impl FnMut(&[usize]) -> Result<Vec<f32>, E>,
    ) -> Result<(&[f32], RowFill), E> {
        debug_assert_eq!(self.cache_pids.len(), n, "reconcile before ensure_row");
        let epoch = self.epoch;
        let (row, fill) = match self.rows.entry(pid) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                let all: Vec<usize> = (0..n).collect();
                let dist = compute(&all)?;
                proclus::distance_simd::debug_assert_finite(&dist, "RowStore::ensure_row (miss)");
                let row = slot.insert(RowEntry {
                    dist,
                    last_used_epoch: epoch,
                });
                (
                    row,
                    RowFill {
                        computed: n as u64,
                        miss: true,
                    },
                )
            }
            std::collections::hash_map::Entry::Occupied(slot) => {
                let row = slot.into_mut();
                let holes: Vec<usize> = row
                    .dist
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.is_nan())
                    .map(|(q, _)| q)
                    .collect();
                let filled = if holes.is_empty() {
                    Vec::new()
                } else {
                    compute(&holes)?
                };
                for (&q, &v) in holes.iter().zip(&filled) {
                    row.dist[q] = v;
                }
                // NaN doubles as the hole sentinel: a NaN *returned by the
                // fill* would survive as a permanent hole whose `dist <
                // delta` comparisons are silently false. Catch it at the
                // fill boundary (debug builds only).
                proclus::distance_simd::debug_assert_finite(&row.dist, "RowStore::ensure_row");
                row.last_used_epoch = epoch;
                (
                    row,
                    RowFill {
                        computed: holes.len() as u64,
                        miss: false,
                    },
                )
            }
        };
        Ok((&row.dist, fill))
    }
}

impl Default for RowStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Memoized assignments keyed by the exact decision inputs: the medoid
/// pids in slot order plus the chosen subspaces. Labels are a pure
/// per-point function of those inputs, so a hit seeds every surviving
/// point's label and only new points rescan the medoids.
pub struct AssignMemo {
    entries: Vec<(MemoKey, HashMap<u64, i32>)>,
    cap: usize,
}

type MemoKey = (Vec<u64>, Vec<Vec<usize>>);

impl AssignMemo {
    /// A memo holding at most `cap` label sets (LRU).
    pub fn new(cap: usize) -> Self {
        Self {
            entries: Vec::new(),
            cap: cap.max(1),
        }
    }

    /// Drops every memoized assignment.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of memoized assignments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the labels for `(medoid pids, dims)`, refreshing recency.
    pub fn lookup(
        &mut self,
        medoid_pids: &[u64],
        dims: &[Vec<usize>],
    ) -> Option<&HashMap<u64, i32>> {
        let idx = self
            .entries
            .iter()
            .position(|(key, _)| key.0 == medoid_pids && key.1 == dims)?;
        let entry = self.entries.remove(idx);
        self.entries.push(entry);
        self.entries.last().map(|(_, labels)| labels)
    }

    /// Stores the labels for `(medoid pids, dims)`, evicting the least
    /// recently used entry beyond capacity.
    pub fn insert(
        &mut self,
        medoid_pids: Vec<u64>,
        dims: Vec<Vec<usize>>,
        labels: HashMap<u64, i32>,
    ) {
        self.entries
            .retain(|(key, _)| !(key.0 == medoid_pids && key.1 == dims));
        self.entries.push(((medoid_pids, dims), labels));
        if self.entries.len() > self.cap {
            self.entries.remove(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconcile_permutes_and_punches_holes() {
        let mut store = RowStore::new();
        store.reconcile(&[10, 11, 12]);
        let (row, fill) = store
            .ensure_row::<()>(10, 3, |pos| Ok(pos.iter().map(|&q| q as f32).collect()))
            .unwrap();
        assert_eq!(row, &[0.0, 1.0, 2.0]);
        assert!(fill.miss);
        assert_eq!(fill.computed, 3);

        // Point 11 retires (12 swaps into its slot), 13 appends.
        store.reconcile(&[10, 12, 13]);
        let (row, fill) = store
            .ensure_row::<()>(10, 3, |pos| {
                assert_eq!(pos, &[2], "only the appended column is computed");
                Ok(vec![9.0])
            })
            .unwrap();
        assert!(!fill.miss);
        assert_eq!(fill.computed, 1);
        assert_eq!(row, &[0.0, 2.0, 9.0]);
    }

    #[test]
    fn retired_medoid_rows_are_dropped() {
        let mut store = RowStore::new();
        store.reconcile(&[1, 2]);
        store
            .ensure_row::<()>(1, 2, |pos| Ok(vec![0.5; pos.len()]))
            .unwrap();
        assert_eq!(store.len(), 1);
        store.reconcile(&[2]);
        assert!(store.is_empty(), "row of retired pid 1 survives");
    }

    #[test]
    fn idle_rows_expire_after_the_retention_horizon() {
        let mut store = RowStore::new();
        store.reconcile(&[1, 2]);
        store
            .ensure_row::<()>(1, 2, |pos| Ok(vec![0.5; pos.len()]))
            .unwrap();
        for _ in 0..3 {
            store.reconcile(&[1, 2]);
            assert_eq!(store.len(), 1);
        }
        store.reconcile(&[1, 2]);
        assert!(store.is_empty(), "idle row outlived the horizon");
    }

    #[test]
    fn memo_is_keyed_by_medoids_and_dims_with_lru_eviction() {
        let mut memo = AssignMemo::new(2);
        let labels = |v: i32| HashMap::from([(0u64, v)]);
        memo.insert(vec![1], vec![vec![0]], labels(1));
        memo.insert(vec![2], vec![vec![0]], labels(2));
        assert!(
            memo.lookup(&[1], &[vec![1]]).is_none(),
            "dims are part of the key"
        );
        assert_eq!(memo.lookup(&[1], &[vec![0]]).unwrap()[&0], 1);
        // 1 is now most recent; inserting a third evicts 2.
        memo.insert(vec![3], vec![vec![0]], labels(3));
        assert!(memo.lookup(&[2], &[vec![0]]).is_none());
        assert_eq!(memo.lookup(&[1], &[vec![0]]).unwrap()[&0], 1);
    }
}
