//! End-to-end service tests: batching wins, cancellation, deadlines,
//! admission control, panic isolation, and per-job telemetry.

use std::time::Duration;

use proclus::telemetry::counters;
use proclus::{Algo, Backend, Config, DataMatrix, Grid, Params, ProclusError, ReuseLevel, Setting};
use proclus_serve::{DatasetRef, JobRequest, ServeConfig, ServeError, Server};

fn blob_data(n: usize) -> DataMatrix {
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            let c = if i % 2 == 0 { 0.0f32 } else { 40.0 };
            let noise = |s: usize| ((i * s) % 13) as f32 * 0.05;
            vec![
                c + noise(3),
                c + noise(5),
                ((i * 7) % 100) as f32,
                ((i * 11) % 100) as f32,
            ]
        })
        .collect();
    DataMatrix::from_rows(&rows).unwrap()
}

fn params(k: usize, l: usize) -> Params {
    Params::new(k, l).with_a(15).with_b(4).with_seed(11)
}

fn paused_single_worker() -> ServeConfig {
    ServeConfig::default()
        .with_workers(1)
        .with_start_paused(true)
}

/// The acceptance criterion of the serving layer: a coalesced grid request
/// computes strictly fewer distances than the same jobs served one at a
/// time, and per-job telemetry accounts for the whole batch exactly once.
#[test]
fn batched_jobs_compute_strictly_fewer_distances_than_sequential() {
    let data = blob_data(400);
    let grid: Vec<(usize, usize)> = vec![(2, 2), (3, 3), (4, 2), (5, 3)];

    // Sequential reference: each (k, l) as an independent solo run.
    let mut sequential_distances = 0u64;
    for &(k, l) in &grid {
        let out = proclus::run(&data, &Config::new(params(k, l)).with_telemetry(true)).unwrap();
        sequential_distances += out.telemetry.unwrap().total(counters::DISTANCES_COMPUTED);
    }

    // Service: same jobs, submitted while paused so they coalesce.
    let server = Server::start(paused_single_worker()).expect("server starts");
    let dataset = DatasetRef::inline("blobs", data);
    let handles: Vec<_> = grid
        .iter()
        .map(|&(k, l)| {
            server
                .submit(JobRequest::new(dataset.clone(), params(k, l)))
                .unwrap()
        })
        .collect();
    server.resume();

    let mut batched_distances = 0u64;
    for h in &handles {
        let out = h.wait().unwrap();
        assert_eq!(out.batch_width, grid.len(), "all jobs share one grid run");
        let tel = out.telemetry.expect("per-job telemetry");
        assert_eq!(
            tel.spans.iter().filter(|s| s.name == "run").count(),
            1,
            "each job sees exactly its own run span"
        );
        batched_distances += tel.total(counters::DISTANCES_COMPUTED);
    }
    assert!(
        batched_distances < sequential_distances,
        "batched {batched_distances} must be < sequential {sequential_distances}"
    );

    let snap = server.metrics();
    assert_eq!(snap.total(counters::JOBS_ADMITTED), grid.len() as u64);
    assert_eq!(snap.total(counters::JOBS_BATCHED), grid.len() as u64);
    assert_eq!(snap.total(counters::JOBS_COMPLETED), grid.len() as u64);
    assert_eq!(snap.total(counters::BATCHES_EXECUTED), 1);
    assert_eq!(snap.total(counters::BATCH_WIDTH), grid.len() as u64);
    assert_eq!(snap.total(counters::DATASET_CACHE_MISSES), 1);
    assert_eq!(snap.total("service_time_us_count"), grid.len() as u64);
    proclus_telemetry::schema::validate_report_str(&snap.to_json()).unwrap();
    server.shutdown();
}

/// A batch of width w equals the equivalent grid run (largest-k first) job
/// for job: the service is a scheduler, not a different algorithm.
#[test]
fn batched_results_match_the_equivalent_grid_run() {
    let data = blob_data(400);
    let server = Server::start(paused_single_worker().with_reuse(ReuseLevel::SharedGreedy))
        .expect("server starts");
    let dataset = DatasetRef::inline("blobs", data.clone());
    // Submit smallest-k first to prove the scheduler reorders largest-first.
    let h2 = server
        .submit(JobRequest::new(dataset.clone(), params(2, 2)))
        .unwrap();
    let h4 = server
        .submit(JobRequest::new(dataset.clone(), params(4, 3)))
        .unwrap();
    server.resume();
    let c2 = h2.wait().unwrap().clustering;
    let c4 = h4.wait().unwrap().clustering;

    let grid = Grid::new(
        vec![Setting::new(4, 3), Setting::new(2, 2)],
        ReuseLevel::SharedGreedy,
    );
    let reference = proclus::run(&data, &Config::new(params(4, 3)).with_grid(grid)).unwrap();
    assert_eq!(reference.clusterings[0], c4);
    assert_eq!(reference.clusterings[1], c2);
    server.shutdown();
}

#[test]
fn cancelled_queued_job_is_skipped_without_blocking_the_queue() {
    let data = blob_data(300);
    let server = Server::start(paused_single_worker()).expect("server starts");
    let dataset = DatasetRef::inline("blobs", data);
    let keep = server
        .submit(JobRequest::new(dataset.clone(), params(2, 2)))
        .unwrap();
    let doomed = server
        .submit(JobRequest::new(dataset.clone(), params(3, 2)))
        .unwrap();
    doomed.cancel();
    server.resume();

    let err = doomed.wait().unwrap_err();
    assert!(err.is_cancelled(), "{err}");
    assert!(matches!(
        err,
        ServeError::Algorithm(ProclusError::Cancelled { .. })
    ));
    assert!(keep.wait().is_ok(), "other jobs unaffected");
    assert_eq!(server.metrics().total(counters::JOBS_CANCELLED), 1);
    assert_eq!(server.metrics().total(counters::JOBS_COMPLETED), 1);
    server.shutdown();
}

#[test]
fn deadline_exceeded_cancels_instead_of_hanging() {
    let data = blob_data(300);
    let server = Server::start(paused_single_worker()).expect("server starts");
    let dataset = DatasetRef::inline("blobs", data);
    let h = server
        .submit(JobRequest::new(dataset, params(3, 2)).with_deadline(Duration::from_nanos(1)))
        .unwrap();
    server.resume();
    let err = h
        .wait_timeout(Duration::from_secs(30))
        .expect("deadline job must terminate")
        .unwrap_err();
    assert!(err.is_cancelled(), "{err}");
    assert!(err.to_string().contains("deadline"), "{err}");
    server.shutdown();
}

#[test]
fn full_queue_rejects_with_backpressure() {
    let data = blob_data(200);
    let server =
        Server::start(paused_single_worker().with_queue_capacity(2)).expect("server starts");
    let dataset = DatasetRef::inline("blobs", data);
    server
        .submit(JobRequest::new(dataset.clone(), params(2, 2)))
        .unwrap();
    server
        .submit(JobRequest::new(dataset.clone(), params(3, 2)))
        .unwrap();
    let err = server
        .submit(JobRequest::new(dataset.clone(), params(4, 2)))
        .unwrap_err();
    assert!(matches!(err, ServeError::QueueFull { capacity: 2 }));
    assert_eq!(server.metrics().total(counters::JOBS_REJECTED), 1);
    // Backpressure, not deadlock: draining the queue frees capacity.
    server.resume();
    while server.queue_len() > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    server
        .submit(JobRequest::new(dataset, params(4, 2)))
        .unwrap();
    server.shutdown();
}

#[test]
fn invalid_params_are_rejected_at_admission() {
    let server = Server::start(ServeConfig::default().with_workers(1)).expect("server starts");
    let err = server
        .submit(JobRequest::new(
            DatasetRef::inline("x", blob_data(50)),
            Params::new(3, 1), // l < 2
        ))
        .unwrap_err();
    assert!(matches!(err, ServeError::InvalidRequest { .. }), "{err}");
    assert_eq!(server.metrics().total(counters::JOBS_REJECTED), 1);
    server.shutdown();
}

#[test]
fn worker_panic_is_isolated_and_the_worker_survives() {
    let data = blob_data(200);
    let server = Server::start(paused_single_worker()).expect("server starts");
    let dataset = DatasetRef::inline("blobs", data);
    let bomb = server
        .submit(JobRequest::new(dataset.clone(), params(2, 2)).with_worker_panic_for_test())
        .unwrap();
    let after = server
        .submit(JobRequest::new(dataset.clone(), params(3, 2)))
        .unwrap();
    server.resume();

    let err = bomb.wait().unwrap_err();
    assert!(
        matches!(&err, ServeError::WorkerPanicked { reason } if reason.contains("injected")),
        "{err}"
    );
    // The single worker survived the panic and served the next job.
    assert!(after.wait().is_ok());
    assert_eq!(server.metrics().total(counters::JOBS_FAILED), 1);
    assert_eq!(server.metrics().total(counters::JOBS_COMPLETED), 1);
    server.shutdown();
}

#[test]
fn missing_dataset_fails_the_job_not_the_server() {
    let server = Server::start(ServeConfig::default().with_workers(1)).expect("server starts");
    let h = server
        .submit(JobRequest::new(
            DatasetRef::path("/no/such/data.csv"),
            params(2, 2),
        ))
        .unwrap();
    let err = h.wait().unwrap_err();
    assert!(matches!(err, ServeError::Dataset { .. }), "{err}");
    // The server still serves valid jobs afterwards.
    let ok = server
        .submit(JobRequest::new(
            DatasetRef::inline("ok", blob_data(200)),
            params(2, 2),
        ))
        .unwrap();
    assert!(ok.wait().is_ok());
    server.shutdown();
}

#[test]
fn gpu_jobs_batch_and_report_device_telemetry() {
    let data = blob_data(400);
    let server = Server::start(paused_single_worker()).expect("server starts");
    let dataset = DatasetRef::inline("blobs", data);
    let handles: Vec<_> = [(2usize, 2usize), (3, 2)]
        .iter()
        .map(|&(k, l)| {
            server
                .submit(JobRequest::new(dataset.clone(), params(k, l)).with_backend(Backend::Gpu))
                .unwrap()
        })
        .collect();
    server.resume();
    for h in &handles {
        let out = h.wait().unwrap();
        assert_eq!(out.batch_width, 2);
        let tel = out.telemetry.unwrap();
        assert_eq!(tel.meta.get("backend").map(String::as_str), Some("gpu"));
        assert!(tel.find_span("assign_points").is_some());
    }
    server.shutdown();
}

#[test]
fn incompatible_jobs_run_solo_not_batched() {
    let data = blob_data(300);
    let server = Server::start(paused_single_worker()).expect("server starts");
    let dataset = DatasetRef::inline("blobs", data);
    let fast = server
        .submit(JobRequest::new(dataset.clone(), params(2, 2)))
        .unwrap();
    let baseline = server
        .submit(JobRequest::new(dataset.clone(), params(3, 2)).with_algo(Algo::Baseline))
        .unwrap();
    let star = server
        .submit(JobRequest::new(dataset.clone(), params(2, 2)).with_algo(Algo::FastStar))
        .unwrap();
    server.resume();
    for h in [&fast, &baseline, &star] {
        assert_eq!(h.wait().unwrap().batch_width, 1);
    }
    assert_eq!(server.metrics().total(counters::JOBS_BATCHED), 0);
    assert_eq!(server.metrics().total(counters::BATCHES_EXECUTED), 3);
    // One dataset load served all three runs.
    assert_eq!(server.metrics().total(counters::DATASET_CACHE_MISSES), 1);
    assert_eq!(server.metrics().total(counters::DATASET_CACHE_HITS), 2);
    server.shutdown();
}

#[test]
fn shutdown_drains_queued_jobs_before_exiting() {
    let data = blob_data(200);
    let server = Server::start(paused_single_worker()).expect("server starts");
    let dataset = DatasetRef::inline("blobs", data);
    let h = server
        .submit(JobRequest::new(dataset, params(2, 2)))
        .unwrap();
    server.resume();
    server.shutdown(); // blocks until workers drained the queue
    assert!(h.try_result().expect("resolved at shutdown").is_ok());
}
