//! Concurrency coverage for the dataset registry and the service locks:
//! a property test that the LRU byte budget is never exceeded, real-thread
//! races proving loads are single-flight, and (under `--features
//! lockcheck`) an end-to-end workload asserting the lock-order graph stays
//! clean. The exhaustive-interleaving models of the same protocols live in
//! `crates/verify/tests/model_checks.rs`; these tests pin the *real*
//! implementation to the modelled behaviour.

use std::sync::{Arc, Barrier};

use proclus::{DataMatrix, Params};
use proclus_serve::{DatasetRef, DatasetRegistry, JobRequest, ServeConfig, Server, ServiceMetrics};
use proptest::prelude::*;

fn matrix(n: usize, seed: f32) -> DataMatrix {
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| vec![i as f32 + seed, (i * 2) as f32, seed])
        .collect();
    DataMatrix::from_rows(&rows).unwrap()
}

proptest! {
    /// For any budget and any access sequence, the registry's cached bytes
    /// never exceed the budget — eviction keeps up, oversized datasets are
    /// served uncached, and re-inserts of an existing key do not double
    /// count.
    #[test]
    fn byte_budget_is_never_exceeded(
        budget in 64usize..4096,
        ops in prop::collection::vec((0usize..6, 1usize..40), 1..40),
    ) {
        let reg = DatasetRegistry::new(budget);
        let metrics = ServiceMetrics::default();
        for (idx, n) in ops {
            // Name keyed by content so a repeated name always resolves to
            // identical data (the registry trusts names).
            let r = DatasetRef::inline(format!("d{idx}-{n}"), matrix(n, idx as f32));
            let got = reg.get(&r, &metrics).unwrap();
            prop_assert_eq!(got.n(), n);
            prop_assert!(
                reg.cached_bytes() <= budget,
                "cached {} bytes with budget {}",
                reg.cached_bytes(),
                budget
            );
        }
    }
}

/// Many threads resolving the same (file-backed) dataset through one
/// barrier: single-flight election must perform exactly one load, and every
/// thread must get the same cached `Arc`.
#[test]
fn concurrent_loads_of_the_same_dataset_load_exactly_once() {
    let path =
        std::env::temp_dir().join(format!("proclus-singleflight-{}.csv", std::process::id()));
    let mut csv = String::new();
    for i in 0..50 {
        csv.push_str(&format!("{},{},{}\n", i, i * 2, i % 7));
    }
    std::fs::write(&path, csv).unwrap();

    let reg = Arc::new(DatasetRegistry::new(1 << 20));
    let metrics = Arc::new(ServiceMetrics::default());
    let threads = 8;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let reg = Arc::clone(&reg);
            let metrics = Arc::clone(&metrics);
            let barrier = Arc::clone(&barrier);
            let r = DatasetRef::path(&path);
            std::thread::spawn(move || {
                barrier.wait();
                reg.get(&r, &metrics).unwrap()
            })
        })
        .collect();
    let results: Vec<Arc<DataMatrix>> = handles
        .into_iter()
        .map(|h| h.join().expect("loader thread exits cleanly"))
        .collect();
    std::fs::remove_file(&path).ok();

    assert_eq!(
        reg.loads_performed(),
        1,
        "single-flight must elect exactly one loader"
    );
    for r in &results {
        assert!(
            Arc::ptr_eq(r, &results[0]),
            "every waiter must receive the one cached Arc"
        );
        assert_eq!(r.n(), 50);
    }
    let snap = metrics.snapshot();
    assert_eq!(snap.total("dataset_cache_misses"), 1);
    assert_eq!(
        snap.total("dataset_cache_hits"),
        (threads - 1) as u64,
        "the non-loading threads take cache hits"
    );
}

/// A failed load must release the single-flight claim so the next caller
/// can retry (and fail on its own terms) instead of deadlocking.
#[test]
fn failed_load_releases_the_single_flight_claim() {
    let reg = DatasetRegistry::new(1 << 20);
    let metrics = ServiceMetrics::default();
    let r = DatasetRef::path("/no/such/proclus-dataset.csv");
    assert!(reg.get(&r, &metrics).is_err());
    // A second attempt must reach the loader again, not hang on `pending`.
    assert!(reg.get(&r, &metrics).is_err());
    assert_eq!(reg.loads_performed(), 2);
}

/// With `lockcheck` on, a real mixed workload (batching, cancellation,
/// concurrent submitters, registry churn) must leave the global
/// acquisition-order graph free of findings: no order inversions, no
/// wait-while-holding, no long holds.
#[cfg(feature = "lockcheck")]
#[test]
fn service_workload_leaves_a_clean_lock_report() {
    proclus_verify::set_mode(proclus_verify::VerifyMode::Report);
    let server = Server::start(
        ServeConfig::default()
            .with_workers(2)
            .with_max_batch(4)
            .with_start_paused(true),
    )
    .expect("server starts");
    let dataset = DatasetRef::inline("lockcheck", matrix(200, 0.0));
    let handles: Vec<_> = (2..=5)
        .map(|k| {
            let params = Params::new(k, 2).with_a(10).with_b(3).with_seed(3);
            server
                .submit(JobRequest::new(dataset.clone(), params))
                .expect("admitted")
        })
        .collect();
    handles[3].cancel();
    server.resume();
    for h in &handles[..3] {
        h.wait().expect("job succeeds");
    }
    server.shutdown();

    let report = proclus_verify::lock_report();
    assert!(
        report.is_clean(),
        "lock-order findings in the serving layer:\n{}",
        report.to_json()
    );
    // The graph saw the real locks, i.e. the report is not vacuous.
    assert!(
        report.locks.iter().any(|l| l.name == "server.state"),
        "expected server.state in {:?}",
        report.locks
    );
}

// Keep the unused-import surface identical across feature flavors: the
// plain build exercises the same Server workload without the report.
#[cfg(not(feature = "lockcheck"))]
#[test]
fn service_workload_completes_without_lockcheck() {
    let server = Server::start(
        ServeConfig::default()
            .with_workers(2)
            .with_max_batch(4)
            .with_start_paused(true),
    )
    .expect("server starts");
    let dataset = DatasetRef::inline("plain", matrix(200, 0.0));
    let handles: Vec<_> = (2..=5)
        .map(|k| {
            let params = Params::new(k, 2).with_a(10).with_b(3).with_seed(3);
            server
                .submit(JobRequest::new(dataset.clone(), params))
                .expect("admitted")
        })
        .collect();
    server.resume();
    for h in &handles {
        h.wait().expect("job succeeds");
    }
    server.shutdown();
}

/// Concurrent jobs share the one process-wide work-stealing pool, so the
/// total number of pool threads never scales with the number of in-flight
/// jobs. Four simultaneous jobs on a dataset large enough to engage the
/// pool (n > the sequential crossover) must leave the pool at most
/// `cores - 1` workers — a per-job pool would show up as a multiple of
/// that, i.e. oversubscribed cores.
#[test]
fn concurrent_jobs_share_one_pool_and_do_not_oversubscribe_cores() {
    let server = Server::start(
        ServeConfig::default()
            .with_workers(4)
            .with_threads(0)
            .with_start_paused(true),
    )
    .expect("server starts");
    let dataset = DatasetRef::inline("pool-cap", matrix(2304, 0.0));
    let handles: Vec<_> = (2..=5)
        .map(|k| {
            let params = Params::new(k, 2).with_a(10).with_b(3).with_seed(7);
            server
                .submit(JobRequest::new(dataset.clone(), params))
                .expect("admitted")
        })
        .collect();
    server.resume();
    for h in &handles {
        h.wait().expect("job succeeds");
    }
    server.shutdown();

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let pool_threads = proclus::par::pool_thread_count();
    assert!(
        pool_threads < cores.max(2),
        "pool spawned {pool_threads} workers for 4 concurrent jobs on a \
         {cores}-core host — jobs are not sharing the global pool"
    );
    if cores >= 2 {
        assert!(
            pool_threads > 0,
            "the n > crossover dataset should have engaged the shared pool"
        );
    }
}
