//! The typed job API: what a client submits ([`JobRequest`]), the handle it
//! gets back ([`JobHandle`]), and what a finished job yields
//! ([`JobOutput`] / [`ServeError`]).

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use proclus_verify::{TrackedCondvar, TrackedMutex};

use proclus::telemetry::TelemetryReport;
use proclus::{Algo, Backend, CancelToken, Clustering, Params, ProclusError};

use crate::registry::DatasetRef;

/// Errors the service itself produces (admission control, dataset
/// resolution, worker failures) plus algorithm errors forwarded from the
/// clustering crates.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded queue is at capacity; the client should back off and
    /// retry (backpressure, not data loss).
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The server is shutting down and no longer admits jobs.
    ShuttingDown,
    /// The request failed cheap admission-time validation (e.g. `l < 2`).
    InvalidRequest {
        /// Human-readable rejection reason.
        reason: String,
    },
    /// The referenced dataset could not be loaded.
    Dataset {
        /// Human-readable load failure.
        reason: String,
    },
    /// The clustering run failed (invalid parameters against the data,
    /// device error, cancellation / deadline — see
    /// [`ProclusError::Cancelled`]).
    Algorithm(ProclusError),
    /// The worker executing the job panicked. The panic is isolated: the
    /// worker recovers and the queue keeps draining.
    WorkerPanicked {
        /// The panic payload, when it was a string.
        reason: String,
    },
    /// The OS refused to spawn a worker thread at startup.
    Spawn {
        /// The spawn failure, as reported by the OS.
        reason: String,
    },
    /// An internal invariant of the scheduler was violated — always a bug
    /// in the serving layer, never a caller error.
    Internal {
        /// Which invariant broke.
        reason: String,
    },
}

impl ServeError {
    /// True when the job ended because its token was cancelled or its
    /// deadline passed.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, ServeError::Algorithm(ProclusError::Cancelled { .. }))
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "queue full ({capacity} jobs); retry later")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            ServeError::Dataset { reason } => write!(f, "dataset error: {reason}"),
            ServeError::Algorithm(e) => write!(f, "{e}"),
            ServeError::WorkerPanicked { reason } => write!(f, "worker panicked: {reason}"),
            ServeError::Spawn { reason } => write!(f, "failed to spawn worker: {reason}"),
            ServeError::Internal { reason } => write!(f, "internal error: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ProclusError> for ServeError {
    fn from(e: ProclusError) -> Self {
        ServeError::Algorithm(e)
    }
}

/// One clustering request: which dataset, which parameters, which algorithm
/// variant and backend, and an optional deadline.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// The dataset to cluster (resolved through the server's registry).
    pub dataset: DatasetRef,
    /// Algorithm parameters. Jobs on the same dataset whose parameters
    /// differ only in `(k, l)` are coalesced into one multi-parameter grid
    /// run ([`Algo::Fast`] only).
    pub params: Params,
    /// Algorithm variant.
    pub algo: Algo,
    /// Execution backend.
    pub backend: Backend,
    /// Relative deadline from admission; when it passes, the job is
    /// cancelled cooperatively at the next phase boundary (or skipped if
    /// still queued).
    pub deadline: Option<Duration>,
    pub(crate) panic_for_test: bool,
}

impl JobRequest {
    /// A FAST-PROCLUS CPU job with no deadline.
    pub fn new(dataset: DatasetRef, params: Params) -> Self {
        Self {
            dataset,
            params,
            algo: Algo::Fast,
            backend: Backend::Cpu,
            deadline: None,
            panic_for_test: false,
        }
    }

    /// Sets the algorithm variant.
    pub fn with_algo(mut self, algo: Algo) -> Self {
        self.algo = algo;
        self
    }

    /// Sets the backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets a relative deadline (measured from admission).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Makes the executing worker panic instead of running the job — a test
    /// hook for the panic-isolation path. Not part of the public contract.
    #[doc(hidden)]
    pub fn with_worker_panic_for_test(mut self) -> Self {
        self.panic_for_test = true;
        self
    }
}

/// Opaque job identifier, unique per server instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// What a successfully completed job yields.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The clustering for this job's `(k, l)`.
    pub clustering: Clustering,
    /// Per-job telemetry: this job's `run` span subtree (plus, for the
    /// first job of a batch, the batch's shared initialization spans) with
    /// recomputed totals. `None` when the server runs with telemetry off.
    pub telemetry: Option<TelemetryReport>,
    /// How many jobs shared this job's grid run (1 = solo).
    pub batch_width: usize,
    /// Time spent queued before a worker picked the job up, microseconds.
    pub queue_wait_us: u64,
    /// Time the executing batch spent computing, microseconds.
    pub service_us: u64,
}

/// The terminal state of a job.
pub type JobResult = Result<JobOutput, ServeError>;

/// Shared state behind a [`JobHandle`]: the cancel token and the
/// result slot workers fulfil.
pub(crate) struct JobShared {
    pub(crate) id: JobId,
    pub(crate) cancel: CancelToken,
    slot: TrackedMutex<Option<JobResult>>,
    cv: TrackedCondvar,
}

impl JobShared {
    pub(crate) fn new(id: JobId, cancel: CancelToken) -> Self {
        Self {
            id,
            cancel,
            slot: TrackedMutex::new("job.slot", None),
            cv: TrackedCondvar::new("job.cv"),
        }
    }

    /// Stores the result (first write wins) and wakes all waiters.
    pub(crate) fn fulfil(&self, result: JobResult) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(result);
        }
        self.cv.notify_all();
    }
}

/// Client-side handle to a submitted job: await, poll, or cancel it.
/// Cloneable; all clones observe the same result.
#[derive(Clone)]
pub struct JobHandle {
    pub(crate) shared: Arc<JobShared>,
}

impl JobHandle {
    /// The job's identifier.
    pub fn id(&self) -> JobId {
        self.shared.id
    }

    /// Requests cooperative cancellation: a queued job is skipped, a
    /// running one stops at the next phase boundary. Idempotent.
    pub fn cancel(&self) {
        self.shared.cancel.cancel();
    }

    /// Non-blocking poll: `Some(result)` once the job reached a terminal
    /// state.
    pub fn try_result(&self) -> Option<JobResult> {
        self.shared.slot.lock().clone()
    }

    /// Blocks until the job finishes and returns its result.
    pub fn wait(&self) -> JobResult {
        let mut slot = self.shared.slot.lock();
        loop {
            if let Some(r) = slot.as_ref() {
                return r.clone();
            }
            slot = self.shared.cv.wait(slot);
        }
    }

    /// Blocks up to `timeout`; `None` if the job is still running then.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobResult> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.shared.slot.lock();
        loop {
            if let Some(r) = slot.as_ref() {
                return Some(r.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.shared.cv.wait_timeout(slot, deadline - now);
            slot = guard;
        }
    }

    /// True once the job reached a terminal state.
    pub fn is_finished(&self) -> bool {
        self.shared.slot.lock().is_some()
    }
}

impl fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.shared.id)
            .field("finished", &self.is_finished())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle() -> JobHandle {
        JobHandle {
            shared: Arc::new(JobShared::new(JobId(7), CancelToken::new())),
        }
    }

    #[test]
    fn fulfil_is_first_write_wins() {
        let h = handle();
        assert!(h.try_result().is_none());
        h.shared.fulfil(Err(ServeError::ShuttingDown));
        h.shared.fulfil(Err(ServeError::QueueFull { capacity: 1 }));
        assert!(matches!(h.wait(), Err(ServeError::ShuttingDown)));
        assert!(h.is_finished());
    }

    #[test]
    fn wait_timeout_returns_none_while_pending() {
        let h = handle();
        assert!(h.wait_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn cancel_trips_the_token() {
        let h = handle();
        h.cancel();
        assert!(h.shared.cancel.is_cancelled());
    }

    #[test]
    fn cancelled_classification() {
        let token = CancelToken::new();
        token.cancel();
        let cancelled = ServeError::Algorithm(token.check().unwrap_err());
        assert!(cancelled.is_cancelled());
        assert!(!ServeError::ShuttingDown.is_cancelled());
    }
}
