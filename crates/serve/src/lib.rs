//! # proclus-serve — a long-running clustering service
//!
//! Turns the one-shot `proclus::run` / `proclus_gpu::run_on` entry points
//! into an async service: clients submit typed jobs
//! (dataset × parameters × algorithm × backend × deadline) and get back a
//! [`JobHandle`] they can await, poll, or cancel.
//!
//! The service exists because of §3.1 of the paper: multi-parameter runs
//! over the *same* dataset can share the sample, the greedy medoid
//! candidates `M`, and the `Dist`/`H` caches. A request server is the
//! natural place to exploit that — queued jobs on the same dataset that
//! differ only in `(k, l)` are **coalesced into one grid run** by the
//! batching scheduler, so a burst of exploratory requests computes strictly
//! fewer distances than the same requests served one at a time.
//!
//! * [`Server`] — bounded queue, worker pool, batching scheduler,
//!   admission control, graceful shutdown.
//! * [`DatasetRegistry`] — datasets loaded/fingerprinted once, LRU-cached
//!   under a byte budget.
//! * [`ServiceMetrics`] — jobs admitted/rejected/batched, batch widths,
//!   cache hits/misses, queue-wait and service-time histograms, exported
//!   as the same schema-valid telemetry JSON the rest of the repo speaks.
//! * [`protocol`] — an LDJSON session protocol (stdin/stdout or TCP via
//!   the CLI's `proclus serve`).
//!
//! ## Example
//!
//! ```
//! use proclus::{DataMatrix, Params};
//! use proclus_serve::{DatasetRef, JobRequest, ServeConfig, Server};
//!
//! let rows: Vec<Vec<f32>> = (0..200)
//!     .map(|i| {
//!         let c = (i % 2) as f32 * 30.0;
//!         vec![c + (i % 5) as f32 * 0.1, (i % 11) as f32, c]
//!     })
//!     .collect();
//! let data = DataMatrix::from_rows(&rows).unwrap();
//!
//! let cfg = ServeConfig::default().with_workers(1).with_start_paused(true);
//! let server = Server::start(cfg).unwrap();
//! let dataset = DatasetRef::inline("demo", data);
//! let handles: Vec<_> = (2..=4)
//!     .map(|k| {
//!         let params = Params::new(k, 2).with_a(10).with_b(3).with_seed(7);
//!         server.submit(JobRequest::new(dataset.clone(), params)).unwrap()
//!     })
//!     .collect();
//! server.resume(); // the three queued jobs coalesce into one grid run
//! for h in &handles {
//!     let out = h.wait().unwrap();
//!     assert_eq!(out.batch_width, 3);
//! }
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod job;
mod metrics;
pub mod protocol;
mod registry;
mod server;
pub mod stream;

pub use job::{JobHandle, JobId, JobOutput, JobRequest, JobResult, ServeError};
pub use metrics::ServiceMetrics;
pub use registry::{fingerprint, DatasetRef, DatasetRegistry};
pub use server::{ServeConfig, Server};
pub use stream::StreamSessions;
