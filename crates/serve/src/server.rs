//! The server: a bounded job queue, a pool of worker threads, and the
//! batching scheduler that coalesces queued jobs on the same dataset into
//! one multi-parameter grid run (§3.1 reuse: shared sample, shared
//! `Dist`/`H` caches, shared greedy `M`).
//!
//! ## Scheduling
//!
//! A worker drains the queue head plus every queued job *compatible* with
//! it (same dataset, same backend, [`Algo::Fast`], parameters equal except
//! `(k, l)`), up to [`ServeConfig::max_batch`]. The batch executes as one
//! grid run ordered largest-`k` first — the order for which the shared
//! greedy pass (|M| = B·k_max) and warm-started medoids are valid — via the
//! skip-and-report `*_multi_outcomes` entry points, with one cancel token
//! per job. Baseline and FAST* jobs always run solo.
//!
//! ## Robustness
//!
//! * **Admission control**: the queue is bounded; a full queue rejects with
//!   [`ServeError::QueueFull`] (backpressure), never blocks the submitter.
//! * **Deadlines / cancellation**: each job's [`CancelToken`] carries the
//!   optional deadline; the core drivers check it at phase boundaries, and
//!   workers skip jobs already cancelled while queued.
//! * **Panic isolation**: batch execution runs under `catch_unwind`; a
//!   panicking job fails with [`ServeError::WorkerPanicked`], the worker's
//!   GPU device (if any) is discarded, and the worker keeps draining.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use proclus_verify::{TrackedCondvar, TrackedMutex};

use gpu_sim::{Device, DeviceConfig};
use proclus::multi_param::{ReuseLevel, Setting};
use proclus::par::Executor;
use proclus::telemetry::{NullRecorder, Recorder, SpanNode, Telemetry, TelemetryReport};
use proclus::{Algo, Backend, CancelToken, Config, DataMatrix, ProclusError};

use crate::job::{JobHandle, JobId, JobOutput, JobRequest, JobResult, JobShared, ServeError};
use crate::metrics::ServiceMetrics;
use crate::registry::DatasetRegistry;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing batches. Default 2.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected
    /// ([`ServeError::QueueFull`]). Default 64.
    pub queue_capacity: usize,
    /// Byte budget of the dataset LRU cache. Default 256 MiB.
    pub dataset_cache_bytes: usize,
    /// Maximum jobs coalesced into one grid run; 1 disables batching.
    /// Default 16.
    pub max_batch: usize,
    /// Reuse level for coalesced grid runs. Default
    /// [`ReuseLevel::SharedGreedy`]: one sample and one greedy pass serve
    /// the whole batch, so a batch of width ≥ 2 always computes strictly
    /// fewer initialization distances than the same jobs run solo.
    pub reuse: ReuseLevel,
    /// Start with workers paused (jobs queue but do not execute until
    /// [`Server::resume`]); useful for deterministic batching in tests and
    /// demos. Default false.
    pub start_paused: bool,
    /// Record per-job telemetry (span trees + counters). Default true.
    pub telemetry: bool,
    /// CPU threads a job may use, enforced by the shared work-stealing
    /// pool's grain scheduler (`0` = all cores). Jobs never build private
    /// executors: every job and the batching scheduler submit phases to
    /// the one process-wide pool, which interleaves them at phase
    /// granularity — concurrent jobs cannot oversubscribe cores. Default 0.
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            dataset_cache_bytes: 256 << 20,
            max_batch: 16,
            reuse: ReuseLevel::SharedGreedy,
            start_paused: false,
            telemetry: true,
            threads: 0,
        }
    }
}

impl ServeConfig {
    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the per-job CPU thread cap (`0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the queue capacity.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap.max(1);
        self
    }

    /// Sets the dataset cache byte budget.
    pub fn with_dataset_cache_bytes(mut self, bytes: usize) -> Self {
        self.dataset_cache_bytes = bytes;
        self
    }

    /// Sets the maximum batch width (1 disables coalescing).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the grid reuse level for coalesced runs.
    pub fn with_reuse(mut self, reuse: ReuseLevel) -> Self {
        self.reuse = reuse;
        self
    }

    /// Starts the server paused.
    pub fn with_start_paused(mut self, paused: bool) -> Self {
        self.start_paused = paused;
        self
    }

    /// Enables or disables per-job telemetry.
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }
}

struct Queued {
    spec: JobRequest,
    shared: Arc<JobShared>,
    enqueued: Instant,
}

struct State {
    queue: VecDeque<Queued>,
    paused: bool,
    shutdown: bool,
}

struct ServerInner {
    cfg: ServeConfig,
    registry: DatasetRegistry,
    metrics: ServiceMetrics,
    state: TrackedMutex<State>,
    cv: TrackedCondvar,
    next_id: AtomicU64,
}

/// A running clustering service. Dropping the server shuts it down
/// gracefully (queued jobs finish first).
pub struct Server {
    inner: Arc<ServerInner>,
    workers: TrackedMutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Starts the service with `cfg.workers` worker threads. Fails with
    /// [`ServeError::Spawn`] when the OS refuses a worker thread; workers
    /// already started are shut down and joined before the error returns.
    pub fn start(cfg: ServeConfig) -> Result<Self, ServeError> {
        let inner = Arc::new(ServerInner {
            registry: DatasetRegistry::new(cfg.dataset_cache_bytes),
            metrics: ServiceMetrics::default(),
            state: TrackedMutex::new(
                "server.state",
                State {
                    queue: VecDeque::new(),
                    paused: cfg.start_paused,
                    shutdown: false,
                },
            ),
            cv: TrackedCondvar::new("server.cv"),
            next_id: AtomicU64::new(0),
            cfg,
        });
        let count = inner.cfg.workers.max(1);
        let mut workers = Vec::with_capacity(count);
        for i in 0..count {
            let worker_inner = Arc::clone(&inner);
            // Long-lived service workers that sleep on the job queue; their
            // per-job compute shares the Executor pool, whose submit lock keeps
            // concurrent jobs from oversubscribing cores.
            // lint:allow(no_raw_scope) -- service worker, not data-parallel fan-out
            let spawned = std::thread::Builder::new()
                .name(format!("proclus-serve-{i}"))
                .spawn(move || worker_loop(&worker_inner));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    inner.state.lock().shutdown = true;
                    inner.cv.notify_all();
                    for w in workers.drain(..) {
                        let _ = w.join();
                    }
                    return Err(ServeError::Spawn {
                        reason: e.to_string(),
                    });
                }
            }
        }
        Ok(Self {
            inner,
            workers: TrackedMutex::new("server.workers", workers),
        })
    }

    /// Submits a job. Admission control happens here: requests failing
    /// cheap parameter validation, arriving after shutdown, or hitting the
    /// queue bound are rejected without being queued.
    pub fn submit(&self, req: JobRequest) -> Result<JobHandle, ServeError> {
        if let Err(e) = req.params.validate_basic() {
            self.inner.metrics.inc_jobs_rejected();
            return Err(ServeError::InvalidRequest {
                reason: e.to_string(),
            });
        }
        let mut st = self.inner.state.lock();
        if st.shutdown {
            self.inner.metrics.inc_jobs_rejected();
            return Err(ServeError::ShuttingDown);
        }
        if st.queue.len() >= self.inner.cfg.queue_capacity {
            self.inner.metrics.inc_jobs_rejected();
            return Err(ServeError::QueueFull {
                capacity: self.inner.cfg.queue_capacity,
            });
        }
        let id = JobId(self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        let cancel = match req.deadline {
            Some(d) => CancelToken::with_deadline(Instant::now() + d),
            None => CancelToken::new(),
        };
        let shared = Arc::new(JobShared::new(id, cancel));
        st.queue.push_back(Queued {
            spec: req,
            shared: Arc::clone(&shared),
            enqueued: Instant::now(),
        });
        self.inner.metrics.inc_jobs_admitted();
        drop(st);
        self.inner.cv.notify_one();
        Ok(JobHandle { shared })
    }

    /// Pauses the workers: queued jobs wait until [`Self::resume`].
    pub fn pause(&self) {
        self.inner.state.lock().paused = true;
    }

    /// Resumes paused workers.
    pub fn resume(&self) {
        self.inner.state.lock().paused = false;
        self.inner.cv.notify_all();
    }

    /// Current number of queued (not yet executing) jobs.
    pub fn queue_len(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    /// Point-in-time service metrics as a schema-valid telemetry report.
    pub fn metrics(&self) -> TelemetryReport {
        self.inner.metrics.snapshot()
    }

    /// The dataset registry (for cache inspection).
    pub fn registry(&self) -> &DatasetRegistry {
        &self.inner.registry
    }

    /// Graceful shutdown: stops admitting jobs, lets workers drain the
    /// queue, and joins them. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock();
            st.shutdown = true;
            st.paused = false;
        }
        self.inner.cv.notify_all();
        let mut ws = self.workers.lock();
        for w in ws.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Jobs are batchable together when they resolve to the same dataset, run
/// FAST-PROCLUS on the same backend, and differ only in `(k, l)`.
fn compatible(a: &JobRequest, b: &JobRequest) -> bool {
    if a.algo != Algo::Fast || b.algo != Algo::Fast {
        return false;
    }
    if a.backend != b.backend || a.dataset.key() != b.dataset.key() {
        return false;
    }
    if a.panic_for_test || b.panic_for_test {
        return false;
    }
    let mut p = b.params.clone();
    p.k = a.params.k;
    p.l = a.params.l;
    p == a.params
}

fn take_batch(queue: &mut VecDeque<Queued>, cfg: &ServeConfig) -> Vec<Queued> {
    let Some(first) = queue.pop_front() else {
        return Vec::new();
    };
    let mut batch = vec![first];
    if cfg.max_batch > 1 && batch[0].spec.algo == Algo::Fast {
        let mut i = 0;
        while i < queue.len() && batch.len() < cfg.max_batch {
            if compatible(&batch[0].spec, &queue[i].spec) {
                match queue.remove(i) {
                    Some(q) => batch.push(q),
                    None => break,
                }
            } else {
                i += 1;
            }
        }
    }
    batch
}

fn worker_loop(inner: &ServerInner) {
    let mut device: Option<Device> = None;
    loop {
        let batch = {
            let mut st = inner.state.lock();
            loop {
                if !st.queue.is_empty() && !st.paused {
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = inner.cv.wait(st);
            }
            take_batch(&mut st.queue, &inner.cfg)
        };
        execute_batch(inner, &mut device, batch);
    }
}

fn classify_and_fulfil(metrics: &ServiceMetrics, q: &Queued, result: JobResult) {
    match &result {
        Ok(_) => metrics.inc_jobs_completed(),
        Err(e) if e.is_cancelled() => metrics.inc_jobs_cancelled(),
        Err(_) => metrics.inc_jobs_failed(),
    }
    q.shared.fulfil(result);
}

fn execute_batch(inner: &ServerInner, device: &mut Option<Device>, batch: Vec<Queued>) {
    let metrics = &inner.metrics;
    let start = Instant::now();

    // Jobs cancelled (or past deadline) while queued are skipped before any
    // compute and do not count toward the executed batch.
    let mut live = Vec::with_capacity(batch.len());
    for q in batch {
        match q.shared.cancel.check() {
            Err(e) => classify_and_fulfil(metrics, &q, Err(ServeError::Algorithm(e))),
            Ok(()) => live.push(q),
        }
    }
    if live.is_empty() {
        return;
    }

    let width = live.len();
    metrics.record_batch(width as u64);
    if width >= 2 {
        metrics.add_jobs_batched(width as u64);
    }
    let queue_waits: Vec<u64> = live
        .iter()
        .map(|q| {
            let us = start.duration_since(q.enqueued).as_micros() as u64;
            metrics.record_queue_wait_us(us);
            us
        })
        .collect();

    let outcome = catch_unwind(AssertUnwindSafe(|| run_batch(inner, device, &live)));
    let service_us = start.elapsed().as_micros() as u64;
    match outcome {
        Ok(results) => {
            debug_assert_eq!(results.len(), live.len());
            for ((q, r), queue_wait_us) in live.iter().zip(results).zip(queue_waits) {
                metrics.record_service_us(service_us);
                let r = r.map(|mut out| {
                    out.batch_width = width;
                    out.queue_wait_us = queue_wait_us;
                    out.service_us = service_us;
                    out
                });
                classify_and_fulfil(metrics, q, r);
            }
        }
        Err(payload) => {
            // The worker's device state is unknown after a panic; discard
            // it so the next GPU job starts from a fresh device.
            *device = None;
            let reason = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            for q in &live {
                metrics.record_service_us(service_us);
                classify_and_fulfil(
                    metrics,
                    q,
                    Err(ServeError::WorkerPanicked {
                        reason: reason.clone(),
                    }),
                );
            }
        }
    }
}

fn run_batch(inner: &ServerInner, device: &mut Option<Device>, live: &[Queued]) -> Vec<JobResult> {
    let data = match inner.registry.get(&live[0].spec.dataset, &inner.metrics) {
        Ok(d) => d,
        Err(e) => return live.iter().map(|_| Err(e.clone())).collect(),
    };
    if live.len() == 1 {
        vec![run_solo(inner, device, &live[0], &data)]
    } else {
        run_grid(inner, device, live, &data)
    }
}

fn gpu_device(device: &mut Option<Device>) -> &mut Device {
    device.get_or_insert_with(|| Device::new(DeviceConfig::gtx_1660_ti()))
}

/// The executor serve jobs run on: the process-wide work-stealing pool,
/// capped at `cfg.threads` participants per phase (`0` = all cores). Jobs
/// never construct private thread pools — every job and the batching
/// scheduler submit phases to the one shared pool, which serializes them
/// at phase granularity, so concurrent jobs cannot oversubscribe cores no
/// matter how many service workers execute at once.
fn job_executor(cfg: &ServeConfig) -> Executor {
    match cfg.threads {
        0 => Executor::all_cores(),
        1 => Executor::Sequential,
        t => Executor::Parallel { threads: t },
    }
}

fn run_solo(
    inner: &ServerInner,
    device: &mut Option<Device>,
    q: &Queued,
    data: &DataMatrix,
) -> JobResult {
    if q.spec.panic_for_test {
        // Deliberate fault injection: the panic-isolation tests need a
        // panic that originates inside a worker.
        // lint:allow(no_panic) -- test-only fault injection path
        panic!("injected test panic (JobRequest::with_worker_panic_for_test)");
    }
    let config = Config::new(q.spec.params.clone())
        .with_algo(q.spec.algo)
        .with_backend(q.spec.backend)
        .with_telemetry(inner.cfg.telemetry)
        .with_threads(job_executor(&inner.cfg).threads());
    let out = match q.spec.backend {
        Backend::Cpu => proclus::run_with_cancel(data, &config, &q.shared.cancel),
        Backend::Gpu | Backend::Sharded => {
            proclus_gpu::run_on_with_cancel(gpu_device(device), data, &config, &q.shared.cancel)
        }
    };
    match out {
        Ok(o) => {
            let Some(clustering) = o.clusterings.into_iter().next() else {
                return Err(ServeError::Internal {
                    reason: "solo run returned no clustering".to_string(),
                });
            };
            let telemetry = o.telemetry.map(|mut t| {
                decorate_meta(&mut t, q, 1);
                t
            });
            Ok(JobOutput {
                clustering,
                telemetry,
                batch_width: 1,
                queue_wait_us: 0,
                service_us: 0,
            })
        }
        Err(e) => Err(ServeError::Algorithm(e)),
    }
}

fn run_grid(
    inner: &ServerInner,
    device: &mut Option<Device>,
    live: &[Queued],
    data: &DataMatrix,
) -> Vec<JobResult> {
    // Largest-k first: the order under which the shared greedy selection
    // (|M| = B·k_max) and warm-started medoid subsets are valid.
    let mut order: Vec<usize> = (0..live.len()).collect();
    order.sort_by(|&a, &b| live[b].spec.params.k.cmp(&live[a].spec.params.k));
    let base = live[order[0]].spec.params.clone();
    let settings: Vec<Setting> = order
        .iter()
        .map(|&i| Setting::new(live[i].spec.params.k, live[i].spec.params.l))
        .collect();
    let cancels: Vec<CancelToken> = order
        .iter()
        .map(|&i| live[i].shared.cancel.clone())
        .collect();

    let tel = inner.cfg.telemetry.then(Telemetry::new);
    let null = NullRecorder;
    let rec: &dyn Recorder = tel.as_ref().map_or(&null as &dyn Recorder, |t| t);

    let outcomes: Vec<Result<proclus::Clustering, ProclusError>> = match live[0].spec.backend {
        Backend::Cpu => {
            let exec = job_executor(&inner.cfg);
            proclus::fast_proclus_multi_outcomes(
                data,
                &base,
                &settings,
                inner.cfg.reuse,
                &exec,
                rec,
                &cancels,
            )
        }
        Backend::Gpu => {
            match proclus_gpu::gpu_fast_proclus_multi_outcomes(
                gpu_device(device),
                data,
                &base,
                &settings,
                inner.cfg.reuse,
                rec,
                &cancels,
            ) {
                Ok(o) => o,
                Err(e) => {
                    let e = ServeError::Algorithm(ProclusError::from(e));
                    return live.iter().map(|_| Err(e.clone())).collect();
                }
            }
        }
        Backend::Sharded => {
            match proclus_gpu::sharded_fast_proclus_multi_outcomes(
                gpu_device(device),
                data,
                &base,
                &settings,
                inner.cfg.reuse,
                rec,
                &cancels,
            ) {
                Ok(o) => o,
                Err(e) => {
                    let e = ServeError::Algorithm(ProclusError::from(e));
                    return live.iter().map(|_| Err(e.clone())).collect();
                }
            }
        }
    };

    let report = tel.map(Telemetry::finish);
    let mut results: Vec<Option<JobResult>> = (0..live.len()).map(|_| None).collect();
    for (j, outcome) in outcomes.into_iter().enumerate() {
        let i = order[j];
        results[i] = Some(match outcome {
            Ok(clustering) => {
                let telemetry = report.as_ref().map(|r| {
                    let mut t = per_job_report(r, j);
                    decorate_meta(&mut t, &live[i], live.len());
                    t
                });
                Ok(JobOutput {
                    clustering,
                    telemetry,
                    batch_width: live.len(),
                    queue_wait_us: 0,
                    service_us: 0,
                })
            }
            Err(e) => Err(ServeError::Algorithm(e)),
        });
    }
    results
        .into_iter()
        .map(|r| {
            r.unwrap_or_else(|| {
                Err(ServeError::Internal {
                    reason: "grid run dropped a setting outcome".to_string(),
                })
            })
        })
        .collect()
}

/// Stamps per-job identity into a (split) telemetry report.
fn decorate_meta(t: &mut TelemetryReport, q: &Queued, width: usize) {
    t.meta.insert("component".into(), "proclus-serve".into());
    t.meta.insert("job".into(), q.shared.id.to_string());
    t.meta.insert("dataset".into(), q.spec.dataset.key());
    t.meta.insert("algo".into(), q.spec.algo.name().into());
    t.meta
        .insert("backend".into(), q.spec.backend.name().into());
    t.meta.insert("k".into(), q.spec.params.k.to_string());
    t.meta.insert("l".into(), q.spec.params.l.to_string());
    t.meta.insert("seed".into(), q.spec.params.seed.to_string());
    t.meta.insert("batch_width".into(), width.to_string());
}

/// Splits one job's view out of a batch report: the `j`-th root `run` span
/// (the grid drivers open one per setting, in setting order) plus — for the
/// first setting only — the batch's shared root spans (e.g. the shared
/// greedy `initialization`), so batch overhead is attributed exactly once.
/// Totals are recomputed from the included subtrees.
fn per_job_report(batch: &TelemetryReport, j: usize) -> TelemetryReport {
    let mut spans: Vec<SpanNode> = Vec::new();
    if j == 0 {
        spans.extend(batch.spans.iter().filter(|s| s.name != "run").cloned());
    }
    if let Some(run) = batch.spans.iter().filter(|s| s.name == "run").nth(j) {
        spans.push(run.clone());
    }
    let mut totals = std::collections::BTreeMap::new();
    fn accumulate(n: &SpanNode, totals: &mut std::collections::BTreeMap<String, u64>) {
        for (k, v) in &n.counters {
            *totals.entry(k.clone()).or_insert(0) += v;
        }
        for c in &n.children {
            accumulate(c, totals);
        }
    }
    for s in &spans {
        accumulate(s, &mut totals);
    }
    TelemetryReport {
        meta: batch.meta.clone(),
        totals,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::DatasetRef;
    use proclus::Params;

    fn data() -> DataMatrix {
        let rows: Vec<Vec<f32>> = (0..200)
            .map(|i| {
                let c = (i % 2) as f32 * 30.0;
                vec![c + (i % 5) as f32 * 0.1, (i % 11) as f32, c]
            })
            .collect();
        DataMatrix::from_rows(&rows).unwrap()
    }

    fn req(k: usize) -> JobRequest {
        JobRequest::new(
            DatasetRef::inline("t", data()),
            Params::new(k, 2).with_a(10).with_b(3).with_seed(9),
        )
    }

    #[test]
    fn compatibility_requires_fast_same_dataset_same_tail_params() {
        let a = req(2);
        let b = req(3);
        assert!(compatible(&a, &b));
        assert!(!compatible(&a, &b.clone().with_algo(Algo::Baseline)));
        assert!(!compatible(&a, &b.clone().with_backend(Backend::Gpu)));
        let mut c = req(3);
        c.params = c.params.with_seed(1);
        assert!(!compatible(&a, &c));
        let mut d = req(3);
        d.dataset = DatasetRef::inline("other", data());
        assert!(!compatible(&a, &d));
    }

    #[test]
    fn take_batch_respects_max_batch_and_compatibility() {
        let mk = |r: JobRequest| Queued {
            shared: Arc::new(JobShared::new(JobId(0), CancelToken::new())),
            spec: r,
            enqueued: Instant::now(),
        };
        let mut q = VecDeque::from(vec![
            mk(req(2)),
            mk(req(3).with_algo(Algo::Baseline)), // incompatible, stays
            mk(req(4)),
            mk(req(5)),
        ]);
        let cfg = ServeConfig::default().with_max_batch(3);
        let batch = take_batch(&mut q, &cfg);
        assert_eq!(batch.len(), 3);
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].spec.algo, Algo::Baseline);
    }

    #[test]
    fn per_job_report_splits_runs_and_attributes_overhead_once() {
        use std::collections::BTreeMap;
        let span = |name: &str, count: u64| SpanNode {
            name: name.into(),
            start_us: 0.0,
            dur_us: 1.0,
            counters: BTreeMap::from([("distances_computed".to_string(), count)]),
            attrs: BTreeMap::new(),
            children: Vec::new(),
        };
        let batch = TelemetryReport {
            meta: BTreeMap::new(),
            totals: BTreeMap::new(),
            spans: vec![
                span("initialization", 100),
                span("run", 10),
                span("run", 20),
            ],
        };
        let first = per_job_report(&batch, 0);
        let second = per_job_report(&batch, 1);
        assert_eq!(first.total("distances_computed"), 110);
        assert_eq!(second.total("distances_computed"), 20);
        assert_eq!(
            first.total("distances_computed") + second.total("distances_computed"),
            130
        );
    }
}
