//! Service-level counters and latency histograms, exported as a
//! schema-valid [`TelemetryReport`] so one toolchain (the JSON schema, the
//! CI validator, the bench harness) reads both per-run and service
//! telemetry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use proclus_telemetry::{counters, Histogram, SpanNode, TelemetryReport};
use proclus_verify::TrackedMutex;

/// Atomic service counters plus queue-wait / service-time histograms.
///
/// Counters use the shared names in [`proclus_telemetry::counters`]; the
/// histograms export their count/mean/p50/p99/max as derived totals
/// (`queue_wait_us_p50`, `service_time_us_p99`, …).
pub struct ServiceMetrics {
    jobs_admitted: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_batched: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_cancelled: AtomicU64,
    batches_executed: AtomicU64,
    batch_width: AtomicU64,
    dataset_cache_hits: AtomicU64,
    dataset_cache_misses: AtomicU64,
    queue_wait_us: TrackedMutex<Histogram>,
    service_time_us: TrackedMutex<Histogram>,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self {
            jobs_admitted: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_batched: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            batches_executed: AtomicU64::new(0),
            batch_width: AtomicU64::new(0),
            dataset_cache_hits: AtomicU64::new(0),
            dataset_cache_misses: AtomicU64::new(0),
            queue_wait_us: TrackedMutex::new("metrics.queue_wait", Histogram::default()),
            service_time_us: TrackedMutex::new("metrics.service_time", Histogram::default()),
        }
    }
}

fn inc(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

impl ServiceMetrics {
    pub(crate) fn inc_jobs_admitted(&self) {
        inc(&self.jobs_admitted);
    }
    pub(crate) fn inc_jobs_rejected(&self) {
        inc(&self.jobs_rejected);
    }
    pub(crate) fn add_jobs_batched(&self, n: u64) {
        self.jobs_batched.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn inc_jobs_completed(&self) {
        inc(&self.jobs_completed);
    }
    pub(crate) fn inc_jobs_failed(&self) {
        inc(&self.jobs_failed);
    }
    pub(crate) fn inc_jobs_cancelled(&self) {
        inc(&self.jobs_cancelled);
    }
    pub(crate) fn record_batch(&self, width: u64) {
        inc(&self.batches_executed);
        self.batch_width.fetch_add(width, Ordering::Relaxed);
    }
    pub(crate) fn inc_dataset_cache_hits(&self) {
        inc(&self.dataset_cache_hits);
    }
    pub(crate) fn inc_dataset_cache_misses(&self) {
        inc(&self.dataset_cache_misses);
    }
    pub(crate) fn record_queue_wait_us(&self, us: u64) {
        self.queue_wait_us.lock().record(us);
    }
    pub(crate) fn record_service_us(&self, us: u64) {
        self.service_time_us.lock().record(us);
    }

    /// A point-in-time snapshot as a schema-valid report. Counter totals
    /// use the canonical names; histogram summaries are exported as
    /// `<name>_{count,mean,p50,p99,max}` totals; the single `service` span
    /// exists because the schema requires a non-empty span list.
    pub fn snapshot(&self) -> TelemetryReport {
        let mut totals = BTreeMap::new();
        let mut put = |name: &str, c: &AtomicU64| {
            totals.insert(name.to_string(), c.load(Ordering::Relaxed));
        };
        put(counters::JOBS_ADMITTED, &self.jobs_admitted);
        put(counters::JOBS_REJECTED, &self.jobs_rejected);
        put(counters::JOBS_BATCHED, &self.jobs_batched);
        put(counters::JOBS_COMPLETED, &self.jobs_completed);
        put(counters::JOBS_FAILED, &self.jobs_failed);
        put(counters::JOBS_CANCELLED, &self.jobs_cancelled);
        put(counters::BATCHES_EXECUTED, &self.batches_executed);
        put(counters::BATCH_WIDTH, &self.batch_width);
        put(counters::DATASET_CACHE_HITS, &self.dataset_cache_hits);
        put(counters::DATASET_CACHE_MISSES, &self.dataset_cache_misses);
        for (name, hist) in [
            ("queue_wait_us", &self.queue_wait_us),
            ("service_time_us", &self.service_time_us),
        ] {
            let h = hist.lock();
            totals.insert(format!("{name}_count"), h.count());
            totals.insert(format!("{name}_mean"), h.mean());
            totals.insert(format!("{name}_p50"), h.quantile(0.5));
            totals.insert(format!("{name}_p99"), h.quantile(0.99));
            totals.insert(format!("{name}_max"), h.max());
        }
        let mut meta = BTreeMap::new();
        meta.insert("component".to_string(), "proclus-serve".to_string());
        TelemetryReport {
            meta,
            totals,
            spans: vec![SpanNode {
                name: "service".to_string(),
                start_us: 0.0,
                dur_us: 0.0,
                counters: BTreeMap::new(),
                attrs: BTreeMap::new(),
                children: Vec::new(),
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_schema_valid_and_counts() {
        let m = ServiceMetrics::default();
        m.inc_jobs_admitted();
        m.inc_jobs_admitted();
        m.record_batch(2);
        m.add_jobs_batched(2);
        m.inc_jobs_completed();
        m.record_queue_wait_us(150);
        m.record_service_us(9000);
        let snap = m.snapshot();
        assert_eq!(snap.total(counters::JOBS_ADMITTED), 2);
        assert_eq!(snap.total(counters::BATCH_WIDTH), 2);
        assert_eq!(snap.total("queue_wait_us_count"), 1);
        assert!(snap.total("service_time_us_p99") >= 9000);
        proclus_telemetry::schema::validate_report_str(&snap.to_json()).unwrap();
    }
}
