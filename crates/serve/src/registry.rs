//! The dataset registry: datasets are loaded, normalized and fingerprinted
//! **once**, then served from an LRU cache bounded by a byte budget.
//!
//! The registry is what makes request batching possible: two jobs referring
//! to the same [`DatasetRef`] resolve to the *same* `Arc<DataMatrix>`, so
//! the scheduler can coalesce them into one multi-parameter grid run.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proclus::DataMatrix;
use proclus_verify::{TrackedCondvar, TrackedMutex};

use crate::job::ServeError;
use crate::metrics::ServiceMetrics;

/// How a job names its dataset.
#[derive(Debug, Clone)]
pub enum DatasetRef {
    /// A CSV file on disk, loaded via `datagen::io::load_csv` (no header,
    /// no label column) and min-max normalized, mirroring the CLI default.
    Path(PathBuf),
    /// An in-memory dataset registered under a client-chosen name. Used
    /// as-is (no normalization).
    Inline {
        /// The cache key; two inline refs with the same name are treated
        /// as the same dataset.
        name: String,
        /// The data itself.
        data: Arc<DataMatrix>,
    },
}

impl DatasetRef {
    /// A file-backed dataset reference.
    pub fn path(p: impl Into<PathBuf>) -> Self {
        DatasetRef::Path(p.into())
    }

    /// An in-memory dataset reference.
    pub fn inline(name: impl Into<String>, data: DataMatrix) -> Self {
        DatasetRef::Inline {
            name: name.into(),
            data: Arc::new(data),
        }
    }

    /// The canonical cache/batching key.
    pub fn key(&self) -> String {
        match self {
            DatasetRef::Path(p) => format!("path:{}", p.display()),
            DatasetRef::Inline { name, .. } => format!("inline:{name}"),
        }
    }
}

struct Entry {
    data: Arc<DataMatrix>,
    bytes: usize,
    fingerprint: u64,
    last_used: u64,
    /// Pin count: live (streaming) datasets pin their registry entry so
    /// byte-pressure eviction cannot drop the dataset under an open
    /// session. 0 = normal LRU lifecycle.
    pinned: u32,
}

struct Inner {
    map: HashMap<String, Entry>,
    bytes: usize,
    clock: u64,
}

/// Byte-budgeted LRU cache of resolved datasets.
///
/// Loads are **single-flight**: concurrent `get`s of the same key elect one
/// loader; the rest wait on `pending_cv` and then take the cache hit, so a
/// dataset is read, normalized and fingerprinted exactly once no matter how
/// many jobs referencing it arrive together.
pub struct DatasetRegistry {
    budget_bytes: usize,
    inner: TrackedMutex<Inner>,
    pending: TrackedMutex<HashSet<String>>,
    pending_cv: TrackedCondvar,
    loads: AtomicU64,
}

/// Releases a single-flight claim even when the load errors out.
struct PendingGuard<'a> {
    reg: &'a DatasetRegistry,
    key: &'a str,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.reg.pending.lock().remove(self.key);
        self.reg.pending_cv.notify_all();
    }
}

/// FNV-1a over the matrix shape and raw `f32` bits: a stable content
/// fingerprint for telemetry and cache diagnostics.
pub fn fingerprint(data: &DataMatrix) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&(data.n() as u64).to_le_bytes());
    eat(&(data.d() as u64).to_le_bytes());
    for v in data.flat() {
        eat(&v.to_bits().to_le_bytes());
    }
    h
}

fn bytes_of(data: &DataMatrix) -> usize {
    data.n() * data.d() * std::mem::size_of::<f32>()
}

/// Evicts unpinned LRU entries until `incoming` fits in the budget.
/// Pinned entries are never victims, so under enough pinned bytes the
/// budget is soft: the insert proceeds and pressure falls on whatever is
/// unpinned later.
fn evict_to_fit(inner: &mut Inner, budget: usize, incoming: usize) {
    while inner.bytes + incoming > budget {
        let victim = inner
            .map
            .iter()
            .filter(|(_, e)| e.pinned == 0)
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone());
        let Some(victim) = victim else {
            break;
        };
        if let Some(e) = inner.map.remove(&victim) {
            inner.bytes -= e.bytes;
        }
    }
}

impl DatasetRegistry {
    /// A registry whose cached datasets never exceed `budget_bytes`
    /// (a dataset larger than the whole budget is served but not cached).
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            inner: TrackedMutex::new(
                "registry.inner",
                Inner {
                    map: HashMap::new(),
                    bytes: 0,
                    clock: 0,
                },
            ),
            pending: TrackedMutex::new("registry.pending", HashSet::new()),
            pending_cv: TrackedCondvar::new("registry.pending_cv"),
            loads: AtomicU64::new(0),
        }
    }

    /// Resolves `r`, loading (and caching) it on first use. Cache hits and
    /// misses are counted into `metrics`.
    pub fn get(
        &self,
        r: &DatasetRef,
        metrics: &ServiceMetrics,
    ) -> Result<Arc<DataMatrix>, ServeError> {
        let key = r.key();
        loop {
            {
                let mut inner = self.inner.lock();
                inner.clock += 1;
                let clock = inner.clock;
                if let Some(e) = inner.map.get_mut(&key) {
                    e.last_used = clock;
                    metrics.inc_dataset_cache_hits();
                    return Ok(Arc::clone(&e.data));
                }
            }
            // Not cached. Claim the load, or wait for whoever already did —
            // when the loader finishes (or fails) we re-check the cache.
            let mut pending = self.pending.lock();
            if pending.insert(key.clone()) {
                break;
            }
            while pending.contains(&key) {
                pending = self.pending_cv.wait(pending);
            }
        }
        // This thread owns the load for `key`; the guard releases the claim
        // and wakes waiters on every exit path, including load errors.
        let claim = PendingGuard {
            reg: self,
            key: &key,
        };
        metrics.inc_dataset_cache_misses();
        self.loads.fetch_add(1, Ordering::Relaxed);
        // Load outside both locks: a slow disk read must not block lookups
        // of already-cached datasets.
        let data = match r {
            DatasetRef::Path(p) => {
                let loaded =
                    datagen::io::load_csv(p, false, None).map_err(|e| ServeError::Dataset {
                        reason: e.to_string(),
                    })?;
                let mut data = loaded.data;
                data.minmax_normalize();
                Arc::new(data)
            }
            DatasetRef::Inline { data, .. } => Arc::clone(data),
        };
        let bytes = bytes_of(&data);
        let fp = fingerprint(&data);
        {
            let mut inner = self.inner.lock();
            if bytes <= self.budget_bytes {
                evict_to_fit(&mut inner, self.budget_bytes, bytes);
                inner.clock += 1;
                let clock = inner.clock;
                let prev = inner.map.insert(
                    key.clone(),
                    Entry {
                        data: Arc::clone(&data),
                        bytes,
                        fingerprint: fp,
                        last_used: clock,
                        pinned: 0,
                    },
                );
                inner.bytes += bytes;
                if let Some(prev) = prev {
                    inner.bytes -= prev.bytes;
                }
            }
        }
        drop(claim);
        Ok(data)
    }

    /// Inserts or refreshes an entry under `r`'s key and pins it (a fresh
    /// insert starts at pin count 1; a refresh keeps the existing count).
    /// Streaming sessions call this after each re-clustering so the
    /// registry always serves the live snapshot and never evicts it.
    /// Returns the content fingerprint.
    pub fn put_pinned(&self, key: &str, data: Arc<DataMatrix>) -> u64 {
        let key = key.to_string();
        let bytes = bytes_of(&data);
        let fp = fingerprint(&data);
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(e) = inner.map.get_mut(&key) {
            let old_bytes = e.bytes;
            e.data = data;
            e.bytes = bytes;
            e.fingerprint = fp;
            e.last_used = clock;
            e.pinned = e.pinned.max(1);
            inner.bytes = inner.bytes - old_bytes + bytes;
        } else {
            evict_to_fit(&mut inner, self.budget_bytes, bytes);
            inner.map.insert(
                key,
                Entry {
                    data,
                    bytes,
                    fingerprint: fp,
                    last_used: clock,
                    pinned: 1,
                },
            );
            inner.bytes += bytes;
        }
        fp
    }

    /// Pins an already-cached entry against eviction. Returns false when
    /// the key is not cached (nothing to pin).
    pub fn pin(&self, key: &str) -> bool {
        let mut inner = self.inner.lock();
        match inner.map.get_mut(key) {
            Some(e) => {
                e.pinned += 1;
                true
            }
            None => false,
        }
    }

    /// Releases one pin; at zero the entry rejoins the LRU lifecycle.
    /// Returns false when the key is not cached.
    pub fn unpin(&self, key: &str) -> bool {
        let mut inner = self.inner.lock();
        match inner.map.get_mut(key) {
            Some(e) => {
                e.pinned = e.pinned.saturating_sub(1);
                true
            }
            None => false,
        }
    }

    /// Current pin count of a cached entry.
    pub fn pin_count(&self, key: &str) -> Option<u32> {
        self.inner.lock().map.get(key).map(|e| e.pinned)
    }

    /// Dataset loads actually performed (cache misses that did the work;
    /// single-flight waiters do not count). Diagnostic/test hook.
    pub fn loads_performed(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
    }

    /// Content fingerprint of a cached dataset (None when not cached).
    pub fn fingerprint_of(&self, r: &DatasetRef) -> Option<u64> {
        self.inner.lock().map.get(&r.key()).map(|e| e.fingerprint)
    }

    /// Number of cached datasets.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently held by cached datasets.
    pub fn cached_bytes(&self) -> usize {
        self.inner.lock().bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(n: usize, seed: f32) -> DataMatrix {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| vec![i as f32 + seed, (i * 2) as f32, seed])
            .collect();
        DataMatrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn inline_hits_after_first_miss() {
        let reg = DatasetRegistry::new(1 << 20);
        let m = ServiceMetrics::default();
        let r = DatasetRef::inline("a", matrix(10, 0.0));
        let d1 = reg.get(&r, &m).unwrap();
        let d2 = reg.get(&r, &m).unwrap();
        assert!(Arc::ptr_eq(&d1, &d2));
        assert_eq!(m.snapshot().total("dataset_cache_hits"), 1);
        assert_eq!(m.snapshot().total("dataset_cache_misses"), 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        // Each 10×3 matrix is 120 bytes; budget fits exactly two.
        let reg = DatasetRegistry::new(240);
        let m = ServiceMetrics::default();
        let a = DatasetRef::inline("a", matrix(10, 0.0));
        let b = DatasetRef::inline("b", matrix(10, 1.0));
        let c = DatasetRef::inline("c", matrix(10, 2.0));
        reg.get(&a, &m).unwrap();
        reg.get(&b, &m).unwrap();
        reg.get(&a, &m).unwrap(); // refresh a; b is now LRU
        reg.get(&c, &m).unwrap(); // evicts b
        assert_eq!(reg.len(), 2);
        assert!(reg.fingerprint_of(&b).is_none());
        assert!(reg.fingerprint_of(&a).is_some());
        assert!(reg.fingerprint_of(&c).is_some());
        assert!(reg.cached_bytes() <= 240);
    }

    #[test]
    fn oversized_dataset_is_served_uncached() {
        let reg = DatasetRegistry::new(8);
        let m = ServiceMetrics::default();
        let r = DatasetRef::inline("big", matrix(100, 0.0));
        assert_eq!(reg.get(&r, &m).unwrap().n(), 100);
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn missing_path_is_a_dataset_error() {
        let reg = DatasetRegistry::new(1 << 20);
        let m = ServiceMetrics::default();
        let err = reg
            .get(&DatasetRef::path("/no/such/file.csv"), &m)
            .unwrap_err();
        assert!(matches!(err, ServeError::Dataset { .. }), "{err}");
    }

    #[test]
    fn pinned_entries_survive_byte_pressure() {
        // Budget fits exactly two 120-byte matrices.
        let reg = DatasetRegistry::new(240);
        let m = ServiceMetrics::default();
        let live = DatasetRef::inline("live", matrix(10, 0.0));
        let a = DatasetRef::inline("a", matrix(10, 1.0));
        let b = DatasetRef::inline("b", matrix(10, 2.0));
        reg.get(&live, &m).unwrap();
        assert!(reg.pin(&live.key()), "pin of a cached entry");
        assert_eq!(reg.pin_count(&live.key()), Some(1));
        // Pressure: both inserts want the LRU slot `live` occupies.
        reg.get(&a, &m).unwrap();
        reg.get(&b, &m).unwrap();
        assert!(
            reg.fingerprint_of(&live).is_some(),
            "pinned live dataset was evicted under pressure"
        );
        assert!(
            reg.fingerprint_of(&a).is_none(),
            "pressure must fall on the unpinned entry"
        );
        // Unpin: the live entry rejoins the LRU order and can be evicted.
        assert!(reg.unpin(&live.key()));
        assert_eq!(reg.pin_count(&live.key()), Some(0));
        reg.get(&a, &m).unwrap();
        assert!(reg.fingerprint_of(&live).is_none(), "unpinned yet immortal");
    }

    #[test]
    fn put_pinned_refreshes_the_live_snapshot_in_place() {
        let reg = DatasetRegistry::new(1 << 20);
        let r = DatasetRef::inline("live", matrix(10, 0.0));
        let fp1 = reg.put_pinned(&r.key(), Arc::new(matrix(10, 0.0)));
        let fp2 = reg.put_pinned(&r.key(), Arc::new(matrix(12, 3.0)));
        assert_ne!(fp1, fp2, "refresh must re-fingerprint");
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.pin_count(&r.key()), Some(1), "refresh keeps the pin");
        assert_eq!(reg.cached_bytes(), 12 * 3 * 4);
        assert!(reg.unpin(&r.key()));
        assert!(!reg.pin("inline:ghost"));
    }

    #[test]
    fn fingerprints_distinguish_contents() {
        assert_ne!(fingerprint(&matrix(10, 0.0)), fingerprint(&matrix(10, 1.0)));
        assert_eq!(fingerprint(&matrix(10, 0.0)), fingerprint(&matrix(10, 0.0)));
    }
}
