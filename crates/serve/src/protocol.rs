//! LDJSON wire protocol: one JSON object per line, over any
//! `BufRead`/`Write` pair (the CLI wires stdin/stdout or a TCP socket).
//!
//! Requests (`op` selects the verb):
//!
//! ```text
//! {"op":"submit","dataset":"data.csv","k":8,"l":4,"a":20,"b":4,"seed":7,
//!  "algo":"fast","backend":"cpu","devices":1,"deadline_ms":5000,"labels":false}
//! {"op":"wait","id":0}        waits for job 0 and emits its result
//! {"op":"drain"}              waits for every pending job, one result line each
//! {"op":"cancel","id":0}      requests cooperative cancellation
//! {"op":"metrics"}            emits the service metrics report
//! {"op":"shutdown"}           acknowledges and ends the session
//! ```
//!
//! Streaming verbs (see [`crate::stream`]) drive per-connection live
//! datasets; mutations are O(batch) and `stream.query` re-clusters only
//! when the dataset is dirty:
//!
//! ```text
//! {"op":"stream.open","name":"live","d":3,"k":2,"l":2,"a":10,"b":3,"seed":7,"backend":"cpu"}
//! {"op":"stream.append","name":"live","rows":[[1,2,3],[4,5,6]]}
//! {"op":"stream.retire","name":"live","pids":[0]}
//! {"op":"stream.window","name":"live","cap":5000}
//! {"op":"stream.query","name":"live","labels":true,"deadline_ms":5000}
//! {"op":"stream.close","name":"live"}
//! ```
//!
//! Error lines carry a `job_kind` field (`"batch"` or `"stream"`) so
//! clients multiplexing both pipelines can route failures.
//!
//! Result lines echo the backend the job executed on (`cpu`, `gpu` or
//! `sharded`), so clients mixing backends can attribute each response:
//!
//! ```text
//! {"op":"result","id":0,"ok":true,"backend":"cpu","k":2,"cost":...,...}
//! {"op":"result","id":1,"ok":false,"backend":"gpu","cancelled":true,...}
//! ```
//!
//! Every request gets exactly one response line (`drain` gets one per
//! drained job plus a summary), so a client can pipeline submissions —
//! submitting several jobs before the first `wait`/`drain` is what lets the
//! scheduler coalesce them into one grid run.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::time::Duration;

use proclus::{Algo, Backend, Params, OUTLIER};
use proclus_telemetry::json::{self, escape, Value};

use crate::job::JobHandle;
use crate::registry::DatasetRef;
use crate::server::Server;
use crate::JobRequest;

struct Pending {
    handle: JobHandle,
    want_labels: bool,
    backend: Backend,
}

/// Protocol error line. `job_kind` attributes the failure to the batch
/// pipeline (`submit`/`wait`/...) or a streaming session (`stream.*`), so
/// clients multiplexing both on one connection can route errors.
fn err_line(id: Option<u64>, job_kind: &str, msg: &str) -> String {
    match id {
        Some(id) => format!(
            "{{\"op\":\"error\",\"id\":{id},\"job_kind\":\"{job_kind}\",\"error\":\"{}\"}}",
            escape(msg)
        ),
        None => format!(
            "{{\"op\":\"error\",\"job_kind\":\"{job_kind}\",\"error\":\"{}\"}}",
            escape(msg)
        ),
    }
}

fn get_usize(v: &Value, key: &str) -> Option<usize> {
    v.get(key).and_then(Value::as_f64).map(|f| f as usize)
}

fn parse_submit(v: &Value) -> Result<(JobRequest, bool), String> {
    let dataset = v
        .get("dataset")
        .and_then(Value::as_str)
        .ok_or("submit: missing string 'dataset'")?;
    let k = get_usize(v, "k").ok_or("submit: missing numeric 'k'")?;
    let l = get_usize(v, "l").ok_or("submit: missing numeric 'l'")?;
    let mut params = Params::new(k, l);
    if let Some(a) = get_usize(v, "a") {
        params = params.with_a(a);
    }
    if let Some(b) = get_usize(v, "b") {
        params = params.with_b(b);
    }
    if let Some(seed) = v.get("seed").and_then(Value::as_f64) {
        params = params.with_seed(seed as u64);
    }
    if let Some(devices) = get_usize(v, "devices") {
        let devices =
            std::num::NonZeroUsize::new(devices).ok_or("submit: 'devices' must be at least 1")?;
        params = params.with_devices(devices);
    }
    let mut req = JobRequest::new(DatasetRef::path(dataset), params);
    if let Some(algo) = v.get("algo").and_then(Value::as_str) {
        req = req.with_algo(Algo::parse(algo).ok_or_else(|| format!("unknown algo `{algo}`"))?);
    }
    if let Some(backend) = v.get("backend").and_then(Value::as_str) {
        req = req.with_backend(
            Backend::parse(backend).ok_or_else(|| format!("unknown backend `{backend}`"))?,
        );
    }
    if let Some(ms) = v.get("deadline_ms").and_then(Value::as_f64) {
        req = req.with_deadline(Duration::from_millis(ms as u64));
    }
    let want_labels = matches!(v.get("labels"), Some(Value::Bool(true)));
    Ok((req, want_labels))
}

fn result_line(id: u64, p: &Pending) -> String {
    match p.handle.wait() {
        Ok(out) => {
            let c = &out.clustering;
            let outliers = c.labels.iter().filter(|&&l| l == OUTLIER).count();
            let mut line = format!(
                "{{\"op\":\"result\",\"id\":{id},\"ok\":true,\"backend\":\"{}\",\"k\":{},\
                 \"cost\":{},\"outliers\":{outliers},\"batch_width\":{},\"queue_wait_us\":{},\
                 \"service_us\":{}",
                p.backend.name(),
                c.k(),
                json::fmt_f64(c.refined_cost),
                out.batch_width,
                out.queue_wait_us,
                out.service_us,
            );
            if p.want_labels {
                line.push_str(",\"labels\":[");
                for (i, l) in c.labels.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    let _ = write!(line, "{l}");
                }
                line.push(']');
            }
            if let Some(t) = &out.telemetry {
                line.push_str(",\"telemetry\":");
                line.push_str(&t.to_json());
            }
            line.push('}');
            line
        }
        Err(e) => format!(
            "{{\"op\":\"result\",\"id\":{id},\"ok\":false,\"backend\":\"{}\",\
             \"cancelled\":{},\"error\":\"{}\"}}",
            p.backend.name(),
            e.is_cancelled(),
            escape(&e.to_string())
        ),
    }
}

/// Serves one LDJSON session until `shutdown`, EOF, or an I/O error.
/// Jobs still pending at session end are drained (awaited, results
/// discarded) so their worker slots are not abandoned mid-flight.
pub fn serve_connection<R: BufRead, W: Write>(
    server: &Server,
    reader: R,
    writer: &mut W,
) -> std::io::Result<()> {
    let mut pending: HashMap<u64, Pending> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    let mut streams = crate::stream::StreamSessions::default();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let v = match json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                writeln!(
                    writer,
                    "{}",
                    err_line(None, "batch", &format!("bad json: {e}"))
                )?;
                continue;
            }
        };
        let op = v.get("op").and_then(Value::as_str).unwrap_or("");
        match op {
            "submit" => match parse_submit(&v) {
                Ok((req, want_labels)) => {
                    let backend = req.backend;
                    match server.submit(req) {
                        Ok(handle) => {
                            let id = handle.id().0;
                            writeln!(writer, "{{\"op\":\"submitted\",\"id\":{id}}}")?;
                            pending.insert(
                                id,
                                Pending {
                                    handle,
                                    want_labels,
                                    backend,
                                },
                            );
                            order.push(id);
                        }
                        Err(e) => writeln!(writer, "{}", err_line(None, "batch", &e.to_string()))?,
                    }
                }
                Err(e) => writeln!(writer, "{}", err_line(None, "batch", &e))?,
            },
            "wait" => {
                let id = v.get("id").and_then(Value::as_f64).map(|f| f as u64);
                match id.and_then(|id| pending.remove(&id).map(|p| (id, p))) {
                    Some((id, p)) => {
                        order.retain(|&o| o != id);
                        writeln!(writer, "{}", result_line(id, &p))?;
                    }
                    None => writeln!(
                        writer,
                        "{}",
                        err_line(id, "batch", "unknown or finished id")
                    )?,
                }
            }
            "drain" => {
                let drained = order.len();
                for id in order.drain(..) {
                    if let Some(p) = pending.remove(&id) {
                        writeln!(writer, "{}", result_line(id, &p))?;
                    }
                }
                writeln!(writer, "{{\"op\":\"drained\",\"jobs\":{drained}}}")?;
            }
            "cancel" => {
                let id = v.get("id").and_then(Value::as_f64).map(|f| f as u64);
                match id.and_then(|id| pending.get(&id).map(|p| (id, p))) {
                    Some((id, p)) => {
                        p.handle.cancel();
                        writeln!(writer, "{{\"op\":\"cancelled\",\"id\":{id}}}")?;
                    }
                    None => writeln!(
                        writer,
                        "{}",
                        err_line(id, "batch", "unknown or finished id")
                    )?,
                }
            }
            "stream.open" | "stream.append" | "stream.retire" | "stream.window"
            | "stream.query" | "stream.close" => {
                let out = match op {
                    "stream.open" => streams.open(server, &v),
                    "stream.append" => streams.append(&v),
                    "stream.retire" => streams.retire(&v),
                    "stream.window" => streams.window(&v),
                    "stream.query" => streams.query(server, &v),
                    _ => streams.close(server, &v),
                };
                match out {
                    Ok(line) => writeln!(writer, "{line}")?,
                    Err(e) => writeln!(writer, "{}", err_line(None, "stream", &e))?,
                }
            }
            "metrics" => writeln!(writer, "{}", server.metrics().to_json())?,
            "shutdown" => {
                writeln!(writer, "{{\"op\":\"bye\"}}")?;
                break;
            }
            other => writeln!(
                writer,
                "{}",
                err_line(None, "batch", &format!("unknown op `{other}`"))
            )?,
        }
        writer.flush()?;
    }
    for (_, p) in pending.drain() {
        let _ = p.handle.wait();
    }
    streams.close_all(server);
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use std::io::Cursor;
    use std::path::PathBuf;

    fn csv_fixture(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "proclus-serve-proto-{name}-{}.csv",
            std::process::id()
        ));
        let mut body = String::new();
        for i in 0..240 {
            let c = (i % 2) as f32 * 25.0;
            let _ = writeln!(body, "{},{},{}", c + (i % 5) as f32 * 0.1, i % 7, c);
        }
        std::fs::write(&path, body).unwrap();
        path
    }

    fn session(server: &Server, input: &str) -> Vec<String> {
        let mut out = Vec::new();
        serve_connection(server, Cursor::new(input.to_string()), &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn submit_drain_metrics_round_trip() {
        let path = csv_fixture("round");
        let server = Server::start(ServeConfig::default().with_workers(1)).expect("server starts");
        let input = format!(
            "{{\"op\":\"submit\",\"dataset\":\"{p}\",\"k\":2,\"l\":2,\"a\":10,\"b\":3,\"seed\":5}}\n\
             {{\"op\":\"submit\",\"dataset\":\"{p}\",\"k\":3,\"l\":2,\"a\":10,\"b\":3,\"seed\":5}}\n\
             {{\"op\":\"drain\"}}\n\
             {{\"op\":\"metrics\"}}\n\
             {{\"op\":\"shutdown\"}}\n",
            p = path.display()
        );
        let lines = session(&server, &input);
        assert!(lines[0].contains("\"op\":\"submitted\""), "{lines:?}");
        assert!(lines[1].contains("\"op\":\"submitted\""), "{lines:?}");
        assert!(lines[2].contains("\"ok\":true"), "{lines:?}");
        assert!(lines[3].contains("\"ok\":true"), "{lines:?}");
        assert!(lines[2].contains("\"backend\":\"cpu\""), "{lines:?}");
        assert!(lines[3].contains("\"backend\":\"cpu\""), "{lines:?}");
        assert!(lines[4].contains("\"op\":\"drained\""), "{lines:?}");
        proclus_telemetry::schema::validate_report_str(&lines[5]).unwrap();
        assert_eq!(lines[6], "{\"op\":\"bye\"}");
        // Every result line is itself valid JSON.
        for l in &lines[2..4] {
            json::parse(l).unwrap();
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_requests_get_error_lines_not_crashes() {
        let server = Server::start(ServeConfig::default().with_workers(1)).expect("server starts");
        let lines = session(
            &server,
            "not json\n\
             {\"op\":\"submit\",\"k\":2}\n\
             {\"op\":\"wait\",\"id\":99}\n\
             {\"op\":\"frobnicate\"}\n\
             {\"op\":\"submit\",\"dataset\":\"/no/file.csv\",\"k\":2,\"l\":1}\n",
        );
        assert!(lines[0].contains("bad json"), "{lines:?}");
        assert!(lines[1].contains("missing string 'dataset'"), "{lines:?}");
        assert!(lines[2].contains("unknown or finished id"), "{lines:?}");
        assert!(lines[3].contains("unknown op"), "{lines:?}");
        // l = 1 fails admission-time validation.
        assert!(lines[4].contains("invalid request"), "{lines:?}");
    }

    #[test]
    fn labels_are_included_on_request() {
        let path = csv_fixture("labels");
        let server = Server::start(ServeConfig::default().with_workers(1)).expect("server starts");
        let input = format!(
            "{{\"op\":\"submit\",\"dataset\":\"{p}\",\"k\":2,\"l\":2,\"a\":10,\"b\":3,\
             \"labels\":true}}\n{{\"op\":\"wait\",\"id\":0}}\n",
            p = path.display()
        );
        let lines = session(&server, &input);
        let result = json::parse(&lines[1]).unwrap();
        assert_eq!(result.get("labels").unwrap().as_array().unwrap().len(), 240);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn error_lines_carry_a_job_kind() {
        let server = Server::start(ServeConfig::default().with_workers(1)).expect("server starts");
        let lines = session(
            &server,
            "{\"op\":\"wait\",\"id\":99}\n\
             {\"op\":\"stream.append\",\"name\":\"ghost\",\"rows\":[[1]]}\n",
        );
        assert!(lines[0].contains("\"job_kind\":\"batch\""), "{lines:?}");
        assert!(lines[1].contains("\"job_kind\":\"stream\""), "{lines:?}");
    }

    #[test]
    fn stream_session_round_trip() {
        let server = Server::start(ServeConfig::default().with_workers(1)).expect("server starts");
        // 120 rows in two planted clusters, appended in three batches with
        // a query between each, then a window eviction and a final query.
        let mut rows = String::new();
        let batch = |lo: usize, hi: usize| {
            let mut s = String::from("[");
            for i in lo..hi {
                if i > lo {
                    s.push(',');
                }
                let c = (i % 2) as f32 * 25.0;
                let _ = write!(s, "[{},{},{}]", c + (i % 5) as f32 * 0.1, i % 7, c);
            }
            s.push(']');
            s
        };
        let _ = write!(
            rows,
            "{{\"op\":\"stream.open\",\"name\":\"live\",\"d\":3,\"k\":2,\"l\":2,\"a\":10,\
             \"b\":3,\"seed\":5}}\n\
             {{\"op\":\"stream.append\",\"name\":\"live\",\"rows\":{}}}\n\
             {{\"op\":\"stream.query\",\"name\":\"live\",\"deadline_ms\":60000}}\n\
             {{\"op\":\"stream.append\",\"name\":\"live\",\"rows\":{}}}\n\
             {{\"op\":\"stream.query\",\"name\":\"live\",\"labels\":true,\"telemetry\":true}}\n\
             {{\"op\":\"stream.query\",\"name\":\"live\"}}\n\
             {{\"op\":\"stream.window\",\"name\":\"live\",\"cap\":100}}\n\
             {{\"op\":\"stream.query\",\"name\":\"live\"}}\n\
             {{\"op\":\"stream.close\",\"name\":\"live\"}}\n",
            batch(0, 110),
            batch(110, 120),
        );
        let lines = session(&server, &rows);
        assert!(lines[0].contains("\"op\":\"stream.opened\""), "{lines:?}");
        assert!(lines[1].contains("\"n\":110"), "{lines:?}");
        assert!(lines[2].contains("\"mode\":\"full\""), "{lines:?}");
        assert!(lines[3].contains("\"n\":120"), "{lines:?}");
        // Second query after a small append runs incrementally and returns
        // labels as [pid,label] pairs plus schema-valid telemetry.
        assert!(lines[4].contains("\"mode\":\"incremental\""), "{lines:?}");
        assert!(lines[4].contains("\"labels\":[[0,"), "{lines:?}");
        let v = json::parse(&lines[4]).unwrap();
        assert_eq!(v.get("labels").unwrap().as_array().unwrap().len(), 120);
        // The telemetry report is the last field; slice it back out and
        // check it against the schema (stream.* span names included).
        let tel_at = lines[4]
            .find("\"telemetry\":")
            .expect("telemetry requested");
        let tel = &lines[4][tel_at + "\"telemetry\":".len()..lines[4].len() - 1];
        proclus_telemetry::schema::validate_report_str(tel).unwrap();
        // Clean query: no re-clustering.
        assert!(lines[5].contains("\"reclustered\":false"), "{lines:?}");
        // Window eviction dirties the dataset; the next query re-clusters.
        assert!(lines[6].contains("\"op\":\"stream.windowed\""), "{lines:?}");
        assert!(lines[7].contains("\"reclustered\":true"), "{lines:?}");
        assert!(lines[7].contains("\"n\":100"), "{lines:?}");
        assert!(lines[8].contains("\"op\":\"stream.closed\""), "{lines:?}");
        for l in &lines {
            json::parse(l).unwrap();
        }
    }

    #[test]
    fn live_datasets_stay_pinned_until_close() {
        let server = Server::start(ServeConfig::default().with_workers(1)).expect("server starts");
        let mut input = String::from(
            "{\"op\":\"stream.open\",\"name\":\"pinme\",\"d\":2,\"k\":2,\"l\":2,\"a\":6,\"b\":3}\n\
             {\"op\":\"stream.append\",\"name\":\"pinme\",\"rows\":[",
        );
        for i in 0..80 {
            if i > 0 {
                input.push(',');
            }
            let _ = write!(input, "[{},{}]", (i % 2) * 20, i % 9);
        }
        input.push_str(
            "]}\n{\"op\":\"stream.query\",\"name\":\"pinme\"}\n\
             {\"op\":\"stream.close\",\"name\":\"pinme\"}\n",
        );
        let lines = session(&server, &input);
        assert!(lines[2].contains("\"ok\":true"), "{lines:?}");
        // After the query the snapshot is registered and pinned; close
        // released the pin (count 0) but left the entry cached.
        assert_eq!(server.registry().pin_count("stream:pinme"), Some(0));
    }

    #[test]
    fn result_lines_echo_the_requested_backend() {
        let path = csv_fixture("backend_echo");
        let server = Server::start(ServeConfig::default().with_workers(1)).expect("server starts");
        let input = format!(
            "{{\"op\":\"submit\",\"dataset\":\"{p}\",\"k\":2,\"l\":2,\"a\":10,\"b\":3,\
             \"backend\":\"sharded\",\"devices\":2}}\n\
             {{\"op\":\"submit\",\"dataset\":\"{p}\",\"k\":2,\"l\":2,\"a\":10,\"b\":3,\
             \"backend\":\"gpu\"}}\n\
             {{\"op\":\"wait\",\"id\":0}}\n{{\"op\":\"wait\",\"id\":1}}\n",
            p = path.display()
        );
        let lines = session(&server, &input);
        assert!(lines[2].contains("\"backend\":\"sharded\""), "{lines:?}");
        assert!(lines[3].contains("\"backend\":\"gpu\""), "{lines:?}");
        for l in &lines[2..4] {
            let v = json::parse(l).unwrap();
            assert!(matches!(v.get("ok"), Some(Value::Bool(true))), "{l}");
        }
        std::fs::remove_file(path).ok();
    }
}
