//! LDJSON wire protocol: one JSON object per line, over any
//! `BufRead`/`Write` pair (the CLI wires stdin/stdout or a TCP socket).
//!
//! Requests (`op` selects the verb):
//!
//! ```text
//! {"op":"submit","dataset":"data.csv","k":8,"l":4,"a":20,"b":4,"seed":7,
//!  "algo":"fast","backend":"cpu","devices":1,"deadline_ms":5000,"labels":false}
//! {"op":"wait","id":0}        waits for job 0 and emits its result
//! {"op":"drain"}              waits for every pending job, one result line each
//! {"op":"cancel","id":0}      requests cooperative cancellation
//! {"op":"metrics"}            emits the service metrics report
//! {"op":"shutdown"}           acknowledges and ends the session
//! ```
//!
//! Result lines echo the backend the job executed on (`cpu`, `gpu` or
//! `sharded`), so clients mixing backends can attribute each response:
//!
//! ```text
//! {"op":"result","id":0,"ok":true,"backend":"cpu","k":2,"cost":...,...}
//! {"op":"result","id":1,"ok":false,"backend":"gpu","cancelled":true,...}
//! ```
//!
//! Every request gets exactly one response line (`drain` gets one per
//! drained job plus a summary), so a client can pipeline submissions —
//! submitting several jobs before the first `wait`/`drain` is what lets the
//! scheduler coalesce them into one grid run.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::time::Duration;

use proclus::{Algo, Backend, Params, OUTLIER};
use proclus_telemetry::json::{self, escape, Value};

use crate::job::JobHandle;
use crate::registry::DatasetRef;
use crate::server::Server;
use crate::JobRequest;

struct Pending {
    handle: JobHandle,
    want_labels: bool,
    backend: Backend,
}

fn err_line(id: Option<u64>, msg: &str) -> String {
    match id {
        Some(id) => format!(
            "{{\"op\":\"error\",\"id\":{id},\"error\":\"{}\"}}",
            escape(msg)
        ),
        None => format!("{{\"op\":\"error\",\"error\":\"{}\"}}", escape(msg)),
    }
}

fn get_usize(v: &Value, key: &str) -> Option<usize> {
    v.get(key).and_then(Value::as_f64).map(|f| f as usize)
}

fn parse_submit(v: &Value) -> Result<(JobRequest, bool), String> {
    let dataset = v
        .get("dataset")
        .and_then(Value::as_str)
        .ok_or("submit: missing string 'dataset'")?;
    let k = get_usize(v, "k").ok_or("submit: missing numeric 'k'")?;
    let l = get_usize(v, "l").ok_or("submit: missing numeric 'l'")?;
    let mut params = Params::new(k, l);
    if let Some(a) = get_usize(v, "a") {
        params = params.with_a(a);
    }
    if let Some(b) = get_usize(v, "b") {
        params = params.with_b(b);
    }
    if let Some(seed) = v.get("seed").and_then(Value::as_f64) {
        params = params.with_seed(seed as u64);
    }
    if let Some(devices) = get_usize(v, "devices") {
        let devices =
            std::num::NonZeroUsize::new(devices).ok_or("submit: 'devices' must be at least 1")?;
        params = params.with_devices(devices);
    }
    let mut req = JobRequest::new(DatasetRef::path(dataset), params);
    if let Some(algo) = v.get("algo").and_then(Value::as_str) {
        req = req.with_algo(Algo::parse(algo).ok_or_else(|| format!("unknown algo `{algo}`"))?);
    }
    if let Some(backend) = v.get("backend").and_then(Value::as_str) {
        req = req.with_backend(
            Backend::parse(backend).ok_or_else(|| format!("unknown backend `{backend}`"))?,
        );
    }
    if let Some(ms) = v.get("deadline_ms").and_then(Value::as_f64) {
        req = req.with_deadline(Duration::from_millis(ms as u64));
    }
    let want_labels = matches!(v.get("labels"), Some(Value::Bool(true)));
    Ok((req, want_labels))
}

fn result_line(id: u64, p: &Pending) -> String {
    match p.handle.wait() {
        Ok(out) => {
            let c = &out.clustering;
            let outliers = c.labels.iter().filter(|&&l| l == OUTLIER).count();
            let mut line = format!(
                "{{\"op\":\"result\",\"id\":{id},\"ok\":true,\"backend\":\"{}\",\"k\":{},\
                 \"cost\":{},\"outliers\":{outliers},\"batch_width\":{},\"queue_wait_us\":{},\
                 \"service_us\":{}",
                p.backend.name(),
                c.k(),
                json::fmt_f64(c.refined_cost),
                out.batch_width,
                out.queue_wait_us,
                out.service_us,
            );
            if p.want_labels {
                line.push_str(",\"labels\":[");
                for (i, l) in c.labels.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    let _ = write!(line, "{l}");
                }
                line.push(']');
            }
            if let Some(t) = &out.telemetry {
                line.push_str(",\"telemetry\":");
                line.push_str(&t.to_json());
            }
            line.push('}');
            line
        }
        Err(e) => format!(
            "{{\"op\":\"result\",\"id\":{id},\"ok\":false,\"backend\":\"{}\",\
             \"cancelled\":{},\"error\":\"{}\"}}",
            p.backend.name(),
            e.is_cancelled(),
            escape(&e.to_string())
        ),
    }
}

/// Serves one LDJSON session until `shutdown`, EOF, or an I/O error.
/// Jobs still pending at session end are drained (awaited, results
/// discarded) so their worker slots are not abandoned mid-flight.
pub fn serve_connection<R: BufRead, W: Write>(
    server: &Server,
    reader: R,
    writer: &mut W,
) -> std::io::Result<()> {
    let mut pending: HashMap<u64, Pending> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let v = match json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                writeln!(writer, "{}", err_line(None, &format!("bad json: {e}")))?;
                continue;
            }
        };
        let op = v.get("op").and_then(Value::as_str).unwrap_or("");
        match op {
            "submit" => match parse_submit(&v) {
                Ok((req, want_labels)) => {
                    let backend = req.backend;
                    match server.submit(req) {
                        Ok(handle) => {
                            let id = handle.id().0;
                            writeln!(writer, "{{\"op\":\"submitted\",\"id\":{id}}}")?;
                            pending.insert(
                                id,
                                Pending {
                                    handle,
                                    want_labels,
                                    backend,
                                },
                            );
                            order.push(id);
                        }
                        Err(e) => writeln!(writer, "{}", err_line(None, &e.to_string()))?,
                    }
                }
                Err(e) => writeln!(writer, "{}", err_line(None, &e))?,
            },
            "wait" => {
                let id = v.get("id").and_then(Value::as_f64).map(|f| f as u64);
                match id.and_then(|id| pending.remove(&id).map(|p| (id, p))) {
                    Some((id, p)) => {
                        order.retain(|&o| o != id);
                        writeln!(writer, "{}", result_line(id, &p))?;
                    }
                    None => writeln!(writer, "{}", err_line(id, "unknown or finished id"))?,
                }
            }
            "drain" => {
                let drained = order.len();
                for id in order.drain(..) {
                    if let Some(p) = pending.remove(&id) {
                        writeln!(writer, "{}", result_line(id, &p))?;
                    }
                }
                writeln!(writer, "{{\"op\":\"drained\",\"jobs\":{drained}}}")?;
            }
            "cancel" => {
                let id = v.get("id").and_then(Value::as_f64).map(|f| f as u64);
                match id.and_then(|id| pending.get(&id).map(|p| (id, p))) {
                    Some((id, p)) => {
                        p.handle.cancel();
                        writeln!(writer, "{{\"op\":\"cancelled\",\"id\":{id}}}")?;
                    }
                    None => writeln!(writer, "{}", err_line(id, "unknown or finished id"))?,
                }
            }
            "metrics" => writeln!(writer, "{}", server.metrics().to_json())?,
            "shutdown" => {
                writeln!(writer, "{{\"op\":\"bye\"}}")?;
                break;
            }
            other => writeln!(
                writer,
                "{}",
                err_line(None, &format!("unknown op `{other}`"))
            )?,
        }
        writer.flush()?;
    }
    for (_, p) in pending.drain() {
        let _ = p.handle.wait();
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use std::io::Cursor;
    use std::path::PathBuf;

    fn csv_fixture(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "proclus-serve-proto-{name}-{}.csv",
            std::process::id()
        ));
        let mut body = String::new();
        for i in 0..240 {
            let c = (i % 2) as f32 * 25.0;
            let _ = writeln!(body, "{},{},{}", c + (i % 5) as f32 * 0.1, i % 7, c);
        }
        std::fs::write(&path, body).unwrap();
        path
    }

    fn session(server: &Server, input: &str) -> Vec<String> {
        let mut out = Vec::new();
        serve_connection(server, Cursor::new(input.to_string()), &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn submit_drain_metrics_round_trip() {
        let path = csv_fixture("round");
        let server = Server::start(ServeConfig::default().with_workers(1)).expect("server starts");
        let input = format!(
            "{{\"op\":\"submit\",\"dataset\":\"{p}\",\"k\":2,\"l\":2,\"a\":10,\"b\":3,\"seed\":5}}\n\
             {{\"op\":\"submit\",\"dataset\":\"{p}\",\"k\":3,\"l\":2,\"a\":10,\"b\":3,\"seed\":5}}\n\
             {{\"op\":\"drain\"}}\n\
             {{\"op\":\"metrics\"}}\n\
             {{\"op\":\"shutdown\"}}\n",
            p = path.display()
        );
        let lines = session(&server, &input);
        assert!(lines[0].contains("\"op\":\"submitted\""), "{lines:?}");
        assert!(lines[1].contains("\"op\":\"submitted\""), "{lines:?}");
        assert!(lines[2].contains("\"ok\":true"), "{lines:?}");
        assert!(lines[3].contains("\"ok\":true"), "{lines:?}");
        assert!(lines[2].contains("\"backend\":\"cpu\""), "{lines:?}");
        assert!(lines[3].contains("\"backend\":\"cpu\""), "{lines:?}");
        assert!(lines[4].contains("\"op\":\"drained\""), "{lines:?}");
        proclus_telemetry::schema::validate_report_str(&lines[5]).unwrap();
        assert_eq!(lines[6], "{\"op\":\"bye\"}");
        // Every result line is itself valid JSON.
        for l in &lines[2..4] {
            json::parse(l).unwrap();
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_requests_get_error_lines_not_crashes() {
        let server = Server::start(ServeConfig::default().with_workers(1)).expect("server starts");
        let lines = session(
            &server,
            "not json\n\
             {\"op\":\"submit\",\"k\":2}\n\
             {\"op\":\"wait\",\"id\":99}\n\
             {\"op\":\"frobnicate\"}\n\
             {\"op\":\"submit\",\"dataset\":\"/no/file.csv\",\"k\":2,\"l\":1}\n",
        );
        assert!(lines[0].contains("bad json"), "{lines:?}");
        assert!(lines[1].contains("missing string 'dataset'"), "{lines:?}");
        assert!(lines[2].contains("unknown or finished id"), "{lines:?}");
        assert!(lines[3].contains("unknown op"), "{lines:?}");
        // l = 1 fails admission-time validation.
        assert!(lines[4].contains("invalid request"), "{lines:?}");
    }

    #[test]
    fn labels_are_included_on_request() {
        let path = csv_fixture("labels");
        let server = Server::start(ServeConfig::default().with_workers(1)).expect("server starts");
        let input = format!(
            "{{\"op\":\"submit\",\"dataset\":\"{p}\",\"k\":2,\"l\":2,\"a\":10,\"b\":3,\
             \"labels\":true}}\n{{\"op\":\"wait\",\"id\":0}}\n",
            p = path.display()
        );
        let lines = session(&server, &input);
        let result = json::parse(&lines[1]).unwrap();
        assert_eq!(result.get("labels").unwrap().as_array().unwrap().len(), 240);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn result_lines_echo_the_requested_backend() {
        let path = csv_fixture("backend_echo");
        let server = Server::start(ServeConfig::default().with_workers(1)).expect("server starts");
        let input = format!(
            "{{\"op\":\"submit\",\"dataset\":\"{p}\",\"k\":2,\"l\":2,\"a\":10,\"b\":3,\
             \"backend\":\"sharded\",\"devices\":2}}\n\
             {{\"op\":\"submit\",\"dataset\":\"{p}\",\"k\":2,\"l\":2,\"a\":10,\"b\":3,\
             \"backend\":\"gpu\"}}\n\
             {{\"op\":\"wait\",\"id\":0}}\n{{\"op\":\"wait\",\"id\":1}}\n",
            p = path.display()
        );
        let lines = session(&server, &input);
        assert!(lines[2].contains("\"backend\":\"sharded\""), "{lines:?}");
        assert!(lines[3].contains("\"backend\":\"gpu\""), "{lines:?}");
        for l in &lines[2..4] {
            let v = json::parse(l).unwrap();
            assert!(matches!(v.get("ok"), Some(Value::Bool(true))), "{l}");
        }
        std::fs::remove_file(path).ok();
    }
}
