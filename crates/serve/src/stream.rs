//! Streaming sessions for the LDJSON protocol: per-connection live
//! datasets driven by `proclus-stream`.
//!
//! A session owns named [`StreamingClusterer`]s. Mutation verbs
//! (`stream.append` / `stream.retire` / `stream.window`) are O(batch) and
//! never run the algorithm; `stream.query` re-clusters only when the
//! dataset is dirty, under a cooperative [`CancelToken`] armed by an
//! optional deadline. After every successful query the live snapshot is
//! (re-)registered **pinned** in the dataset registry, so byte-pressure
//! eviction from concurrent batch jobs can never drop a dataset that has
//! an open streaming session; `stream.close` unpins it.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use gpu_sim::DeviceConfig;
use proclus::par::Executor;
use proclus::{CancelToken, Params, OUTLIER};
use proclus_stream::{ReclusterReport, StreamBackendSpec, StreamingClusterer};
use proclus_telemetry::json::{self, fmt_f64, Value};
use proclus_telemetry::{Recorder, Telemetry};

use crate::server::Server;

/// One connection's live datasets, by client-chosen name.
#[derive(Default)]
pub struct StreamSessions {
    map: HashMap<String, StreamingClusterer>,
}

fn get_usize(v: &Value, key: &str) -> Option<usize> {
    v.get(key).and_then(Value::as_f64).map(|f| f as usize)
}

fn name_of(v: &Value) -> Result<&str, String> {
    v.get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| "stream: missing string 'name'".to_string())
}

/// Registry key of a live dataset's snapshot ("stream:" namespaces it
/// away from batch `DatasetRef` keys).
fn registry_key(name: &str) -> String {
    format!("stream:{name}")
}

fn spec_for(v: &Value) -> Result<StreamBackendSpec, String> {
    let devices = get_usize(v, "devices").unwrap_or(2).max(1);
    match v.get("backend").and_then(Value::as_str).unwrap_or("cpu") {
        // The shared work-stealing pool fills RowStore batches; an optional
        // `threads` key caps a stream's parallelism (0/absent = all cores).
        "cpu" => Ok(StreamBackendSpec::Cpu {
            exec: match get_usize(v, "threads").unwrap_or(0) {
                0 => Executor::all_cores(),
                1 => Executor::Sequential,
                t => Executor::Parallel { threads: t },
            },
        }),
        "gpu" => Ok(StreamBackendSpec::gpu(DeviceConfig::gtx_1660_ti())),
        "sharded" => Ok(StreamBackendSpec::Sharded {
            config: DeviceConfig::gtx_1660_ti(),
            devices,
        }),
        other => Err(format!("stream.open: unknown backend `{other}`")),
    }
}

fn pid_list(pids: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, p) in pids.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{p}");
    }
    s.push(']');
    s
}

impl StreamSessions {
    /// True when no live dataset is open.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Unpins every live dataset (connection teardown).
    pub fn close_all(&mut self, server: &Server) {
        for name in self.map.keys() {
            server.registry().unpin(&registry_key(name));
        }
        self.map.clear();
    }

    /// `stream.open`: creates a named live dataset.
    pub(crate) fn open(&mut self, server: &Server, v: &Value) -> Result<String, String> {
        let name = name_of(v)?;
        if self.map.contains_key(name) {
            return Err(format!("stream.open: `{name}` is already open"));
        }
        let d = get_usize(v, "d").ok_or("stream.open: missing numeric 'd'")?;
        let k = get_usize(v, "k").ok_or("stream.open: missing numeric 'k'")?;
        let l = get_usize(v, "l").ok_or("stream.open: missing numeric 'l'")?;
        let mut b = Params::builder(k, l);
        if let Some(a) = get_usize(v, "a") {
            b = b.a(a);
        }
        if let Some(bb) = get_usize(v, "b") {
            b = b.b(bb);
        }
        if let Some(seed) = v.get("seed").and_then(Value::as_f64) {
            b = b.seed(seed as u64);
        }
        let params = b.build().map_err(|e| e.to_string())?;
        let spec = spec_for(v)?;
        let backend = spec.name();
        let mut c = StreamingClusterer::new(d, params, spec).map_err(|e| e.to_string())?;
        if let Some(cap) = get_usize(v, "window") {
            c.set_window(Some(cap)).map_err(|e| e.to_string())?;
        }
        self.map.insert(name.to_string(), c);
        let _ = server; // registration happens at first query (empty sets have no snapshot)
        Ok(format!(
            "{{\"op\":\"stream.opened\",\"name\":\"{}\",\"backend\":\"{backend}\"}}",
            json::escape(name)
        ))
    }

    /// `stream.append`: appends `rows` (array of number arrays).
    pub(crate) fn append(&mut self, v: &Value) -> Result<String, String> {
        let name = name_of(v)?;
        let c = self
            .map
            .get_mut(name)
            .ok_or_else(|| format!("stream.append: `{name}` is not open"))?;
        let rows = v
            .get("rows")
            .and_then(Value::as_array)
            .ok_or("stream.append: missing array 'rows'")?;
        let mut pids = Vec::with_capacity(rows.len());
        let mut evicted = Vec::new();
        for row in rows {
            let row: Vec<f32> = row
                .as_array()
                .ok_or("stream.append: each row must be an array")?
                .iter()
                .map(|x| x.as_f64().map(|f| f as f32))
                .collect::<Option<_>>()
                .ok_or("stream.append: rows must be numeric")?;
            let (pid, ev) = c.append(&row).map_err(|e| e.to_string())?;
            pids.push(pid);
            evicted.extend(ev);
        }
        Ok(format!(
            "{{\"op\":\"stream.appended\",\"name\":\"{}\",\"pids\":{},\"evicted\":{},\"n\":{}}}",
            json::escape(name),
            pid_list(&pids),
            pid_list(&evicted),
            c.n()
        ))
    }

    /// `stream.retire`: retires the listed pids.
    pub(crate) fn retire(&mut self, v: &Value) -> Result<String, String> {
        let name = name_of(v)?;
        let c = self
            .map
            .get_mut(name)
            .ok_or_else(|| format!("stream.retire: `{name}` is not open"))?;
        let pids = v
            .get("pids")
            .and_then(Value::as_array)
            .ok_or("stream.retire: missing array 'pids'")?;
        let mut retired = Vec::with_capacity(pids.len());
        for p in pids {
            let pid = p.as_f64().ok_or("stream.retire: pids must be numeric")? as u64;
            c.retire(pid).map_err(|e| e.to_string())?;
            retired.push(pid);
        }
        Ok(format!(
            "{{\"op\":\"stream.retired\",\"name\":\"{}\",\"pids\":{},\"n\":{}}}",
            json::escape(name),
            pid_list(&retired),
            c.n()
        ))
    }

    /// `stream.window`: sets (number) or clears (null/absent `cap`) the
    /// sliding window, evicting the oldest points down to it.
    pub(crate) fn window(&mut self, v: &Value) -> Result<String, String> {
        let name = name_of(v)?;
        let c = self
            .map
            .get_mut(name)
            .ok_or_else(|| format!("stream.window: `{name}` is not open"))?;
        let cap = get_usize(v, "cap");
        let evicted = c.set_window(cap).map_err(|e| e.to_string())?;
        Ok(format!(
            "{{\"op\":\"stream.windowed\",\"name\":\"{}\",\"evicted\":{},\"n\":{}}}",
            json::escape(name),
            pid_list(&evicted),
            c.n()
        ))
    }

    /// `stream.query`: re-clusters if the dataset is dirty (under an
    /// optional `deadline_ms` cancellation watchdog and optional
    /// telemetry), refreshes the pinned registry snapshot, and reports the
    /// state. `"labels":true` adds `[pid,label]` pairs.
    pub(crate) fn query(&mut self, server: &Server, v: &Value) -> Result<String, String> {
        let name = name_of(v)?;
        let c = self
            .map
            .get_mut(name)
            .ok_or_else(|| format!("stream.query: `{name}` is not open"))?;
        let want_labels = matches!(v.get("labels"), Some(Value::Bool(true)));
        let want_tel = matches!(v.get("telemetry"), Some(Value::Bool(true)));
        let deadline = v
            .get("deadline_ms")
            .and_then(Value::as_f64)
            .map(|ms| Duration::from_millis(ms as u64));

        let mut report: Option<ReclusterReport> = None;
        let mut tel_json: Option<String> = None;
        if c.is_dirty() || c.state().is_none() {
            let cancel = CancelToken::default();
            // Deadline watchdog: cancels cooperatively if the query is
            // still running when the deadline lapses. The sender half is
            // dropped when the query finishes, releasing the watchdog.
            let (done_tx, done_rx) = mpsc::channel::<()>();
            let watchdog = deadline.map(|dl| {
                let cancel = cancel.clone();
                // Deadline watchdog parked on a channel timeout, not compute.
                // lint:allow(no_raw_scope) -- watchdog thread, not data-parallel fan-out
                std::thread::spawn(move || {
                    if done_rx.recv_timeout(dl).is_err() {
                        cancel.cancel();
                    }
                })
            });
            let tel = want_tel.then(Telemetry::new);
            let rec: &dyn Recorder = match &tel {
                Some(t) => t,
                None => &proclus_telemetry::NullRecorder,
            };
            let out = c.recluster(rec, &cancel);
            drop(done_tx);
            if let Some(h) = watchdog {
                let _ = h.join();
            }
            let r = out.map_err(|e| e.to_string())?;
            tel_json = tel.map(|t| t.finish().to_json());
            report = Some(r);
            let snap = c.dataset().snapshot().map_err(|e| e.to_string())?;
            server
                .registry()
                .put_pinned(&registry_key(name), Arc::new(snap));
        }

        let state = c
            .state()
            .ok_or_else(|| format!("stream.query: `{name}` has no state yet"))?;
        let outliers = state.labels.values().filter(|&&l| l == OUTLIER).count();
        let mut line = format!(
            "{{\"op\":\"stream.result\",\"name\":\"{}\",\"ok\":true,\"n\":{},\"k\":{},\
             \"cost\":{},\"refined_cost\":{},\"outliers\":{outliers}",
            json::escape(name),
            c.n(),
            state.medoid_pids.len(),
            fmt_f64(state.cost),
            fmt_f64(state.refined_cost),
        );
        match &report {
            Some(r) => {
                let _ = write!(
                    line,
                    ",\"reclustered\":true,\"mode\":\"{}\",\"distances\":{},\"segmental\":{},\
                     \"dist_cache_hits\":{},\"dist_cache_misses\":{},\"iterations\":{}",
                    r.mode.as_str(),
                    r.distances,
                    r.segmental,
                    r.dist_cache_hits,
                    r.dist_cache_misses,
                    r.iterations
                );
                if let Some(us) = r.sim_us {
                    let _ = write!(line, ",\"sim_us\":{}", fmt_f64(us));
                }
            }
            None => line.push_str(",\"reclustered\":false"),
        }
        if want_labels {
            let mut pairs: Vec<(u64, i32)> = state.labels.iter().map(|(&p, &l)| (p, l)).collect();
            pairs.sort_unstable();
            line.push_str(",\"labels\":[");
            for (i, (p, l)) in pairs.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(line, "[{p},{l}]");
            }
            line.push(']');
        }
        if let Some(t) = tel_json {
            line.push_str(",\"telemetry\":");
            line.push_str(&t);
        }
        line.push('}');
        Ok(line)
    }

    /// `stream.close`: unpins the registry snapshot and drops the session.
    pub(crate) fn close(&mut self, server: &Server, v: &Value) -> Result<String, String> {
        let name = name_of(v)?;
        if self.map.remove(name).is_none() {
            return Err(format!("stream.close: `{name}` is not open"));
        }
        server.registry().unpin(&registry_key(name));
        Ok(format!(
            "{{\"op\":\"stream.closed\",\"name\":\"{}\"}}",
            json::escape(name)
        ))
    }
}
